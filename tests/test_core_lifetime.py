"""Tests for expected-lifetime comparison utilities."""

import pytest

from repro.core.lifetime import (
    expected_lifetime_table,
    rank_by_expected_lifetime,
    suitability_for_job,
)
from repro.traces.catalog import VM_TYPES, default_catalog


@pytest.fixture(scope="module")
def type_models():
    cat = default_catalog()
    return {vt: cat.params(vt, "us-central1-c") for vt in VM_TYPES}


class TestLifetimeTable:
    def test_all_types_present(self, type_models):
        table = expected_lifetime_table(type_models)
        assert set(table) == set(VM_TYPES)
        assert all(v > 0 for v in table.values())

    def test_observation_4_ordering(self, type_models):
        """Larger VMs fail sooner => lower expected lifetime (ground truth)."""
        table = expected_lifetime_table(type_models)
        ordered = [table[vt] for vt in VM_TYPES]  # VM_TYPES is small -> large
        assert all(a >= b for a, b in zip(ordered, ordered[1:]))

    def test_ranking_sorted(self, type_models):
        ranking = rank_by_expected_lifetime(type_models)
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)
        assert ranking[0][0] == "n1-highcpu-2"
        assert ranking[-1][0] == "n1-highcpu-32"

    def test_horizon_truncation(self, type_models):
        short = expected_lifetime_table(type_models, horizon=2.0)
        full = expected_lifetime_table(type_models)
        assert all(short[k] < full[k] for k in short)


class TestSuitability:
    def test_short_jobs_prefer_small_vms(self, type_models):
        """High initial rate is poison for short jobs (Section 4.1)."""
        ranked = suitability_for_job(type_models, 1.0)
        assert ranked[0][0] == "n1-highcpu-2"
        assert ranked[-1][0] == "n1-highcpu-32"

    def test_scores_are_survival_probabilities(self, type_models):
        ranked = suitability_for_job(type_models, 6.0)
        assert all(0.0 <= p <= 1.0 for _, p in ranked)

    def test_negative_length_rejected(self, type_models):
        with pytest.raises(ValueError):
            suitability_for_job(type_models, -1.0)

"""Edge-case tests for the job runner and cluster interactions."""

import pytest

from repro.sim.cloud import CloudProvider
from repro.sim.cluster import ClusterManager, JobState, SimJob
from repro.sim.engine import Simulator
from repro.sim.events import CheckpointWritten, EventLog
from repro.sim.rng import RandomStreams
from repro.sim.runner import JobExecution
from repro.sim.vm import SimVM


class TestSegmentClipping:
    def test_plan_trimmed_to_remaining_work(self):
        plan = JobExecution._clip_segments([1.0, 1.0, 1.0], 2.5)
        assert plan == [1.0, 1.0, 0.5]

    def test_plan_extended_when_short(self):
        plan = JobExecution._clip_segments([1.0], 3.0)
        assert plan == [1.0, 2.0]

    def test_exact_fit(self):
        assert JobExecution._clip_segments([1.5, 1.5], 3.0) == [1.5, 1.5]

    def test_oversized_first_segment(self):
        assert JobExecution._clip_segments([10.0], 2.0) == [2.0]


class TestRunnerWithCluster:
    def _setup(self, seed=50):
        sim = Simulator()
        cloud = CloudProvider(sim, streams=RandomStreams(seed))
        cluster = ClusterManager(sim, log=cloud.log)
        return sim, cloud, cluster

    def test_resume_uses_fresh_plan_for_remaining_work(self):
        """After a failure, the next attempt plans only the remaining
        hours (checkpointed progress is not re-planned)."""
        sim, cloud, cluster = self._setup()
        plans = []

        def planner(job, age):
            plans.append(job.remaining_hours)
            return [0.5] * 100

        cluster.checkpoint_planner = planner
        cluster.on_job_failed.append(
            lambda j, v: cluster.add_node(cloud.launch("n1-highcpu-16"))
        )
        cluster.add_node(cloud.launch("n1-highcpu-32"))
        job = SimJob(job_id=0, work_hours=26.0)
        cluster.submit(job)
        sim.run_until(150.0)
        assert job.state is JobState.COMPLETED
        assert len(plans) >= 2
        # Each successive plan covers no more work than the previous one.
        assert all(b <= a + 1e-9 for a, b in zip(plans, plans[1:]))

    def test_checkpoint_events_logged_with_progress(self):
        sim, cloud, cluster = self._setup(seed=51)
        cluster.checkpoint_planner = lambda j, a: [0.1, 0.1, 0.1]
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        cluster.submit(SimJob(job_id=0, work_hours=0.3))
        sim.run_until(1.0)
        ckpts = cluster.log.of_type(CheckpointWritten)
        assert [round(c.work_done_hours, 3) for c in ckpts] == [0.1, 0.2]

    def test_checkpoint_cost_lengthens_makespan(self):
        sim, cloud, cluster = self._setup(seed=52)
        cluster.checkpoint_cost = 0.05
        cluster.checkpoint_planner = lambda j, a: [0.1] * 10
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        job = SimJob(job_id=0, work_hours=1.0)
        cluster.submit(job)
        sim.run_until(5.0)
        assert job.state is JobState.COMPLETED
        # 1.0 h work + 9 checkpoints x 0.05 h (none after the final segment).
        assert job.makespan == pytest.approx(1.45)

    def test_abort_before_any_progress_is_clean(self):
        sim, cloud, cluster = self._setup(seed=53)
        vm = cloud.launch("n1-highcpu-16")
        cluster.add_node(vm)
        job = SimJob(job_id=0, work_hours=30.0)
        cluster.submit(job)
        sim.run_until(30.0)
        assert job.state is JobState.PENDING
        assert job.progress_hours == 0.0
        assert job.failures == 1

    def test_completed_job_cannot_resubmit(self):
        sim, cloud, cluster = self._setup(seed=54)
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        job = SimJob(job_id=0, work_hours=0.1)
        cluster.submit(job)
        sim.run_until(1.0)
        with pytest.raises(ValueError):
            cluster.submit(job)

    def test_execution_rejects_zero_remaining(self):
        sim = Simulator()
        job = SimJob(job_id=0, work_hours=1.0)
        job.progress_hours = 1.0
        vm = SimVM(0, "t", "z", 0.0, True, 0.1)
        ex = JobExecution(
            sim=sim,
            job=job,
            vms=[vm],
            segments=None,
            checkpoint_cost=0.0,
            log=EventLog(),
            on_complete=lambda j, v: None,
            on_abort=lambda j, v, d, l: None,
        )
        with pytest.raises(RuntimeError):
            ex.begin()

"""Interface-conformance tests shared by every lifetime distribution."""

import numpy as np
import pytest

from repro.core.model import BathtubParams
from repro.distributions import (
    BathtubDistribution,
    ExponentialDistribution,
    GompertzMakehamDistribution,
    LogNormalLifetimeDistribution,
    PiecewisePhaseDistribution,
    SuperpositionMixture,
    UniformLifetimeDistribution,
    WeibullDistribution,
)
from repro.utils.integrate import first_moment

ALL_DISTS = {
    "exponential": ExponentialDistribution(rate=0.3),
    "weibull": WeibullDistribution(lam=0.1, k=1.7),
    "gompertz": GompertzMakehamDistribution(lam=0.02, alpha=1e-3, beta=0.4),
    "uniform": UniformLifetimeDistribution(24.0),
    "lognormal": LogNormalLifetimeDistribution(mu=2.0, sigma=0.6),
    "bathtub": BathtubDistribution(BathtubParams(A=0.46, tau1=1.2, tau2=0.8, b=24.0)),
    "piecewise": PiecewisePhaseDistribution.bathtub_three_phase(
        early_hazard=0.3, stable_hazard=0.01, final_hazard=1.5
    ),
    "mixture": SuperpositionMixture(
        [(0.5, ExponentialDistribution(rate=1.0)), (0.5, UniformLifetimeDistribution(24.0))]
    ),
}


@pytest.fixture(params=sorted(ALL_DISTS), ids=sorted(ALL_DISTS))
def dist(request):
    return ALL_DISTS[request.param]


class TestUniversalInvariants:
    def test_cdf_bounds_and_monotonicity(self, dist):
        t = np.linspace(-1.0, dist.t_max * 1.1, 400)
        f = np.asarray(dist.cdf(t), dtype=float)
        assert np.all((f >= 0.0) & (f <= 1.0))
        assert np.all(np.diff(f) >= -1e-12)

    def test_cdf_zero_at_negative_times(self, dist):
        assert float(dist.cdf(-0.5)) == 0.0

    def test_pdf_nonnegative(self, dist):
        t = np.linspace(0.01, dist.t_max * 0.99, 300)
        assert np.all(np.asarray(dist.pdf(t), dtype=float) >= 0.0)

    def test_sf_complements_cdf(self, dist):
        t = np.linspace(0.0, dist.t_max, 50)
        np.testing.assert_allclose(
            np.asarray(dist.sf(t)) + np.asarray(dist.cdf(t)), 1.0, atol=1e-12
        )

    def test_hazard_nonnegative(self, dist):
        t = np.linspace(0.01, dist.t_max * 0.9, 100)
        h = np.asarray(dist.hazard(t), dtype=float)
        assert np.all(h >= 0.0)

    def test_ppf_inverts_cdf(self, dist):
        q = np.linspace(0.05, 0.95, 19)
        t = np.asarray(dist.ppf(q), dtype=float)
        np.testing.assert_allclose(np.asarray(dist.cdf(t), dtype=float), q, atol=5e-3)

    def test_ppf_rejects_bad_quantiles(self, dist):
        with pytest.raises(ValueError):
            dist.ppf(1.5)
        with pytest.raises(ValueError):
            dist.ppf(-0.01)

    def test_sampling_within_support_and_distribution(self, dist, rng):
        n = 3000
        s = dist.sample(n, rng)
        assert s.shape == (n,)
        assert np.all(s >= 0.0)
        assert np.all(s <= dist.t_max + 1e-6)
        emp = np.arange(1, n + 1) / n
        ks = np.max(np.abs(emp - np.asarray(dist.cdf(np.sort(s)), dtype=float)))
        assert ks < 0.05

    def test_sample_negative_n(self, dist):
        with pytest.raises(ValueError):
            dist.sample(-1)

    def test_sample_zero(self, dist, rng):
        assert dist.sample(0, rng).shape == (0,)

    def test_truncated_moment_matches_quadrature(self, dist):
        a, c = 0.5, min(8.0, dist.t_max * 0.8)
        numeric = first_moment(dist.pdf, a, c, num=8193)
        assert dist.truncated_first_moment(a, c) == pytest.approx(numeric, rel=2e-3, abs=1e-5)

    def test_truncated_moment_degenerate(self, dist):
        assert dist.truncated_first_moment(3.0, 3.0) == 0.0
        assert dist.truncated_first_moment(5.0, 2.0) == 0.0

    def test_mean_positive(self, dist):
        assert dist.mean() > 0.0

    def test_conditional_failure_probability_bounds(self, dist):
        for s in (0.0, 1.0, dist.t_max * 0.5):
            p = dist.conditional_failure_probability(s, 2.0)
            assert 0.0 <= p <= 1.0

    def test_conditional_failure_total_at_edge(self, dist):
        p = dist.conditional_failure_probability(dist.t_max + 1.0, 1.0)
        if float(dist.sf(dist.t_max + 1.0)) <= 0.0:
            # Bounded support: survival is exhausted, failure is certain.
            assert p == 1.0
        else:
            # Unbounded laws: t_max is only a practical horizon.
            assert 0.0 <= p <= 1.0

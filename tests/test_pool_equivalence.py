"""Pool-axis equivalence: heterogeneous fleets agree across backends.

The pool axis (``pools=`` on ``ClusterConfig`` / ``ServiceBatchConfig``
/ ``TenancyConfig``, see :mod:`repro.sim.placement`) must not disturb
the round protocol: pool choice is deterministic and happens *before*
the lifetime draw, the chosen pool only selects which ``ppf`` the
shared uniform maps through, and free-VM ordering keys on the
allocator's static pool ranking.  So for identical seeds the event
oracle (real ``ClusterManager`` + ``CloudProvider``) and the vectorized
kernels must still agree — exact event/draw/preemption counts, hours to
1e-9, including the new per-pool billing split ``pool_vm_hours``.

This file pins that on all three kernels, across allocator plugins,
under ``workers=`` sharding (byte-identical, like every other axis),
plus the catalog validation rules.  The ``slow``-marked grid re-runs
bigger batches for the scheduled ``slow-equivalence`` CI job.
"""

import os

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.sim.backend import (
    run_cluster_replications,
    run_service_replications,
    run_tenant_replications,
)
from repro.sim.placement import PoolSpec, resolve_pools

SEEDS = [0, 1, 2, 3, 4]

FLAKY = UniformLifetimeDistribution(3.0)
STABLE = UniformLifetimeDistribution(24.0)
MEMORYLESS = ExponentialDistribution(0.7)

#: Cheap-but-flaky next to pricey-but-stable: the canonical 2-pool mix.
POOLS_4 = (
    PoolSpec("cheap-flaky", 2, dist=FLAKY, price=0.2),
    PoolSpec("pricey-stable", 2, dist=STABLE, price=1.0),
)
POOLS_4_REV = tuple(reversed(
    (PoolSpec("cheap-flaky", 2, dist=FLAKY, price=0.2),
     PoolSpec("pricey-stable", 2, dist=STABLE, price=1.0))
))
POOLS_3 = (
    PoolSpec("small", 1, dist=MEMORYLESS, price=0.5),
    PoolSpec("big", 2, dist=STABLE, price=0.8),
)

JOBS = [(0.6, 1), (0.4, 2), (0.5, 1), (0.8, 2)]
TRAFFIC = [
    (0, 0.0, [(0.6, 1), (0.4, 2)]),
    (1, 0.3, [(0.5, 1)]),
    (2, 0.9, [(0.8, 2)]),
]

ALLOCATORS = ["first_fit", "best_fit_price", "reliability"]


def assert_equivalent(event, vec):
    np.testing.assert_allclose(vec.makespan, event.makespan, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(vec.vm_hours, event.vm_hours, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.pool_vm_hours, event.pool_vm_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec.completed_jobs, event.completed_jobs)
    np.testing.assert_array_equal(vec.n_preemptions, event.n_preemptions)
    np.testing.assert_array_equal(vec.n_events, event.n_events)
    np.testing.assert_array_equal(vec.n_draws, event.n_draws)


def assert_outcomes_equal(base, sharded):
    for name, value in vars(base).items():
        other = getattr(sharded, name)
        if isinstance(value, np.ndarray):
            with np.errstate(invalid="ignore"):
                np.testing.assert_array_equal(value, other, err_msg=name)
        else:
            assert value == other, name


class TestCatalog:
    def test_none_resolves_to_single_default_pool(self):
        (pool,) = resolve_pools(None, dist=FLAKY, n_slots=4, provision_latency=0.5)
        assert pool.name == "default" and pool.size == 4
        assert pool.dist is FLAKY and pool.price == 1.0
        assert pool.boot_latency == 0.5

    def test_defaults_filled_from_config(self):
        pools = resolve_pools(
            (PoolSpec("a", 1), PoolSpec("b", 3, dist=STABLE, boot_latency=0.1)),
            dist=FLAKY, n_slots=4, provision_latency=0.5,
        )
        assert pools[0].dist is FLAKY and pools[0].boot_latency == 0.5
        assert pools[1].dist is STABLE and pools[1].boot_latency == 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            resolve_pools((), dist=FLAKY, n_slots=4)
        with pytest.raises(ValueError, match="unique"):
            resolve_pools(
                (PoolSpec("a", 2), PoolSpec("a", 2)), dist=FLAKY, n_slots=4
            )
        with pytest.raises(ValueError, match="sum to the fleet cap"):
            resolve_pools(
                (PoolSpec("a", 2), PoolSpec("b", 3)), dist=FLAKY, n_slots=4
            )
        with pytest.raises(ValueError, match="size must be positive"):
            resolve_pools((PoolSpec("a", 0),), dist=FLAKY, n_slots=0)

    def test_pools_incompatible_with_dp_checkpointing(self):
        from repro.sim.cluster_vectorized import ClusterConfig

        with pytest.raises(ValueError, match="pools"):
            ClusterConfig(pool_size=4, pools=POOLS_4, checkpoint="dp")

    def test_unknown_allocator_rejected(self):
        from repro.sim.cluster_vectorized import ClusterConfig

        with pytest.raises(ValueError, match="allocator"):
            ClusterConfig(pool_size=4, pools=POOLS_4, allocator="roulette")


class TestClusterPools:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("allocator", ALLOCATORS)
    def test_two_pool_grid(self, seed, allocator):
        kwargs = dict(
            n_replications=8, seed=seed, pool_size=4,
            pools=POOLS_4, allocator=allocator,
        )
        event = run_cluster_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_cluster_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_ragged_pools_hot_spare(self, seed):
        """Uneven pool sizes + hot-spare: a death in the full pool must
        substitute cross-pool into the ranked pool with headroom."""
        kwargs = dict(
            n_replications=8, seed=seed, pool_size=3, pools=POOLS_3,
            allocator="best_fit_price", hot_spare=True,
        )
        event = run_cluster_replications(FLAKY, JOBS[:3], backend="event", **kwargs)
        vec = run_cluster_replications(FLAKY, JOBS[:3], backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    def test_pool_hours_partition_vm_hours(self):
        out = run_cluster_replications(
            FLAKY, JOBS, n_replications=16, seed=0, pool_size=4, pools=POOLS_4
        )
        assert out.pool_vm_hours.shape == (16, 2)
        np.testing.assert_allclose(
            out.pool_vm_hours.sum(axis=1), out.vm_hours, atol=1e-9
        )

    def test_single_pool_column_equals_total(self):
        out = run_cluster_replications(
            FLAKY, JOBS, n_replications=8, seed=0, pool_size=4
        )
        assert out.pool_vm_hours.shape == (8, 1)
        np.testing.assert_allclose(
            out.pool_vm_hours[:, 0], out.vm_hours, atol=1e-9
        )

    def test_same_law_split_still_equivalent_across_backends(self):
        """Same-law pools are not a pure relabeling (pool rank becomes
        the primary free-VM sort key), but both backends must apply the
        reordering identically."""
        kwargs = dict(
            n_replications=16, seed=2, pool_size=4,
            pools=(PoolSpec("a", 2), PoolSpec("b", 2)),
        )
        event = run_cluster_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_cluster_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.sharded
    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_byte_identical(self, workers):
        base = run_cluster_replications(
            FLAKY, JOBS, n_replications=13, seed=0, pool_size=4,
            pools=POOLS_4, allocator="best_fit_price",
        )
        sharded = run_cluster_replications(
            FLAKY, JOBS, n_replications=13, seed=0, pool_size=4,
            pools=POOLS_4, allocator="best_fit_price", workers=workers,
        )
        assert_outcomes_equal(base, sharded)


class TestServicePools:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("allocator", ALLOCATORS)
    def test_two_pool_grid(self, seed, allocator):
        kwargs = dict(
            n_replications=8, seed=seed, max_vms=4, run_master=False,
            pools=POOLS_4, allocator=allocator,
        )
        event = run_service_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_service_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.parametrize("seed", [0, 2])
    def test_per_pool_boot_latency(self, seed):
        """Pools with distinct boot latencies exercise the staggered
        provisioning channels plus the per-pool boot-grace window."""
        pools = (
            PoolSpec("slow-boot", 2, dist=STABLE, price=1.0, boot_latency=0.4),
            PoolSpec("fast-boot", 2, dist=FLAKY, price=0.3, boot_latency=0.1),
        )
        kwargs = dict(
            n_replications=6, seed=seed, max_vms=4, run_master=False,
            pools=pools, allocator="best_fit_price", provision_latency=0.2,
        )
        event = run_service_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_service_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    def test_pool_hours_partition_vm_hours(self):
        out = run_service_replications(
            FLAKY, JOBS, n_replications=12, seed=1, max_vms=4,
            run_master=False, pools=POOLS_4,
        )
        assert out.pool_vm_hours.shape == (12, 2)
        np.testing.assert_allclose(
            out.pool_vm_hours.sum(axis=1), out.vm_hours, atol=1e-9
        )

    def test_priced_cost_is_hours_at_prices(self):
        """The billing contract: cost under heterogeneous prices is just
        ``pool_vm_hours @ prices`` — cheaper than billing every hour at
        the top rate, costlier than the bottom rate."""
        out = run_service_replications(
            FLAKY, JOBS, n_replications=12, seed=1, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="best_fit_price",
        )
        prices = np.array([p.price for p in POOLS_4])
        cost = out.pool_vm_hours @ prices
        assert (cost <= out.vm_hours * prices.max() + 1e-9).all()
        assert (cost >= out.vm_hours * prices.min() - 1e-9).all()

    @pytest.mark.sharded
    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_byte_identical(self, workers):
        base = run_service_replications(
            FLAKY, JOBS, n_replications=11, seed=0, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="reliability",
        )
        sharded = run_service_replications(
            FLAKY, JOBS, n_replications=11, seed=0, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="reliability",
            workers=workers,
        )
        assert_outcomes_equal(base, sharded)


class TestTenancyPools:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("allocator", ALLOCATORS + ["tenant_affinity"])
    def test_two_pool_grid(self, seed, allocator):
        kwargs = dict(
            n_replications=6, seed=seed, max_vms=4, run_master=False,
            pools=POOLS_4, allocator=allocator,
        )
        event = run_tenant_replications(FLAKY, TRAFFIC, backend="event", **kwargs)
        vec = run_tenant_replications(FLAKY, TRAFFIC, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)
        np.testing.assert_array_equal(event.admitted, vec.admitted)
        np.testing.assert_allclose(
            event.finish_times, vec.finish_times, atol=1e-9, equal_nan=True
        )

    @pytest.mark.parametrize("scheduling", ["fair", "weighted"])
    def test_pools_compose_with_tenancy_policies(self, scheduling):
        kwargs = dict(
            n_replications=6, seed=0, max_vms=4, run_master=False,
            pools=POOLS_4, allocator="tenant_affinity",
            scheduling=scheduling,
            tenant_weights=(1.0, 2.0, 3.0) if scheduling == "weighted" else None,
        )
        event = run_tenant_replications(FLAKY, TRAFFIC, backend="event", **kwargs)
        vec = run_tenant_replications(FLAKY, TRAFFIC, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.sharded
    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_byte_identical(self, workers):
        base = run_tenant_replications(
            FLAKY, TRAFFIC, n_replications=9, seed=0, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="tenant_affinity",
        )
        sharded = run_tenant_replications(
            FLAKY, TRAFFIC, n_replications=9, seed=0, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="tenant_affinity",
            workers=workers,
        )
        assert_outcomes_equal(base, sharded)


class TestAllocatorBehaviour:
    def test_best_fit_and_reliability_differ_measurably(self):
        """The fig9-pools premise: on a cheap-flaky / pricey-stable mix,
        chasing price and chasing reliability land on different pools —
        different billing splits and different preemption counts."""
        outs = {
            alloc: run_service_replications(
                FLAKY, JOBS, n_replications=32, seed=0, max_vms=4,
                run_master=False, pools=POOLS_4, allocator=alloc,
            )
            for alloc in ("best_fit_price", "reliability")
        }
        price_split = outs["best_fit_price"].pool_vm_hours.sum(axis=0)
        rel_split = outs["reliability"].pool_vm_hours.sum(axis=0)
        # best-fit-by-price leans on pool 0 (cheap), reliability on pool 1.
        assert price_split[0] > price_split[1]
        assert rel_split[1] > rel_split[0]
        assert (
            outs["best_fit_price"].n_preemptions.sum()
            != outs["reliability"].n_preemptions.sum()
        )

    def test_tenant_affinity_homes_tenants(self):
        """With per-tenant affinity each tenant's work lands on its home
        pool first; single-tenant traffic on pool 1's home shows up in
        the billing split."""
        traffic = [(1, 0.0, [(0.5, 1), (0.5, 1)])]
        out = run_tenant_replications(
            STABLE, traffic, n_replications=8, seed=0, max_vms=4,
            run_master=False, n_tenants=2, pools=POOLS_4,
            allocator="tenant_affinity",
        )
        split = out.pool_vm_hours.sum(axis=0)
        assert split[1] > split[0]


@pytest.mark.slow
class TestPoolsDeep:
    """Bigger batches for the scheduled slow-equivalence CI job."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster_deep(self, seed):
        kwargs = dict(
            n_replications=32, seed=seed, pool_size=4,
            pools=POOLS_4, allocator="best_fit_price", hot_spare=True,
        )
        event = run_cluster_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_cluster_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_service_deep(self, reference_dist, seed):
        pools = (
            PoolSpec("flaky", 2, dist=FLAKY, price=0.2, boot_latency=0.3),
            PoolSpec("paper", 2, dist=reference_dist, price=1.0),
        )
        kwargs = dict(
            n_replications=24, seed=seed, max_vms=4, run_master=False,
            pools=pools, allocator="reliability", provision_latency=0.1,
        )
        event = run_service_replications(FLAKY, JOBS, backend="event", **kwargs)
        vec = run_service_replications(FLAKY, JOBS, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tenancy_deep(self, seed):
        kwargs = dict(
            n_replications=16, seed=seed, max_vms=4, run_master=False,
            pools=POOLS_4, allocator="tenant_affinity", scheduling="fair",
        )
        event = run_tenant_replications(FLAKY, TRAFFIC, backend="event", **kwargs)
        vec = run_tenant_replications(FLAKY, TRAFFIC, backend="vectorized", **kwargs)
        assert_equivalent(event, vec)


@pytest.mark.slow
@pytest.mark.sharded
class TestPoolShardedDeep:
    """Pool tier of the sharded CI matrix: bigger multi-pool batches,
    the worker matrix from ``REPRO_SHARD_WORKERS`` (one value per CI
    matrix leg), byte-identical merges on all three kernels."""

    WORKER_MATRIX = [
        int(w) for w in os.environ.get("REPRO_SHARD_WORKERS", "2,3,7").split(",")
    ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_kernels_deep(self, seed):
        cluster_base = run_cluster_replications(
            FLAKY, JOBS, n_replications=48, seed=seed, pool_size=4,
            pools=POOLS_4, allocator="best_fit_price",
        )
        service_base = run_service_replications(
            FLAKY, JOBS, n_replications=48, seed=seed, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="reliability",
        )
        tenancy_base = run_tenant_replications(
            FLAKY, TRAFFIC, n_replications=32, seed=seed, max_vms=4,
            run_master=False, pools=POOLS_4, allocator="tenant_affinity",
        )
        for w in self.WORKER_MATRIX:
            assert_outcomes_equal(
                cluster_base,
                run_cluster_replications(
                    FLAKY, JOBS, n_replications=48, seed=seed, pool_size=4,
                    pools=POOLS_4, allocator="best_fit_price", workers=w,
                ),
            )
            assert_outcomes_equal(
                service_base,
                run_service_replications(
                    FLAKY, JOBS, n_replications=48, seed=seed, max_vms=4,
                    run_master=False, pools=POOLS_4, allocator="reliability",
                    workers=w,
                ),
            )
            assert_outcomes_equal(
                tenancy_base,
                run_tenant_replications(
                    FLAKY, TRAFFIC, n_replications=32, seed=seed, max_vms=4,
                    run_master=False, pools=POOLS_4,
                    allocator="tenant_affinity", workers=w,
                ),
            )

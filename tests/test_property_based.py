"""Property-based tests (hypothesis) for the core invariants.

These sweep randomised parameters through the model, distributions, and
policies, asserting the structural invariants the rest of the library
relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.core.phases import phase_boundaries
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.piecewise import PhaseSegment, PiecewisePhaseDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.fitting.ecdf import EmpiricalCDF
from repro.policies.runtime import (
    expected_makespan_at_age,
    expected_makespan_single_failure,
)
from repro.policies.scheduling import ModelReusePolicy, SchedulingDecision
from repro.utils.tables import format_table

# Parameter ranges covering (and exceeding) the paper's fitted ranges.
bathtub_params = st.builds(
    BathtubParams,
    A=st.floats(0.30, 0.60),
    tau1=st.floats(0.3, 8.0),
    tau2=st.floats(0.4, 1.5),
    b=st.floats(20.0, 28.0),
)


class TestModelInvariants:
    @given(params=bathtub_params)
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone_and_bounded(self, params):
        m = ConstrainedPreemptionModel(params)
        t = np.linspace(-1.0, m.t_max + 2.0, 200)
        f = np.asarray(m.cdf(t))
        assert np.all((f >= 0.0) & (f <= 1.0))
        assert np.all(np.diff(f) >= -1e-12)

    @given(params=bathtub_params)
    @settings(max_examples=60, deadline=None)
    def test_support_edge_past_activation(self, params):
        m = ConstrainedPreemptionModel(params)
        assert m.t_max > 0.0
        assert float(m.cdf(m.t_max)) == 1.0

    @given(params=bathtub_params, a=st.floats(0.0, 20.0), width=st.floats(0.01, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_truncated_moment_nonnegative_and_additive(self, params, a, width):
        m = ConstrainedPreemptionModel(params)
        c = a + width
        mid = a + width / 2.0
        whole = m.truncated_first_moment(a, c)
        parts = m.truncated_first_moment(a, mid) + m.truncated_first_moment(mid, c)
        assert whole >= 0.0
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-12)

    @given(params=bathtub_params)
    @settings(max_examples=40, deadline=None)
    def test_expected_lifetime_within_support(self, params):
        m = ConstrainedPreemptionModel(params)
        el = m.expected_lifetime()
        assert 0.0 < el < m.t_max

    @given(params=bathtub_params)
    @settings(max_examples=40, deadline=None)
    def test_phase_boundaries_ordered(self, params):
        b = phase_boundaries(ConstrainedPreemptionModel(params))
        assert 0.0 <= b.early_end <= b.final_start <= b.t_max

    @given(params=bathtub_params, q=st.floats(0.001, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_ppf_cdf_roundtrip(self, params, q):
        m = ConstrainedPreemptionModel(params)
        t = float(m.ppf(q))
        assert float(m.cdf(t)) == pytest.approx(q, abs=5e-3)


class TestPolicyInvariants:
    @given(
        params=bathtub_params,
        T=st.floats(0.5, 12.0),
        s=st.floats(0.0, 18.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_job_length(self, params, T, s):
        m = ConstrainedPreemptionModel(params)
        from repro.distributions.bathtub import BathtubDistribution

        d = BathtubDistribution(m)
        assert expected_makespan_at_age(d, T, s) >= T
        assert expected_makespan_single_failure(d, T) >= T

    @given(params=bathtub_params, T=st.floats(0.5, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_decision_deterministic_and_valid(self, params, T):
        from repro.distributions.bathtub import BathtubDistribution

        d = BathtubDistribution(ConstrainedPreemptionModel(params))
        policy = ModelReusePolicy(d)
        for s in (0.0, 5.0, 15.0, 22.0):
            dec = policy.decide(T, s)
            assert dec in (SchedulingDecision.REUSE, SchedulingDecision.NEW_VM)
            assert policy.decide(T, s) is dec

    @given(
        params=bathtub_params,
        T=st.floats(0.5, 10.0),
        s=st.floats(0.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_failure_probability_is_probability(self, params, T, s):
        from repro.distributions.bathtub import BathtubDistribution

        d = BathtubDistribution(ConstrainedPreemptionModel(params))
        for criterion in ("paper", "conditional"):
            p = ModelReusePolicy(d, criterion=criterion).failure_probability(T, s)
            assert 0.0 <= p <= 1.0


class TestECDFInvariants:
    @given(
        samples=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_ecdf_is_valid_cdf(self, samples):
        e = EmpiricalCDF.from_samples(np.asarray(samples))
        assert np.all(np.diff(e.probabilities) > 0)
        assert e.probabilities[-1] == pytest.approx(1.0)
        t = np.linspace(-1.0, max(samples) + 1.0, 50)
        v = np.asarray(e.evaluate(t))
        assert np.all(np.diff(v) >= 0.0)
        assert v[0] == 0.0 and v[-1] == 1.0


class TestPiecewiseInvariants:
    @given(
        hazards=st.lists(st.floats(0.001, 3.0), min_size=1, max_size=5),
        seg_len=st.floats(0.5, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_cumulative_hazard_continuous_and_increasing(self, hazards, seg_len):
        segs = [
            PhaseSegment(i * seg_len, (i + 1) * seg_len, h)
            for i, h in enumerate(hazards)
        ]
        d = PiecewisePhaseDistribution(segs)
        t = np.linspace(0.0, d.t_max, 300)
        ch = np.asarray(d.cumulative_hazard(t))
        assert np.all(np.diff(ch) >= -1e-12)
        # Continuity: no jump bigger than max hazard * grid spacing.
        dt = t[1] - t[0]
        assert np.max(np.diff(ch)) <= max(hazards) * dt + 1e-9


class TestMemorylessnessProperty:
    @given(rate=st.floats(0.05, 5.0), s=st.floats(0.0, 10.0), w=st.floats(0.01, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_exponential_conditional_failure_ageless(self, rate, s, w):
        d = ExponentialDistribution(rate=rate)
        p_s = d.conditional_failure_probability(s, w)
        p_0 = d.conditional_failure_probability(0.0, w)
        # Deep in the tail (F(s) ~ 1) the generic conditional formula
        # loses a few digits to cancellation; compare accordingly.
        assert p_s == pytest.approx(p_0, abs=1e-4)

    @given(L=st.floats(1.0, 48.0), s=st.floats(0.0, 40.0), w=st.floats(0.01, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_uniform_conditional_failure_increases_with_age(self, L, s, w):
        d = UniformLifetimeDistribution(L)
        if s + w >= L:
            return  # window leaves the support: trivially 1 at some point
        p_young = d.conditional_failure_probability(0.0, w)
        p_old = d.conditional_failure_probability(s, w)
        assert p_old >= p_young - 1e-12


class TestTableRendering:
    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("L", "N", "P", "Zs")
                    ),
                    max_size=8,
                ),
                st.floats(-1e6, 1e6),
                st.integers(-100, 100),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_all_rows_rendered_aligned(self, rows):
        out = format_table(["a", "b", "c"], rows)
        lines = out.splitlines()
        assert len(lines) == 2 + len(rows)
        assert len({len(line) for line in lines}) == 1  # aligned widths

"""End-to-end integration tests across the full stack.

These trace the paper's own workflow: collect preemption data, fit the
model, hand the fitted model to the policies, and run the batch service
with those policies against the (different-seed) simulated cloud.
"""

import numpy as np
import pytest

from repro.core.model import BathtubParams
from repro.distributions.bathtub import BathtubDistribution
from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import fit_bathtub
from repro.fitting.selection import compare_models
from repro.policies.checkpointing import CheckpointPolicy, simulate_schedule
from repro.policies.scheduling import ModelReusePolicy
from repro.service.api import BagRequest, JobRequest
from repro.service.controller import BatchComputingService, ServiceConfig
from repro.sim.cloud import CloudProvider
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog
from repro.traces.generator import TraceGenerator
from repro.workloads.base import run_workload
from repro.workloads.synthetic import SyntheticJob


class TestCollectFitDeploy:
    """The paper's bootstrapped methodology, end to end."""

    @pytest.fixture(scope="class")
    def fitted_model(self):
        trace = TraceGenerator(seed=101).launch_batch(
            300, "n1-highcpu-16", "us-central1-c", launch_hour=12.0
        )
        ecdf = EmpiricalCDF.from_samples(trace.lifetimes())
        fit = fit_bathtub(ecdf)
        return BathtubDistribution(BathtubParams.from_mapping(fit.params))

    def test_fitted_model_drives_service(self, fitted_model):
        """Service run with the *fitted* (not ground-truth) model must
        still complete cheaply — the Fig. 7 robustness claim, live."""
        sim = Simulator()
        cloud = CloudProvider(sim, default_catalog(), RandomStreams(202))
        svc = BatchComputingService(
            sim,
            cloud,
            fitted_model,
            ServiceConfig(vm_type="n1-highcpu-16", max_vms=6),
        )
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.3)] * 20))
        svc.run_until_bag_done(bid)
        svc.shutdown()
        rep = svc.report(bid)
        assert rep.metrics.n_jobs_completed == 20
        assert rep.cost_reduction_factor > 2.5

    def test_fitted_policy_decisions_match_truth_policy(self, fitted_model):
        truth = default_catalog().distribution("n1-highcpu-16", "us-central1-c")
        p_fit = ModelReusePolicy(fitted_model)
        p_true = ModelReusePolicy(truth)
        agree = sum(
            p_fit.decide(6.0, s) is p_true.decide(6.0, s)
            for s in np.linspace(0.1, 23.0, 47)
        )
        assert agree / 47 > 0.9

    def test_model_selection_prefers_bathtub_on_fitted_trace(self):
        trace = TraceGenerator(seed=103).launch_batch(250, "n1-highcpu-8")
        lifetimes = trace.lifetimes()
        cmp_ = compare_models(EmpiricalCDF.from_samples(lifetimes), lifetimes)
        assert cmp_.best == "bathtub"


class TestCheckpointedWorkloadUnderPreemptions:
    def test_schedule_applied_to_real_workload(self, reference_dist):
        """The DP schedule's checkpoint positions, mapped onto a real
        stepwise workload with injected failures, must still produce a
        bit-exact final state."""
        policy = CheckpointPolicy(reference_dist, step=0.25, delta=1.0 / 60.0)
        plan = policy.plan(2.0, 0.0)
        steps_total = 80  # 2 h at 40 steps/h
        ckpt_steps = {int(t * 40) for t in plan.checkpoint_times}
        # Convert the plan into a checkpoint_every-style driver run with
        # failures injected mid-segment.
        w_ref, _ = run_workload(SyntheticJob(size=32, steps=steps_total, seed=9))
        w = SyntheticJob(size=32, steps=steps_total, seed=9)
        from repro.workloads.base import WorkloadCheckpoint

        checkpoint = WorkloadCheckpoint(0, w.get_state())
        injected = {30, 55}
        executed = 0
        while w.steps_done < steps_total:
            if w.steps_done in injected:
                injected.discard(w.steps_done)
                w.set_state(checkpoint.state)
                continue
            w.step()
            executed += 1
            if w.steps_done in ckpt_steps:
                checkpoint = WorkloadCheckpoint(w.steps_done, w.get_state())
        assert w.result() == w_ref

    def test_mc_simulation_of_plan_consistent_with_makespan(self, reference_dist):
        policy = CheckpointPolicy(reference_dist, step=0.25, delta=1.0 / 60.0)
        plan = policy.plan(3.0, 0.0)
        mc = simulate_schedule(
            reference_dist,
            plan.segments,
            delta=1.0 / 60.0,
            n_runs=2000,
            rng=np.random.default_rng(10),
        )
        assert plan.expected_makespan == pytest.approx(mc.mean(), rel=0.07)


class TestServicePolicyAblation:
    """Model-driven reuse must beat the memoryless baseline in the
    service itself, not just in the analytic figures."""

    def _run(self, use_policy: bool, seed: int) -> tuple[float, int]:
        sim = Simulator()
        cloud = CloudProvider(sim, default_catalog(), RandomStreams(seed))
        model = default_catalog().distribution("n1-highcpu-32", "us-central1-c")
        svc = BatchComputingService(
            sim,
            cloud,
            model,
            ServiceConfig(
                vm_type="n1-highcpu-32", max_vms=6, use_reuse_policy=use_policy
            ),
        )
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.25)] * 40))
        svc.run_until_bag_done(bid)
        svc.shutdown()
        rep = svc.report(bid)
        return rep.metrics.total_cost, rep.metrics.n_job_failures

    def test_policy_reduces_failures_on_average(self):
        seeds = (1, 2, 3, 4, 5)
        with_policy = [self._run(True, s) for s in seeds]
        without = [self._run(False, s) for s in seeds]
        fail_with = sum(f for _, f in with_policy)
        fail_without = sum(f for _, f in without)
        # Aggressive highcpu-32 + deadline-blind baseline: the policy may
        # not always win per-seed, but must not lose on aggregate.
        assert fail_with <= fail_without * 1.2

"""Tests for the scientific workloads (physics sanity + checkpoint/restart)."""

import numpy as np
import pytest

from repro.workloads.base import run_workload
from repro.workloads.lulesh import LagrangianShock1D
from repro.workloads.nanoconfinement import NanoconfinementMD
from repro.workloads.shapes import ShapeRelaxation
from repro.workloads.synthetic import SyntheticJob

ALL_WORKLOADS = {
    "nano": lambda: NanoconfinementMD(n_ions=16, steps=30, seed=1),
    "shapes": lambda: ShapeRelaxation(n_vertices=24, steps=40, seed=1),
    "lulesh": lambda: LagrangianShock1D(n_zones=60, steps=60),
    "synthetic": lambda: SyntheticJob(size=16, steps=25, seed=1),
}


@pytest.fixture(params=sorted(ALL_WORKLOADS), ids=sorted(ALL_WORKLOADS))
def workload(request):
    return ALL_WORKLOADS[request.param]()


class TestProtocolConformance:
    def test_steps_advance(self, workload):
        assert workload.steps_done == 0
        workload.step()
        assert workload.steps_done == 1

    def test_overrun_rejected(self, workload):
        for _ in range(workload.total_steps):
            workload.step()
        with pytest.raises(RuntimeError):
            workload.step()

    def test_checkpoint_restart_bit_exact(self, workload):
        """set_state must restore the computation exactly: running
        5+5 steps with a rollback in between equals 10 straight steps."""
        for _ in range(5):
            workload.step()
        snap = workload.get_state()
        ref = {k: (v.copy() if hasattr(v, "copy") else v) for k, v in snap.items()}
        for _ in range(3):
            workload.step()
        workload.set_state(snap)
        assert workload.steps_done == 5
        for _ in range(5):
            workload.step()
        result_a = workload.result()
        # Straight-line run of the same type/seed for 10 steps.
        fresh = type(workload)(**_ctor_kwargs(workload))
        for _ in range(10):
            fresh.step()
        result_b = fresh.result()
        for k in result_a:
            assert result_a[k] == pytest.approx(result_b[k], rel=1e-12), k
        # And the snapshot itself must be unmodified (deep copy).
        for k, v in ref.items():
            if hasattr(v, "copy"):
                np.testing.assert_array_equal(snap[k], v)

    def test_state_is_deep_copy(self, workload):
        snap = workload.get_state()
        workload.step()
        snap2 = workload.get_state()
        changed = any(
            hasattr(v, "shape") and not np.array_equal(v, snap2[k])
            for k, v in snap.items()
        )
        assert changed, "stepping must not mutate earlier snapshots"


def _ctor_kwargs(w):
    if isinstance(w, NanoconfinementMD):
        return dict(n_ions=16, steps=30, seed=1)
    if isinstance(w, ShapeRelaxation):
        return dict(n_vertices=24, steps=40, seed=1)
    if isinstance(w, LagrangianShock1D):
        return dict(n_zones=60, steps=60)
    return dict(size=16, steps=25, seed=1)


class TestRunWorkloadDriver:
    def test_failure_injection_recomputes(self):
        w = SyntheticJob(size=8, steps=20, seed=2)
        _, executed = run_workload(w, checkpoint_every=5, fail_at_steps={7, 13})
        assert executed > 20  # recomputation happened

    def test_failures_do_not_change_result(self):
        a, _ = run_workload(SyntheticJob(size=8, steps=20, seed=3))
        b, _ = run_workload(
            SyntheticJob(size=8, steps=20, seed=3),
            checkpoint_every=4,
            fail_at_steps={5, 6, 17},
        )
        assert a == b

    def test_failure_without_checkpoint_restarts_from_zero(self):
        w = SyntheticJob(size=8, steps=10, seed=4)
        _, executed = run_workload(w, checkpoint_every=None, fail_at_steps={8})
        assert executed == 18  # 8 lost + 10 clean


class TestNanoconfinementPhysics:
    @pytest.fixture(scope="class")
    def md(self):
        md = NanoconfinementMD(n_ions=32, steps=60, seed=5)
        for _ in range(60):
            md.step()
        return md

    def test_ions_stay_confined(self, md):
        z = md.positions[:, 2]
        assert np.all(z >= 0.0) and np.all(z <= md.box[2])

    def test_thermostat_holds_temperature(self, md):
        assert md.result()["temperature"] == pytest.approx(1.0, rel=0.5)

    def test_density_profile_normalised(self, md):
        assert md.density_profile().sum() == pytest.approx(1.0)

    def test_charge_neutrality(self, md):
        assert md.charges.sum() == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NanoconfinementMD(n_ions=3)


class TestShapesPhysics:
    def test_relaxation_reduces_energy(self):
        s = ShapeRelaxation(n_vertices=32, steps=150, seed=6, charge=2.0)
        e0 = s.energy()
        for _ in range(150):
            s.step()
        assert s.energy() < e0

    def test_high_charge_deforms_shape(self):
        """Charge dominance must push the circle anisotropic — the
        shape-transition physics of the original application."""
        weak = ShapeRelaxation(n_vertices=32, steps=200, seed=7, charge=0.5)
        strong = ShapeRelaxation(n_vertices=32, steps=200, seed=7, charge=12.0)
        for _ in range(200):
            weak.step()
            strong.step()
        assert strong.asphericity() >= weak.asphericity()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShapeRelaxation(n_vertices=4)


class TestLuleshPhysics:
    @pytest.fixture(scope="class")
    def hydro(self):
        h = LagrangianShock1D(n_zones=100, steps=300)
        for _ in range(300):
            h.step()
        return h

    def test_mass_conserved_exactly(self, hydro):
        assert hydro.total_mass() == pytest.approx(0.5625, rel=1e-12)

    def test_energy_roughly_conserved(self, hydro):
        fresh = LagrangianShock1D(n_zones=100, steps=300)
        assert hydro.total_energy() == pytest.approx(fresh.total_energy(), rel=0.05)

    def test_shock_moves_right(self, hydro):
        assert hydro.shock_position() > 0.52

    def test_density_bounded_by_sod_limits(self, hydro):
        assert np.all(hydro.rho > 0.05)
        assert float(np.max(hydro.rho)) < 1.5

    def test_mesh_stays_ordered(self, hydro):
        assert np.all(np.diff(hydro.x) > 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LagrangianShock1D(n_zones=5)

"""Sharding-determinism tier: ``workers=`` is invisible in the results.

Every ``run_*_replications`` entry point accepts ``workers=``, which
shards the replication batch across processes under *CRN shard
pairing*: each worker replays the serial root generator, draws
full-width round rows, and consumes only its own column slice
(``repro.sim.backend._ShardRNG``).  Column ``i`` of round ``r`` is the
same number under every shard layout, so the merged outcomes must be
**byte-identical** to ``workers=1`` — not close, equal.  This tier pins
that with exact array equality on all four kernels (plan, cluster,
service, tenancy), across worker counts that divide the batch raggedly,
across both backends, composed with ``chunk_size=`` streaming, and
under a hypothesis fuzzer over random ``(n, workers, chunk_size)``
triples.

It also pins the chunk RNG hand-off contract: chunk 0 consumes the
root generator and chunk ``k > 0`` consumes child ``k - 1`` of
``root.spawn(n_chunks - 1)``, so any chunk is reproducible in
isolation — the invariant that makes chunks shardable at all.

The deep grid (reference bathtub law, bigger batches, the full worker
matrix) carries the ``slow`` marker for the scheduled CI job, which
re-runs it once per ``REPRO_SHARD_WORKERS`` matrix leg.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions.exponential import ExponentialDistribution
from repro.sim.backend import (
    run_cluster_replications,
    run_replications,
    run_service_replications,
    run_tenant_replications,
)

pytestmark = pytest.mark.sharded

SEEDS = [0, 1, 2, 3, 4]
WORKERS = [1, 2, 3, 7]

DIST = ExponentialDistribution(3.0)
SEGMENTS = [0.8, 0.5, 0.7]
JOBS = [(0.6, 1), (0.4, 2), (0.5, 1)]
TRAFFIC = [
    (0, 0.0, [(0.6, 1), (0.4, 2)]),
    (1, 0.3, [(0.5, 1)]),
    (2, 0.9, [(0.8, 2)]),
]


def assert_outcomes_equal(base, sharded):
    """Exact equality of every per-replication array and round scalar."""
    for name, value in vars(base).items():
        other = getattr(sharded, name)
        if isinstance(value, np.ndarray):
            with np.errstate(invalid="ignore"):
                np.testing.assert_array_equal(value, other, err_msg=name)
        else:
            assert value == other, name


class TestShardedByteIdentity:
    """Four kernels x workers in {1, 2, 3, 7} x seeds 0-4, exact."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_plan(self, seed):
        base = run_replications(
            DIST, SEGMENTS, n_replications=19, seed=seed, restart_latency=0.05
        )
        for w in WORKERS:
            sharded = run_replications(
                DIST, SEGMENTS, n_replications=19, seed=seed,
                restart_latency=0.05, workers=w,
            )
            assert_outcomes_equal(base, sharded)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster(self, seed):
        base = run_cluster_replications(
            DIST, JOBS, n_replications=13, seed=seed, pool_size=3
        )
        for w in WORKERS:
            sharded = run_cluster_replications(
                DIST, JOBS, n_replications=13, seed=seed, pool_size=3, workers=w
            )
            assert_outcomes_equal(base, sharded)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_service(self, seed):
        base = run_service_replications(
            DIST, JOBS, n_replications=11, seed=seed, max_vms=4
        )
        for w in WORKERS:
            sharded = run_service_replications(
                DIST, JOBS, n_replications=11, seed=seed, max_vms=4, workers=w
            )
            assert_outcomes_equal(base, sharded)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tenancy(self, seed):
        base = run_tenant_replications(
            DIST, TRAFFIC, n_replications=9, seed=seed, max_vms=4
        )
        for w in WORKERS:
            sharded = run_tenant_replications(
                DIST, TRAFFIC, n_replications=9, seed=seed, max_vms=4, workers=w
            )
            assert_outcomes_equal(base, sharded)

    def test_event_backend_shards_identically(self):
        """CRN pairing is backend-agnostic: the event oracle shards too."""
        base = run_replications(
            DIST, SEGMENTS, n_replications=8, seed=0, backend="event"
        )
        sharded = run_replications(
            DIST, SEGMENTS, n_replications=8, seed=0, backend="event", workers=3
        )
        assert_outcomes_equal(base, sharded)
        base = run_cluster_replications(
            DIST, JOBS, n_replications=5, seed=0, pool_size=3, backend="event"
        )
        sharded = run_cluster_replications(
            DIST, JOBS, n_replications=5, seed=0, pool_size=3,
            backend="event", workers=2,
        )
        assert_outcomes_equal(base, sharded)
        base = run_tenant_replications(
            DIST, TRAFFIC, n_replications=4, seed=0, max_vms=4, backend="event"
        )
        sharded = run_tenant_replications(
            DIST, TRAFFIC, n_replications=4, seed=0, max_vms=4,
            backend="event", workers=2,
        )
        assert_outcomes_equal(base, sharded)

    @pytest.mark.compiled
    def test_compiled_backend_shards_identically(self):
        """The compiled plan kernel consumes the same sharded stream."""
        pytest.importorskip("repro.sim.compiled")
        from repro.sim.compiled import available_providers

        if not available_providers():
            pytest.skip("no compiled provider on this machine")
        base = run_replications(
            DIST, SEGMENTS, n_replications=19, seed=1,
            backend="vectorized-compiled",
        )
        sharded = run_replications(
            DIST, SEGMENTS, n_replications=19, seed=1,
            backend="vectorized-compiled", workers=3,
        )
        assert_outcomes_equal(base, sharded)

    def test_generator_seed_shards_identically(self):
        """A caller Generator seed is copied per worker, results equal."""
        base = run_replications(
            DIST, SEGMENTS, n_replications=9,
            seed=np.random.default_rng(7),
        )
        sharded = run_replications(
            DIST, SEGMENTS, n_replications=9,
            seed=np.random.default_rng(7), workers=2,
        )
        assert_outcomes_equal(base, sharded)

    def test_per_replication_start_age_shards_identically(self):
        """The per-shard slice of a start-age vector lines up."""
        ages = np.linspace(0.0, 2.0, 10)
        base = run_replications(
            DIST, SEGMENTS, n_replications=10, seed=3, start_age=ages
        )
        sharded = run_replications(
            DIST, SEGMENTS, n_replications=10, seed=3, start_age=ages, workers=3
        )
        assert_outcomes_equal(base, sharded)

    def test_more_workers_than_replications(self):
        """Shard count collapses to the batch size; no empty shards."""
        base = run_cluster_replications(
            DIST, JOBS, n_replications=3, seed=0, pool_size=3
        )
        sharded = run_cluster_replications(
            DIST, JOBS, n_replications=3, seed=0, pool_size=3, workers=7
        )
        assert_outcomes_equal(base, sharded)


class TestWorkersChunkCrossProduct:
    """``workers`` x ``chunk_size`` on tenancy: shards pair per chunk."""

    @pytest.mark.parametrize("chunk_size", [None, 2, 4, 9])
    def test_cross_product(self, chunk_size):
        base = run_tenant_replications(
            DIST, TRAFFIC, n_replications=9, seed=2, max_vms=4,
            chunk_size=chunk_size,
        )
        for w in (2, 3):
            sharded = run_tenant_replications(
                DIST, TRAFFIC, n_replications=9, seed=2, max_vms=4,
                chunk_size=chunk_size, workers=w,
            )
            assert_outcomes_equal(base, sharded)


class TestChunkRNGHandoff:
    """The fixed chunk seeding contract (regression for the hand-off).

    Chunks used to consume one shared generator sequentially, so chunk
    ``k``'s draws depended on how many rounds chunks ``0..k-1`` happened
    to run — no chunk could be recomputed alone, and shards could not
    pair to it.  The contract now: chunk 0 gets the root generator,
    chunk ``k > 0`` gets child ``k - 1`` of ``root.spawn(n_chunks - 1)``.
    """

    def test_covering_chunk_identical_to_unchunked(self):
        base = run_tenant_replications(
            DIST, TRAFFIC, n_replications=5, seed=0, max_vms=4
        )
        covered = run_tenant_replications(
            DIST, TRAFFIC, n_replications=5, seed=0, max_vms=4, chunk_size=5
        )
        assert_outcomes_equal(base, covered)

    def test_first_chunk_identical_to_prefix_run(self):
        """Chunk 0 is the root generator: it equals a bare run of its size."""
        chunked = run_tenant_replications(
            DIST, TRAFFIC, n_replications=7, seed=5, max_vms=4, chunk_size=3
        )
        prefix = run_tenant_replications(
            DIST, TRAFFIC, n_replications=3, seed=5, max_vms=4
        )
        np.testing.assert_array_equal(chunked.makespan[:3], prefix.makespan)
        np.testing.assert_array_equal(chunked.vm_hours[:3], prefix.vm_hours)

    def test_chunk_reproducible_in_isolation(self):
        """Any chunk k > 0 can be recomputed from the spawned child alone."""
        chunked = run_tenant_replications(
            DIST, TRAFFIC, n_replications=7, seed=9, max_vms=4, chunk_size=3
        )
        children = np.random.default_rng(9).spawn(2)
        middle = run_tenant_replications(
            DIST, TRAFFIC, n_replications=3, seed=children[0], max_vms=4
        )
        last = run_tenant_replications(
            DIST, TRAFFIC, n_replications=1, seed=children[1], max_vms=4
        )
        np.testing.assert_array_equal(chunked.makespan[3:6], middle.makespan)
        np.testing.assert_array_equal(chunked.makespan[6:], last.makespan)

    def test_chunked_cross_backend_equivalent(self):
        """Both backends build the same chunk generators from a seed."""
        vec = run_tenant_replications(
            DIST, TRAFFIC, n_replications=5, seed=1, max_vms=4, chunk_size=2
        )
        event = run_tenant_replications(
            DIST, TRAFFIC, n_replications=5, seed=1, max_vms=4, chunk_size=2,
            backend="event",
        )
        np.testing.assert_allclose(vec.makespan, event.makespan, atol=1e-9)
        np.testing.assert_array_equal(vec.n_events, event.n_events)
        np.testing.assert_array_equal(vec.admitted, event.admitted)


class TestShardChunkFuzz:
    """Hypothesis: random (n, workers, chunk_size) triples, exact merges.

    Ranges deliberately produce ragged final shards and chunks (worker
    and chunk counts that do not divide the batch), and the per-shard
    draw accounting must concatenate back to the serial ``n_draws``
    (hence equal sums).
    """

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=17),
        workers=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_cluster_fuzz(self, n, workers, seed):
        base = run_cluster_replications(
            DIST, JOBS, n_replications=n, seed=seed, pool_size=3
        )
        sharded = run_cluster_replications(
            DIST, JOBS, n_replications=n, seed=seed, pool_size=3,
            workers=workers,
        )
        assert_outcomes_equal(base, sharded)
        assert sharded.n_draws.sum() == base.n_draws.sum()
        assert sharded.n_draws.shape == (n,)

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=11),
        workers=st.integers(min_value=2, max_value=4),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_tenancy_fuzz(self, n, workers, chunk_size, seed):
        base = run_tenant_replications(
            DIST, TRAFFIC, n_replications=n, seed=seed, max_vms=4,
            chunk_size=chunk_size,
        )
        sharded = run_tenant_replications(
            DIST, TRAFFIC, n_replications=n, seed=seed, max_vms=4,
            chunk_size=chunk_size, workers=workers,
        )
        assert_outcomes_equal(base, sharded)
        assert sharded.n_draws.sum() == base.n_draws.sum()


@pytest.mark.slow
class TestShardedDeep:
    """Deep grid for the scheduled CI job: reference bathtub law, bigger
    batches, the worker matrix from ``REPRO_SHARD_WORKERS`` (one value
    per CI matrix leg)."""

    WORKER_MATRIX = [
        int(w) for w in os.environ.get("REPRO_SHARD_WORKERS", "2,3,7").split(",")
    ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_kernels_deep(self, reference_dist, seed):
        plan_base = run_replications(
            reference_dist, SEGMENTS, n_replications=64, seed=seed,
            restart_latency=0.1,
        )
        cluster_base = run_cluster_replications(
            reference_dist, JOBS, n_replications=48, seed=seed, pool_size=3
        )
        service_base = run_service_replications(
            reference_dist, JOBS, n_replications=48, seed=seed, max_vms=4
        )
        tenancy_base = run_tenant_replications(
            reference_dist, TRAFFIC, n_replications=32, seed=seed, max_vms=4,
            chunk_size=10,
        )
        for w in self.WORKER_MATRIX:
            assert_outcomes_equal(
                plan_base,
                run_replications(
                    reference_dist, SEGMENTS, n_replications=64, seed=seed,
                    restart_latency=0.1, workers=w,
                ),
            )
            assert_outcomes_equal(
                cluster_base,
                run_cluster_replications(
                    reference_dist, JOBS, n_replications=48, seed=seed,
                    pool_size=3, workers=w,
                ),
            )
            assert_outcomes_equal(
                service_base,
                run_service_replications(
                    reference_dist, JOBS, n_replications=48, seed=seed,
                    max_vms=4, workers=w,
                ),
            )
            assert_outcomes_equal(
                tenancy_base,
                run_tenant_replications(
                    reference_dist, TRAFFIC, n_replications=32, seed=seed,
                    max_vms=4, chunk_size=10, workers=w,
                ),
            )

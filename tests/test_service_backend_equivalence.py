"""Cross-backend service equivalence: real BatchComputingService vs kernel.

Both backends of :func:`repro.sim.backend.run_service_replications`
share the service round protocol (draw order, event-sequence
tie-breaking, the controller's provisioning/stall/retention rules —
see ``repro/sim/service_vectorized.py``), so for identical seeds and
configurations the per-replication outcomes must agree to
float-associativity noise.  We pin 1e-9 hours, several orders of
magnitude above the observed drift, and demand *exact* agreement of
event, draw, preemption, failure, and completion counts.

Two layers:

* a deterministic grid over seeds 0-4 x bags x fleets x (latency,
  backfill, reuse, hot-spare, checkpoint) — the issue's acceptance
  grid;
* a hypothesis-driven differential fuzzer generating random (bag,
  fleet, ServiceConfig, latency, backfill) scenarios — a small budget
  in tier-1, a deep ``slow``-marked budget for the scheduled
  ``slow-equivalence`` CI job.

Every lifetime law is fair game in the latency grids: the boot-grace
fallback (a VM no older than its pool's boot latency is always
accepted) lets laws whose conditional Eq. 8 criterion rejects every
aged VM (uniform, exponential — no infant-mortality window) gather
gangs instead of churning terminate/provision cycles, and both
backends implement the fallback identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.sim.backend import run_service_replications
from repro.sim.cluster_vectorized import GangJob
from repro.sim.service_vectorized import ServiceBatchConfig

SEEDS = [0, 1, 2, 3, 4]

BAGS = {
    "narrow": [(2.0, 1), (1.5, 1), (0.5, 1), (2.5, 1), (1.0, 1)],
    "mixed": [(2.0, 1), (1.5, 2), (0.5, 3), (2.5, 1), (1.0, 2), (0.25, 1)],
    "wide": [(1.0, 4), (2.0, 3), (1.5, 4), (0.5, 2)],
    "tie": [(0.75, 2)] * 8,
}

#: Configurations safe for any law (latency only with the policy off).
CONFIGS = {
    "base": dict(max_vms=4),
    "backfill": dict(max_vms=4, backfill=True),
    "short-spare": dict(max_vms=4, hot_spare_hours=0.3),
    "ckpt": dict(max_vms=4, checkpoint_interval=0.4),
    "memoryless-lat": dict(max_vms=4, use_reuse_policy=False, provision_latency=0.25),
    "no-master": dict(max_vms=4, run_master=False),
    "window2": dict(max_vms=4, estimate_window=2),
}

#: Latency-with-reuse configurations (any law — the boot-grace fallback
#: keeps reuse-rejecting laws from churning; see module doc).
LATENCY_CONFIGS = {
    "lat": dict(max_vms=4, provision_latency=0.25),
    "lat-small": dict(max_vms=4, provision_latency=0.05),
    "lat-bf-ckpt": dict(
        max_vms=5,
        provision_latency=0.1,
        backfill=True,
        hot_spare_hours=0.5,
        checkpoint_interval=0.4,
    ),
}


def run_both(dist, jobs, seed, *, n=4, max_events=100_000, **kwargs):
    event = run_service_replications(
        dist,
        jobs,
        n_replications=n,
        seed=seed,
        backend="event",
        max_events=max_events,
        **kwargs,
    )
    vec = run_service_replications(
        dist,
        jobs,
        n_replications=n,
        seed=seed,
        backend="vectorized",
        max_events=max_events,
        **kwargs,
    )
    return event, vec


def assert_equivalent(event, vec):
    np.testing.assert_allclose(vec.makespan, event.makespan, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.wasted_hours, event.wasted_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(vec.vm_hours, event.vm_hours, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.master_hours, event.master_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec.completed_jobs, event.completed_jobs)
    np.testing.assert_array_equal(vec.n_job_failures, event.n_job_failures)
    np.testing.assert_array_equal(vec.n_preemptions, event.n_preemptions)
    np.testing.assert_array_equal(vec.n_events, event.n_events)
    np.testing.assert_array_equal(vec.n_draws, event.n_draws)
    assert vec.n_rounds == event.n_rounds


class TestEquivalenceGrid:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    def test_uniform_support(self, seed, config):
        """Short uniform support: frequent deaths exercise every path."""
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(*run_both(dist, BAGS["mixed"], seed, **config))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bag", BAGS.values(), ids=BAGS.keys())
    def test_bag_shapes_bathtub(self, reference_dist, seed, bag):
        assert_equivalent(
            *run_both(reference_dist, bag, seed, max_vms=4, checkpoint_interval=0.5)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "config", LATENCY_CONFIGS.values(), ids=LATENCY_CONFIGS.keys()
    )
    def test_provisioning_latency_bathtub(self, reference_dist, seed, config):
        """Boot latency under the paper's law (reuse policy on)."""
        assert_equivalent(*run_both(reference_dist, BAGS["mixed"], seed, **config))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "config", LATENCY_CONFIGS.values(), ids=LATENCY_CONFIGS.keys()
    )
    def test_provisioning_latency_uniform(self, seed, config):
        """Boot latency under a reuse-rejecting law: the boot-grace
        fallback (not churn) is what both backends must agree on."""
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(*run_both(dist, BAGS["mixed"], seed, **config))

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize(
        "config",
        [CONFIGS["backfill"], CONFIGS["memoryless-lat"], CONFIGS["short-spare"]],
        ids=["backfill", "memoryless-lat", "short-spare"],
    )
    def test_exponential(self, seed, config):
        dist = ExponentialDistribution(rate=0.7)
        assert_equivalent(*run_both(dist, BAGS["wide"], seed, **config))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_heterogeneous_estimation_feedback(self, reference_dist, seed):
        """A spread of job lengths drives the bag estimate through the
        full trailing window, so Eq. 8 decisions flip as completions
        land — the estimation feedback loop must match bit for bit."""
        bag = [(2.5, 1), (0.25, 1), (1.75, 2), (0.3, 1), (2.0, 2), (0.5, 1), (1.0, 1)]
        assert_equivalent(
            *run_both(reference_dist, bag, seed, max_vms=3, estimate_window=3)
        )

    def test_identical_jobs_tie_storm(self, reference_dist):
        """Identical jobs complete in simultaneous waves — the
        adversarial case for event ordering, now with reap timers and
        boot events in the same instant mix."""
        assert_equivalent(
            *run_both(reference_dist, BAGS["tie"], 0, max_vms=6, hot_spare_hours=0.5)
        )


class TestDifferentialFuzz:
    """Randomised (bag, fleet, config, latency, backfill) scenarios."""

    LAWS = {
        "uniform": lambda: UniformLifetimeDistribution(6.0),
        "exponential": lambda: ExponentialDistribution(rate=0.7),
        "bathtub": None,  # filled from the reference fixture
    }

    scenario = st.fixed_dictionaries(
        {
            "law": st.sampled_from(["uniform", "exponential", "bathtub"]),
            "hours": st.lists(
                st.sampled_from([0.2, 0.25, 0.4, 0.5, 0.75, 1.0, 1.6, 2.5]),
                min_size=1,
                max_size=6,
            ),
            "widths": st.lists(st.integers(1, 3), min_size=6, max_size=6),
            "max_vms": st.integers(3, 5),
            "reuse": st.booleans(),
            "latency": st.sampled_from([0.0, 0.05, 0.2, 0.4]),
            "backfill": st.booleans(),
            "hot_spare_hours": st.sampled_from([0.3, 1.0, 2.0]),
            "checkpoint_interval": st.sampled_from([None, 0.3, 0.6]),
            "run_master": st.booleans(),
            "estimate_window": st.sampled_from([2, 16]),
            "seed": st.integers(0, 2**16),
        }
    )

    def _check(self, reference_dist, s, *, n):
        jobs = [
            GangJob(h, w) for h, w in zip(s["hours"], s["widths"][: len(s["hours"])])
        ]
        latency = s["latency"]
        dist = (
            reference_dist
            if s["law"] == "bathtub"
            else self.LAWS[s["law"]]()
        )
        config = ServiceBatchConfig(
            max_vms=s["max_vms"],
            use_reuse_policy=s["reuse"],
            hot_spare_hours=s["hot_spare_hours"],
            provision_latency=latency,
            run_master=s["run_master"],
            backfill=s["backfill"],
            checkpoint_interval=s["checkpoint_interval"],
            estimate_window=s["estimate_window"],
            # A wide uncheckpointed gang under a short-lived law can
            # legitimately need thousands of attempts (geometric tail);
            # leave max_events as the unfinishable backstop instead of
            # tripping the controller's per-job valve on unlucky seeds.
            max_attempts_per_job=100_000,
        )
        assert_equivalent(
            *run_both(dist, jobs, s["seed"], n=n, config=config)
        )

    @given(s=scenario)
    @settings(max_examples=12, deadline=None)
    def test_fuzz_small(self, reference_dist, s):
        """Tier-1 budget: a taste of the scenario space per run."""
        self._check(reference_dist, s, n=3)

    @pytest.mark.slow
    @given(s=scenario)
    @settings(max_examples=120, deadline=None)
    def test_fuzz_deep(self, reference_dist, s):
        """Scheduled slow-equivalence budget: wide and replicated."""
        self._check(reference_dist, s, n=8)


class TestApiEdges:
    def test_gangjob_and_tuple_inputs_agree(self, reference_dist):
        a = run_service_replications(
            reference_dist, [(1.0, 2), (2.0, 1)], n_replications=4, seed=0
        )
        b = run_service_replications(
            reference_dist,
            [GangJob(1.0, 2), GangJob(2.0, 1)],
            n_replications=4,
            seed=0,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_config_object_and_kwargs_agree(self, reference_dist):
        cfg = ServiceBatchConfig(max_vms=3, backfill=True)
        a = run_service_replications(
            reference_dist, [(1.0, 1)] * 3, config=cfg, n_replications=4, seed=1
        )
        b = run_service_replications(
            reference_dist,
            [(1.0, 1)] * 3,
            max_vms=3,
            backfill=True,
            n_replications=4,
            seed=1,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_service_config_accepted_and_converted(self, reference_dist):
        """A service-layer ServiceConfig maps onto the kernel's knobs."""
        from repro.service import ServiceConfig

        svc_cfg = ServiceConfig(max_vms=3, hot_spare_hours=0.5, backfill=True)
        a = run_service_replications(
            reference_dist, [(1.0, 1)] * 3, config=svc_cfg, n_replications=4, seed=2
        )
        b = run_service_replications(
            reference_dist,
            [(1.0, 1)] * 3,
            max_vms=3,
            hot_spare_hours=0.5,
            backfill=True,
            n_replications=4,
            seed=2,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_dp_checkpointing_maps_to_dp_kernel(self, reference_dist):
        # use_checkpointing with no fixed interval used to be event-only;
        # it now maps onto the batched DP plan walker.
        from repro.service import ServiceConfig

        cfg = ServiceBatchConfig.from_service_config(
            ServiceConfig(use_checkpointing=True)
        )
        assert cfg.checkpoint == "dp"
        assert cfg.checkpoint_interval is None
        out = run_service_replications(
            reference_dist,
            [(1.0, 1)],
            config=ServiceConfig(use_checkpointing=True),
            n_replications=4,
            seed=0,
        )
        assert out.n_replications == 4

    def test_config_and_kwargs_conflict(self, reference_dist):
        with pytest.raises(ValueError, match="not both"):
            run_service_replications(
                reference_dist,
                [(1.0, 1)],
                config=ServiceBatchConfig(),
                max_vms=2,
            )

    def test_zero_replications(self, reference_dist):
        for backend in ("event", "vectorized"):
            out = run_service_replications(
                reference_dist, [(1.0, 1)], n_replications=0, backend=backend
            )
            assert out.n_replications == 0
            assert out.n_rounds == 0

    def test_width_exceeding_fleet_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="exceeds max_vms"):
            run_service_replications(reference_dist, [(1.0, 9)], max_vms=4)

    def test_empty_bag_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="non-empty"):
            run_service_replications(reference_dist, [])

    def test_invalid_backend_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="backend"):
            run_service_replications(reference_dist, [(1.0, 1)], backend="gpu")

    def test_unfinishable_bag_raises_on_both(self):
        """A job longer than the support can never finish uncheckpointed."""
        dist = UniformLifetimeDistribution(6.0)
        for backend in ("event", "vectorized"):
            with pytest.raises(RuntimeError, match="events"):
                run_service_replications(
                    dist,
                    [(30.0, 1)],
                    max_vms=2,
                    n_replications=2,
                    backend=backend,
                    max_events=300,
                )

    def test_outcome_properties(self, reference_dist):
        out = run_service_replications(
            reference_dist, [(1.0, 1)] * 4, max_vms=2, n_replications=8, seed=0
        )
        assert out.n_replications == 8
        assert (out.completed_jobs == 4).all()
        assert out.mean_makespan > 0.0
        assert out.mean_vm_hours > 0.0
        assert out.total_work_hours == pytest.approx(4.0)
        assert 0.0 <= out.failure_fraction <= 1.0
        np.testing.assert_allclose(
            out.total_cost(2.0, 1.0), out.vm_hours * 2.0 + out.master_hours * 1.0
        )
        assert out.on_demand_baseline(3.0) == pytest.approx(12.0)
        crf = out.cost_reduction_factor(0.2, 1.0, master_rate=0.05)
        assert crf.shape == (8,)
        assert np.all(crf > 0.0)


@pytest.mark.slow
class TestSlowEquivalence:
    """Higher-replication re-run for the scheduled slow-equivalence job."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    def test_uniform_support_deep(self, seed, config):
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(*run_both(dist, BAGS["mixed"], seed, n=32, **config))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_large_bag_bathtub(self, reference_dist, seed):
        rng = np.random.default_rng(seed)
        jobs = [
            (float(h), int(w))
            for h, w in zip(rng.uniform(0.2, 1.5, 40), rng.choice([1, 2, 4], 40))
        ]
        assert_equivalent(
            *run_both(
                reference_dist,
                jobs,
                seed,
                n=16,
                max_vms=8,
                provision_latency=0.1,
                checkpoint_interval=0.5,
                backfill=True,
            )
        )

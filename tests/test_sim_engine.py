"""Tests for the discrete-event engine, RNG streams, and event log."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.events import (
    EventLog,
    JobCompleted,
    JobFailed,
    VMLaunched,
    VMPreempted,
)
from repro.sim.rng import RandomStreams


class TestSimulator:
    def test_time_ordering(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["x", "y", "z"]

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("no"))
        sim.schedule(2.0, lambda: fired.append("yes"))
        h.cancel()
        assert h.cancelled
        sim.run()
        assert fired == ["yes"]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_next_time() == 2.0

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)


class TestSimulatorEdgeCases:
    def test_cancel_before_firing_is_idempotent(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("no"))
        h.cancel()
        h.cancel()  # second cancel must be a no-op
        assert h.cancelled
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_cancel_after_firing_is_harmless(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("yes"))
        sim.run()
        assert fired == ["yes"]
        h.cancel()  # late cancel: no error, no retroactive effect
        assert h.cancelled
        assert sim.events_processed == 1

    def test_peek_next_time_all_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(t, lambda: None) for t in (1.0, 2.0, 3.0)]
        for h in handles:
            h.cancel()
        assert sim.peek_next_time() is None
        # The queue was compacted, not just skipped over.
        assert not sim.step()

    def test_peek_next_time_empty_queue(self):
        assert Simulator().peek_next_time() is None

    def test_run_until_landing_exactly_on_event_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("at"))
        sim.schedule(2.0 + 1e-9, lambda: fired.append("after"))
        sim.run_until(2.0)
        # Events at exactly t fire; strictly-later ones do not.
        assert fired == ["at"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["at", "after"]

    def test_run_until_processes_same_time_chain(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.0, lambda: fired.append("chained"))

        sim.schedule(1.0, first)
        sim.run_until(1.0)
        # The chained same-time event lands inside the window too.
        assert fired == ["first", "chained"]

    def test_same_time_order_survives_cancellation(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        mid = sim.schedule(1.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("c"))
        mid.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_handle_time_property(self):
        sim = Simulator(start_time=3.0)
        h = sim.schedule(2.0, lambda: None)
        assert h.time == 5.0

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run_until(4.0)
        assert sim.now == 4.0
        assert sim.events_processed == 0


class TestRandomStreams:
    def test_named_streams_independent_and_stable(self):
        a = RandomStreams(seed=1)
        b = RandomStreams(seed=1)
        # Same name, same seed -> identical draws regardless of order.
        b.stream("other")  # request another stream first
        np.testing.assert_array_equal(
            a.stream("x").random(5), b.stream("x").random(5)
        )

    def test_different_names_differ(self):
        s = RandomStreams(seed=1)
        assert not np.array_equal(s.stream("a").random(5), s.stream("b").random(5))

    def test_spawn_indexing(self):
        s = RandomStreams(seed=1)
        assert s.spawn("vm", 1) is s.stream("vm:1")

    def test_stream_cached(self):
        s = RandomStreams(seed=1)
        assert s.stream("x") is s.stream("x")


class TestEventLog:
    def test_typed_queries(self):
        log = EventLog()
        log.record(VMLaunched(time=0.0, vm_id=1, vm_type="t", zone="z"))
        log.record(VMPreempted(time=1.0, vm_id=1, vm_type="t", age_hours=1.0))
        log.record(JobCompleted(time=2.0, job_id=0, makespan_hours=2.0))
        assert len(log) == 3
        assert log.count(VMLaunched) == 1
        assert log.count(JobFailed) == 0
        assert log.of_type(VMPreempted)[0].age_hours == 1.0
        # exact-type matching: subclasses of SimEvent don't cross-match
        assert [type(e).__name__ for e in log] == [
            "VMLaunched",
            "VMPreempted",
            "JobCompleted",
        ]

"""Tests for the multi-failure makespan extension (paper §4.1 footnote)."""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.policies.checkpointing import simulate_schedule
from repro.policies.runtime import (
    expected_makespan_multi_failure,
    expected_makespan_single_failure,
)


class TestMultiFailureMakespan:
    def test_upper_bounds_single_failure_expansion(self, reference_dist):
        """Eq. 7 ignores 2nd+ failures, so the exact value must dominate."""
        for T in (1.0, 4.0, 8.0):
            exact = expected_makespan_multi_failure(reference_dist, T)
            first_order = expected_makespan_single_failure(reference_dist, T)
            assert exact >= first_order - 1e-9

    def test_close_to_first_order_when_failures_rare(self, reference_dist):
        """Short job started mid-stable-phase: F over the window ~ 0, so
        both expansions agree tightly."""
        exact = expected_makespan_multi_failure(reference_dist, 1.0, start_age=8.0)
        assert exact == pytest.approx(1.0, abs=0.01)

    def test_matches_monte_carlo(self, reference_dist):
        T = 4.0
        exact = expected_makespan_multi_failure(reference_dist, T)
        mc = simulate_schedule(
            reference_dist,
            [T],
            delta=0.0,
            n_runs=4000,
            rng=np.random.default_rng(11),
        )
        assert exact == pytest.approx(mc.mean(), rel=0.05)

    def test_exponential_renewal_closed_form(self):
        """For Exp(rate), restart-from-scratch makespan has the classic
        closed form (e^{rate T} - 1)/rate."""
        d = ExponentialDistribution(rate=0.5, horizon=80.0)
        T = 2.0
        expected = (np.exp(0.5 * T) - 1.0) / 0.5
        got = expected_makespan_multi_failure(d, T)
        assert got == pytest.approx(expected, rel=0.02)

    def test_restart_latency_charged(self, reference_dist):
        base = expected_makespan_multi_failure(reference_dist, 4.0)
        slow = expected_makespan_multi_failure(
            reference_dist, 4.0, restart_latency=0.5
        )
        assert slow > base

    def test_validation(self, reference_dist):
        with pytest.raises(ValueError):
            expected_makespan_multi_failure(reference_dist, 0.0)
        with pytest.raises(ValueError):
            expected_makespan_multi_failure(reference_dist, 1.0, start_age=-1.0)

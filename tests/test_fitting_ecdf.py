"""Tests for empirical CDF and Kaplan-Meier estimation."""

import numpy as np
import pytest

from repro.fitting.ecdf import EmpiricalCDF, kaplan_meier


class TestEmpiricalCDF:
    def test_step_function_values(self):
        e = EmpiricalCDF.from_samples(np.array([1.0, 2.0, 2.0, 4.0]))
        assert float(e.evaluate(0.5)) == 0.0
        assert float(e.evaluate(1.0)) == 0.25
        assert float(e.evaluate(2.0)) == 0.75
        assert float(e.evaluate(3.0)) == 0.75
        assert float(e.evaluate(4.0)) == 1.0
        assert float(e.evaluate(10.0)) == 1.0

    def test_vectorised_evaluation(self):
        e = EmpiricalCDF.from_samples(np.array([1.0, 2.0]))
        out = e.evaluate(np.array([0.0, 1.5, 5.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_grid(self):
        e = EmpiricalCDF.from_samples(np.array([1.0, 3.0]))
        t, y = e.grid(16)
        assert t[0] == 0.0 and t[-1] == 3.0
        assert y[-1] == 1.0

    def test_median(self):
        e = EmpiricalCDF.from_samples(np.arange(1.0, 11.0))
        assert e.median() == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples(np.array([1.0, -0.5]))

    def test_converges_to_truth(self, reference_dist, rng):
        s = reference_dist.sample(5000, rng)
        e = EmpiricalCDF.from_samples(s)
        t = np.linspace(0.5, 23.0, 40)
        np.testing.assert_allclose(
            e.evaluate(t), np.asarray(reference_dist.cdf(t)), atol=0.04
        )


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self):
        lifetimes = np.array([1.0, 2.0, 2.0, 5.0, 7.0])
        km = kaplan_meier(lifetimes, np.zeros(5, dtype=bool))
        plain = EmpiricalCDF.from_samples(lifetimes)
        t = np.linspace(0, 8, 30)
        np.testing.assert_allclose(km.evaluate(t), plain.evaluate(t), atol=1e-12)

    def test_censoring_reduces_cdf(self):
        """Censored VMs are survivors: the KM CDF must sit at or below the
        naive ECDF that (wrongly) treats censorings as preemptions."""
        rng = np.random.default_rng(0)
        lifetimes = rng.exponential(5.0, size=300)
        censored = rng.random(300) < 0.3
        km = kaplan_meier(lifetimes, censored)
        naive = EmpiricalCDF.from_samples(lifetimes)
        t = np.linspace(0.5, 15, 20)
        assert np.all(np.asarray(km.evaluate(t)) <= np.asarray(naive.evaluate(t)) + 1e-9)

    def test_km_recovers_truth_under_censoring(self):
        """Administrative censoring at 6 h must not bias F below 6 h."""
        rng = np.random.default_rng(1)
        true = rng.exponential(5.0, size=4000)
        censored = true > 6.0
        observed = np.minimum(true, 6.0)
        km = kaplan_meier(observed, censored)
        t = np.linspace(0.5, 5.5, 10)
        np.testing.assert_allclose(km.evaluate(t), 1 - np.exp(-t / 5.0), atol=0.03)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.ones(3), np.zeros(2, dtype=bool))

    def test_all_censored_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.ones(5), np.ones(5, dtype=bool))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.array([]), np.array([], dtype=bool))

"""SWF trace ingestion: structural parsing, tenant mapping, and the
trace -> traffic -> tenancy-sweep integration path on the checked-in
fixture."""

import numpy as np
import pytest

from repro.sim.backend import run_tenant_replications
from repro.sim.tenancy_vectorized import BagSubmission
from repro.traces.swf import SAMPLE_SWF, SWF_FIELDS, parse_swf, swf_traffic


@pytest.fixture(scope="module")
def sample_log():
    return parse_swf(SAMPLE_SWF)


class TestParse:
    def test_header_directives(self, sample_log):
        assert sample_log.header["Version"] == "2.2"
        assert sample_log.header["MaxProcs"] == "240"
        assert sample_log.header["UnixStartTime"] == "1027839845"
        # Continuation comment lines without a colon are ignored quietly.
        assert "submissions" not in sample_log.header

    def test_record_count_and_fields(self, sample_log):
        assert len(sample_log) == 32
        first = sample_log.jobs[0]
        assert first.job_id == 1
        assert first.submit_s == 0.0
        assert first.run_s == 1800.0
        assert first.alloc_procs == 4
        assert first.user == 101 and first.group == 10

    def test_missing_value_fallbacks(self, sample_log):
        by_id = {j.job_id: j for j in sample_log.jobs}
        # run=-1 -> requested time; alloc=-1 -> requested processors.
        assert by_id[7].runtime_s == 1800.0
        assert by_id[8].procs == 16
        # Both runtime sources missing -> unusable.
        assert by_id[12].runtime_s == -1.0

    def test_wrong_field_count_rejected(self, tmp_path):
        p = tmp_path / "short.swf"
        p.write_text("; Version: 2.2\n1 0 1 100 1 -1 -1 1\n")
        with pytest.raises(ValueError, match=r"short\.swf:2.*18 fields"):
            parse_swf(p)

    def test_non_numeric_field_rejected(self, tmp_path):
        p = tmp_path / "garbled.swf"
        fields = ["1"] * len(SWF_FIELDS)
        fields[3] = "NaNopes"
        p.write_text(" ".join(fields) + "\n")
        with pytest.raises(ValueError, match=r"garbled\.swf:1.*'run_s'"):
            parse_swf(p)

    def test_non_finite_token_rejected(self, tmp_path):
        """float() happily parses 'nan'/'inf'; the parser must not let
        them leak past the -1 missing-value convention."""
        for bad in ("nan", "inf", "-inf"):
            p = tmp_path / "nonfinite.swf"
            fields = ["1"] * len(SWF_FIELDS)
            fields[3] = bad
            p.write_text(" ".join(fields) + "\n")
            with pytest.raises(ValueError, match=r"nonfinite\.swf:1.*'run_s'.*finite"):
                parse_swf(p)

    def test_truncated_final_line_rejected(self, tmp_path):
        """A log cut off mid-record (no trailing newline, partial field
        list) is rejected with the offending line number, not silently
        parsed as a short job."""
        good = " ".join(["1", "0", "1", "1800", "4"] + ["-1"] * 13)
        truncated = "2 30 1 1800"  # download died after 4 fields
        p = tmp_path / "cutoff.swf"
        p.write_text("; Version: 2.2\n" + good + "\n" + truncated)
        with pytest.raises(ValueError, match=r"cutoff\.swf:3.*18 fields, got 4"):
            parse_swf(p)

    def test_header_directive_without_value_defaults_empty(self, tmp_path):
        """`; Key:` with nothing after the colon is a legal directive —
        it defaults to the empty string rather than being rejected, and
        a bare `; Key` (no colon) stays a plain comment."""
        good = " ".join(["1", "0", "1", "1800", "4"] + ["-1"] * 13)
        p = tmp_path / "headers.swf"
        p.write_text("; Computer:\n; Preemption\n; MaxNodes: 120\n" + good + "\n")
        log = parse_swf(p)
        assert log.header["Computer"] == ""
        assert log.header["MaxNodes"] == "120"
        assert "Preemption" not in log.header
        assert len(log) == 1

    def test_unknown_runtime_and_procs_skipped_not_crashed(self, tmp_path):
        """Records whose -1 fallbacks still resolve nothing (both
        runtime sources or both processor counts unknown) parse fine and
        are skipped by the traffic mapping, leaving the usable rest."""
        rec = lambda job_id, run, alloc, req_t, req_p: " ".join(
            [str(job_id), "0", "1", str(run), str(alloc), "-1", "-1",
             str(req_p), str(req_t), "-1", "1", "7", "7", "1", "0", "0",
             "-1", "-1"]
        )
        p = tmp_path / "gaps.swf"
        p.write_text(
            rec(1, 1800, 4, -1, -1) + "\n"   # usable
            + rec(2, -1, 4, -1, 4) + "\n"     # no runtime source
            + rec(3, 1800, -1, -1, -1) + "\n" # no processor source
            + rec(4, -1, -1, 3600, 8) + "\n"  # usable via both fallbacks
        )
        log = parse_swf(p)
        assert len(log) == 4
        traffic = swf_traffic(p)
        jobs = [j for s in traffic for j in s.jobs]
        assert len(jobs) == 2
        assert jobs[1].work_hours == pytest.approx(1.0) and jobs[1].width == 8


class TestTraffic:
    def test_fixture_maps_to_traffic(self):
        traffic = swf_traffic(SAMPLE_SWF)
        assert all(isinstance(s, BagSubmission) for s in traffic)
        # 31 usable jobs (job 12 has no runtime source).
        assert sum(len(s.jobs) for s in traffic) == 31
        assert traffic[0].time == 0.0
        times = [s.time for s in traffic]
        assert times == sorted(times)

    def test_tenant_ids_dense_by_first_appearance(self):
        traffic = swf_traffic(SAMPLE_SWF)
        tenants = {s.tenant for s in traffic}
        # Users appear in order 101, 102, 103, 104, 105, -1 -> ids 0..5.
        assert tenants == set(range(6))
        first_seen = {}
        for s in traffic:
            first_seen.setdefault(s.tenant, s.time)
        assert [t for t, _ in sorted(first_seen.items(), key=lambda kv: kv[1])] == [
            0, 1, 2, 3, 4, 5,
        ]

    def test_group_tenancy(self):
        traffic = swf_traffic(SAMPLE_SWF, tenant_field="group")
        # Groups 10, 20, 30, -1 -> four tenants.
        assert {s.tenant for s in traffic} == set(range(4))

    def test_same_second_jobs_form_one_bag(self):
        traffic = swf_traffic(SAMPLE_SWF)
        at_30s = [s for s in traffic if s.time == pytest.approx(30.0 / 3600.0)]
        assert len(at_30s) == 1
        assert len(at_30s[0].jobs) == 3  # user 102's array submission

    def test_units_and_width_cap(self):
        traffic = swf_traffic(SAMPLE_SWF, width_cap=4)
        widths = [j.width for s in traffic for j in s.jobs]
        assert max(widths) == 4
        job1 = swf_traffic(SAMPLE_SWF)[0].jobs[0]
        assert job1.work_hours == pytest.approx(0.5)  # 1800 s

    def test_slicing_knobs(self):
        sliced = swf_traffic(SAMPLE_SWF, max_jobs=8)
        assert sum(len(s.jobs) for s in sliced) == 8
        windowed = swf_traffic(SAMPLE_SWF, horizon_hours=0.2)  # 720 s
        assert all(s.time < 0.2 for s in windowed)
        assert sum(len(s.jobs) for s in windowed) == 11  # jobs 1..11, minus 12+

    def test_determinism(self):
        assert swf_traffic(SAMPLE_SWF) == swf_traffic(SAMPLE_SWF)

    def test_no_usable_jobs_rejected(self, tmp_path):
        p = tmp_path / "empty.swf"
        fields = ["1", "0", "0", "-1", "1", "-1", "-1", "1", "-1", "-1",
                  "1", "7", "7", "1", "0", "0", "-1", "-1"]
        p.write_text("; Version: 2.2\n" + " ".join(fields) + "\n")
        with pytest.raises(ValueError, match="no usable"):
            swf_traffic(p)

    def test_bad_tenant_field_rejected(self):
        with pytest.raises(ValueError, match="tenant_field"):
            swf_traffic(SAMPLE_SWF, tenant_field="queue")


class TestIntegration:
    def test_trace_to_sweep_end_to_end(self, reference_dist):
        """The fixture drives a real replication batch on both backends
        with matching admission outcomes."""
        traffic = swf_traffic(SAMPLE_SWF, width_cap=2, max_jobs=12)
        outs = {
            backend: run_tenant_replications(
                reference_dist, traffic, n_replications=3, seed=0,
                backend=backend, max_vms=4,
            )
            for backend in ("event", "vectorized")
        }
        ev, vec = outs["event"], outs["vectorized"]
        assert (ev.completed_jobs == ev.admitted.sum(axis=1)).all()
        np.testing.assert_array_equal(ev.admitted, vec.admitted)
        np.testing.assert_allclose(
            ev.finish_times, vec.finish_times, atol=1e-9, equal_nan=True
        )

"""Tests for the reliability-theory adapter."""

import math

import numpy as np
import pytest

from repro.core.reliability import ReliabilityView, exponential_equivalent_rate
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution


class TestAgainstExponential:
    """The exponential law has closed forms for everything the view derives."""

    @pytest.fixture()
    def view(self):
        return ReliabilityView(ExponentialDistribution(rate=0.5), horizon=80.0)

    def test_survival(self, view):
        t = np.linspace(0, 10, 21)
        np.testing.assert_allclose(view.survival(t), np.exp(-0.5 * t), rtol=1e-12)

    def test_hazard_constant(self, view):
        t = np.linspace(0.1, 10, 21)
        np.testing.assert_allclose(view.hazard(t), 0.5, rtol=1e-9)

    def test_cumulative_hazard_linear(self, view):
        assert float(view.cumulative_hazard(4.0)) == pytest.approx(2.0, rel=1e-9)

    def test_mttf(self, view):
        assert view.mttf() == pytest.approx(2.0, rel=1e-3)

    def test_memoryless_residual_life(self, view):
        """E[T - s | T > s] = MTTF for the exponential."""
        assert view.mean_residual_life(3.0) == pytest.approx(2.0, rel=1e-2)

    def test_conditional_failure_probability_memoryless(self, view):
        p0 = view.conditional_failure_probability(0.0, 1.0)
        p5 = view.conditional_failure_probability(5.0, 1.0)
        assert p0 == pytest.approx(p5, rel=1e-9)
        assert p0 == pytest.approx(1 - math.exp(-0.5), rel=1e-9)

    def test_equivalent_rate(self, view):
        assert exponential_equivalent_rate(view) == pytest.approx(0.5, rel=1e-3)


class TestAgainstUniform:
    @pytest.fixture()
    def view(self):
        return ReliabilityView(UniformLifetimeDistribution(24.0), horizon=24.0)

    def test_mttf_is_half_deadline(self, view):
        assert view.mttf() == pytest.approx(12.0, rel=1e-3)

    def test_failure_at_support_edge(self, view):
        assert view.conditional_failure_probability(24.0, 1.0) == 1.0

    def test_interval_vs_conditional(self, view):
        """Conditional >= unconditional (survival <= 1)."""
        s, w = 12.0, 6.0
        assert view.conditional_failure_probability(s, w) >= view.interval_failure_probability(s, w)

    def test_interval_probability_value(self, view):
        assert view.interval_failure_probability(6.0, 6.0) == pytest.approx(0.25)
        assert view.conditional_failure_probability(6.0, 6.0) == pytest.approx(1 / 3)


class TestBathtubView:
    def test_matches_model_internals(self, reference_model):
        view = ReliabilityView(reference_model, horizon=reference_model.t_max)
        t = np.linspace(0.5, 20, 15)
        np.testing.assert_allclose(view.hazard(t), reference_model.hazard(t), rtol=1e-9)
        assert view.mttf() == pytest.approx(reference_model.expected_lifetime(), rel=5e-3)

    def test_mrl_matches_closed_form(self, reference_model):
        view = ReliabilityView(reference_model, horizon=reference_model.t_max)
        for s in (0.0, 5.0, 15.0):
            assert view.mean_residual_life(s, num=8193) == pytest.approx(
                reference_model.mean_residual_life(s), rel=1e-2
            )


class TestValidation:
    def test_negative_args_rejected(self):
        view = ReliabilityView(ExponentialDistribution(1.0))
        with pytest.raises(ValueError):
            view.mean_residual_life(-1.0)
        with pytest.raises(ValueError):
            view.conditional_failure_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            view.conditional_failure_probability(1.0, -1.0)

"""The provisioning-livelock pathology (PR 4) and its boot-grace fix.

With ``provision_latency > 0`` and the reuse policy on, lifetime laws
whose conditional Eq. 8 criterion rejects every positive age (uniform:
the conditional residual life shrinks with age, so any aged VM loses to
a fresh one for short jobs) used to drive the controller into
terminate/provision churn: staggered boots keep arriving one at a time,
age while the next boot is in flight, get rejected and terminated,
forever.  The fix is a boot-grace fallback: a VM no older than its
pool's boot latency is always accepted, because terminating it buys a
replacement no younger.  These scenarios must now *complete* — on the
controller and on both sweep backends — with the
``ProvisioningLivelockError`` guardrail retained purely as a backstop.
"""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.service.api import BagRequest, JobRequest
from repro.service.controller import (
    BatchComputingService,
    ProvisioningLivelockError,
    ServiceConfig,
)
from repro.sim.backend import _RoundProtocolCloud, _RoundUniforms
from repro.sim.engine import Simulator


def make_service(dist, config, *, seed=0):
    sim = Simulator()
    cloud = _RoundProtocolCloud(
        sim, dist, _RoundUniforms(np.random.default_rng(seed), 1), 0
    )
    return sim, BatchComputingService(sim, cloud, dist, config)


#: A support so long nothing dies inside the test window: the churn is
#: pure policy behaviour, not preemption noise.
LONG_UNIFORM = UniformLifetimeDistribution(1000.0)

#: Memoryless law with the same property: decide(T, age) rejects every
#: strictly positive age for short jobs under the conditional criterion.
SLOW_EXPONENTIAL = ExponentialDistribution(0.01)


class TestBootGraceRecovery:
    def test_staggered_boot_churn_recovers(self):
        """PR 4's deterministic construction: a width-1 job occupies the
        first boot; the width-2 job behind it then sees exactly one
        age-0 VM per provisioning round (boots staggered by the
        latency).  The grace window accepts the in-flight-age survivor
        instead of terminating it, so the gang gathers and the bag
        finishes — no ProvisioningLivelockError."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_exponential_law_recovers_too(self):
        """Memoryless laws hit the same all-ages-rejected branch; the
        grace fallback must cover them identically."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(SLOW_EXPONENTIAL, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_error_is_a_runtime_error(self):
        assert issubclass(ProvisioningLivelockError, RuntimeError)

    def test_same_scenario_without_reuse_policy_finishes(self):
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=False,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_same_scenario_without_latency_finishes(self):
        """With latency 0 all boots of a round land in the same instant
        at age 0, so the gang gathers without needing the grace window
        (decide(T, 0) is REUSE under both criteria)."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.0,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_bathtub_law_with_latency_finishes(self, reference_dist):
        """The paper's law has an infant-mortality window, so aged
        stable VMs are reusable and the same scenario completes."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(reference_dist, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_progress_resets_counter(self):
        """Stall-terminations interleaved with real job starts must not
        accumulate toward the threshold: a healthy-but-churny workload
        under a tiny threshold still completes when every churn episode
        ends in a start."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=3,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        # Width-1 jobs only: every stall round ends with the fresh boot
        # starting the head job, resetting the counter each time.
        bag_id = svc.submit_bag(BagRequest(jobs=[JobRequest(0.1, 1)] * 6))
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(livelock_threshold=0)


class TestRecoveryOnBothBackends:
    """The batched kernels mirror the boot-grace fallback, so the
    once-pathological configuration completes identically through the
    backend API — with exact cross-backend event/draw agreement."""

    def test_service_sweep_completes_on_both(self):
        from repro.sim.backend import run_service_replications

        outs = {}
        for backend in ("event", "vectorized"):
            outs[backend] = run_service_replications(
                LONG_UNIFORM,
                [(0.1, 1), (0.1, 2)],
                max_vms=2,
                provision_latency=0.5,
                run_master=False,
                livelock_threshold=50,
                n_replications=3,
                backend=backend,
                max_events=100_000,
            )
        e, v = outs["event"], outs["vectorized"]
        assert (e.completed_jobs == 2).all() and (v.completed_jobs == 2).all()
        np.testing.assert_allclose(e.makespan, v.makespan, atol=1e-9)
        np.testing.assert_array_equal(e.n_events, v.n_events)
        np.testing.assert_array_equal(e.n_draws, v.n_draws)

    def test_tenant_sweep_completes_on_both(self):
        from repro.sim.backend import run_tenant_replications

        outs = {}
        for backend in ("event", "vectorized"):
            outs[backend] = run_tenant_replications(
                LONG_UNIFORM,
                [(0, 0.0, [(0.1, 1), (0.1, 2)])],
                max_vms=2,
                provision_latency=0.5,
                run_master=False,
                livelock_threshold=50,
                n_replications=3,
                backend=backend,
                max_events=100_000,
            )
        e, v = outs["event"], outs["vectorized"]
        assert (e.completed_jobs == 2).all() and (v.completed_jobs == 2).all()
        np.testing.assert_allclose(e.makespan, v.makespan, atol=1e-9)
        np.testing.assert_array_equal(e.n_events, v.n_events)
        np.testing.assert_array_equal(e.n_draws, v.n_draws)

    def test_threshold_forwarded_from_service_config(self):
        """ServiceBatchConfig.from_service_config carries the knob."""
        from repro.service.controller import ServiceConfig
        from repro.sim.service_vectorized import ServiceBatchConfig

        cfg = ServiceBatchConfig.from_service_config(
            ServiceConfig(livelock_threshold=7)
        )
        assert cfg.livelock_threshold == 7

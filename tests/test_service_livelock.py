"""The provisioning-livelock guardrail (PR 4's documented pathology).

With ``provision_latency > 0`` and the reuse policy on, lifetime laws
whose conditional Eq. 8 criterion rejects every positive age (uniform:
the conditional residual life shrinks with age, so any aged VM loses to
a fresh one for short jobs) drive the controller into terminate/
provision churn: staggered boots keep arriving one at a time, age while
the next boot is in flight, get rejected and terminated, forever.  The
controller must fail fast with ``ProvisioningLivelockError`` instead of
spinning to the event cap.
"""

import numpy as np
import pytest

from repro.distributions.uniform import UniformLifetimeDistribution
from repro.service.api import BagRequest, JobRequest
from repro.service.controller import (
    BatchComputingService,
    ProvisioningLivelockError,
    ServiceConfig,
)
from repro.sim.backend import _RoundProtocolCloud, _RoundUniforms
from repro.sim.engine import Simulator


def make_service(dist, config, *, seed=0):
    sim = Simulator()
    cloud = _RoundProtocolCloud(
        sim, dist, _RoundUniforms(np.random.default_rng(seed), 1), 0
    )
    return sim, BatchComputingService(sim, cloud, dist, config)


#: A support so long nothing dies inside the test window: the churn is
#: pure policy behaviour, not preemption noise.
LONG_UNIFORM = UniformLifetimeDistribution(1000.0)


class TestLivelockGuardrail:
    def test_staggered_boot_churn_raises(self):
        """The deterministic construction: a width-1 job occupies the
        first boot; the width-2 job behind it then sees exactly one
        age-0 VM per provisioning round (boots staggered by the
        latency), terminates the aged survivor, and reprovisions —
        forever, absent the guardrail."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        with pytest.raises(ProvisioningLivelockError, match="use_reuse_policy"):
            svc.run_until_bag_done(bag_id, max_events=100_000)

    def test_error_is_a_runtime_error(self):
        assert issubclass(ProvisioningLivelockError, RuntimeError)

    def test_same_scenario_without_reuse_policy_finishes(self):
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=False,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_same_scenario_without_latency_finishes(self):
        """With latency 0 all boots of a round land in the same instant
        at age 0, so the gang gathers and the guardrail stays quiet."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.0,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_bathtub_law_with_latency_finishes(self, reference_dist):
        """The paper's law has an infant-mortality window, so aged
        stable VMs are reusable and the same scenario completes."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=50,
        )
        sim, svc = make_service(reference_dist, config)
        bag_id = svc.submit_bag(
            BagRequest(jobs=[JobRequest(0.1, 1), JobRequest(0.1, 2)])
        )
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_progress_resets_counter(self):
        """Stall-terminations interleaved with real job starts must not
        accumulate toward the threshold: a healthy-but-churny workload
        under a tiny threshold still completes when every churn episode
        ends in a start."""
        config = ServiceConfig(
            max_vms=2,
            provision_latency=0.5,
            use_reuse_policy=True,
            run_master=False,
            livelock_threshold=3,
        )
        sim, svc = make_service(LONG_UNIFORM, config)
        # Width-1 jobs only: every stall round ends with the fresh boot
        # starting the head job, resetting the counter each time.
        bag_id = svc.submit_bag(BagRequest(jobs=[JobRequest(0.1, 1)] * 6))
        svc.run_until_bag_done(bag_id, max_events=100_000)
        assert svc.bag_done(bag_id)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(livelock_threshold=0)


class TestGuardrailOnBothBackends:
    """The batched kernels mirror the guardrail, so the pathological
    configuration fails fast identically through the backend API."""

    def test_service_sweep_raises_on_both(self):
        from repro.sim.backend import run_service_replications

        for backend in ("event", "vectorized"):
            with pytest.raises(ProvisioningLivelockError):
                run_service_replications(
                    LONG_UNIFORM,
                    [(0.1, 1), (0.1, 2)],
                    max_vms=2,
                    provision_latency=0.5,
                    run_master=False,
                    livelock_threshold=50,
                    n_replications=2,
                    backend=backend,
                    max_events=100_000,
                )

    def test_tenant_sweep_raises_on_both(self):
        from repro.sim.backend import run_tenant_replications

        for backend in ("event", "vectorized"):
            with pytest.raises(ProvisioningLivelockError):
                run_tenant_replications(
                    LONG_UNIFORM,
                    [(0, 0.0, [(0.1, 1), (0.1, 2)])],
                    max_vms=2,
                    provision_latency=0.5,
                    run_master=False,
                    livelock_threshold=50,
                    n_replications=2,
                    backend=backend,
                    max_events=100_000,
                )

    def test_threshold_forwarded_from_service_config(self):
        """ServiceBatchConfig.from_service_config carries the knob."""
        from repro.service.controller import ServiceConfig
        from repro.sim.service_vectorized import ServiceBatchConfig

        cfg = ServiceBatchConfig.from_service_config(
            ServiceConfig(livelock_threshold=7)
        )
        assert cfg.livelock_threshold == 7

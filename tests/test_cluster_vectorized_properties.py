"""Property-based invariants of the cluster kernel and gang scheduler.

Four families, per the cluster-kernel issue:

* conservation — queued + running + completed jobs always partition the
  submitted bag, at every event boundary of a ClusterManager run;
* exclusivity — no VM ever belongs to two gang executions at once;
* pool monotonicity — under a never-failing lifetime law, adding pool
  VMs never increases the bag makespan (FIFO gang scheduling has no
  Graham-style anomaly without precedence constraints);
* zero waste — under a never-failing law nothing is ever lost: no
  preemptions, no job failures, no wasted hours, on both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions.base import LifetimeDistribution
from repro.sim.backend import run_cluster_replications
from repro.sim.cluster import ClusterManager, SimJob
from repro.sim.engine import Simulator
from repro.sim.vm import SimVM


class FarFutureLifetime(LifetimeDistribution):
    """All mass on ``[H, H+1]`` — no VM dies within any test horizon."""

    def __init__(self, horizon: float = 1e6):
        super().__init__()
        self.H = horizon
        self.t_max = horizon + 1.0

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.clip(t_arr - self.H, 0.0, 1.0)
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        inside = (t_arr >= self.H) & (t_arr <= self.H + 1.0)
        out = np.where(inside, 1.0, 0.0)
        return out if out.ndim else float(out)


# -- strategies ---------------------------------------------------------
job_lists = st.lists(
    st.tuples(
        st.floats(0.1, 3.0, allow_nan=False, allow_infinity=False),
        st.integers(1, 3),
    ),
    min_size=1,
    max_size=8,
)
death_lists = st.lists(st.floats(0.05, 8.0), min_size=3, max_size=6)


def _scripted_cluster(deaths, jobs):
    """A ClusterManager over VMs with scripted preemption times."""
    sim = Simulator()
    cluster = ClusterManager(sim)
    vms = []
    for k, death in enumerate(deaths):
        vm = SimVM(
            vm_id=k,
            vm_type="t",
            zone="z",
            launch_time=0.0,
            preemptible=True,
            hourly_price=0.0,
        )
        vms.append(vm)

        def die(v=vm):
            if v.alive:
                v.mark_preempted(sim.now)
                for cb in list(v.on_preempt):
                    cb(v, sim.now)

        sim.schedule(death, die)
        cluster.add_node(vm)
    sim_jobs = [
        SimJob(job_id=j, work_hours=w, width=min(width, len(deaths)))
        for j, (w, width) in enumerate(jobs)
    ]
    for job in sim_jobs:
        cluster.submit(job)
    return sim, cluster, sim_jobs


class TestClusterManagerInvariants:
    @given(deaths=death_lists, jobs=job_lists)
    @settings(max_examples=40, deadline=None)
    def test_conservation_at_every_event(self, deaths, jobs):
        """queued + running + completed == submitted, at every boundary."""
        sim, cluster, sim_jobs = _scripted_cluster(deaths, jobs)
        for _ in range(10_000):
            running = len(cluster._executions)
            assert cluster.queue_length + running + len(cluster.completed) == len(
                sim_jobs
            )
            if not sim.step():
                break
        else:
            pytest.fail("scripted cluster did not drain")

    @given(deaths=death_lists, jobs=job_lists)
    @settings(max_examples=40, deadline=None)
    def test_no_vm_runs_two_gangs(self, deaths, jobs):
        """Gang executions never share a VM; busy set matches the gangs."""
        sim, cluster, _ = _scripted_cluster(deaths, jobs)
        for _ in range(10_000):
            claimed = [
                vm.vm_id for ex in cluster._executions.values() for vm in ex.vms
            ]
            assert len(claimed) == len(set(claimed))
            busy_ids = {vm.vm_id for vm in cluster.busy_nodes()}
            # Every busy node is claimed by exactly one live execution
            # (a just-dead gang member leaves the busy set first).
            assert busy_ids <= set(claimed)
            if not sim.step():
                break


class TestNeverFailingLaw:
    @given(
        jobs=job_lists,
        pool=st.integers(3, 6),
        extra=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_makespan_monotone_in_pool_size(self, jobs, pool, extra):
        """More pool VMs never lengthen the bag under a failure-free law."""
        dist = FarFutureLifetime()
        small = run_cluster_replications(
            dist, jobs, pool_size=pool, use_reuse_policy=False, n_replications=1
        )
        large = run_cluster_replications(
            dist,
            jobs,
            pool_size=pool + extra,
            use_reuse_policy=False,
            n_replications=1,
        )
        assert large.makespan[0] <= small.makespan[0] + 1e-9

    @given(jobs=job_lists, tau=st.one_of(st.none(), st.floats(0.2, 1.0)))
    @settings(max_examples=25, deadline=None)
    def test_zero_waste_without_failures(self, jobs, tau):
        """A never-failing law loses nothing, on both backends."""
        dist = FarFutureLifetime()
        for backend in ("event", "vectorized"):
            out = run_cluster_replications(
                dist,
                jobs,
                pool_size=4,
                checkpoint_interval=tau,
                n_replications=2,
                backend=backend,
            )
            assert np.all(out.wasted_hours == 0.0)
            assert np.all(out.n_job_failures == 0)
            assert np.all(out.n_preemptions == 0)
            assert np.all(out.completed_jobs == len(jobs))

    def test_sequential_bag_makespan_closed_form(self):
        """Width-=-pool jobs serialise: makespan is the exact work sum."""
        dist = FarFutureLifetime()
        jobs = [(1.5, 2), (2.0, 2), (0.5, 2)]
        out = run_cluster_replications(
            dist, jobs, pool_size=2, n_replications=3, seed=0
        )
        np.testing.assert_allclose(out.makespan, 4.0, atol=1e-12)
        # Two VMs each billed for the whole run.
        np.testing.assert_allclose(out.vm_hours, 8.0, atol=1e-12)

    def test_checkpoint_writes_extend_makespan_deterministically(self):
        """Fixed-interval checkpointing adds exactly (#writes) * cost."""
        dist = FarFutureLifetime()
        out = run_cluster_replications(
            dist,
            [(2.0, 1)],
            pool_size=1,
            checkpoint_interval=0.5,
            checkpoint_cost=0.1,
            n_replications=1,
        )
        # 4 segments of 0.5h -> 3 non-final checkpoint writes.
        np.testing.assert_allclose(out.makespan, 2.0 + 3 * 0.1, atol=1e-12)

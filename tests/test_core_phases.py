"""Tests for the three-phase decomposition (paper Observation 1)."""

import numpy as np
import pytest

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.core.phases import (
    Phase,
    PhaseBoundaries,
    classify_phase,
    phase_boundaries,
    stable_phase_hazard,
)


@pytest.fixture()
def model():
    return ConstrainedPreemptionModel(BathtubParams(A=0.46, tau1=1.0, tau2=0.8, b=24.0))


class TestPhaseBoundaries:
    def test_reference_fit_matches_paper_three_hours(self, model):
        """tau1 ~ 1 puts the early-phase end at ~3 h, as observed."""
        b = phase_boundaries(model)
        assert 2.0 < b.early_end < 4.0
        assert 20.0 < b.final_start < 23.0
        assert b.final_start < b.t_max

    def test_ordering_invariant(self, model):
        b = phase_boundaries(model)
        assert 0.0 <= b.early_end <= b.final_start <= b.t_max

    def test_eps_moves_boundaries(self, model):
        wide = phase_boundaries(model, eps=0.01)
        narrow = phase_boundaries(model, eps=0.20)
        assert wide.early_end > narrow.early_end
        assert wide.final_start < narrow.final_start

    def test_accepts_raw_params(self):
        b = phase_boundaries(BathtubParams(A=0.46, tau1=1.0, tau2=0.8, b=24.0))
        assert b.stable_duration > 0

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_eps(self, model, eps):
        with pytest.raises(ValueError):
            phase_boundaries(model, eps=eps)

    def test_degenerate_slow_decay_collapses_stable_phase(self):
        """Huge tau1: early phase covers everything; no crash, ordering kept."""
        m = ConstrainedPreemptionModel(BathtubParams(A=0.45, tau1=40.0, tau2=0.8, b=24.0))
        b = phase_boundaries(m)
        assert b.early_end <= b.final_start <= b.t_max

    def test_invalid_boundary_dataclass(self):
        with pytest.raises(ValueError):
            PhaseBoundaries(early_end=5.0, final_start=3.0, t_max=24.0)


class TestClassification:
    def test_scalar_classification(self, model):
        assert classify_phase(model, 0.5) is Phase.EARLY
        assert classify_phase(model, 12.0) is Phase.STABLE
        assert classify_phase(model, 23.0) is Phase.FINAL

    def test_array_classification(self, model):
        phases = classify_phase(model, np.array([0.5, 12.0, 23.0]))
        assert list(phases) == [Phase.EARLY, Phase.STABLE, Phase.FINAL]

    def test_out_of_support_rejected(self, model):
        with pytest.raises(ValueError):
            classify_phase(model, -1.0)
        with pytest.raises(ValueError):
            classify_phase(model, model.t_max + 1.0)

    def test_boundaries_are_inclusive(self, model):
        b = phase_boundaries(model)
        assert classify_phase(model, b.early_end) is Phase.EARLY
        assert classify_phase(model, b.final_start) is Phase.FINAL


class TestStableHazard:
    def test_far_below_early_hazard(self, model):
        """The stable phase is why VM reuse wins (Section 4.2)."""
        stable = stable_phase_hazard(model)
        early = float(model.hazard(0.1))
        assert stable < early / 10.0

    def test_positive(self, model):
        assert stable_phase_hazard(model) > 0.0

"""Tests for bootstrap CIs and the Section 8 change-point detector."""

import numpy as np
import pytest

from repro.fitting.bootstrap import bootstrap_bathtub_ci
from repro.fitting.changepoint import (
    PolicyDriftMonitor,
    detect_policy_change,
)
from repro.traces.catalog import default_catalog


class TestBootstrap:
    @pytest.fixture(scope="class")
    def cis(self, reference_dist):
        samples = reference_dist.sample(300, np.random.default_rng(9))
        return bootstrap_bathtub_ci(samples, n_boot=60, seed=1, grid_num=96)

    def test_all_parameters_covered(self, cis):
        assert set(cis) == {"A", "tau1", "tau2", "b"}

    def test_intervals_contain_point_estimates(self, cis):
        for ci in cis.values():
            assert ci.low <= ci.point <= ci.high

    def test_intervals_contain_truth(self, cis, reference_params):
        """At 95% with 4 params, expect truth inside (generous check: b
        and A at least — the best-identified parameters)."""
        assert cis["b"].contains(reference_params.b)
        assert cis["A"].low - 0.05 <= reference_params.A <= cis["A"].high + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_bathtub_ci(np.ones(5))
        with pytest.raises(ValueError):
            bootstrap_bathtub_ci(np.arange(1.0, 30.0), level=1.5)


class TestChangePoint:
    def test_no_false_alarm_on_same_distribution(self, reference_dist):
        rng = np.random.default_rng(2)
        window = reference_dist.sample(200, rng)
        report = detect_policy_change(reference_dist, window, alpha=0.01)
        assert not report.changed

    def test_detects_policy_change(self, reference_dist):
        """A switch to the highcpu-2 law (far flatter early phase) must
        be flagged — the Section 8 drift scenario."""
        changed = default_catalog().distribution("n1-highcpu-2", "us-central1-c")
        window = changed.sample(200, np.random.default_rng(3))
        report = detect_policy_change(reference_dist, window, alpha=0.01)
        assert report.changed
        assert report.ks > report.critical

    def test_window_size_validation(self, reference_dist):
        with pytest.raises(ValueError):
            detect_policy_change(reference_dist, np.ones(3))
        with pytest.raises(ValueError):
            detect_policy_change(reference_dist, np.ones(20), alpha=0.0)

    def test_streaming_monitor(self, reference_dist):
        changed = default_catalog().distribution("n1-highcpu-2", "us-central1-c")
        mon = PolicyDriftMonitor(reference_dist, window=100, alpha=0.01)
        rng = np.random.default_rng(4)
        # First window: in-distribution -> no drift.
        report = None
        for x in reference_dist.sample(100, rng):
            report = mon.observe(float(x))
        assert report is not None and not report.changed
        # Second window: drifted law -> detected.
        for x in changed.sample(100, rng):
            report = mon.observe(float(x))
        assert report is not None and report.changed
        assert mon.drift_detected

    def test_monitor_validation(self, reference_dist):
        with pytest.raises(ValueError):
            PolicyDriftMonitor(reference_dist, window=4)
        mon = PolicyDriftMonitor(reference_dist, window=10)
        with pytest.raises(ValueError):
            mon.observe(-1.0)

"""Per-tenant SLO metric derivations (waits, bounded slowdown, fairness,
cost attribution) over tenancy sweep outcomes."""

import numpy as np
import pytest

from repro.sim.backend import TenantOutcomes, run_tenant_replications
from repro.traffic.metrics import (
    bounded_slowdown,
    jain_fairness_index,
    tenant_report,
)


def _hand_outcomes(admitted, starts, finishes, job_tenant, job_work, job_width):
    """A TenantOutcomes with fixed timing arrays (metrics-only fields
    filled with neutral values)."""
    admitted = np.asarray(admitted, dtype=bool)
    n, J = admitted.shape
    finishes = np.asarray(finishes, dtype=float)
    makespan = np.where(
        admitted.any(axis=1), np.nanmax(np.where(admitted, finishes, -np.inf), axis=1), 0.0
    )
    return TenantOutcomes(
        makespan=makespan,
        wasted_hours=np.zeros(n),
        completed_jobs=admitted.sum(axis=1),
        n_job_failures=np.zeros(n, dtype=np.int64),
        n_preemptions=np.zeros(n, dtype=np.int64),
        vm_hours=np.ones(n),
        master_hours=np.zeros(n),
        n_events=np.zeros(n, dtype=np.int64),
        n_draws=np.zeros(n, dtype=np.int64),
        admitted=admitted,
        start_times=np.asarray(starts, dtype=float),
        finish_times=np.asarray(finishes, dtype=float),
        job_tenant=np.asarray(job_tenant, dtype=np.int64),
        job_arrival=np.zeros(J),
        job_work=np.asarray(job_work, dtype=float),
        job_width=np.asarray(job_width, dtype=np.int64),
        n_tenants=int(np.max(job_tenant)) + 1,
        n_rounds=0,
        backend="event",
    )


class TestPrimitives:
    def test_bounded_slowdown_floor_and_threshold(self):
        bsld = bounded_slowdown(
            np.array([0.05, 1.0, 2.0]), np.array([1.0, 1.0, 0.01])
        )
        # Short turnaround floors at 1; tiny jobs divide by the threshold.
        np.testing.assert_allclose(bsld, [1.0, 1.0, 20.0])

    def test_bounded_slowdown_propagates_nan(self):
        out = bounded_slowdown(np.array([np.nan]), np.array([1.0]))
        assert np.isnan(out[0])

    def test_jain_bounds(self):
        assert jain_fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([np.nan, 2.0, 2.0]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0, 1.0])


class TestTenantReport:
    @pytest.fixture(scope="class")
    def outcomes(self, reference_dist):
        traffic = [
            (0, 0.0, [(0.5, 1)] * 2),
            (1, 0.2, [(0.8, 2)]),
            (0, 1.0, [(0.3, 1)]),
        ]
        return run_tenant_replications(
            reference_dist, traffic, n_replications=16, seed=0, max_vms=3
        )

    def test_shapes_and_counts(self, outcomes):
        rep = tenant_report(outcomes)
        assert rep.n_tenants == 2
        np.testing.assert_array_equal(rep.submitted_jobs, [3, 1])
        np.testing.assert_allclose(rep.mean_admitted_jobs, [3.0, 1.0])
        assert rep.mean_wait_hours.shape == (2,)
        assert np.isfinite(rep.mean_wait_hours).all()
        assert (rep.mean_bounded_slowdown >= 1.0).all()
        assert 0.0 < rep.wait_fairness <= 1.0

    def test_cost_attribution_sums_to_total(self, outcomes):
        """Occupancy shares partition each replication's billed cost, so
        per-tenant mean costs recover the overall mean cost."""
        rep = tenant_report(outcomes, preemptible_rate=0.2, master_rate=0.05)
        ideal = outcomes.job_work * outcomes.job_width
        baselines = np.array(
            [
                float(
                    (outcomes.admitted[:, outcomes.job_tenant == t]
                     * ideal[None, outcomes.job_tenant == t]).sum(axis=1).mean()
                )
                for t in range(2)
            ]
        )
        tenant_costs = baselines / rep.cost_reduction_factor
        total = outcomes.total_cost(0.2, 0.05).mean()
        assert tenant_costs.sum() == pytest.approx(total, rel=1e-9)

    def test_backends_agree_on_report(self, reference_dist):
        traffic = [(0, 0.0, [(0.5, 1)]), (1, 0.1, [(0.4, 1)])]
        reports = []
        for backend in ("event", "vectorized"):
            out = run_tenant_replications(
                reference_dist, traffic, n_replications=4, seed=3,
                backend=backend, max_vms=2,
            )
            reports.append(tenant_report(out))
        a, b = reports
        np.testing.assert_allclose(a.mean_wait_hours, b.mean_wait_hours, atol=1e-9)
        np.testing.assert_allclose(
            a.cost_reduction_factor, b.cost_reduction_factor, rtol=1e-9
        )
        assert a.wait_fairness == pytest.approx(b.wait_fairness, abs=1e-12)

    def test_summary_renders(self, outcomes):
        text = tenant_report(outcomes).summary()
        assert "tenant 0" in text and "tenant 1" in text
        assert "wait-fairness" in text

    def test_occupancy_is_per_admitted_job(self):
        """A replication that rejected a tenant's bags must contribute no
        occupancy entries — not a spurious zero (the old
        ``nansum(...).mean()`` halved this tenant's mean)."""
        nan = np.nan
        out = _hand_outcomes(
            admitted=[[True, True], [False, False]],
            starts=[[0.0, 1.0], [nan, nan]],
            finishes=[[2.0, 4.0], [nan, nan]],
            job_tenant=[0, 0],
            job_work=[2.0, 3.0],
            job_width=[1, 2],
        )
        rep = tenant_report(out)
        # Admitted-job occupancies: (2-0)*1 = 2 and (4-1)*2 = 6 -> mean 4;
        # zero-counting the rejecting replication would report 2.
        assert rep.mean_occupancy_hours[0] == pytest.approx(4.0)

    def test_occupancy_nan_for_never_admitted_tenant(self):
        nan = np.nan
        out = _hand_outcomes(
            admitted=[[True, False]],
            starts=[[0.0, nan]],
            finishes=[[1.5, nan]],
            job_tenant=[0, 1],
            job_work=[1.5, 1.0],
            job_width=[1, 1],
        )
        rep = tenant_report(out)
        assert rep.mean_occupancy_hours[0] == pytest.approx(1.5)
        assert np.isnan(rep.mean_occupancy_hours[1])

    def test_zero_admission_tenant_is_warning_free_and_defined(self):
        """A tenant that admits zero bags must not trip a RuntimeWarning
        (nanmean of an empty slice) or a ZeroDivisionError anywhere in
        the report; every field stays defined under the nan convention."""
        import warnings

        nan = np.nan
        out = _hand_outcomes(
            admitted=[[True, False, False], [True, False, False]],
            starts=[[0.5, nan, nan], [0.25, nan, nan]],
            finishes=[[2.5, nan, nan], [2.25, nan, nan]],
            job_tenant=[0, 1, 2],
            job_work=[2.0, 1.0, 1.0],
            job_width=[1, 1, 1],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            rep = tenant_report(out)
        assert np.isfinite(rep.mean_wait_hours[0])
        for t in (1, 2):
            assert np.isnan(rep.mean_wait_hours[t])
            assert np.isnan(rep.mean_bounded_slowdown[t])
            assert np.isnan(rep.cost_reduction_factor[t])
            assert rep.mean_admitted_jobs[t] == 0.0
        assert np.isfinite(rep.wait_fairness)

    def test_fairness_covers_admitted_tenants_only(self):
        """wait_fairness is the Jain index over the admitted tenants'
        mean waits; zero-admission tenants neither drag it down nor
        divide it by zero."""
        nan = np.nan
        out = _hand_outcomes(
            admitted=[[True, True, False]],
            starts=[[1.0, 1.0, nan]],
            finishes=[[2.0, 2.0, nan]],
            job_tenant=[0, 1, 2],
            job_work=[1.0, 1.0, 1.0],
            job_width=[1, 1, 1],
        )
        rep = tenant_report(out)
        # Both admitted tenants waited 1.0 h (start - arrival 0), so the
        # index over admitted tenants is exactly 1; counting tenant 2 as
        # zero would yield 2/3 instead.
        assert rep.wait_fairness == pytest.approx(
            jain_fairness_index(rep.mean_wait_hours[:2])
        )
        assert rep.wait_fairness == pytest.approx(1.0)

    def test_all_tenants_rejected_report_is_defined(self):
        """Even the degenerate everything-rejected sweep yields a report:
        all-nan means, fairness 1.0 (nothing to be unfair about)."""
        import warnings

        nan = np.nan
        out = _hand_outcomes(
            admitted=[[False, False]],
            starts=[[nan, nan]],
            finishes=[[nan, nan]],
            job_tenant=[0, 1],
            job_work=[1.0, 1.0],
            job_width=[1, 1],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            rep = tenant_report(out)
        assert np.isnan(rep.mean_wait_hours).all()
        assert rep.wait_fairness == 1.0

    def test_rejected_tenant_has_nan_wait(self, reference_dist):
        traffic = [
            (0, 0.0, [(4.0, 1)] * 2),
            (1, 0.1, [(0.5, 1)] * 3),  # rejected: cap 2 already full? no — own tenant
            (0, 0.1, [(0.5, 1)] * 2),  # rejected: tenant 0 already holds 2
        ]
        out = run_tenant_replications(
            reference_dist, traffic, n_replications=4, seed=0,
            max_vms=2, admission_cap=2,
        )
        # Tenant 1's bag of 3 exceeds the cap outright -> never admitted.
        assert not out.admitted[:, out.job_tenant == 1].any()
        rep = tenant_report(out)
        assert np.isnan(rep.mean_wait_hours[1])
        assert np.isfinite(rep.mean_wait_hours[0])

"""Tests for the running-time analysis (paper Eqs. 4-8, Fig. 4)."""

import numpy as np
import pytest

from repro.distributions.uniform import UniformLifetimeDistribution
from repro.policies.runtime import (
    expected_increase_in_runtime,
    expected_makespan_at_age,
    expected_makespan_single_failure,
    expected_wasted_work,
)


@pytest.fixture(scope="module")
def uniform():
    return UniformLifetimeDistribution(24.0)


class TestUniformClosedForms:
    """Section 6.1's analytic results pin the uniform baseline exactly."""

    @pytest.mark.parametrize("J", [1.0, 5.0, 10.0, 20.0, 24.0])
    def test_wasted_work_is_half_job(self, uniform, J):
        assert expected_wasted_work(uniform, J) == pytest.approx(J / 2.0)

    @pytest.mark.parametrize("J", [1.0, 5.0, 10.0, 20.0])
    def test_increase_is_J_squared_over_48(self, uniform, J):
        assert expected_increase_in_runtime(uniform, J) == pytest.approx(J * J / 48.0)

    def test_makespan_identity(self, uniform):
        J = 8.0
        assert expected_makespan_single_failure(uniform, J) == pytest.approx(
            J + J * J / 48.0
        )


class TestBathtubBehaviour:
    def test_wasted_work_conditional_on_failure(self, reference_dist):
        """E[W1] must equal moment / F(T) (Eq. 5)."""
        T = 6.0
        expected = reference_dist.truncated_first_moment(0.0, T) / float(
            reference_dist.cdf(T)
        )
        assert expected_wasted_work(reference_dist, T) == pytest.approx(expected)

    def test_early_waste_bounded_by_early_phase(self, reference_dist):
        """Bathtub failures strike early, so conditional waste for long
        jobs stays around the early-phase scale — not J/2."""
        assert expected_wasted_work(reference_dist, 12.0) < 3.0

    def test_paper_crossover_at_5_hours(self, reference_dist):
        """Fig. 4b: bathtub beats uniform for jobs longer than ~5 h."""
        uniform = UniformLifetimeDistribution(24.0)
        for J in (6.0, 10.0, 16.0, 20.0):
            assert expected_increase_in_runtime(
                reference_dist, J
            ) < expected_increase_in_runtime(uniform, J)
        # And short jobs are (slightly) worse on the bathtub.
        assert expected_increase_in_runtime(
            reference_dist, 1.0
        ) > expected_increase_in_runtime(uniform, 1.0)

    def test_ten_hour_job_about_thirty_minutes(self, reference_dist):
        """Paper: 'for a 10 hour job, the increase ... is about 30 minutes'."""
        inc = expected_increase_in_runtime(reference_dist, 10.0)
        assert 0.25 < inc < 0.8

    def test_makespan_at_age_zero_matches_fresh(self, reference_dist):
        J = 4.0
        assert expected_makespan_at_age(reference_dist, J, 0.0) == pytest.approx(
            expected_makespan_single_failure(reference_dist, J)
        )

    def test_stable_phase_start_is_cheaper(self, reference_dist):
        """Eq. 8: starting in the stable phase beats starting fresh."""
        J = 4.0
        stable = expected_makespan_at_age(reference_dist, J, 8.0)
        fresh = expected_makespan_at_age(reference_dist, J, 0.0)
        assert stable < fresh


class TestValidation:
    def test_nonpositive_job_length(self, reference_dist):
        for fn in (
            expected_wasted_work,
            expected_increase_in_runtime,
            expected_makespan_single_failure,
        ):
            with pytest.raises(ValueError):
                fn(reference_dist, 0.0)

    def test_negative_age(self, reference_dist):
        with pytest.raises(ValueError):
            expected_makespan_at_age(reference_dist, 1.0, -0.5)

    def test_zero_failure_window(self):
        """A distribution with F(T) = 0 on the window yields zero waste."""
        from repro.distributions.piecewise import PhaseSegment, PiecewisePhaseDistribution

        d = PiecewisePhaseDistribution(
            [PhaseSegment(0.0, 10.0, 0.0), PhaseSegment(10.0, 24.0, 1.0)]
        )
        assert expected_wasted_work(d, 5.0) == 0.0

"""Tests for the constrained-preemption model (paper Eq. 1-3)."""

import math

import numpy as np
import pytest

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.utils.integrate import first_moment


@pytest.fixture()
def model() -> ConstrainedPreemptionModel:
    return ConstrainedPreemptionModel(BathtubParams(A=0.46, tau1=1.2, tau2=0.8, b=24.0))


class TestBathtubParams:
    def test_valid_construction(self):
        p = BathtubParams(A=0.45, tau1=1.0, tau2=0.8, b=24.0)
        assert p.as_tuple() == (0.45, 1.0, 0.8, 24.0)

    def test_as_dict_roundtrip(self):
        p = BathtubParams(A=0.45, tau1=1.0, tau2=0.8, b=24.0)
        assert BathtubParams.from_mapping(p.as_dict()) == p

    @pytest.mark.parametrize("field,value", [
        ("A", 0.0), ("A", -0.1), ("A", 1.0), ("A", 1.5),
        ("tau1", 0.0), ("tau1", -1.0),
        ("tau2", 0.0), ("b", 0.0), ("b", -24.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(A=0.45, tau1=1.0, tau2=0.8, b=24.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            BathtubParams(**kwargs)

    def test_boundary_condition_enforced(self):
        # b/tau2 small => F(0) = A e^{-b/tau2} not ~ 0 -> rejected.
        with pytest.raises(ValueError, match="boundary condition"):
            BathtubParams(A=0.45, tau1=1.0, tau2=10.0, b=2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            BathtubParams(A=float("nan"), tau1=1.0, tau2=0.8, b=24.0)


class TestCDF:
    def test_matches_equation_1(self, model):
        """F(t) must equal the closed form inside the support."""
        p = model.params
        t = np.linspace(0.1, 20.0, 50)
        expected = p.A * (1 - np.exp(-t / p.tau1) + np.exp((t - p.b) / p.tau2))
        np.testing.assert_allclose(model.cdf(t), expected, rtol=1e-12)

    def test_f0_is_nearly_zero(self, model):
        assert 0.0 <= model.cdf(0.0) < 1e-10

    def test_monotone_nondecreasing(self, model):
        t = np.linspace(-1.0, 30.0, 500)
        f = np.asarray(model.cdf(t))
        assert np.all(np.diff(f) >= -1e-14)

    def test_clamped_outside_support(self, model):
        assert model.cdf(-5.0) == 0.0
        assert model.cdf(model.t_max) == 1.0
        assert model.cdf(100.0) == 1.0

    def test_scalar_in_scalar_out(self, model):
        assert isinstance(model.cdf(5.0), float)
        assert isinstance(model.pdf(5.0), float)

    def test_t_max_slightly_past_deadline(self, model):
        """For the paper's fits, F reaches 1 within minutes of b."""
        assert model.params.b < model.t_max < model.params.b + 0.5

    def test_t_max_solves_raw_cdf(self, model):
        p = model.params
        raw = p.A * (1 - math.exp(-model.t_max / p.tau1) + math.exp((model.t_max - p.b) / p.tau2))
        assert raw == pytest.approx(1.0, abs=1e-9)


class TestPDF:
    def test_matches_equation_2(self, model):
        p = model.params
        t = np.linspace(0.1, 20.0, 50)
        expected = p.A * (np.exp(-t / p.tau1) / p.tau1 + np.exp((t - p.b) / p.tau2) / p.tau2)
        np.testing.assert_allclose(model.pdf(t), expected, rtol=1e-12)

    def test_zero_outside_support(self, model):
        assert model.pdf(-0.1) == 0.0
        assert model.pdf(model.t_max + 0.1) == 0.0

    def test_integrates_to_one(self, model):
        total = first_moment(lambda t: np.asarray(model.pdf(t)) / np.maximum(t, 1e-300) * t,
                             0.0, model.t_max, num=8193)
        # Direct integral of the pdf:
        from repro.utils.integrate import trapezoid_integral
        total = trapezoid_integral(model.pdf, 0.0, model.t_max, num=8193)
        assert total == pytest.approx(1.0, abs=2e-3)

    def test_bathtub_shape(self, model):
        """High at 0, low in the middle, high at the deadline."""
        early = float(model.pdf(0.05))
        middle = float(model.pdf(12.0))
        late = float(model.pdf(model.params.b - 0.2))
        assert early > 10 * middle
        assert late > 10 * middle

    def test_pdf_is_cdf_derivative(self, model):
        t = np.linspace(0.5, 20.0, 40)
        h = 1e-6
        numeric = (np.asarray(model.cdf(t + h)) - np.asarray(model.cdf(t - h))) / (2 * h)
        np.testing.assert_allclose(numeric, model.pdf(t), rtol=1e-5)


class TestMoments:
    def test_antiderivative_differentiates_to_t_pdf(self, model):
        t = np.linspace(0.5, 20.0, 30)
        h = 1e-6
        numeric = (
            np.asarray(model.moment_antiderivative(t + h))
            - np.asarray(model.moment_antiderivative(t - h))
        ) / (2 * h)
        np.testing.assert_allclose(numeric, t * np.asarray(model.pdf(t)), rtol=1e-4)

    @pytest.mark.parametrize("a,c", [(0.0, 5.0), (2.0, 10.0), (10.0, 24.0), (0.0, 24.0)])
    def test_closed_form_matches_quadrature(self, model, a, c):
        closed = model.truncated_first_moment(a, c)
        numeric = first_moment(model.pdf, a, min(c, model.t_max), num=16385)
        assert closed == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_moment_clipping(self, model):
        assert model.truncated_first_moment(5.0, 5.0) == 0.0
        assert model.truncated_first_moment(8.0, 3.0) == 0.0
        # Bounds beyond the support are clipped, not extrapolated.
        full = model.truncated_first_moment(0.0, model.t_max)
        assert model.truncated_first_moment(0.0, 100.0) == pytest.approx(full)

    def test_expected_lifetime_equals_full_moment(self, model):
        assert model.expected_lifetime() == pytest.approx(
            model.truncated_first_moment(0.0, model.t_max)
        )

    def test_expected_lifetime_sane(self, model):
        el = model.expected_lifetime()
        # Bathtub with ~46% early mass and the rest near 24 h.
        assert 8.0 < el < 20.0

    def test_expected_lifetime_horizon_truncation(self, model):
        assert model.expected_lifetime(5.0) < model.expected_lifetime()


class TestHazard:
    def test_bathtub_hazard(self, model):
        h_early = float(model.hazard(0.05))
        h_mid = float(model.hazard(12.0))
        h_late = float(model.hazard(model.params.b - 0.1))
        assert h_early > h_mid
        assert h_late > h_early  # deadline reclamation dominates everything

    def test_hazard_infinite_past_support(self, model):
        assert math.isinf(float(model.hazard(model.t_max + 0.5)))

    def test_cumulative_hazard_increasing(self, model):
        t = np.linspace(0.1, model.t_max - 0.1, 100)
        ch = np.asarray(model.cumulative_hazard(t))
        assert np.all(np.diff(ch) > 0)


class TestSampling:
    def test_ppf_inverts_cdf(self, model):
        q = np.linspace(0.01, 0.99, 25)
        t = np.asarray(model.ppf(q))
        np.testing.assert_allclose(model.cdf(t), q, atol=2e-3)

    def test_ppf_exact_matches_table(self, model):
        for q in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
            assert float(model.ppf(q)) == pytest.approx(model.ppf_exact(q), abs=2e-2)

    def test_ppf_bounds_validated(self, model):
        with pytest.raises(ValueError):
            model.ppf(-0.1)
        with pytest.raises(ValueError):
            model.ppf(1.1)
        with pytest.raises(ValueError):
            model.ppf_exact(2.0)

    def test_samples_within_support(self, model, rng):
        s = model.sample(2000, rng)
        assert np.all(s >= 0.0)
        assert np.all(s <= model.t_max + 1e-9)

    def test_samples_follow_cdf(self, model, rng):
        """KS distance between sample ECDF and model CDF is small."""
        n = 4000
        s = np.sort(model.sample(n, rng))
        emp = np.arange(1, n + 1) / n
        ks = np.max(np.abs(emp - np.asarray(model.cdf(s))))
        assert ks < 0.03  # ~1.63/sqrt(n) at alpha=1%

    def test_sampling_deterministic_given_seed(self, model):
        a = model.sample(50, np.random.default_rng(3))
        b = model.sample(50, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_negative_n_rejected(self, model):
        with pytest.raises(ValueError):
            model.sample(-1)


class TestResidualLife:
    def test_mean_residual_life_rises_then_falls(self, model):
        """Surviving the early phase makes a VM more valuable; the
        deadline then destroys that value (the paper's reuse intuition)."""
        mrl_young = model.mean_residual_life(0.0)
        mrl_stable = model.mean_residual_life(5.0)
        mrl_old = model.mean_residual_life(23.0)
        assert mrl_stable > mrl_young
        assert mrl_old < 2.0

    def test_zero_at_support_edge(self, model):
        assert model.mean_residual_life(model.t_max) == 0.0
        assert model.mean_residual_life(model.t_max + 1) == 0.0

    def test_mrl_against_quadrature(self, model):
        s = 4.0
        t = np.linspace(s, model.t_max, 20001)
        surv = np.asarray(model.sf(t))
        numeric = np.trapezoid(surv, t) / float(model.sf(s))
        assert model.mean_residual_life(s) == pytest.approx(numeric, rel=1e-3)


class TestConstruction:
    def test_accepts_mapping(self):
        m = ConstrainedPreemptionModel({"A": 0.45, "tau1": 1.0, "tau2": 0.8, "b": 24.0})
        assert m.params.A == 0.45

    def test_cdf_function_for_curve_fit(self):
        t = np.linspace(0, 24, 10)
        out = ConstrainedPreemptionModel.cdf_function(t, 0.45, 1.0, 0.8, 24.0)
        assert out.shape == t.shape

"""Arrival processes, job mixes, and the diurnal trace-to-rate pipeline.

Covers the satellite requirement on ``traces.generator``/``traces.stats``
as consumed by the traffic layer: demand profiles derived from generated
traces, rate-curve integration, and seeded reproducibility end to end.
"""

import numpy as np
import pytest

from repro.sim.tenancy_vectorized import BagSubmission
from repro.traces.generator import TraceGenerator
from repro.traces.stats import demand_profile
from repro.traffic.arrivals import (
    DiurnalProcess,
    JobMix,
    MMPPProcess,
    PoissonProcess,
    TenantSpec,
    WeeklyRateCurve,
    sample_traffic,
)


@pytest.fixture(scope="module")
def study_trace():
    # The night/weekend ground-truth contrast is a few percent of the
    # mean lifetime, so the profile needs a decent sample to resolve it.
    return TraceGenerator(seed=7).launch_batch(2500, "n1-highcpu-16")


class TestDemandProfile:
    def test_shape_and_normalisation(self, study_trace):
        profile = demand_profile(study_trace)
        assert profile.shape == (7, 24)
        assert profile.min() > 0.0
        assert profile.mean() == pytest.approx(1.0)

    def test_weekday_daytime_exceeds_weekend_night(self, study_trace):
        """Short weekday-daytime lifetimes = high demand (Observations 1-4)."""
        profile = demand_profile(study_trace)
        weekday_day = profile[:5, 8:20].mean()
        weekend_night = profile[5:, list(range(0, 8)) + list(range(20, 24))].mean()
        assert weekday_day > weekend_night

    def test_empty_trace_flat(self):
        trace = TraceGenerator(seed=0).launch_batch(0, "n1-highcpu-16")
        np.testing.assert_allclose(demand_profile(trace), 1.0)


class TestWeeklyRateCurve:
    def test_flat_curve_integration(self):
        curve = WeeklyRateCurve.flat(0.5)
        assert curve.integrate(168.0) == pytest.approx(0.5 * 168)
        assert curve.integrate(1.5) == pytest.approx(0.75)
        assert curve.rate_at(200.0) == 0.5  # wraps over the week

    def test_from_trace_preserves_weekly_average(self, study_trace):
        """The demand profile has mean 1, so the week integral matches the
        base rate exactly — the rate-curve integration contract the
        diurnal process relies on."""
        curve = WeeklyRateCurve.from_trace(study_trace, base_rate=2.0)
        assert curve.integrate(168.0) == pytest.approx(2.0 * 168, rel=1e-12)

    def test_from_trace_modulates_by_context(self, study_trace):
        curve = WeeklyRateCurve.from_trace(study_trace, base_rate=1.0)
        rates = np.asarray(curve.hourly_rates)
        weekday_noon = rates[12]  # Monday 12:00
        weekend_night = rates[5 * 24 + 2]  # Saturday 02:00
        assert weekday_noon > weekend_night

    def test_validation(self):
        with pytest.raises(ValueError, match="168"):
            WeeklyRateCurve((1.0,) * 10)
        with pytest.raises(ValueError, match=">= 0"):
            WeeklyRateCurve((-1.0,) + (1.0,) * 167)
        with pytest.raises(ValueError, match="> 0"):
            WeeklyRateCurve((0.0,) * 168)


class TestArrivalProcesses:
    def test_poisson_rate_and_bounds(self):
        rng = np.random.default_rng(0)
        times = PoissonProcess(2.0).sample_times(500.0, rng)
        assert times.size == pytest.approx(1000, rel=0.15)
        assert (times >= 0).all() and (times < 500.0).all()
        assert (np.diff(times) > 0).all()

    def test_diurnal_mean_count_matches_integral(self, study_trace):
        curve = WeeklyRateCurve.from_trace(study_trace, base_rate=1.5)
        proc = DiurnalProcess(curve)
        rng = np.random.default_rng(1)
        counts = [proc.sample_times(168.0, rng).size for _ in range(30)]
        assert np.mean(counts) == pytest.approx(curve.integrate(168.0), rel=0.1)

    def test_diurnal_concentrates_in_high_rate_hours(self):
        rates = [0.01] * 168
        for d in range(5):
            for h in range(8, 20):
                rates[d * 24 + h] = 3.0  # weekday daytime only
        proc = DiurnalProcess(WeeklyRateCurve(tuple(rates)))
        times = proc.sample_times(168.0, np.random.default_rng(2))
        week_hour = times % 168
        day, hour = week_hour // 24, week_hour % 24
        daytime = (day < 5) & (hour >= 8) & (hour < 20)
        assert daytime.mean() > 0.95

    def test_diurnal_start_hour_offset(self):
        rates = [0.0] * 168
        rates[10] = 5.0  # all mass in week-hour [10, 11)
        proc = DiurnalProcess(WeeklyRateCurve(tuple(rates)), start_hour=10.0)
        times = proc.sample_times(1.0, np.random.default_rng(3))
        assert times.size > 0
        assert (times < 1.0).all()  # the active bin is now at t = 0

    def test_mmpp_burstier_than_poisson(self):
        rng = np.random.default_rng(4)
        mmpp = MMPPProcess(0.2, 20.0, sojourn_low=5.0, sojourn_high=0.5)
        bursty = mmpp.sample_times(2000.0, rng)
        rate = bursty.size / 2000.0
        poisson = PoissonProcess(max(rate, 1e-9)).sample_times(
            2000.0, np.random.default_rng(4)
        )

        def cv2(t):
            gaps = np.diff(t)
            return np.var(gaps) / np.mean(gaps) ** 2

        assert cv2(bursty) > 2.0 * cv2(poisson)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: PoissonProcess(1.0),
            lambda: DiurnalProcess(WeeklyRateCurve.flat(1.0)),
            lambda: MMPPProcess(0.5, 4.0),
        ],
        ids=["poisson", "diurnal", "mmpp"],
    )
    def test_seeded_reproducibility(self, make):
        a = make().sample_times(50.0, np.random.default_rng(9))
        b = make().sample_times(50.0, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


def _scalar_poisson(rate, horizon, rng):
    """The pre-vectorisation scalar loop, kept as the draw-sequence oracle."""
    times = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= horizon:
            break
        times.append(t)
    return np.asarray(times, dtype=float)


def _scalar_mmpp(proc, horizon, rng):
    times = []
    t = 0.0
    high = proc.start_high
    while t < horizon:
        mean = proc.sojourn_high if high else proc.sojourn_low
        rate = proc.rate_high if high else proc.rate_low
        end = min(t + rng.exponential(mean), horizon)
        if rate > 0.0:
            s = t
            while True:
                s += rng.exponential(1.0 / rate)
                if s >= end:
                    break
                times.append(s)
        t = end
        high = not high
    return np.asarray(times, dtype=float)


class TestBlockSamplingBitIdentity:
    """The block-drawn exponential flights must match the scalar loops
    bit for bit — values, draw counts, and generator end state — so
    pre-existing seeded traffic stays byte-identical."""

    @pytest.mark.parametrize("rate", [0.3, 1.0, 7.5])
    @pytest.mark.parametrize("horizon", [0.0, 0.4, 50.0, 300.0])
    def test_poisson_matches_scalar_loop(self, rate, horizon):
        rng_block = np.random.default_rng(42)
        rng_scalar = np.random.default_rng(42)
        block = PoissonProcess(rate).sample_times(horizon, rng_block)
        scalar = _scalar_poisson(rate, horizon, rng_scalar)
        np.testing.assert_array_equal(block, scalar)
        # End state identical => downstream draws unaffected.
        assert rng_block.bit_generator.state == rng_scalar.bit_generator.state

    @pytest.mark.parametrize("rate_low", [0.0, 0.5])
    @pytest.mark.parametrize("horizon", [0.0, 2.0, 100.0])
    def test_mmpp_matches_scalar_loop(self, rate_low, horizon):
        proc = MMPPProcess(rate_low, 6.0, sojourn_low=4.0, sojourn_high=0.5)
        rng_block = np.random.default_rng(7)
        rng_scalar = np.random.default_rng(7)
        block = proc.sample_times(horizon, rng_block)
        scalar = _scalar_mmpp(proc, horizon, rng_scalar)
        np.testing.assert_array_equal(block, scalar)
        assert rng_block.bit_generator.state == rng_scalar.bit_generator.state

    def test_flight_block_growth_path(self):
        """Force the initial block estimate to be too small so the
        re-clone-and-double retry path is exercised."""
        from repro.traffic.arrivals import _exponential_flight

        rng_block = np.random.default_rng(3)
        rng_scalar = np.random.default_rng(3)
        # Expected ~2000 arrivals: initial block for span/scale = 20
        # would suffice, so stretch the flight instead with a long span.
        block = _exponential_flight(rng_block, 1.0 / 100.0, 0.0, 0.5)
        assert block.size > 16  # sanity: plenty of arrivals
        scalar = _scalar_poisson(100.0, 0.5, rng_scalar)
        np.testing.assert_array_equal(block, scalar)
        assert rng_block.bit_generator.state == rng_scalar.bit_generator.state

    def test_sample_traffic_unchanged_by_vectorisation(self):
        """Whole-pipeline draw-sequence pin: tenants sharing one
        generator still see the same bags in the same order."""
        tenants = [
            TenantSpec(
                name="a",
                arrivals=PoissonProcess(2.0),
                mix=JobMix(mean_hours=0.5, jobs_per_bag=(1, 3)),
            ),
            TenantSpec(
                name="b",
                arrivals=MMPPProcess(0.3, 8.0, sojourn_low=3.0, sojourn_high=0.4),
                mix=JobMix(mean_hours=0.8, widths=(1, 2), jobs_per_bag=(2, 2)),
            ),
        ]
        traffic = sample_traffic(tenants, 30.0, seed=11)
        # Reference: the same pipeline with scalar sampling.
        rng = np.random.default_rng(11)
        ref = []
        for idx, spec in enumerate(tenants):
            if isinstance(spec.arrivals, PoissonProcess):
                times = _scalar_poisson(spec.arrivals.rate, 30.0, rng)
            else:
                times = _scalar_mmpp(spec.arrivals, 30.0, rng)
            for t in times:
                ref.append((idx, float(t), spec.mix.sample_bag(rng)))
        from repro.sim.tenancy_vectorized import normalize_traffic

        ref_traffic = normalize_traffic(
            [BagSubmission(tenant=i, time=t, jobs=jobs) for i, t, jobs in ref]
        )
        assert traffic == ref_traffic


class TestJobMix:
    def test_bag_shape_and_bounds(self):
        mix = JobMix(
            mean_hours=1.0,
            cv=0.5,
            widths=(1, 2, 4),
            width_weights=(2.0, 1.0, 1.0),
            jobs_per_bag=(2, 6),
            min_hours=0.1,
        )
        rng = np.random.default_rng(0)
        for _ in range(50):
            bag = mix.sample_bag(rng)
            assert 2 <= len(bag) <= 6
            for job in bag:
                assert job.work_hours >= 0.1
                assert job.width in (1, 2, 4)

    def test_zero_cv_pins_lengths(self):
        mix = JobMix(mean_hours=0.7, cv=0.0, jobs_per_bag=(3, 3))
        bag = mix.sample_bag(np.random.default_rng(1))
        assert all(j.work_hours == pytest.approx(0.7) for j in bag)

    def test_mean_hours_respected(self):
        mix = JobMix(mean_hours=1.3, cv=0.4, jobs_per_bag=(5, 5), min_hours=1e-6)
        rng = np.random.default_rng(2)
        hours = [j.work_hours for _ in range(400) for j in mix.sample_bag(rng)]
        assert np.mean(hours) == pytest.approx(1.3, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobMix(widths=())
        with pytest.raises(ValueError):
            JobMix(jobs_per_bag=(3, 2))
        with pytest.raises(ValueError):
            JobMix(widths=(1, 2), width_weights=(1.0,))


class TestSampleTraffic:
    def _tenants(self):
        return [
            TenantSpec(
                name="steady",
                arrivals=PoissonProcess(1.0),
                mix=JobMix(mean_hours=0.5, jobs_per_bag=(1, 2)),
            ),
            TenantSpec(
                name="bursty",
                arrivals=MMPPProcess(0.2, 5.0),
                mix=JobMix(mean_hours=0.8, widths=(1, 2), jobs_per_bag=(2, 3)),
                weight=2.0,
            ),
        ]

    def test_sorted_and_typed(self):
        traffic = sample_traffic(self._tenants(), 20.0, seed=0)
        assert all(isinstance(s, BagSubmission) for s in traffic)
        times = [s.time for s in traffic]
        assert times == sorted(times)
        assert {s.tenant for s in traffic} <= {0, 1}

    def test_seeded_reproducibility(self):
        a = sample_traffic(self._tenants(), 20.0, seed=5)
        b = sample_traffic(self._tenants(), 20.0, seed=5)
        assert a == b
        c = sample_traffic(self._tenants(), 20.0, seed=6)
        assert a != c

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            sample_traffic([], 10.0)
        with pytest.raises(ValueError):
            sample_traffic(self._tenants(), 0.0)

    def test_feeds_tenant_sweep(self, reference_dist):
        """End-to-end: generated trace -> diurnal curve -> traffic ->
        batched sweep (the satellite's integration path)."""
        from repro.sim.backend import run_tenant_replications

        trace = TraceGenerator(seed=3).launch_batch(200, "n1-highcpu-16")
        curve = WeeklyRateCurve.from_trace(trace, base_rate=1.0)
        tenants = [
            TenantSpec(
                name="diurnal",
                arrivals=DiurnalProcess(curve, start_hour=9.0),
                mix=JobMix(mean_hours=0.4, jobs_per_bag=(1, 2)),
            )
        ]
        traffic = sample_traffic(tenants, 8.0, seed=0)
        if not traffic:
            pytest.skip("no arrivals drawn in the window")
        out = run_tenant_replications(
            reference_dist, traffic, n_replications=4, seed=0, max_vms=4
        )
        assert (out.completed_jobs == out.admitted.sum(axis=1)).all()


class TestApplicationProfiles:
    def test_paper_applications_present(self):
        from repro.workloads.profiles import APPLICATION_PROFILES, application_profile

        assert {"nanoconfinement", "shapes", "lulesh"} <= set(APPLICATION_PROFILES)
        assert application_profile("shapes").mean_hours == pytest.approx(9.0 / 60.0)
        with pytest.raises(KeyError, match="known"):
            application_profile("minesweeper")

    def test_jobmix_from_profile(self):
        from repro.workloads.profiles import application_profile

        profile = application_profile("lulesh")
        mix = JobMix.from_profile(profile, jobs_per_bag=(2, 3))
        assert mix.mean_hours == profile.mean_hours
        assert mix.widths == (8,)
        assert mix.jobs_per_bag == (2, 3)
        bag = mix.sample_bag(np.random.default_rng(0))
        assert 2 <= len(bag) <= 3
        assert all(j.width == 8 for j in bag)

    def test_profile_traffic_through_sweep(self, reference_dist):
        """Application-profiled tenants through the tenancy backend."""
        from repro.sim.backend import run_tenant_replications
        from repro.workloads.profiles import application_profile

        tenants = [
            TenantSpec(
                name=app,
                arrivals=PoissonProcess(1.5),
                mix=JobMix.from_profile(
                    application_profile(app), jobs_per_bag=(1, 2)
                ),
            )
            for app in ("nanoconfinement", "shapes")
        ]
        traffic = sample_traffic(tenants, 3.0, seed=1)
        if not traffic:
            pytest.skip("no arrivals drawn in the window")
        out = run_tenant_replications(
            reference_dist, traffic, n_replications=3, seed=0, max_vms=4,
            scheduling="fair",
        )
        assert (out.completed_jobs == out.admitted.sum(axis=1)).all()


class TestDiurnalEdgeCases:
    def test_trailing_zero_rate_bins_do_not_crash(self):
        """A draw landing in the float gap between integrate()'s pairwise
        sum and the inversion table's cumsum must not walk past the last
        (zero-rate) bin (regression: IndexError at h=168)."""
        curve = WeeklyRateCurve(tuple([0.1] * 167 + [0.0]))
        proc = DiurnalProcess(curve)
        for seed in range(20):
            times = proc.sample_times(168.0, np.random.default_rng(seed))
            assert (times < 168.0).all()

    def test_all_mass_in_one_bin(self):
        rates = [0.0] * 168
        rates[50] = 4.0
        proc = DiurnalProcess(WeeklyRateCurve(tuple(rates)))
        times = proc.sample_times(336.0, np.random.default_rng(1))
        week_hour = times % 168
        assert ((week_hour >= 50.0) & (week_hour < 51.0)).all()

"""Cross-backend tenancy equivalence: real MultiTenantService vs kernel.

Both backends of :func:`repro.sim.backend.run_tenant_replications`
share the tenancy round protocol (arrival-event numbering, precomputed
inter-tenant priority keys, per-bag estimates, the controller's
provisioning/stall/retention rules — see
``repro/sim/tenancy_vectorized.py``), so for identical seeds, traffic,
and configurations the per-replication outcomes must agree to
float-associativity noise.  We pin 1e-9 hours on every timing array
(makespan, waits via start/finish times, worker/master hours) and
demand *exact* agreement of event, draw, preemption, failure,
completion, and admission outcomes.

Two layers, mirroring the cluster/service suites:

* a deterministic grid over seeds 0-4 x traffic shapes x scheduling
  policies x (admission, elastic, latency, spare, checkpoint) — the
  issue's acceptance grid;
* a hypothesis-driven differential fuzzer over random (traffic,
  config) scenarios — a small budget in tier-1, a deep ``slow``-marked
  budget for the scheduled ``slow-equivalence`` CI job.

The latency-with-reuse caveat of the service suite applies unchanged
(all-ages-rejecting laws churn; the controller now *raises*
``ProvisioningLivelockError`` for it — see test_service_livelock.py),
so latency grids pair the reuse policy with the bathtub law.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.sim.backend import run_tenant_replications
from repro.sim.tenancy_vectorized import BagSubmission, TenancyConfig

SEEDS = [0, 1, 2, 3, 4]

#: Traffic shapes: (tenant, time, [(hours, width), ...]) triples.
TRAFFICS = {
    "staggered": [
        (0, 0.0, [(1.5, 1), (0.8, 2)]),
        (1, 0.5, [(0.9, 1), (0.4, 1)]),
        (0, 1.2, [(0.7, 2)]),
        (2, 2.0, [(0.25, 1)] * 3),
    ],
    "burst": [
        (0, 0.0, [(1.0, 1)] * 3),
        (1, 0.0, [(0.5, 1)] * 3),
        (2, 0.0, [(0.75, 2), (0.3, 1)]),
        (1, 0.1, [(0.6, 2)]),
    ],
    "tie-storm": [
        (0, 0.5, [(0.75, 1)] * 3),
        (1, 0.5, [(0.75, 1)] * 3),
        (2, 0.5, [(0.75, 2)] * 2),
    ],
    "sparse": [
        (0, 0.0, [(0.5, 1)]),
        (1, 3.0, [(0.5, 2), (0.25, 1)]),
        (0, 6.5, [(1.0, 1)]),
    ],
}

POLICIES = ["fifo", "fair", "weighted"]

#: Configurations safe for any law (latency only with the policy off).
CONFIGS = {
    "base": dict(max_vms=4),
    "admission": dict(max_vms=4, admission_cap=4),
    "elastic": dict(max_vms=6, elastic_vms_per_bag=2),
    "short-spare": dict(max_vms=4, hot_spare_hours=0.3),
    "ckpt": dict(max_vms=4, checkpoint_interval=0.4),
    "memoryless-lat": dict(max_vms=4, use_reuse_policy=False, provision_latency=0.25),
    "no-master": dict(max_vms=4, run_master=False, estimate_window=2),
}

#: Latency-with-reuse configurations (bathtub law only — see module doc).
LATENCY_CONFIGS = {
    "lat": dict(max_vms=4, provision_latency=0.2),
    "lat-elastic": dict(
        max_vms=6, provision_latency=0.1, elastic_vms_per_bag=3, hot_spare_hours=0.5
    ),
}


def run_both(dist, traffic, seed, *, n=3, max_events=100_000, **kwargs):
    event = run_tenant_replications(
        dist,
        traffic,
        n_replications=n,
        seed=seed,
        backend="event",
        max_events=max_events,
        **kwargs,
    )
    vec = run_tenant_replications(
        dist,
        traffic,
        n_replications=n,
        seed=seed,
        backend="vectorized",
        max_events=max_events,
        **kwargs,
    )
    return event, vec


def assert_equivalent(event, vec):
    np.testing.assert_allclose(vec.makespan, event.makespan, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.wasted_hours, event.wasted_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(vec.vm_hours, event.vm_hours, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.master_hours, event.master_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(
        vec.start_times, event.start_times, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(
        vec.finish_times, event.finish_times, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec.admitted, event.admitted)
    np.testing.assert_array_equal(vec.completed_jobs, event.completed_jobs)
    np.testing.assert_array_equal(vec.n_job_failures, event.n_job_failures)
    np.testing.assert_array_equal(vec.n_preemptions, event.n_preemptions)
    np.testing.assert_array_equal(vec.n_events, event.n_events)
    np.testing.assert_array_equal(vec.n_draws, event.n_draws)
    assert vec.n_rounds == event.n_rounds


WEIGHTS = (3.0, 1.0, 2.0)


def policy_kwargs(policy):
    return (
        dict(scheduling=policy, tenant_weights=WEIGHTS)
        if policy == "weighted"
        else dict(scheduling=policy)
    )


class TestEquivalenceGrid:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_uniform_support_policies(self, seed, policy):
        """Short uniform support: frequent deaths exercise every path."""
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(
            *run_both(
                dist, TRAFFICS["staggered"], seed, max_vms=4, **policy_kwargs(policy)
            )
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("traffic", TRAFFICS.values(), ids=TRAFFICS.keys())
    def test_traffic_shapes_bathtub(self, reference_dist, seed, traffic):
        assert_equivalent(
            *run_both(reference_dist, traffic, seed, max_vms=4, scheduling="fair")
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    def test_config_grid_uniform(self, seed, config):
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(
            *run_both(dist, TRAFFICS["burst"], seed, scheduling="fair", **config)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "config", LATENCY_CONFIGS.values(), ids=LATENCY_CONFIGS.keys()
    )
    def test_provisioning_latency_bathtub(self, reference_dist, seed, config):
        """Boot latency under the paper's law (reuse policy on)."""
        assert_equivalent(
            *run_both(
                reference_dist,
                TRAFFICS["staggered"],
                seed,
                scheduling="weighted",
                tenant_weights=WEIGHTS,
                **config,
            )
        )

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_exponential_policies(self, seed, policy):
        dist = ExponentialDistribution(rate=0.7)
        assert_equivalent(
            *run_both(
                dist,
                TRAFFICS["tie-storm"],
                seed,
                max_vms=4,
                admission_cap=6,
                **policy_kwargs(policy),
            )
        )

    def test_simultaneous_arrival_tiebreak(self, reference_dist):
        """Same-instant bag arrivals resolve by scheduling order on both
        backends (arrival sequences 0..K-1)."""
        assert_equivalent(
            *run_both(reference_dist, TRAFFICS["tie-storm"], 0, max_vms=6)
        )

    def test_rejected_trailing_bag_extends_makespan(self, reference_dist):
        """A bag rejected after the last completion still ends the run at
        its arrival time on both backends (the service stays up)."""
        traffic = [
            (0, 0.0, [(0.3, 1)] * 4),
            (0, 5.0, [(0.3, 1)] * 4),
        ]
        event, vec = run_both(
            reference_dist, traffic, 0, max_vms=2, admission_cap=4, n=2
        )
        assert_equivalent(event, vec)
        # With cap 4, the t=5 bag is only admitted if the first finished.
        if not event.admitted[:, 4:].all():
            assert (event.makespan >= 5.0).all()


class TestDifferentialFuzz:
    """Randomised (traffic, config) tenancy scenarios."""

    LAWS = {
        "uniform": lambda: UniformLifetimeDistribution(6.0),
        "exponential": lambda: ExponentialDistribution(rate=0.7),
        "bathtub": None,  # filled from the reference fixture
    }

    scenario = st.fixed_dictionaries(
        {
            "law": st.sampled_from(["uniform", "exponential", "bathtub"]),
            "bags": st.lists(
                st.fixed_dictionaries(
                    {
                        "tenant": st.integers(0, 2),
                        "time": st.sampled_from([0.0, 0.0, 0.3, 0.8, 1.5, 2.5]),
                        "hours": st.lists(
                            st.sampled_from([0.2, 0.4, 0.5, 0.8, 1.2]),
                            min_size=1,
                            max_size=3,
                        ),
                        "widths": st.lists(
                            st.integers(1, 3), min_size=3, max_size=3
                        ),
                    }
                ),
                min_size=1,
                max_size=5,
            ),
            "scheduling": st.sampled_from(POLICIES),
            "max_vms": st.integers(3, 5),
            "reuse": st.booleans(),
            "latency": st.sampled_from([0.0, 0.1, 0.3]),
            "hot_spare_hours": st.sampled_from([0.3, 1.0]),
            "checkpoint_interval": st.sampled_from([None, 0.4]),
            "admission_cap": st.sampled_from([None, 3, 6]),
            "elastic": st.sampled_from([None, 3]),
            "run_master": st.booleans(),
            "estimate_window": st.sampled_from([2, 16]),
            "seed": st.integers(0, 2**16),
        }
    )

    def _check(self, reference_dist, s, *, n):
        traffic = [
            BagSubmission(
                tenant=b["tenant"],
                time=b["time"],
                jobs=tuple(
                    (h, w)
                    for h, w in zip(b["hours"], b["widths"][: len(b["hours"])])
                ),
            )
            for b in s["bags"]
        ]
        latency = s["latency"]
        if s["reuse"] and s["law"] != "bathtub" and latency > 0.0:
            # All-ages-rejecting laws + latency churn (and now raise the
            # livelock guardrail); keep the scenario, drop the latency.
            latency = 0.0
        dist = (
            reference_dist if s["law"] == "bathtub" else self.LAWS[s["law"]]()
        )
        config = TenancyConfig(
            max_vms=s["max_vms"],
            use_reuse_policy=s["reuse"],
            hot_spare_hours=s["hot_spare_hours"],
            provision_latency=latency,
            run_master=s["run_master"],
            checkpoint_interval=s["checkpoint_interval"],
            estimate_window=s["estimate_window"],
            # Geometric-tail headroom, as in the service fuzzer:
            # max_events stays the unfinishable backstop.
            max_attempts_per_job=100_000,
            scheduling=s["scheduling"],
            tenant_weights=WEIGHTS if s["scheduling"] == "weighted" else None,
            admission_cap=s["admission_cap"],
            elastic_vms_per_bag=s["elastic"],
        )
        assert_equivalent(
            *run_both(dist, traffic, s["seed"], n=n, config=config, n_tenants=3)
        )

    @given(s=scenario)
    @settings(max_examples=10, deadline=None)
    def test_fuzz_small(self, reference_dist, s):
        """Tier-1 budget: a taste of the scenario space per run."""
        self._check(reference_dist, s, n=2)

    @pytest.mark.slow
    @given(s=scenario)
    @settings(max_examples=100, deadline=None)
    def test_fuzz_deep(self, reference_dist, s):
        """Scheduled slow-equivalence budget: wide and replicated."""
        self._check(reference_dist, s, n=6)


class TestApiEdges:
    def test_triple_and_submission_inputs_agree(self, reference_dist):
        a = run_tenant_replications(
            reference_dist, [(0, 0.5, [(1.0, 1)])], n_replications=3, seed=0
        )
        b = run_tenant_replications(
            reference_dist,
            [BagSubmission(tenant=0, time=0.5, jobs=((1.0, 1),))],
            n_replications=3,
            seed=0,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_config_object_and_kwargs_agree(self, reference_dist):
        cfg = TenancyConfig(max_vms=3, scheduling="fair")
        traffic = [(0, 0.0, [(0.5, 1)]), (1, 0.2, [(0.5, 1)])]
        a = run_tenant_replications(
            reference_dist, traffic, config=cfg, n_replications=3, seed=1
        )
        b = run_tenant_replications(
            reference_dist,
            traffic,
            max_vms=3,
            scheduling="fair",
            n_replications=3,
            seed=1,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_unsorted_traffic_normalised(self, reference_dist):
        sorted_traffic = [(0, 0.2, [(0.5, 1)]), (1, 0.9, [(0.4, 1)])]
        shuffled = [sorted_traffic[1], sorted_traffic[0]]
        a = run_tenant_replications(
            reference_dist, sorted_traffic, n_replications=3, seed=0
        )
        b = run_tenant_replications(reference_dist, shuffled, n_replications=3, seed=0)
        np.testing.assert_array_equal(a.makespan, b.makespan)
        np.testing.assert_array_equal(a.job_tenant, b.job_tenant)

    def test_empty_traffic_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="non-empty"):
            run_tenant_replications(reference_dist, [])

    def test_width_exceeding_fleet_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="exceeds max_vms"):
            run_tenant_replications(
                reference_dist, [(0, 0.0, [(1.0, 9)])], max_vms=4
            )

    def test_elastic_must_cover_widest_job(self, reference_dist):
        with pytest.raises(ValueError, match="widest"):
            run_tenant_replications(
                reference_dist,
                [(0, 0.0, [(1.0, 3)])],
                max_vms=4,
                elastic_vms_per_bag=2,
            )

    def test_insufficient_n_tenants_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="tenant"):
            run_tenant_replications(
                reference_dist, [(3, 0.0, [(1.0, 1)])], n_tenants=2
            )

    def test_short_weights_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="weights"):
            run_tenant_replications(
                reference_dist,
                [(2, 0.0, [(1.0, 1)])],
                scheduling="weighted",
                tenant_weights=(1.0, 2.0),
            )

    def test_invalid_scheduling_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="scheduling"):
            run_tenant_replications(
                reference_dist, [(0, 0.0, [(1.0, 1)])], scheduling="lottery"
            )

    def test_invalid_backend_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="backend"):
            run_tenant_replications(
                reference_dist, [(0, 0.0, [(1.0, 1)])], backend="gpu"
            )

    def test_zero_replications(self, reference_dist):
        for backend in ("event", "vectorized"):
            out = run_tenant_replications(
                reference_dist,
                [(0, 0.0, [(1.0, 1)])],
                n_replications=0,
                backend=backend,
            )
            assert out.n_replications == 0
            assert out.n_rounds == 0
            assert out.n_jobs == 1

    def test_unfinishable_traffic_raises_on_both(self):
        """A job longer than the support can never finish uncheckpointed."""
        dist = UniformLifetimeDistribution(6.0)
        for backend in ("event", "vectorized"):
            with pytest.raises(RuntimeError, match="events"):
                run_tenant_replications(
                    dist,
                    [(0, 0.0, [(30.0, 1)])],
                    max_vms=2,
                    n_replications=2,
                    backend=backend,
                    max_events=300,
                )

    def test_outcome_views(self, reference_dist):
        traffic = [(0, 0.0, [(0.5, 1)] * 2), (1, 0.5, [(0.4, 2)])]
        out = run_tenant_replications(
            reference_dist, traffic, max_vms=3, n_replications=6, seed=0
        )
        assert out.n_tenants == 2
        assert out.n_jobs == 3
        assert (out.completed_jobs == 3).all()
        assert out.admitted.all()
        waits = out.wait_times
        assert np.nanmin(waits) >= -1e-12
        turnaround = out.turnaround_times
        assert (turnaround >= waits - 1e-12).all()
        np.testing.assert_allclose(out.admitted_fraction, 1.0)
        np.testing.assert_allclose(
            out.on_demand_baseline(1.0), 0.5 * 2 + 0.4 * 2
        )
        crf = out.cost_reduction_factor(0.2, 1.0, master_rate=0.05)
        assert crf.shape == (6,)
        assert np.all(crf > 0.0)


class TestChunkedStreaming:
    """The ``chunk_size`` streaming path: bounded-memory chunked batches
    must stay cross-backend equivalent at every chunk size, and a chunk
    covering the whole batch must be byte-identical to no chunking."""

    TRAFFIC = [
        (0, 0.0, [(0.6, 1), (0.4, 2)]),
        (1, 0.3, [(0.5, 1)] * 2),
        (2, 0.9, [(0.8, 2)]),
        (0, 1.4, [(0.3, 1)]),
    ]

    def test_covering_chunk_identical_to_unchunked(self, reference_dist):
        base = run_tenant_replications(
            reference_dist, self.TRAFFIC, n_replications=5, seed=0, max_vms=4
        )
        covered = run_tenant_replications(
            reference_dist,
            self.TRAFFIC,
            n_replications=5,
            seed=0,
            max_vms=4,
            chunk_size=5,
        )
        np.testing.assert_array_equal(base.makespan, covered.makespan)
        np.testing.assert_array_equal(base.vm_hours, covered.vm_hours)
        np.testing.assert_array_equal(base.finish_times, covered.finish_times)
        assert base.n_rounds == covered.n_rounds

    @pytest.mark.parametrize("chunk_size", [1, 2, 3])
    def test_backends_agree_per_chunk_size(self, reference_dist, chunk_size):
        """Both backends consume the shared generator chunk by chunk in
        the same way, so equivalence holds at any chunk size — including
        sizes that do not divide the batch."""
        assert_equivalent(
            *run_both(
                reference_dist,
                self.TRAFFIC,
                3,
                n=5,
                max_vms=4,
                scheduling="fair",
                chunk_size=chunk_size,
            )
        )

    def test_chunked_deterministic(self, reference_dist):
        a = run_tenant_replications(
            reference_dist, self.TRAFFIC, n_replications=6, seed=2, max_vms=4,
            chunk_size=2,
        )
        b = run_tenant_replications(
            reference_dist, self.TRAFFIC, n_replications=6, seed=2, max_vms=4,
            chunk_size=2,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)
        np.testing.assert_array_equal(a.admitted, b.admitted)

    def test_invalid_chunk_size_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="chunk_size"):
            run_tenant_replications(
                reference_dist, self.TRAFFIC, n_replications=2, chunk_size=0
            )

    def test_swf_slice_oracle(self, reference_dist):
        """The acceptance path: the event oracle replays a small slice
        of the SWF fixture against the chunked batched kernel."""
        from repro.traces.swf import SAMPLE_SWF, swf_traffic

        traffic = swf_traffic(SAMPLE_SWF, width_cap=2, max_jobs=10)
        assert_equivalent(
            *run_both(
                reference_dist, traffic, 0, n=4, max_vms=4, chunk_size=2
            )
        )

    @pytest.mark.slow
    def test_swf_slice_oracle_deep(self, reference_dist):
        """Slow-equivalence budget: longer fixture slices, more chunk
        shapes, policies on."""
        from repro.traces.swf import SAMPLE_SWF, swf_traffic

        traffic = swf_traffic(SAMPLE_SWF, width_cap=4, max_jobs=24)
        for seed, chunk in [(0, 1), (1, 3), (2, 4)]:
            assert_equivalent(
                *run_both(
                    reference_dist,
                    traffic,
                    seed,
                    n=8,
                    max_vms=6,
                    scheduling="fair",
                    checkpoint_interval=0.5,
                    chunk_size=chunk,
                )
            )


@pytest.mark.slow
class TestSlowEquivalence:
    """Deep tenancy budget for the scheduled slow-equivalence CI job."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_grid_deep(self, seed, policy):
        dist = UniformLifetimeDistribution(6.0)
        for traffic in TRAFFICS.values():
            assert_equivalent(
                *run_both(
                    dist,
                    traffic,
                    seed,
                    n=16,
                    max_vms=4,
                    admission_cap=6,
                    **policy_kwargs(policy),
                )
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_heavy_traffic_bathtub(self, reference_dist, seed):
        """Large sampled traffic through the real arrival processes."""
        from repro.traffic.arrivals import (
            JobMix,
            PoissonProcess,
            TenantSpec,
            sample_traffic,
        )

        tenants = [
            TenantSpec(
                name=f"t{i}",
                arrivals=PoissonProcess(0.8),
                mix=JobMix(mean_hours=0.6, cv=0.4, widths=(1, 2), jobs_per_bag=(1, 3)),
                weight=float(i + 1),
            )
            for i in range(4)
        ]
        traffic = sample_traffic(tenants, 6.0, seed=seed)
        assert_equivalent(
            *run_both(
                reference_dist,
                traffic,
                seed,
                n=8,
                max_vms=8,
                scheduling="weighted",
                tenant_weights=(1.0, 2.0, 3.0, 4.0),
                provision_latency=0.1,
                checkpoint_interval=0.5,
                elastic_vms_per_bag=4,
            )
        )

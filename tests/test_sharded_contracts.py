"""Fail-fast contracts of the sharded / compiled execution options.

Misconfigurations must fail *before* any worker process spawns, with
messages that say what to change: ``workers < 1`` and non-picklable
inputs are ``ValueError`` s raised up front, ``capture`` composes with
``workers=1`` only (rows drawn inside worker processes are unobservable
to the parent's capture object), and requesting
``backend="vectorized-compiled"`` with no compiled provider available
is an actionable ``ImportError`` naming the install options — pinned
here by monkeypatching every provider loader away.
"""

import shutil

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.sim.backend import (
    DrawCapture,
    run_cluster_replications,
    run_replications,
    run_service_replications,
    run_tenant_replications,
)

pytestmark = pytest.mark.sharded

DIST = ExponentialDistribution(3.0)
SEGMENTS = [0.8, 0.5]
JOBS = [(0.5, 1), (0.4, 2)]
TRAFFIC = [(0, 0.0, [(0.5, 1)]), (1, 0.2, [(0.4, 2)])]

ENTRY_POINTS = [
    lambda **kw: run_replications(DIST, SEGMENTS, **kw),
    lambda **kw: run_cluster_replications(DIST, JOBS, pool_size=2, **kw),
    lambda **kw: run_service_replications(DIST, JOBS, max_vms=2, **kw),
    lambda **kw: run_tenant_replications(DIST, TRAFFIC, max_vms=2, **kw),
]


class TestWorkersValidation:
    @pytest.mark.parametrize("entry", ENTRY_POINTS)
    @pytest.mark.parametrize("workers", [0, -1, -7])
    def test_nonpositive_workers_rejected(self, entry, workers):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            entry(n_replications=4, workers=workers)

    @pytest.mark.parametrize("entry", ENTRY_POINTS)
    def test_capture_with_workers_rejected(self, entry):
        capture = DrawCapture()
        with pytest.raises(ValueError, match="capture is incompatible with workers"):
            entry(n_replications=4, workers=2, capture=capture)

    def test_capture_left_fresh_after_rejection(self):
        """The rejection fires before arming: the capture stays usable."""
        capture = DrawCapture()
        with pytest.raises(ValueError, match="capture is incompatible"):
            run_replications(
                DIST, SEGMENTS, n_replications=4, workers=2, capture=capture
            )
        assert capture.n_rounds == 0
        run_replications(DIST, SEGMENTS, n_replications=4, capture=capture)
        assert capture.n_rounds > 0

    def test_unpicklable_inputs_rejected_before_spawn(self):
        """A distribution that cannot cross a process boundary is a
        ``ValueError`` naming pickle — not a traceback from inside a
        half-started pool."""

        class LocalDist(ExponentialDistribution):  # local class: unpicklable
            pass

        with pytest.raises(ValueError, match="pickle"):
            run_replications(
                LocalDist(3.0), SEGMENTS, n_replications=4, workers=2
            )

    @pytest.mark.parametrize("entry", ENTRY_POINTS)
    def test_workers_one_is_the_serial_path(self, entry):
        """``workers=1`` must not fork: it is the exact serial code path
        (a capture composes with it, which only the serial path allows)."""
        capture = DrawCapture()
        out = entry(n_replications=3, workers=1, capture=capture)
        assert capture.n_rounds > 0
        assert capture.uniforms.shape[1] == 3


@pytest.mark.compiled
class TestCompiledProviderContracts:
    def _clear_cache(self):
        from repro.sim import compiled

        saved = dict(compiled._PROVIDER_CACHE)
        compiled._PROVIDER_CACHE.clear()
        return compiled, saved

    def test_no_provider_is_actionable_importerror(self, monkeypatch):
        compiled, saved = self._clear_cache()
        try:

            def missing():
                raise ImportError("module not installed")

            monkeypatch.setitem(compiled._LOADERS, "numba", missing)
            monkeypatch.setitem(compiled._LOADERS, "cc", missing)
            with pytest.raises(ImportError, match="Install numba"):
                run_replications(
                    DIST, SEGMENTS, n_replications=4,
                    backend="vectorized-compiled",
                )
        finally:
            compiled._PROVIDER_CACHE.clear()
            compiled._PROVIDER_CACHE.update(saved)

    def test_unknown_provider_rejected(self):
        from repro.sim.compiled import resolve_walk

        with pytest.raises(ValueError, match="unknown compiled provider"):
            resolve_walk("fortran")

    def test_python_provider_matches_vectorized(self):
        """The always-available pure-python provider is byte-identical
        to the NumPy kernel — the equivalence floor every compiled
        provider must also meet."""
        from repro.sim.compiled import simulate_plan_compiled

        base = run_replications(
            DIST, SEGMENTS, n_replications=40, seed=0, restart_latency=0.05
        )
        mk, wasted, completed, restarts, n_rounds = simulate_plan_compiled(
            DIST,
            np.asarray(SEGMENTS, dtype=float),
            delta=1.0 / 60.0,
            start_age=0.0,
            restart_latency=0.05,
            n_replications=40,
            rng=np.random.default_rng(0),
            max_rounds=10_000,
            provider="python",
        )
        np.testing.assert_array_equal(base.makespan, mk)
        np.testing.assert_array_equal(base.wasted_hours, wasted)
        np.testing.assert_array_equal(base.n_restarts, restarts)

    @pytest.mark.skipif(
        shutil.which("cc") is None and shutil.which("gcc") is None,
        reason="no C compiler",
    )
    def test_cc_provider_matches_vectorized(self):
        base = run_replications(
            DIST, SEGMENTS, n_replications=40, seed=0, restart_latency=0.05
        )
        compiled = run_replications(
            DIST, SEGMENTS, n_replications=40, seed=0, restart_latency=0.05,
            backend="vectorized-compiled",
        )
        np.testing.assert_array_equal(base.makespan, compiled.makespan)
        np.testing.assert_array_equal(base.wasted_hours, compiled.wasted_hours)
        np.testing.assert_array_equal(base.n_restarts, compiled.n_restarts)
        assert base.n_rounds == compiled.n_rounds

"""``checkpoint="dp"`` equivalence: event planner vs batched walker.

The batched :class:`repro.sim.checkpoint_vectorized.DPPlanWalker` must
replay the event-driven controller's per-attempt
:meth:`CheckpointPolicy.plan` walk exactly — same segments, same ages,
same draws — so both backends agree at 1e-9 hours with identical event
and draw counts on every replication.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.checkpointing import CheckpointPolicy
from repro.sim.backend import (
    run_cluster_replications,
    run_service_replications,
    run_tenant_replications,
)
from repro.sim.checkpoint_vectorized import DPPlanWalker, walker_from_config
from repro.sim.cluster_vectorized import ClusterConfig
from repro.sim.service_vectorized import ServiceBatchConfig
from repro.sim.tenancy_vectorized import TenancyConfig

SEEDS = range(5)
BAG = [(3.7, 2), (1.2, 1), (8.4, 3), (0.05, 1)]
TRAFFIC = [
    (0, 0.0, [(2.5, 2), (1.0, 1)]),
    (1, 1.5, [(4.0, 1)]),
    (0, 3.0, [(0.5, 1), (6.0, 2)]),
]


def _assert_cluster_equal(a, b):
    np.testing.assert_allclose(a.makespan, b.makespan, atol=1e-9)
    np.testing.assert_allclose(a.wasted_hours, b.wasted_hours, atol=1e-9)
    np.testing.assert_allclose(a.vm_hours, b.vm_hours, atol=1e-9)
    np.testing.assert_array_equal(a.n_events, b.n_events)
    np.testing.assert_array_equal(a.n_draws, b.n_draws)
    np.testing.assert_array_equal(a.n_preemptions, b.n_preemptions)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda **kw: ClusterConfig(pool_size=2, **kw),
            lambda **kw: ServiceBatchConfig(max_vms=2, **kw),
            lambda **kw: TenancyConfig(max_vms=2, **kw),
        ],
        ids=["cluster", "service", "tenancy"],
    )
    def test_dp_excludes_fixed_interval(self, factory):
        with pytest.raises(ValueError, match="dp"):
            factory(checkpoint="dp", checkpoint_interval=1.0)
        with pytest.raises(ValueError, match="checkpoint"):
            factory(checkpoint="nonsense")
        assert factory(checkpoint="dp").checkpoint == "dp"

    def test_walker_only_built_for_dp(self, reference_dist):
        work = np.array([1.0, 2.0])
        assert (
            walker_from_config(
                reference_dist, ClusterConfig(pool_size=2), 4, work
            )
            is None
        )
        walker = walker_from_config(
            reference_dist,
            ClusterConfig(pool_size=2, checkpoint="dp"),
            4,
            work,
        )
        assert isinstance(walker, DPPlanWalker)


class TestWalkerReplaysPlan:
    def test_walker_matches_event_plan_segment_for_segment(
        self, reference_dist
    ):
        # Drive one walker cell by hand and compare against the plan
        # the controller would ship for the same (work, age).
        policy = CheckpointPolicy(reference_dist, step=0.1, delta=0.05)
        for work, age in [(3.7, 0.0), (8.4, 2.3), (1.25, 11.0), (0.7, 0.4)]:
            expected = list(policy.plan(work, age).segments)
            walker = DPPlanWalker(policy, 1, 1)
            rr = np.array([0])
            jj = np.array([0])
            walker.begin(rr, jj, np.array([work]), np.array([age]))
            left = work
            got = []
            while left > 1e-12:
                take = float(walker.next_take(rr, jj, np.array([left]))[0])
                got.append(take)
                left -= take
            # The event path clips the plan to the work actually left;
            # replaying the full plan must agree hour for hour.
            clipped = []
            left = work
            for seg in expected:
                clipped.append(min(seg, left))
                left -= clipped[-1]
                if left <= 1e-12:
                    break
            if left > 1e-12:
                clipped.append(left)
            np.testing.assert_allclose(got, clipped, atol=1e-12)

    def test_short_attempt_runs_unplanned(self, reference_dist):
        policy = CheckpointPolicy(reference_dist, step=0.1, delta=0.05)
        walker = DPPlanWalker(policy, 1, 1)
        rr, jj = np.array([0]), np.array([0])
        walker.begin(rr, jj, np.array([0.05]), np.array([0.0]))
        take = walker.next_take(rr, jj, np.array([0.05]))
        assert float(take[0]) == pytest.approx(0.05)


class TestDPEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cluster(self, reference_dist, seed):
        config = ClusterConfig(
            pool_size=4, checkpoint="dp", checkpoint_cost=0.05
        )
        a, b = (
            run_cluster_replications(
                reference_dist,
                BAG,
                config=config,
                n_replications=32,
                seed=seed,
                backend=backend,
            )
            for backend in ("event", "vectorized")
        )
        _assert_cluster_equal(a, b)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_service(self, reference_dist, seed):
        config = ServiceBatchConfig(
            max_vms=4, checkpoint="dp", checkpoint_cost=0.05
        )
        a, b = (
            run_service_replications(
                reference_dist,
                BAG,
                config=config,
                n_replications=32,
                seed=seed,
                backend=backend,
            )
            for backend in ("event", "vectorized")
        )
        _assert_cluster_equal(a, b)
        np.testing.assert_allclose(a.master_hours, b.master_hours, atol=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tenancy(self, reference_dist, seed):
        config = TenancyConfig(
            max_vms=4, checkpoint="dp", checkpoint_cost=0.05
        )
        a, b = (
            run_tenant_replications(
                reference_dist,
                TRAFFIC,
                config=config,
                n_replications=16,
                seed=seed,
                backend=backend,
            )
            for backend in ("event", "vectorized")
        )
        np.testing.assert_allclose(a.makespan, b.makespan, atol=1e-9)
        np.testing.assert_allclose(a.vm_hours, b.vm_hours, atol=1e-9)
        np.testing.assert_array_equal(a.n_draws, b.n_draws)


@pytest.mark.slow
class TestDeepDPEquivalence:
    """Scheduled deep grid: wider bags, reuse/backfill interactions."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("use_reuse_policy", [False, True])
    @pytest.mark.parametrize("hot_spare", [False, True])
    def test_cluster_grid(self, reference_dist, seed, use_reuse_policy, hot_spare):
        config = ClusterConfig(
            pool_size=6,
            use_reuse_policy=use_reuse_policy,
            hot_spare=hot_spare,
            checkpoint="dp",
            checkpoint_cost=0.1,
            checkpoint_step=0.25,
        )
        bag = BAG + [(0.3, 2), (5.5, 4), (2.2, 1)]
        a, b = (
            run_cluster_replications(
                reference_dist,
                bag,
                config=config,
                n_replications=64,
                seed=seed,
                backend=backend,
            )
            for backend in ("event", "vectorized")
        )
        _assert_cluster_equal(a, b)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("backfill", [False, True])
    def test_service_grid(self, reference_dist, seed, backfill):
        config = ServiceBatchConfig(
            max_vms=6,
            backfill=backfill,
            provision_latency=0.05,
            checkpoint="dp",
            checkpoint_cost=0.1,
            checkpoint_step=0.25,
        )
        bag = BAG + [(0.3, 2), (5.5, 4), (2.2, 1)]
        a, b = (
            run_service_replications(
                reference_dist,
                bag,
                config=config,
                n_replications=64,
                seed=seed,
                backend=backend,
            )
            for backend in ("event", "vectorized")
        )
        _assert_cluster_equal(a, b)

"""Tests for least-squares fitting, MLE, metrics, and model selection."""

import numpy as np
import pytest

from repro.core.model import BathtubParams
from repro.distributions import (
    BathtubDistribution,
    ExponentialDistribution,
    WeibullDistribution,
)
from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import (
    fit_bathtub,
    fit_exponential,
    fit_gompertz_makeham,
    fit_piecewise_bathtub,
    fit_weibull,
)
from repro.fitting.metrics import evaluate_fit, ks_statistic, r_squared, rmse
from repro.fitting.mle import mle_bathtub, mle_exponential
from repro.fitting.selection import compare_models


@pytest.fixture(scope="module")
def bathtub_samples(reference_dist):
    return reference_dist.sample(600, np.random.default_rng(21))


@pytest.fixture(scope="module")
def bathtub_ecdf(bathtub_samples):
    return EmpiricalCDF.from_samples(bathtub_samples)


class TestLeastSquares:
    def test_bathtub_recovers_ground_truth(self, bathtub_ecdf, reference_params):
        fit = fit_bathtub(bathtub_ecdf)
        assert fit.params["A"] == pytest.approx(reference_params.A, abs=0.08)
        assert fit.params["tau1"] == pytest.approx(reference_params.tau1, rel=0.35)
        assert fit.params["tau2"] == pytest.approx(reference_params.tau2, rel=0.45)
        assert fit.params["b"] == pytest.approx(reference_params.b, rel=0.03)

    def test_fitted_params_within_paper_ranges(self, bathtub_ecdf):
        p = fit_bathtub(bathtub_ecdf).params
        assert 0.35 <= p["A"] <= 0.55
        assert 0.3 <= p["tau1"] <= 6.0
        assert 0.4 <= p["tau2"] <= 1.5
        assert 22.0 <= p["b"] <= 26.0

    def test_exponential_recovers_rate(self):
        true = ExponentialDistribution(rate=0.4)
        s = true.sample(2000, np.random.default_rng(3))
        fit = fit_exponential(EmpiricalCDF.from_samples(s))
        assert fit.params["rate"] == pytest.approx(0.4, rel=0.1)

    def test_weibull_recovers_shape(self):
        true = WeibullDistribution(lam=0.2, k=2.0)
        s = true.sample(2000, np.random.default_rng(4))
        fit = fit_weibull(EmpiricalCDF.from_samples(s))
        assert fit.params["k"] == pytest.approx(2.0, rel=0.15)
        assert fit.params["lam"] == pytest.approx(0.2, rel=0.1)

    def test_gompertz_fit_runs(self, bathtub_ecdf):
        fit = fit_gompertz_makeham(bathtub_ecdf)
        assert fit.sse >= 0.0

    def test_piecewise_fit_beats_exponential(self, bathtub_ecdf):
        pw = fit_piecewise_bathtub(bathtub_ecdf)
        exp = fit_exponential(bathtub_ecdf)
        assert pw.sse < exp.sse
        # Recovered hazards must be bathtub-ordered.
        assert pw.params["early_hazard"] > pw.params["stable_hazard"]
        assert pw.params["final_hazard"] > pw.params["stable_hazard"]


class TestMetrics:
    def test_r_squared_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_rmse(self):
        assert rmse(np.zeros(4), np.full(4, 2.0)) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r_squared(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(4))

    def test_ks_statistic_exact_for_steps(self):
        e = EmpiricalCDF.from_samples(np.array([1.0, 2.0]))
        u = ExponentialDistribution(rate=1e-9)  # F ~ 0 everywhere
        assert ks_statistic(e, u) == pytest.approx(1.0, abs=1e-6)

    def test_evaluate_fit_bundle(self, bathtub_ecdf, bathtub_samples, reference_dist):
        gof = evaluate_fit(bathtub_ecdf, reference_dist, bathtub_samples, n_params=4)
        assert gof.r2 > 0.98
        assert gof.rmse < 0.03
        assert gof.n_params == 4
        assert np.isfinite(gof.aic)


class TestMLE:
    def test_exponential_mle(self):
        s = np.random.default_rng(5).exponential(3.0, size=5000)
        d = mle_exponential(s)
        assert d.mttf == pytest.approx(3.0, rel=0.05)

    def test_exponential_mle_empty(self):
        with pytest.raises(ValueError):
            mle_exponential(np.array([]))

    def test_bathtub_mle_close_to_ls(self, bathtub_samples, reference_params):
        d = mle_bathtub(bathtub_samples)
        assert d.params.b == pytest.approx(reference_params.b, rel=0.05)
        assert d.params.A == pytest.approx(reference_params.A, abs=0.1)

    def test_bathtub_mle_needs_samples(self):
        with pytest.raises(ValueError):
            mle_bathtub(np.array([1.0, 2.0]))


class TestSelection:
    def test_bathtub_wins_on_bathtub_data(self, bathtub_ecdf, bathtub_samples):
        cmp_ = compare_models(bathtub_ecdf, bathtub_samples)
        assert cmp_.best == "bathtub"
        # The paper's headline: classical families are far worse.
        assert cmp_.improvement_over("exponential") > 5.0
        assert cmp_.improvement_over("weibull") > 2.0

    def test_scores_and_ranking_consistent(self, bathtub_ecdf, bathtub_samples):
        cmp_ = compare_models(bathtub_ecdf, bathtub_samples)
        rmses = [cmp_.scores[n].rmse for n in cmp_.ranking]
        assert rmses == sorted(rmses)

    def test_unknown_family_rejected(self, bathtub_ecdf, bathtub_samples):
        with pytest.raises(ValueError):
            compare_models(bathtub_ecdf, bathtub_samples, families=("nope",))

    def test_subset_of_families(self, bathtub_ecdf, bathtub_samples):
        cmp_ = compare_models(
            bathtub_ecdf, bathtub_samples, families=("exponential", "weibull")
        )
        assert set(cmp_.fits) == {"exponential", "weibull"}

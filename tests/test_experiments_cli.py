"""Tests for the experiments CLI (`python -m repro.experiments`)."""

import json

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "checkpoint-schedule" in out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_help_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "crossover" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "fig1" in err and "checkpoint-schedule" in err

    def test_seed_passthrough(self, capsys):
        assert main(["checkpoint-schedule"]) == 0
        capsys.readouterr()
        # checkpoint-schedule's run() takes no seed parameter.
        with pytest.raises(SystemExit, match="does not accept --seed"):
            main(["checkpoint-schedule", "--seed", "7"])

    def test_seed_rejected_for_all(self, capsys):
        assert main(["all", "--seed", "1"]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_metrics_and_trace_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main([
            "fig4-mc",
            "--seed", "0",
            "--metrics-out", str(metrics),
            "--trace-out", str(trace),
        ]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["generator"] == "repro.obs"
        assert doc["experiment"] == "fig4-mc"
        assert doc["counters"].get("events.restart", 0) > 0
        tdoc = json.loads(trace.read_text())
        assert isinstance(tdoc["traceEvents"], list)

"""Tests for the experiments CLI (`python -m repro.experiments`)."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "checkpoint-schedule" in out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "crossover" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="known:"):
            main(["fig99"])

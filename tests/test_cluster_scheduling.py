"""FIFO head-of-line semantics and backfill in ClusterManager.

The gang scheduler's queue discipline was previously implicit; these
tests pin it down (see the ClusterManager docstring):

* strict FIFO by default — a stuck wide job blocks narrower ones;
* ``backfill=True`` lets jobs behind a stuck head start on nodes the
  head cannot use (unreserved backfill: no guarantee for the head);
* ``on_queue_stalled`` fires for the stuck head whether the selector
  defers with ``None`` or an empty list.
"""

import pytest

from repro.sim.cluster import ClusterManager, JobState, SimJob
from repro.sim.engine import Simulator
from repro.sim.vm import SimVM


def make_vm(vm_id, launch_time=0.0):
    return SimVM(
        vm_id=vm_id,
        vm_type="t",
        zone="z",
        launch_time=launch_time,
        preemptible=True,
        hourly_price=0.0,
    )


def cluster_with_nodes(n, **kwargs):
    sim = Simulator()
    cluster = ClusterManager(sim, **kwargs)
    for k in range(n):
        cluster.add_node(make_vm(k))
    return sim, cluster


class TestHeadOfLine:
    def test_stuck_wide_job_blocks_narrow_ones(self):
        """Strict FIFO: the width-3 head starves the width-1 job behind it."""
        sim, cluster = cluster_with_nodes(2)
        wide = SimJob(job_id=0, work_hours=1.0, width=3)
        narrow = SimJob(job_id=1, work_hours=1.0, width=1)
        cluster.submit(wide)
        cluster.submit(narrow)
        assert wide.state is JobState.PENDING
        assert narrow.state is JobState.PENDING
        assert cluster.queue_length == 2
        assert cluster.queue_head() is wide
        # Free nodes exist, but FIFO refuses to leapfrog the head.
        assert len(cluster.free_nodes()) == 2

    def test_backfill_starts_narrow_jobs_past_stuck_head(self):
        sim, cluster = cluster_with_nodes(2, backfill=True)
        wide = SimJob(job_id=0, work_hours=1.0, width=3)
        narrow = SimJob(job_id=1, work_hours=1.0, width=1)
        narrow2 = SimJob(job_id=2, work_hours=1.0, width=1)
        cluster.submit(wide)
        cluster.submit(narrow)
        cluster.submit(narrow2)
        assert wide.state is JobState.PENDING
        assert narrow.state is JobState.RUNNING
        assert narrow2.state is JobState.RUNNING
        assert cluster.queue_head() is wide

    def test_backfill_preserves_fifo_among_startable_jobs(self):
        """Backfill scans in queue order: the earlier narrow job wins the
        last free node."""
        sim, cluster = cluster_with_nodes(1, backfill=True)
        cluster.submit(SimJob(job_id=0, work_hours=1.0, width=2))
        first = SimJob(job_id=1, work_hours=1.0, width=1)
        second = SimJob(job_id=2, work_hours=1.0, width=1)
        cluster.submit(first)
        cluster.submit(second)
        assert first.state is JobState.RUNNING
        assert second.state is JobState.PENDING

    def test_head_runs_once_nodes_arrive(self):
        """Head-of-line blocking ends as soon as enough nodes register."""
        sim, cluster = cluster_with_nodes(2)
        wide = SimJob(job_id=0, work_hours=1.0, width=3)
        narrow = SimJob(job_id=1, work_hours=1.0, width=1)
        cluster.submit(wide)
        cluster.submit(narrow)
        cluster.add_node(make_vm(99))
        assert wide.state is JobState.RUNNING
        # With 3 nodes taken by the head, the narrow job keeps waiting.
        assert narrow.state is JobState.PENDING


class TestStallCallback:
    def test_stall_fires_for_stuck_head_only(self):
        sim, cluster = cluster_with_nodes(2)
        stalls = []
        cluster.on_queue_stalled.append(lambda job, n_free: stalls.append((job.job_id, n_free)))
        cluster.submit(SimJob(job_id=0, work_hours=1.0, width=3))
        cluster.submit(SimJob(job_id=1, work_hours=1.0, width=1))
        # One stall per scheduling pass, always for the head; the narrow
        # job behind it never reports.
        assert stalls == [(0, 2), (0, 2)]

    def test_stall_fires_when_selector_returns_empty_list(self):
        """An empty-list defer stalls the head exactly like None
        (previously this fell through silently when nodes were free)."""
        sim = Simulator()
        cluster = ClusterManager(sim, node_selector=lambda job, free: [])
        stalls = []
        cluster.on_queue_stalled.append(lambda job, n_free: stalls.append(job.job_id))
        cluster.add_node(make_vm(0))
        cluster.add_node(make_vm(1))
        cluster.submit(SimJob(job_id=7, work_hours=1.0, width=1))
        assert stalls == [7]

    def test_stall_callback_may_unblock_head_synchronously(self):
        """A callback that registers nodes recurses into try_schedule;
        the scan restarts cleanly and the head starts exactly once."""
        sim = Simulator()
        cluster = ClusterManager(sim)
        fed = []

        def feed(job, n_free):
            if not fed:
                fed.append(True)
                cluster.add_node(make_vm(42))

        cluster.on_queue_stalled.append(feed)
        job = SimJob(job_id=0, work_hours=1.0, width=1)
        cluster.submit(job)
        assert job.state is JobState.RUNNING
        assert job.attempts == 1

    def test_queue_head_accessor(self):
        sim, cluster = cluster_with_nodes(0)
        assert cluster.queue_head() is None
        job = SimJob(job_id=0, work_hours=1.0, width=1)
        cluster.submit(job)
        assert cluster.queue_head() is job


class TestBackfillDiscipline:
    """Deeper backfill semantics (the cases the equivalence tier sweeps
    statistically, pinned here deterministically)."""

    def test_requeued_head_still_blocks_without_backfill(self):
        """A preempted job returns to the *head*; strict FIFO keeps
        later jobs parked behind it even when nodes free up."""
        sim, cluster = cluster_with_nodes(2)
        wide = SimJob(job_id=0, work_hours=1.0, width=2)
        narrow = SimJob(job_id=1, work_hours=1.0, width=1)
        cluster.submit(wide)
        cluster.submit(narrow)
        assert wide.state is JobState.RUNNING
        # Preempt one gang member: the wide job aborts and requeues at
        # the head; the surviving node cannot serve the narrow job.
        victim = cluster.busy_nodes()[0]
        victim.mark_preempted(sim.now)
        for cb in list(victim.on_preempt):
            cb(victim, sim.now)
        assert wide.state is JobState.PENDING
        assert cluster.queue_head() is wide
        assert narrow.state is JobState.PENDING
        assert len(cluster.free_nodes()) == 1

    def test_requeued_head_is_backfilled_past(self):
        """Same scenario with backfill: the survivor picks up the
        narrow job while the wide head waits for a replacement."""
        sim, cluster = cluster_with_nodes(2, backfill=True)
        wide = SimJob(job_id=0, work_hours=1.0, width=2)
        narrow = SimJob(job_id=1, work_hours=1.0, width=1)
        cluster.submit(wide)  # starts on both nodes before narrow arrives
        cluster.submit(narrow)
        assert wide.state is JobState.RUNNING
        victim = cluster.busy_nodes()[0]
        victim.mark_preempted(sim.now)
        for cb in list(victim.on_preempt):
            cb(victim, sim.now)
        assert wide.state is JobState.PENDING
        assert cluster.queue_head() is wide
        assert narrow.state is JobState.RUNNING

    def test_backfill_scan_skips_wide_starts_later_narrow(self):
        """The scan passes over *every* job it cannot place, not just
        the head: job 1 (width 2) is skipped, job 2 (width 1) starts."""
        sim, cluster = cluster_with_nodes(1, backfill=True)
        cluster.submit(SimJob(job_id=0, work_hours=1.0, width=3))
        skipped = SimJob(job_id=1, work_hours=1.0, width=2)
        started = SimJob(job_id=2, work_hours=1.0, width=1)
        cluster.submit(skipped)
        cluster.submit(started)
        assert skipped.state is JobState.PENDING
        assert started.state is JobState.RUNNING

    def test_stall_fires_once_for_head_under_backfill(self):
        sim, cluster = cluster_with_nodes(1, backfill=True)
        stalls = []
        cluster.on_queue_stalled.append(lambda job, n_free: stalls.append(job.job_id))
        cluster.submit(SimJob(job_id=0, work_hours=1.0, width=2))
        cluster.submit(SimJob(job_id=1, work_hours=1.0, width=1))
        # One stall per scheduling pass, always for the head — never for
        # the backfilled job behind it.
        assert stalls == [0, 0]

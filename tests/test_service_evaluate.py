"""Tests for the headless service policy evaluator.

The evaluator extends the event<->vectorized determinism contract from
checkpoint sweeps to full policy configurations: hot-spare gating, the
batched Eq. 8 reuse decision, and checkpoint-plan execution at
per-replication start ages must produce identical seeded outcomes on
both backends.
"""

import numpy as np
import pytest

from repro.service import (
    BatchComputingService,
    ServiceConfig,
    ServicePolicyEvaluator,
    sweep_configurations,
)
from repro.sim.cloud import CloudProvider
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog

N = 400
JOB = 6.0

CONFIGS = [
    ServiceConfig(),
    ServiceConfig(use_reuse_policy=False),
    ServiceConfig(use_checkpointing=True),
    ServiceConfig(use_checkpointing=True, use_reuse_policy=False, provision_latency=0.05),
    ServiceConfig(hot_spare_hours=3.0),
]


def _config_id(cfg: ServiceConfig) -> str:
    return (
        f"reuse{int(cfg.use_reuse_policy)}-ckpt{int(cfg.use_checkpointing)}"
        f"-spare{cfg.hot_spare_hours:g}-lat{cfg.provision_latency:g}"
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_seeded_outcomes(self, reference_dist, config, seed):
        ev = ServicePolicyEvaluator(reference_dist, config)
        event = ev.evaluate(JOB, n_replications=N, seed=seed, backend="event")
        vec = ev.evaluate(JOB, n_replications=N, seed=seed, backend="vectorized")
        np.testing.assert_allclose(
            vec.outcomes.makespan, event.outcomes.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.outcomes.wasted_hours,
            event.outcomes.wasted_hours,
            rtol=0.0,
            atol=1e-9,
        )
        np.testing.assert_array_equal(
            vec.outcomes.n_restarts, event.outcomes.n_restarts
        )
        # The arrival pipeline (ages, gaps, decisions) is backend-independent.
        np.testing.assert_array_equal(vec.start_ages, event.start_ages)
        np.testing.assert_array_equal(vec.reused, event.reused)
        assert vec.failure_fraction == event.failure_fraction

    def test_generator_seed_matches_int_seed(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist)
        a = ev.evaluate(JOB, n_replications=N, seed=7)
        b = ev.evaluate(JOB, n_replications=N, seed=np.random.default_rng(7))
        np.testing.assert_array_equal(a.outcomes.makespan, b.outcomes.makespan)


class TestReplicationModel:
    @pytest.fixture(scope="class")
    def result(self, reference_dist):
        return ServicePolicyEvaluator(reference_dist).evaluate(
            JOB, n_replications=4000, seed=0
        )

    def test_monte_carlo_matches_closed_form(self, result):
        """The sampled failure fraction estimates the analytic curve."""
        assert result.failure_fraction == pytest.approx(
            result.expected_failure_fraction, abs=0.03
        )

    def test_hot_spare_window_gates_reuse(self, result):
        """Jobs never reuse a VM whose idle gap exceeded the hold window."""
        hold = result.config.hot_spare_hours
        assert not np.any(result.reused & (result.idle_gaps > hold))
        assert np.all(result.start_ages[~result.reused] == 0.0)
        np.testing.assert_array_equal(
            result.start_ages[result.reused], result.vm_ages[result.reused]
        )
        # With max_idle = 2 * hold, about half the arrivals find a spare.
        assert 0.4 < result.spare_hit_fraction < 0.6

    def test_reuse_policy_beats_memoryless(self, reference_dist):
        """The Fig. 5/6 claim at the evaluator level, under paired draws."""
        on, off = sweep_configurations(
            reference_dist,
            [ServiceConfig(), ServiceConfig(use_reuse_policy=False)],
            JOB,
            n_replications=4000,
            seed=0,
        )
        np.testing.assert_array_equal(on.vm_ages, off.vm_ages)  # paired
        assert on.failure_fraction < off.failure_fraction
        assert on.mean_makespan < off.mean_makespan

    def test_checkpointing_reduces_makespan(self, reference_dist):
        """Checkpointed execution wastes less work for long jobs."""
        plain, ckpt = sweep_configurations(
            reference_dist,
            [ServiceConfig(), ServiceConfig(use_checkpointing=True)],
            8.0,
            n_replications=3000,
            seed=1,
        )
        assert len(ckpt.segments) > 1
        assert ckpt.mean_makespan < plain.mean_makespan
        assert ckpt.mean_wasted_hours < plain.mean_wasted_hours

    def test_cost_metrics(self, result):
        spec = default_catalog().spec("n1-highcpu-16")
        factor = result.cost_reduction_factor(
            spec.preemptible_price, spec.on_demand_price
        )
        # Raw discount is ~4.7x; preemption overheads eat some of it.
        assert 3.0 < factor < spec.discount
        assert result.mean_cost_per_job(spec.preemptible_price) == pytest.approx(
            result.mean_makespan * spec.preemptible_price
        )

    def test_summary_renders(self, result):
        text = result.summary()
        assert "P(fail)" in text and "reuse=on" in text

    def test_zero_replications(self, reference_dist):
        out = ServicePolicyEvaluator(reference_dist).evaluate(
            JOB, n_replications=0, seed=0
        )
        assert out.n_replications == 0
        assert out.expected_failure_fraction == 0.0

    def test_validation(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist)
        with pytest.raises(ValueError):
            ev.evaluate(0.0)
        with pytest.raises(ValueError):
            ev.evaluate(JOB, n_replications=-1)
        with pytest.raises(ValueError):
            ev.evaluate(JOB, max_idle_hours=-1.0)


class TestPlanSegments:
    def test_uncheckpointed_by_default(self, reference_dist):
        assert ServicePolicyEvaluator(reference_dist).plan_segments(JOB) == (JOB,)

    def test_dp_plan_when_enabled(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(use_checkpointing=True)
        )
        segments = ev.plan_segments(5.0)
        assert len(segments) > 1
        assert sum(segments) == pytest.approx(5.0)

    def test_tiny_job_stays_single_segment(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(use_checkpointing=True)
        )
        assert ev.plan_segments(0.05) == (0.05,)


class TestControllerHook:
    def test_policy_evaluator_shares_model_and_config(self):
        catalog = default_catalog()
        sim = Simulator()
        cloud = CloudProvider(sim, catalog, RandomStreams(0))
        model = catalog.distribution("n1-highcpu-16", "us-central1-c")
        config = ServiceConfig(use_checkpointing=True)
        service = BatchComputingService(sim, cloud, model, config)
        ev = service.policy_evaluator()
        assert ev.dist is model
        assert ev.config is config
        hook = ev.evaluate(JOB, n_replications=200, seed=0)
        standalone = ServicePolicyEvaluator(model, config).evaluate(
            JOB, n_replications=200, seed=0
        )
        np.testing.assert_array_equal(
            hook.outcomes.makespan, standalone.outcomes.makespan
        )

"""Tests for the headless service policy evaluator.

The evaluator extends the event<->vectorized determinism contract from
checkpoint sweeps to full policy configurations: hot-spare gating, the
batched Eq. 8 reuse decision, and checkpoint-plan execution at
per-replication start ages must produce identical seeded outcomes on
both backends.
"""

import numpy as np
import pytest

from repro.service import (
    BatchComputingService,
    ServiceConfig,
    ServicePolicyEvaluator,
    sweep_configurations,
)
from repro.sim.cloud import CloudProvider
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog

N = 400
JOB = 6.0

CONFIGS = [
    ServiceConfig(),
    ServiceConfig(use_reuse_policy=False),
    ServiceConfig(use_checkpointing=True),
    ServiceConfig(use_checkpointing=True, use_reuse_policy=False, provision_latency=0.05),
    ServiceConfig(hot_spare_hours=3.0),
]


def _config_id(cfg: ServiceConfig) -> str:
    return (
        f"reuse{int(cfg.use_reuse_policy)}-ckpt{int(cfg.use_checkpointing)}"
        f"-spare{cfg.hot_spare_hours:g}-lat{cfg.provision_latency:g}"
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_seeded_outcomes(self, reference_dist, config, seed):
        ev = ServicePolicyEvaluator(reference_dist, config)
        event = ev.evaluate(JOB, n_replications=N, seed=seed, backend="event")
        vec = ev.evaluate(JOB, n_replications=N, seed=seed, backend="vectorized")
        np.testing.assert_allclose(
            vec.outcomes.makespan, event.outcomes.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.outcomes.wasted_hours,
            event.outcomes.wasted_hours,
            rtol=0.0,
            atol=1e-9,
        )
        np.testing.assert_array_equal(
            vec.outcomes.n_restarts, event.outcomes.n_restarts
        )
        # The arrival pipeline (ages, gaps, decisions) is backend-independent.
        np.testing.assert_array_equal(vec.start_ages, event.start_ages)
        np.testing.assert_array_equal(vec.reused, event.reused)
        assert vec.failure_fraction == event.failure_fraction

    def test_generator_seed_matches_int_seed(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist)
        a = ev.evaluate(JOB, n_replications=N, seed=7)
        b = ev.evaluate(JOB, n_replications=N, seed=np.random.default_rng(7))
        np.testing.assert_array_equal(a.outcomes.makespan, b.outcomes.makespan)


class TestReplicationModel:
    @pytest.fixture(scope="class")
    def result(self, reference_dist):
        return ServicePolicyEvaluator(reference_dist).evaluate(
            JOB, n_replications=4000, seed=0
        )

    def test_monte_carlo_matches_closed_form(self, result):
        """The sampled failure fraction estimates the analytic curve."""
        assert result.failure_fraction == pytest.approx(
            result.expected_failure_fraction, abs=0.03
        )

    def test_hot_spare_window_gates_reuse(self, result):
        """Jobs never reuse a VM whose idle gap exceeded the hold window."""
        hold = result.config.hot_spare_hours
        assert not np.any(result.reused & (result.idle_gaps > hold))
        assert np.all(result.start_ages[~result.reused] == 0.0)
        np.testing.assert_array_equal(
            result.start_ages[result.reused], result.vm_ages[result.reused]
        )
        # With max_idle = 2 * hold, about half the arrivals find a spare.
        assert 0.4 < result.spare_hit_fraction < 0.6

    def test_reuse_policy_beats_memoryless(self, reference_dist):
        """The Fig. 5/6 claim at the evaluator level, under paired draws."""
        on, off = sweep_configurations(
            reference_dist,
            [ServiceConfig(), ServiceConfig(use_reuse_policy=False)],
            JOB,
            n_replications=4000,
            seed=0,
        )
        np.testing.assert_array_equal(on.vm_ages, off.vm_ages)  # paired
        assert on.failure_fraction < off.failure_fraction
        assert on.mean_makespan < off.mean_makespan

    def test_checkpointing_reduces_makespan(self, reference_dist):
        """Checkpointed execution wastes less work for long jobs."""
        plain, ckpt = sweep_configurations(
            reference_dist,
            [ServiceConfig(), ServiceConfig(use_checkpointing=True)],
            8.0,
            n_replications=3000,
            seed=1,
        )
        assert len(ckpt.segments) > 1
        assert ckpt.mean_makespan < plain.mean_makespan
        assert ckpt.mean_wasted_hours < plain.mean_wasted_hours

    def test_cost_metrics(self, result):
        spec = default_catalog().spec("n1-highcpu-16")
        factor = result.cost_reduction_factor(
            spec.preemptible_price, spec.on_demand_price
        )
        # Raw discount is ~4.7x; preemption overheads eat some of it.
        assert 3.0 < factor < spec.discount
        assert result.mean_cost_per_job(spec.preemptible_price) == pytest.approx(
            result.mean_makespan * spec.preemptible_price
        )

    def test_summary_renders(self, result):
        text = result.summary()
        assert "P(fail)" in text and "reuse=on" in text

    def test_zero_replications(self, reference_dist):
        out = ServicePolicyEvaluator(reference_dist).evaluate(
            JOB, n_replications=0, seed=0
        )
        assert out.n_replications == 0
        assert out.expected_failure_fraction == 0.0

    def test_validation(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist)
        with pytest.raises(ValueError):
            ev.evaluate(0.0)
        with pytest.raises(ValueError):
            ev.evaluate(JOB, n_replications=-1)
        with pytest.raises(ValueError):
            ev.evaluate(JOB, max_idle_hours=-1.0)


class TestPlanSegments:
    def test_uncheckpointed_by_default(self, reference_dist):
        assert ServicePolicyEvaluator(reference_dist).plan_segments(JOB) == (JOB,)

    def test_dp_plan_when_enabled(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(use_checkpointing=True)
        )
        segments = ev.plan_segments(5.0)
        assert len(segments) > 1
        assert sum(segments) == pytest.approx(5.0)

    def test_tiny_job_stays_single_segment(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(use_checkpointing=True)
        )
        assert ev.plan_segments(0.05) == (0.05,)


class TestControllerHook:
    def test_policy_evaluator_shares_model_and_config(self):
        catalog = default_catalog()
        sim = Simulator()
        cloud = CloudProvider(sim, catalog, RandomStreams(0))
        model = catalog.distribution("n1-highcpu-16", "us-central1-c")
        config = ServiceConfig(use_checkpointing=True)
        service = BatchComputingService(sim, cloud, model, config)
        ev = service.policy_evaluator()
        assert ev.dist is model
        assert ev.config is config
        hook = ev.evaluate(JOB, n_replications=200, seed=0)
        standalone = ServicePolicyEvaluator(model, config).evaluate(
            JOB, n_replications=200, seed=0
        )
        np.testing.assert_array_equal(
            hook.outcomes.makespan, standalone.outcomes.makespan
        )


class TestEvaluateCluster:
    """The cluster-scale entry point over run_cluster_replications."""

    BAG = [(0.8, 1), (0.5, 2), (1.2, 1), (0.3, 2)]

    def test_backends_agree(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=4))
        event = ev.evaluate_cluster(self.BAG, n_replications=6, seed=3, backend="event")
        vec = ev.evaluate_cluster(self.BAG, n_replications=6, seed=3, backend="vectorized")
        np.testing.assert_allclose(
            vec.outcomes.makespan, event.outcomes.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.outcomes.wasted_hours,
            event.outcomes.wasted_hours,
            rtol=0.0,
            atol=1e-9,
        )
        np.testing.assert_array_equal(
            vec.outcomes.n_job_failures, event.outcomes.n_job_failures
        )

    def test_config_mapping(self, reference_dist):
        cfg = ServiceConfig(max_vms=6, use_reuse_policy=False, use_checkpointing=True)
        ev = ServicePolicyEvaluator(reference_dist, cfg)
        ccfg = ev.cluster_config()
        assert ccfg.pool_size == 6
        assert not ccfg.use_reuse_policy
        # use_checkpointing with no fixed interval maps onto the batched
        # DP plan walker (the Young-Daly stand-in is gone).
        assert ccfg.checkpoint == "dp"
        assert ccfg.checkpoint_interval is None
        assert ccfg.checkpoint_step == cfg.checkpoint_step
        assert ccfg.checkpoint_cost == cfg.checkpoint_cost

    def test_explicit_interval_overrides_default(self, reference_dist):
        cfg = ServiceConfig(use_checkpointing=True)
        ev = ServicePolicyEvaluator(reference_dist, cfg)
        assert ev.cluster_config(checkpoint_interval=0.25).checkpoint_interval == 0.25

    def test_metrics_and_summary(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=4))
        res = ev.evaluate_cluster(self.BAG, n_replications=8, seed=0)
        assert res.n_replications == 8
        assert res.total_work_hours == pytest.approx(0.8 + 1.0 + 1.2 + 0.6)
        assert res.mean_makespan > 0.0
        assert res.mean_cost_per_job(1.0) == pytest.approx(
            res.outcomes.mean_vm_hours / 4
        )
        factor = res.cost_reduction_factor(0.2, 1.0)
        assert factor > 0.0
        assert "pool=4" in res.summary()

    def test_reachable_from_controller_hook(self):
        from repro.sim.cloud import CloudProvider
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams
        from repro.traces.catalog import default_catalog

        sim = Simulator()
        cloud = CloudProvider(sim, default_catalog(), RandomStreams(0))
        model = default_catalog().distribution("n1-highcpu-16", "us-east1-b")
        service = BatchComputingService(sim, cloud, model, ServiceConfig(max_vms=4))
        res = service.policy_evaluator().evaluate_cluster(
            self.BAG, n_replications=4, seed=1
        )
        assert res.cluster_config.pool_size == 4
        assert (res.outcomes.completed_jobs == len(self.BAG)).all()


class TestEvaluateService:
    """The full-controller entry point over run_service_replications."""

    BAG = [(0.8, 1), (0.5, 2), (1.2, 1), (0.3, 2)]

    def test_backends_agree(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(max_vms=4, provision_latency=0.1)
        )
        event = ev.evaluate_service(self.BAG, n_replications=6, seed=3, backend="event")
        vec = ev.evaluate_service(
            self.BAG, n_replications=6, seed=3, backend="vectorized"
        )
        np.testing.assert_allclose(
            vec.outcomes.makespan, event.outcomes.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.outcomes.vm_hours, event.outcomes.vm_hours, rtol=0.0, atol=1e-9
        )
        np.testing.assert_array_equal(
            vec.outcomes.n_preemptions, event.outcomes.n_preemptions
        )

    def test_batch_config_mapping(self, reference_dist):
        cfg = ServiceConfig(
            max_vms=6,
            use_reuse_policy=False,
            use_checkpointing=True,
            provision_latency=0.2,
            backfill=True,
            run_master=False,
        )
        ev = ServicePolicyEvaluator(reference_dist, cfg)
        bcfg = ev.service_batch_config()
        assert bcfg.max_vms == 6
        assert not bcfg.use_reuse_policy
        assert bcfg.provision_latency == 0.2
        assert bcfg.backfill and not bcfg.run_master
        # use_checkpointing with no fixed interval maps onto the batched
        # DP plan walker (the Young-Daly stand-in is gone).
        assert bcfg.checkpoint == "dp"
        assert bcfg.checkpoint_interval is None
        assert bcfg.checkpoint_step == cfg.checkpoint_step

    def test_explicit_interval_passthrough(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(checkpoint_interval=0.3)
        )
        assert ev.service_batch_config().checkpoint_interval == 0.3

    def test_metrics_and_summary(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=4))
        res = ev.evaluate_service(self.BAG, n_replications=8, seed=0)
        assert res.n_replications == 8
        assert res.total_work_hours == pytest.approx(0.8 + 1.0 + 1.2 + 0.6)
        assert res.mean_makespan > 0.0
        assert res.mean_cost_per_job(1.0) == pytest.approx(
            res.outcomes.mean_cost(1.0) / 4
        )
        # Master billing shows up in the factor: pricier master => lower.
        cheap = res.cost_reduction_factor(0.2, 1.0, master_rate=0.0)
        dear = res.cost_reduction_factor(0.2, 1.0, master_rate=0.5)
        assert 0.0 < dear < cheap
        assert "lat=0" in res.summary() and "fleet=4" in res.summary()

    def test_reachable_from_controller_hook(self):
        sim = Simulator()
        cloud = CloudProvider(sim, default_catalog(), RandomStreams(0))
        model = default_catalog().distribution("n1-highcpu-16", "us-east1-b")
        service = BatchComputingService(sim, cloud, model, ServiceConfig(max_vms=4))
        res = service.policy_evaluator().evaluate_service(
            self.BAG, n_replications=4, seed=1
        )
        assert res.batch_config.max_vms == 4
        assert (res.outcomes.completed_jobs == len(self.BAG)).all()


class TestEvaluateTenants:
    """The traffic-serving entry point over run_tenant_replications."""

    TRAFFIC = [
        (0, 0.0, [(0.6, 1), (0.4, 1)]),
        (1, 0.3, [(0.5, 2)]),
        (0, 1.0, [(0.3, 1)]),
    ]

    def test_backends_agree(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=3))
        event = ev.evaluate_tenants(
            self.TRAFFIC, n_replications=5, seed=2, backend="event", scheduling="fair"
        )
        vec = ev.evaluate_tenants(
            self.TRAFFIC,
            n_replications=5,
            seed=2,
            backend="vectorized",
            scheduling="fair",
        )
        np.testing.assert_allclose(
            vec.outcomes.makespan, event.outcomes.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.outcomes.start_times, event.outcomes.start_times, rtol=0.0, atol=1e-9
        )
        np.testing.assert_array_equal(vec.outcomes.admitted, event.outcomes.admitted)

    def test_tenancy_config_mapping(self, reference_dist):
        cfg = ServiceConfig(
            max_vms=6,
            use_reuse_policy=False,
            use_checkpointing=True,
            provision_latency=0.2,
            run_master=False,
        )
        ev = ServicePolicyEvaluator(reference_dist, cfg)
        tcfg = ev.tenancy_config(
            scheduling="weighted",
            tenant_weights=(1.0, 2.0),
            admission_cap=5,
            elastic_vms_per_bag=3,
        )
        assert tcfg.max_vms == 6
        assert not tcfg.use_reuse_policy
        assert tcfg.provision_latency == 0.2
        assert not tcfg.run_master
        assert tcfg.scheduling == "weighted"
        assert tcfg.tenant_weights == (1.0, 2.0)
        assert tcfg.admission_cap == 5 and tcfg.elastic_vms_per_bag == 3
        # use_checkpointing with no fixed interval maps onto the batched
        # DP plan walker (the Young-Daly stand-in is gone).
        assert tcfg.checkpoint == "dp"
        assert tcfg.checkpoint_interval is None
        assert tcfg.checkpoint_step == cfg.checkpoint_step

    def test_metrics_and_summary(self, reference_dist):
        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=3))
        res = ev.evaluate_tenants(
            self.TRAFFIC, n_replications=8, seed=0, admission_cap=8
        )
        assert res.n_replications == 8
        assert res.admitted_fraction == 1.0
        assert res.mean_wait_hours >= 0.0
        assert res.cost_reduction_factor(0.2, 1.0) > 0.0
        text = res.summary()
        assert "sched=fifo" in text and "cap=8" in text

    def test_shared_plumbing_matches_direct_call(self, reference_dist):
        """The evaluator front end is pure plumbing over the backend
        entry point: same config, same seed => identical arrays."""
        from repro.sim.backend import run_tenant_replications

        ev = ServicePolicyEvaluator(reference_dist, ServiceConfig(max_vms=3))
        res = ev.evaluate_tenants(self.TRAFFIC, n_replications=4, seed=7)
        direct = run_tenant_replications(
            reference_dist,
            self.TRAFFIC,
            config=ev.tenancy_config(),
            n_replications=4,
            seed=7,
        )
        np.testing.assert_array_equal(res.outcomes.makespan, direct.makespan)
        np.testing.assert_array_equal(res.outcomes.n_draws, direct.n_draws)

    def test_backfill_rejected_like_the_live_front_end(self, reference_dist):
        ev = ServicePolicyEvaluator(
            reference_dist, ServiceConfig(max_vms=3, backfill=True)
        )
        with pytest.raises(ValueError, match="backfill"):
            ev.evaluate_tenants(self.TRAFFIC, n_replications=2)

"""Tests for the trace substrate: schema, catalog, generator, IO, stats."""

import numpy as np
import pytest

from repro.traces.catalog import (
    DEADLINE_HOURS,
    REGIONS,
    VM_TYPES,
    GroundTruthCatalog,
    default_catalog,
)
from repro.traces.generator import TraceGenerator
from repro.traces.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.traces.schema import PreemptionRecord, PreemptionTrace, concat_traces
from repro.traces.stats import group_summary, lifetimes_by, trace_summary


class TestSchema:
    def test_record_validation(self):
        r = PreemptionRecord("n1-highcpu-16", "us-east1-b", 5.0)
        assert not r.censored
        with pytest.raises(ValueError):
            PreemptionRecord("t", "z", -1.0)
        with pytest.raises(ValueError):
            PreemptionRecord("t", "z", 1.0, day_of_week=7)
        with pytest.raises(ValueError):
            PreemptionRecord("t", "z", 1.0, launch_hour=24.0)

    def test_night_launch_window(self):
        assert PreemptionRecord("t", "z", 1.0, launch_hour=21.0).night_launch
        assert PreemptionRecord("t", "z", 1.0, launch_hour=3.0).night_launch
        assert not PreemptionRecord("t", "z", 1.0, launch_hour=12.0).night_launch
        assert PreemptionRecord("t", "z", 1.0, launch_hour=20.0).night_launch
        assert not PreemptionRecord("t", "z", 1.0, launch_hour=8.0).night_launch

    def test_trace_filter_and_lifetimes(self):
        trace = PreemptionTrace(
            records=[
                PreemptionRecord("a", "z1", 1.0),
                PreemptionRecord("b", "z1", 2.0, censored=True),
                PreemptionRecord("a", "z2", 3.0, idle=True),
            ]
        )
        assert len(trace) == 3
        assert list(trace.lifetimes()) == [1.0, 3.0]
        assert list(trace.lifetimes(include_censored=True)) == [1.0, 2.0, 3.0]
        assert len(trace.filter(vm_type="a")) == 2
        assert len(trace.filter(zone="z2")) == 1
        assert len(trace.filter(idle=True)) == 1
        assert trace.vm_types() == ["a", "b"]
        assert trace.zones() == ["z1", "z2"]

    def test_concat(self):
        t1 = PreemptionTrace(records=[PreemptionRecord("a", "z", 1.0)])
        t2 = PreemptionTrace(records=[PreemptionRecord("b", "z", 2.0)])
        assert len(concat_traces([t1, t2])) == 2
        assert len(concat_traces([])) == 0


class TestCatalog:
    def test_known_types_and_zones(self, catalog):
        assert set(catalog.vm_types()) == set(VM_TYPES)
        assert set(catalog.zones()) == set(REGIONS)
        with pytest.raises(KeyError):
            catalog.params("n2-standard-4")
        with pytest.raises(KeyError):
            catalog.params("n1-highcpu-2", "mars-central1-a")
        with pytest.raises(KeyError):
            catalog.spec("unknown")

    def test_observation_4_larger_vms_fail_sooner(self, catalog):
        """Ground-truth expected lifetimes decrease with VM size."""
        lifetimes = [
            catalog.distribution(vt, "us-central1-c").mean() for vt in VM_TYPES
        ]
        assert all(a > b for a, b in zip(lifetimes, lifetimes[1:]))

    def test_observation_5_night_and_idle_live_longer(self, catalog):
        base = catalog.distribution("n1-highcpu-16", "us-central1-c").mean()
        night = catalog.distribution("n1-highcpu-16", "us-central1-c", night=True).mean()
        idle = catalog.distribution("n1-highcpu-16", "us-central1-c", idle=True).mean()
        assert night > base
        assert idle > base

    def test_observation_3_every_context_is_bathtub(self, catalog):
        """All configurations exhibit the three-phase bathtub pdf."""
        for vt in VM_TYPES:
            for zone in REGIONS:
                d = catalog.distribution(vt, zone)
                early = float(d.pdf(0.05))
                mid = float(d.pdf(12.0))
                late = float(d.pdf(DEADLINE_HOURS - 0.3))
                assert early > mid and late > mid, (vt, zone)

    def test_prices_and_discount(self, catalog):
        for vt in VM_TYPES:
            spec = catalog.spec(vt)
            assert 4.0 < spec.discount < 5.0  # the ~4.7x 2019 sheet

    def test_deadline_is_24h(self, catalog):
        for vt in VM_TYPES:
            assert catalog.params(vt).b == DEADLINE_HOURS

    def test_default_catalog_singleton(self):
        assert default_catalog() is default_catalog()

    def test_custom_catalog_isolated(self, catalog):
        custom = GroundTruthCatalog(vm_specs=dict(catalog.vm_specs))
        assert custom is not default_catalog()


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = TraceGenerator(seed=3).launch_batch(30, "n1-highcpu-16")
        b = TraceGenerator(seed=3).launch_batch(30, "n1-highcpu-16")
        np.testing.assert_array_equal(a.lifetimes(), b.lifetimes())

    def test_different_seeds_differ(self):
        a = TraceGenerator(seed=3).launch_batch(30, "n1-highcpu-16")
        b = TraceGenerator(seed=4).launch_batch(30, "n1-highcpu-16")
        assert not np.array_equal(a.lifetimes(), b.lifetimes())

    def test_censoring_window(self):
        trace = TraceGenerator(seed=5).launch_batch(
            200, "n1-highcpu-2", observe_hours=2.0
        )
        censored = [r for r in trace if r.censored]
        assert censored, "flat early phase must leave survivors at 2 h"
        assert all(r.lifetime_hours == 2.0 for r in censored)
        assert all(r.lifetime_hours <= 2.0 for r in trace)

    def test_fixed_launch_hour(self):
        trace = TraceGenerator(seed=6).launch_batch(10, "n1-highcpu-16", launch_hour=2.0)
        assert all(r.launch_hour == 2.0 and r.night_launch for r in trace)

    def test_lifetimes_respect_ground_truth_distribution(self, catalog):
        trace = TraceGenerator(seed=7).launch_batch(
            2000, "n1-highcpu-16", "us-east1-b", launch_hour=12.0
        )
        lt = np.sort(trace.lifetimes())
        truth = catalog.distribution("n1-highcpu-16", "us-east1-b")
        emp = np.arange(1, len(lt) + 1) / len(lt)
        ks = np.max(np.abs(emp - np.asarray(truth.cdf(lt))))
        assert ks < 0.04

    def test_study_trace_covers_dimensions(self):
        trace = TraceGenerator(seed=8).study_trace(per_config=5)
        assert set(trace.vm_types()) == set(VM_TYPES)
        assert set(trace.zones()) == set(REGIONS)
        assert any(r.idle for r in trace)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator().launch_batch(-1, "n1-highcpu-16")


class TestIO:
    def test_csv_roundtrip(self, tmp_path):
        trace = TraceGenerator(seed=9).launch_batch(25, "n1-highcpu-16", observe_hours=20.0)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.vm_type == b.vm_type
            assert a.lifetime_hours == b.lifetime_hours  # repr round-trip exact
            assert a.censored == b.censored

    def test_csv_missing_columns(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("vm_type,zone\nx,y\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_trace_csv(p)

    def test_csv_external_boolean_spellings(self, tmp_path):
        """Externally exported datasets (pandas to_csv) write True/False
        strings; the loader must accept them alongside our 0/1."""
        p = tmp_path / "external.csv"
        p.write_text(
            "vm_type,zone,lifetime_hours,day_of_week,launch_hour,idle,censored\n"
            "n1-highcpu-16,us-east1-b,3.5,2,10.0,True,False\n"
            "n1-highcpu-16,us-east1-b,1.0,2,11.0,false,TRUE\n"
            "n1-highcpu-16,us-east1-b,24.0,3,0.0,0,1\n"
        )
        loaded = load_trace_csv(p)
        assert [r.idle for r in loaded] == [True, False, False]
        assert [r.censored for r in loaded] == [False, True, True]

    def test_csv_garbage_boolean_rejected(self, tmp_path):
        p = tmp_path / "bad_bool.csv"
        p.write_text(
            "vm_type,zone,lifetime_hours,day_of_week,launch_hour,idle,censored\n"
            "x,y,1.0,0,0.0,maybe,0\n"
        )
        with pytest.raises(ValueError, match="idle.*boolean"):
            load_trace_csv(p)

    def test_json_roundtrip(self, tmp_path):
        trace = TraceGenerator(seed=10).launch_batch(10, "n1-highcpu-4")
        path = tmp_path / "trace.json"
        save_trace_json(trace, path)
        loaded = load_trace_json(path)
        assert len(loaded) == 10
        assert loaded.metadata.seed == 10
        np.testing.assert_array_equal(loaded.lifetimes(), trace.lifetimes())


class TestStats:
    @pytest.fixture(scope="class")
    def mixed_trace(self):
        gen = TraceGenerator(seed=11)
        t = gen.launch_batch(150, "n1-highcpu-2", launch_hour=12.0)
        t.extend(gen.launch_batch(150, "n1-highcpu-32", launch_hour=12.0).records)
        return t

    def test_trace_summary_fields(self, mixed_trace):
        s = trace_summary(mixed_trace)
        assert s.n == 300
        assert s.p10_hours < s.median_hours < s.p90_hours
        assert 0.0 <= s.frac_early <= 1.0

    def test_group_by_type(self, mixed_trace):
        groups = group_summary(mixed_trace, "vm_type")
        assert set(groups) == {"n1-highcpu-2", "n1-highcpu-32"}
        # Observation 4 again, at the sample level.
        assert groups["n1-highcpu-2"].frac_early < groups["n1-highcpu-32"].frac_early

    def test_group_by_callable(self, mixed_trace):
        groups = lifetimes_by(mixed_trace, lambda r: r.lifetime_hours > 12.0)
        assert set(groups) == {False, True}

    def test_censored_excluded(self):
        t = PreemptionTrace(
            records=[
                PreemptionRecord("a", "z", 1.0),
                PreemptionRecord("a", "z", 9.9, censored=True),
            ]
        )
        assert trace_summary(t).n == 1

    def test_empty_group_stats(self):
        from repro.traces.stats import GroupStats

        s = GroupStats.from_lifetimes(np.array([]))
        assert s.n == 0 and np.isnan(s.mean_hours)

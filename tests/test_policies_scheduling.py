"""Tests for the VM-reuse scheduling policy (paper Section 4.2, Figs. 5-7)."""

import numpy as np
import pytest

from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    SchedulingDecision,
    average_failure_probability,
    effective_start_ages,
    job_failure_probability,
    job_failure_probability_batch,
)


@pytest.fixture(scope="module")
def policy(reference_dist):
    return ModelReusePolicy(reference_dist)


@pytest.fixture(scope="module")
def baseline(reference_dist):
    return MemorylessSchedulingPolicy(reference_dist)


class TestFailureProbability:
    def test_fresh_vm_equals_cdf(self, reference_dist):
        assert job_failure_probability(reference_dist, 6.0, 0.0) == pytest.approx(
            float(reference_dist.cdf(6.0))
        )

    def test_certain_failure_past_deadline_window(self, reference_dist):
        """A 6 h job started after hour 18 cannot finish (Fig. 5)."""
        assert job_failure_probability(reference_dist, 6.0, 19.0) == 1.0

    def test_stable_phase_is_safest(self, reference_dist):
        p_fresh = job_failure_probability(reference_dist, 4.0, 0.0)
        p_stable = job_failure_probability(reference_dist, 4.0, 8.0)
        assert p_stable < p_fresh / 5.0


class TestReuseDecision:
    def test_stable_vm_reused(self, policy):
        assert policy.decide(6.0, 8.0) is SchedulingDecision.REUSE

    def test_near_deadline_vm_discarded(self, policy):
        assert policy.decide(6.0, 20.0) is SchedulingDecision.NEW_VM

    def test_dead_vm_discarded(self, policy, reference_dist):
        assert policy.decide(1.0, reference_dist.t_max + 1.0) is SchedulingDecision.NEW_VM

    def test_decision_consistent_with_critical_age(self, policy):
        ca = policy.critical_age(6.0)
        assert policy.decide(6.0, ca - 0.5) is SchedulingDecision.REUSE
        assert policy.decide(6.0, ca + 0.5) is SchedulingDecision.NEW_VM

    def test_critical_age_decreases_with_job_length(self, policy):
        ages = [policy.critical_age(T) for T in (1.0, 4.0, 8.0, 12.0)]
        assert all(a >= b for a, b in zip(ages, ages[1:]))

    def test_six_hour_job_critical_age_matches_paper_scale(self, policy):
        """Paper narrative: switch to fresh VMs in the late-life region
        (around 24 - 6 = 18 h; the Eq. 8 criterion flips a little earlier)."""
        assert 13.0 < policy.critical_age(6.0) < 19.0

    def test_oversized_job_never_reuses(self, policy):
        assert policy.critical_age(25.0) == 0.0

    def test_critical_job_length(self, policy):
        assert policy.critical_job_length(0.0) == float("inf")
        t_star = policy.critical_job_length(12.0)
        assert 5.0 < t_star < 13.0
        assert policy.decide(t_star - 0.5, 12.0) is SchedulingDecision.REUSE
        assert policy.decide(t_star + 0.5, 12.0) is SchedulingDecision.NEW_VM

    def test_invalid_criterion(self, reference_dist):
        with pytest.raises(ValueError):
            ModelReusePolicy(reference_dist, criterion="bogus")


class TestConditionalCriterion:
    def test_coincides_with_paper_at_age_zero(self, reference_dist):
        paper = ModelReusePolicy(reference_dist, criterion="paper")
        cond = ModelReusePolicy(reference_dist, criterion="conditional")
        for T in (1.0, 4.0, 8.0):
            assert paper.reuse_cost(T, 0.0) == pytest.approx(cond.reuse_cost(T, 0.0))

    def test_conditional_keeps_stable_vms_for_short_jobs(self, reference_dist):
        """The literal Eq. 8 form churns fresh VMs for short jobs; the
        conditional form retains stable ones (the service's criterion)."""
        cond = ModelReusePolicy(reference_dist, criterion="conditional")
        assert cond.decide(0.25, 1.0) is SchedulingDecision.REUSE
        assert cond.decide(0.25, 8.0) is SchedulingDecision.REUSE

    def test_both_discard_near_deadline(self, reference_dist):
        for criterion in ("paper", "conditional"):
            p = ModelReusePolicy(reference_dist, criterion=criterion)
            assert p.decide(6.0, 21.0) is SchedulingDecision.NEW_VM

    def test_infinite_cost_past_support(self, reference_dist):
        cond = ModelReusePolicy(reference_dist, criterion="conditional")
        assert cond.reuse_cost(1.0, reference_dist.t_max + 1.0) == float("inf")


class TestFigure5Shape:
    def test_policy_caps_failure_probability(self, policy, baseline, reference_dist):
        """Our policy's curve equals the baseline early, then flattens at
        F(T); the baseline saturates at 1."""
        T = 6.0
        level = float(reference_dist.cdf(T))
        for s in (19.0, 21.0, 23.0):
            assert baseline.failure_probability(T, s) == 1.0
            assert policy.failure_probability(T, s) == pytest.approx(level)
        # Early on, both follow the same conditional probability.
        assert policy.failure_probability(T, 5.0) == pytest.approx(
            baseline.failure_probability(T, 5.0)
        )

    def test_policy_not_worse_outside_transition_window(self, policy, baseline):
        """The makespan criterion optimises expected *loss*, not failure
        probability, so right after the switch age it can briefly exceed
        the memoryless probability; before the switch and in the
        deadline-doomed region it must never be worse."""
        T = 6.0
        ca = policy.critical_age(T)
        for s in np.linspace(0.0, ca - 0.1, 20):
            assert policy.failure_probability(T, float(s)) <= baseline.failure_probability(
                T, float(s)
            ) + 1e-9
        for s in np.linspace(18.1, 24.0, 10):
            assert policy.failure_probability(T, float(s)) <= baseline.failure_probability(
                T, float(s)
            ) + 1e-9


class TestFigure6Average:
    def test_policy_halves_average_failure_probability(self, policy, baseline):
        """Paper: mid-length jobs see ~2x lower failure probability."""
        ours = average_failure_probability(policy, 6.0, num_ages=64)
        base = average_failure_probability(baseline, 6.0, num_ages=64)
        assert base / ours > 1.4

    def test_average_increases_with_job_length(self, baseline):
        probs = [
            average_failure_probability(baseline, T, num_ages=32)
            for T in (2.0, 6.0, 12.0, 20.0)
        ]
        assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_validation(self, policy):
        with pytest.raises(ValueError):
            average_failure_probability(policy, 0.0)
        with pytest.raises(ValueError):
            average_failure_probability(policy, 1.0, max_age=0.0)


class TestBatchDecisions:
    """The vectorised decision layer must match the scalar path exactly."""

    @pytest.mark.parametrize("criterion", ["paper", "conditional"])
    @pytest.mark.parametrize("job_length", [0.5, 6.0, 12.0])
    def test_decide_batch_matches_scalar(self, reference_dist, criterion, job_length):
        pol = ModelReusePolicy(reference_dist, criterion=criterion)
        ages = np.linspace(0.0, reference_dist.t_max + 2.0, 301)
        batch = pol.decide_batch(job_length, ages)
        scalar = np.array(
            [pol.decide(job_length, float(s)) is SchedulingDecision.REUSE for s in ages]
        )
        np.testing.assert_array_equal(batch, scalar)

    @pytest.mark.parametrize("criterion", ["paper", "conditional"])
    def test_reuse_cost_batch_matches_scalar(self, reference_dist, criterion):
        pol = ModelReusePolicy(reference_dist, criterion=criterion)
        ages = np.linspace(0.0, reference_dist.t_max + 1.0, 101)
        batch = pol.reuse_cost_batch(6.0, ages)
        scalar = np.array([pol.reuse_cost(6.0, float(s)) for s in ages])
        np.testing.assert_array_equal(batch, scalar)

    def test_memoryless_batch_always_reuses(self, baseline):
        ages = np.linspace(0.0, 30.0, 50)
        assert baseline.decide_batch(6.0, ages).all()

    def test_failure_probability_batch_matches_scalar(self, policy, baseline):
        ages = np.linspace(0.0, 24.0, 97)
        for pol in (policy, baseline):
            batch = pol.failure_probability_batch(6.0, ages)
            scalar = np.array(
                [pol.failure_probability(6.0, float(s)) for s in ages]
            )
            np.testing.assert_array_equal(batch, scalar)

    def test_job_failure_probability_batch_matches_scalar(self, reference_dist):
        ages = np.linspace(0.0, reference_dist.t_max + 1.0, 97)
        batch = job_failure_probability_batch(reference_dist, 6.0, ages)
        scalar = np.array(
            [job_failure_probability(reference_dist, 6.0, float(s)) for s in ages]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_generic_distribution_fallback(self):
        """Laws without a closed-form moment use the scalar loop fallback."""
        from repro.distributions.exponential import ExponentialDistribution

        pol = ModelReusePolicy(ExponentialDistribution(rate=0.5))
        ages = np.linspace(0.0, pol.dist.t_max * 0.9, 25)
        batch = pol.decide_batch(3.0, ages)
        scalar = np.array(
            [pol.decide(3.0, float(s)) is SchedulingDecision.REUSE for s in ages]
        )
        np.testing.assert_array_equal(batch, scalar)

    def test_effective_start_ages(self, policy):
        ages = np.linspace(0.0, 24.0, 49)
        eff, reused = effective_start_ages(policy, 6.0, ages)
        np.testing.assert_array_equal(eff[reused], ages[reused])
        assert np.all(eff[~reused] == 0.0)
        # The Fig. 5 shape: reuse up to the critical age, fresh afterwards.
        ca = policy.critical_age(6.0)
        np.testing.assert_array_equal(reused, ages <= ca + 1e-9)

    def test_batch_validation(self, policy, baseline):
        with pytest.raises(ValueError):
            policy.decide_batch(6.0, np.array([-1.0]))
        with pytest.raises(ValueError):
            baseline.decide_batch(6.0, np.array([-1.0]))
        with pytest.raises(ValueError):
            job_failure_probability_batch(policy.dist, 0.0, np.array([1.0]))

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.distributions.bathtub import BathtubDistribution
from repro.traces.catalog import GroundTruthCatalog, default_catalog


@pytest.fixture(scope="session")
def catalog() -> GroundTruthCatalog:
    return default_catalog()


@pytest.fixture(scope="session")
def reference_params() -> BathtubParams:
    """The Fig. 1 reference configuration's ground-truth parameters."""
    return default_catalog().params("n1-highcpu-16", "us-east1-b")


@pytest.fixture(scope="session")
def reference_model(reference_params) -> ConstrainedPreemptionModel:
    return ConstrainedPreemptionModel(reference_params)


@pytest.fixture(scope="session")
def reference_dist(reference_model) -> BathtubDistribution:
    return BathtubDistribution(reference_model)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

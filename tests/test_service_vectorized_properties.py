"""Properties of the batched service kernel (run_service_replications).

Four families, per the service-kernel issue:

* master billing — the master is billed for exactly the makespan, so
  total cost dominates ``makespan x master_rate``;
* never-failing law — nothing is lost (no preemptions, aborts, waste)
  and the cost-reduction factor stays above 1 at the paper's ~4.7x
  price discount;
* latency-0 reduction — with no provisioning latency and no failures
  the service's lazy cold-start provisioning reaches exactly the
  cluster kernel's FIFO schedule over a pre-booted pool, replication
  by replication (billing differs by design: the service boots fewer
  VMs and reaps idle spares, so only the *makespan* reduces);
* backfill — never increases the makespan on the width-homogeneous
  grids here, and lowers the mean under preemption pressure; one test
  documents the known exception (unreserved backfill may delay a
  stuck wide head, and with it the bag).
"""

import numpy as np
import pytest

from test_cluster_vectorized_properties import FarFutureLifetime

from repro.sim.backend import run_cluster_replications, run_service_replications

#: Grids shared by the properties below (width <= 3 fits every fleet).
GRID_BAGS = {
    "narrow": [(2.0, 1), (1.5, 1), (0.5, 1), (2.5, 1), (1.0, 1)],
    "mixed": [(2.0, 1), (1.5, 2), (0.5, 3), (2.5, 1), (1.0, 2), (0.25, 1)],
    "wide3": [(1.0, 3), (2.0, 3), (1.5, 3), (0.5, 2)],
}


@pytest.fixture(scope="module")
def never_failing():
    return FarFutureLifetime()


class TestMasterBilling:
    def test_master_billed_for_exact_makespan(self, reference_dist):
        out = run_service_replications(
            reference_dist, GRID_BAGS["mixed"], max_vms=4, n_replications=16, seed=0
        )
        np.testing.assert_array_equal(out.master_hours, out.makespan)

    def test_no_master_mode_bills_nothing(self, reference_dist):
        out = run_service_replications(
            reference_dist,
            GRID_BAGS["mixed"],
            max_vms=4,
            run_master=False,
            n_replications=16,
            seed=0,
        )
        assert np.all(out.master_hours == 0.0)

    def test_total_cost_dominates_master_term(self, reference_dist):
        """total_cost >= makespan x master_rate, replication by replication."""
        out = run_service_replications(
            reference_dist, GRID_BAGS["mixed"], max_vms=4, n_replications=16, seed=1
        )
        master_rate = 0.07
        cost = out.total_cost(0.2, master_rate)
        assert np.all(cost >= out.makespan * master_rate - 1e-12)


class TestNeverFailingLaw:
    @pytest.mark.parametrize("bag", GRID_BAGS.values(), ids=GRID_BAGS.keys())
    def test_zero_waste(self, never_failing, bag):
        for backend in ("event", "vectorized"):
            out = run_service_replications(
                never_failing,
                bag,
                max_vms=3,
                n_replications=3,
                seed=0,
                backend=backend,
            )
            assert np.all(out.n_preemptions == 0)
            assert np.all(out.n_job_failures == 0)
            assert np.all(out.wasted_hours == 0.0)
            assert np.all(out.completed_jobs == len(bag))

    @pytest.mark.parametrize("bag", GRID_BAGS.values(), ids=GRID_BAGS.keys())
    def test_cost_reduction_factor_above_one(self, never_failing, bag):
        """At the paper's ~4.7x discount, a never-failing fleet beats
        on-demand even with master billing and idle-spare overhead."""
        out = run_service_replications(
            never_failing,
            bag,
            max_vms=3,
            hot_spare_hours=0.5,
            n_replications=3,
            seed=0,
        )
        crf = out.cost_reduction_factor(1.0 / 4.7, 1.0, master_rate=0.03)
        assert np.all(crf >= 1.0)

    @pytest.mark.parametrize("bag", GRID_BAGS.values(), ids=GRID_BAGS.keys())
    @pytest.mark.parametrize("max_vms", [3, 4])
    def test_latency_zero_reduces_to_cluster_kernel(
        self, never_failing, bag, max_vms
    ):
        """PR 3 reduction: no latency + no failures -> the cold-start
        service reaches the pre-booted pool's FIFO schedule exactly."""
        svc = run_service_replications(
            never_failing,
            bag,
            max_vms=max_vms,
            use_reuse_policy=False,
            n_replications=4,
            seed=0,
        )
        cluster = run_cluster_replications(
            never_failing,
            bag,
            pool_size=max_vms,
            use_reuse_policy=False,
            n_replications=4,
            seed=0,
        )
        np.testing.assert_array_equal(svc.makespan, cluster.makespan)
        np.testing.assert_array_equal(svc.completed_jobs, cluster.completed_jobs)
        np.testing.assert_array_equal(svc.n_job_failures, cluster.n_job_failures)

    @pytest.mark.parametrize("bag", GRID_BAGS.values(), ids=GRID_BAGS.keys())
    def test_latency_monotonicity(self, never_failing, bag):
        """Slower boots never finish the bag earlier (no failures)."""
        spans = [
            run_service_replications(
                never_failing,
                bag,
                max_vms=3,
                use_reuse_policy=False,
                provision_latency=latency,
                n_replications=2,
                seed=0,
            ).makespan
            for latency in (0.0, 0.1, 0.5)
        ]
        assert np.all(spans[0] <= spans[1] + 1e-12)
        assert np.all(spans[1] <= spans[2] + 1e-12)


class TestBackfill:
    @pytest.mark.parametrize("bag", GRID_BAGS.values(), ids=GRID_BAGS.keys())
    def test_never_increases_makespan_on_grids(self, never_failing, bag):
        """On these width-profiles backfill only fills idle VMs the
        stuck head cannot use; the deterministic schedules tie."""
        fifo = run_service_replications(
            never_failing, bag, max_vms=3, n_replications=2, seed=0
        )
        back = run_service_replications(
            never_failing, bag, max_vms=3, backfill=True, n_replications=2, seed=0
        )
        assert np.all(back.makespan <= fifo.makespan + 1e-12)

    def test_lowers_mean_makespan_under_preemptions(self, reference_dist):
        """With failures requeueing gangs at the head, backfill keeps
        narrow jobs flowing: the paired mean makespan drops."""
        fifo = run_service_replications(
            reference_dist, GRID_BAGS["mixed"], max_vms=4, n_replications=64, seed=1
        )
        back = run_service_replications(
            reference_dist,
            GRID_BAGS["mixed"],
            max_vms=4,
            backfill=True,
            n_replications=64,
            seed=1,
        )
        assert back.mean_makespan < fifo.mean_makespan

    def test_unreserved_backfill_may_delay_the_head(self, never_failing):
        """Documented exception: with no reservation, a narrow job can
        grab the VM a stuck wide head was waiting for, postponing the
        head — and here the whole bag.  This pins the *unreserved*
        semantics (ClusterManager docstring) rather than a safety
        property backfill does not have."""
        bag = [(2.5, 1), (0.25, 1), (1.75, 2), (0.3, 1), (2.0, 2), (0.5, 1), (1.0, 1)]
        fifo = run_service_replications(
            never_failing, bag, max_vms=3, n_replications=1, seed=0
        )
        back = run_service_replications(
            never_failing, bag, max_vms=3, backfill=True, n_replications=1, seed=0
        )
        assert back.makespan[0] > fifo.makespan[0]

"""Regret tier: every policy sits at or above the hindsight oracle.

The dominance contract: on *every* replication, a policy's realized
worker VM-hours are at least :func:`repro.baselines.hindsight_lower_bound`
evaluated on the exact lifetime multiset that replication consumed
(paired draw-for-draw via :class:`repro.sim.backend.DrawCapture`).  A
negative regret anywhere falsifies either the simulator's billing or
the bound's proof, so the tier sweeps policy x law x config cells on
both backends and checks the pairing itself (identical captures at
matched seeds) along the way.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    InfeasibleScheduleError,
    hindsight_lower_bound,
    minimal_segments_dp,
    oracle_schedule_dp,
    regret_from_outcomes,
    segment_count_bound,
)
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.sim.backend import (
    DrawCapture,
    run_cluster_replications,
    run_service_replications,
)
from repro.sim.cluster_vectorized import ClusterConfig
from repro.sim.service_vectorized import ServiceBatchConfig

BAG = [(3.7, 2), (1.2, 1), (8.4, 3), (0.05, 1)]
DELTA = 0.05
REGRET_TOL = -1e-9


class TestSegmentBounds:
    def test_single_segment_when_cap_covers_work(self):
        assert segment_count_bound(5.0, 5.0, 0.5) == 1
        assert segment_count_bound(5.0, 100.0, 0.5) == 1

    def test_zero_work(self):
        assert segment_count_bound(0.0, 1.0, 0.5) == 0
        assert minimal_segments_dp(0.0, 1.0, 0.5) == 0

    def test_covering_recurrence(self):
        # (m-1) non-final segments of cap-delta plus one final cap.
        assert segment_count_bound(10.0, 3.0, 0.5) == 4  # 3*2.5 + 3 >= 10
        assert segment_count_bound(10.5, 3.0, 0.5) == 4  # exactly covered
        assert segment_count_bound(10.6, 3.0, 0.5) == 5

    def test_infeasible_when_checkpoint_eats_cap(self):
        with pytest.raises(InfeasibleScheduleError):
            segment_count_bound(5.0, 0.4, 0.5)
        with pytest.raises(InfeasibleScheduleError):
            minimal_segments_dp(5.0, 0.4, 0.5)

    def test_dp_matches_closed_form_on_grid(self):
        for work, cap, delta in [
            (10.0, 3.0, 0.5),
            (7.25, 2.0, 0.25),
            (1.0, 1.0, 0.0),
            (100.0, 5.0, 1.0),
        ]:
            assert minimal_segments_dp(
                work, cap, delta, quantum=1e-4
            ) == segment_count_bound(work, cap, delta)


class TestHindsightBound:
    def test_zero_delta_never_failing_is_pure_work(self):
        # Zero-waste: with free checkpoints and lifetimes covering the
        # work, the bound is exactly sum(width * work).
        pool = [100.0] * 8
        bound = hindsight_lower_bound(pool, BAG, 0.0)
        assert bound.feasible
        assert bound.total == pytest.approx(
            sum(w * g for w, g in BAG), abs=1e-12
        )
        assert all(m == 1 for m in bound.segments)

    def test_width_exceeding_pool_is_infeasible(self):
        bound = hindsight_lower_bound([5.0], [(1.0, 2)], 0.1)
        assert not bound.feasible
        assert math.isinf(bound.total)

    def test_gang_cap_is_gth_largest(self):
        # Width-3 job sees the 3rd-largest draw as its gang cap.
        pool = [9.0, 7.0, 2.0, 1.0]
        bound = hindsight_lower_bound(pool, [(5.0, 3)], 0.5)
        m = segment_count_bound(5.0, 2.0, 0.5)
        assert bound.total == pytest.approx(3 * (5.0 + (m - 1) * 0.5))

    def test_oracle_dp_brackets_bound(self):
        pool = [10.0, 8.0, 3.0, 2.5, 1.0, 0.9, 0.8]
        jobs = [(4.0, 2), (2.0, 1), (1.5, 2)]
        bound = hindsight_lower_bound(pool, jobs, 0.2)
        sched = oracle_schedule_dp(pool, jobs, 0.2)
        assert sched.total >= bound.total - 1e-12
        if sched.certified:
            assert sched.total == pytest.approx(bound.total)

    def test_oracle_dp_certifies_on_deep_pool(self):
        # A pool deep in long draws makes disjointness free: the
        # bracket closes and the bound is exactly the optimum.
        pool = [50.0] * 10
        sched = oracle_schedule_dp(pool, BAG, DELTA)
        assert sched.certified

    def test_oracle_dp_rejects_large_instances(self):
        with pytest.raises(ValueError, match="max_jobs"):
            oracle_schedule_dp(
                [1.0] * 20, [(1.0, 1)] * 11, 0.1, max_jobs=10
            )


def _regret_ok(table):
    done = table.completed
    assert done.any()
    assert float(table.regret[done].min()) >= REGRET_TOL
    assert np.all(table.pct_of_oracle[done] >= 100.0 + 100.0 * REGRET_TOL)


class TestRegretDominance:
    """Policy x law x config cells, both backends, paired captures."""

    @pytest.mark.parametrize("checkpoint", ["interval", "dp"])
    @pytest.mark.parametrize("use_reuse_policy", [False, True])
    def test_cluster_bathtub(self, reference_dist, checkpoint, use_reuse_policy):
        config = ClusterConfig(
            pool_size=4,
            use_reuse_policy=use_reuse_policy,
            checkpoint=checkpoint,
            checkpoint_cost=DELTA,
        )
        tables = {}
        for backend in ("event", "vectorized"):
            capture = DrawCapture()
            out = run_cluster_replications(
                reference_dist,
                BAG,
                config=config,
                n_replications=32,
                seed=0,
                backend=backend,
                capture=capture,
            )
            tables[backend] = regret_from_outcomes(
                out, capture, reference_dist, BAG, DELTA
            )
            _regret_ok(tables[backend])
        # Draw-level pairing: both backends consumed identical draws,
        # so their oracles are identical too.
        np.testing.assert_array_equal(
            tables["event"].oracle_hours, tables["vectorized"].oracle_hours
        )
        np.testing.assert_allclose(
            tables["event"].policy_hours,
            tables["vectorized"].policy_hours,
            atol=1e-9,
        )

    @pytest.mark.parametrize("checkpoint", ["interval", "dp"])
    def test_service_bathtub(self, reference_dist, checkpoint):
        config = ServiceBatchConfig(
            max_vms=4,
            use_reuse_policy=True,
            run_master=False,
            checkpoint=checkpoint,
            checkpoint_cost=DELTA,
        )
        for backend in ("event", "vectorized"):
            capture = DrawCapture()
            out = run_service_replications(
                reference_dist,
                BAG,
                config=config,
                n_replications=32,
                seed=1,
                backend=backend,
                capture=capture,
            )
            _regret_ok(
                regret_from_outcomes(out, capture, reference_dist, BAG, DELTA)
            )

    @pytest.mark.parametrize(
        "dist",
        [
            ExponentialDistribution(1.0 / 6.0),
            UniformLifetimeDistribution(24.0),
        ],
        ids=["exponential", "uniform"],
    )
    @pytest.mark.parametrize("checkpoint", ["interval", "dp"])
    def test_service_other_laws(self, dist, checkpoint):
        # Reuse off: the conditional Eq. 8 criterion livelocks on
        # memoryless/uniform laws (every age is rejected).
        config = ServiceBatchConfig(
            max_vms=4,
            use_reuse_policy=False,
            run_master=False,
            checkpoint=checkpoint,
            checkpoint_cost=DELTA,
        )
        capture = DrawCapture()
        out = run_service_replications(
            dist,
            BAG,
            config=config,
            n_replications=32,
            seed=2,
            backend="vectorized",
            capture=capture,
        )
        _regret_ok(regret_from_outcomes(out, capture, dist, BAG, DELTA))

    def test_capture_width_mismatch_rejected(self, reference_dist):
        capture = DrawCapture()
        out = run_cluster_replications(
            reference_dist,
            BAG,
            config=ClusterConfig(pool_size=4),
            n_replications=8,
            seed=0,
            backend="vectorized",
            capture=capture,
        )
        other = DrawCapture()
        run_cluster_replications(
            reference_dist,
            BAG,
            config=ClusterConfig(pool_size=4),
            n_replications=4,
            seed=0,
            backend="vectorized",
            capture=other,
        )
        with pytest.raises(ValueError, match="pair each run"):
            regret_from_outcomes(out, other, reference_dist, BAG, DELTA)


pools = st.lists(
    st.floats(0.05, 200.0, allow_nan=False), min_size=4, max_size=24
)
jobs_strategy = st.lists(
    st.tuples(st.floats(0.01, 30.0), st.integers(1, 3)),
    min_size=1,
    max_size=4,
)


class TestRegretProperties:
    @given(pool=pools, jobs=jobs_strategy, delta=st.floats(0.0, 0.5))
    @settings(max_examples=80, deadline=None)
    def test_bound_monotone_in_pool_prefix(self, pool, jobs, delta):
        # More hindsight can only help: the bound over a draw prefix is
        # non-increasing as the prefix grows.
        prev = math.inf
        for k in range(max(g for _, g in jobs), len(pool) + 1):
            total = hindsight_lower_bound(pool[:k], jobs, delta).total
            assert total <= prev + 1e-9
            prev = total

    @given(
        work=st.floats(0.01, 50.0),
        cap=st.floats(0.01, 60.0),
        delta=st.floats(0.0, 0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_dp_never_undercuts_closed_form(self, work, cap, delta):
        try:
            closed = segment_count_bound(work, cap, delta)
        except InfeasibleScheduleError:
            with pytest.raises(InfeasibleScheduleError):
                minimal_segments_dp(work, cap, delta, quantum=1e-3)
            return
        try:
            dp = minimal_segments_dp(work, cap, delta, quantum=1e-3)
        except InfeasibleScheduleError:
            # Legal only when the grid is too coarse to host any
            # non-final segment at all.
            assert cap < work and cap - delta < 1e-3 * (1 + 1e-9)
            return
        assert dp >= closed

    @given(pool=pools, jobs=jobs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_zero_delta_bound_is_work_when_pool_covers(self, pool, jobs):
        # Zero-waste: free checkpoints make any feasible pool achieve
        # pure work hours.
        tall = [max(w for w, _ in jobs) + max(pool) for _ in pool]
        bound = hindsight_lower_bound(tall, jobs, 0.0)
        assert bound.total == pytest.approx(
            sum(w * g for w, g in jobs), rel=1e-12
        )

    @given(seed=st.integers(0, 2**16), dp=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_regret_nonnegative_on_shared_draws(self, reference_dist, seed, dp):
        # The sim-facing property: whatever the seed, the policy pays
        # at least the oracle on its own draws.
        config = ServiceBatchConfig(
            max_vms=4,
            use_reuse_policy=True,
            run_master=False,
            checkpoint="dp" if dp else "interval",
            checkpoint_cost=DELTA,
        )
        capture = DrawCapture()
        out = run_service_replications(
            reference_dist,
            BAG,
            config=config,
            n_replications=8,
            seed=seed,
            backend="vectorized",
            capture=capture,
        )
        _regret_ok(
            regret_from_outcomes(out, capture, reference_dist, BAG, DELTA)
        )


@pytest.mark.slow
class TestDeepRegretGrid:
    """The scheduled deep sweep: more laws, seeds, and policy cells."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("checkpoint", ["interval", "dp"])
    @pytest.mark.parametrize("use_reuse_policy", [False, True])
    def test_service_grid(self, reference_dist, seed, checkpoint, use_reuse_policy):
        config = ServiceBatchConfig(
            max_vms=6,
            use_reuse_policy=use_reuse_policy,
            run_master=False,
            checkpoint=checkpoint,
            checkpoint_cost=DELTA,
        )
        bag = BAG + [(0.6, 2), (2.3, 2)]
        for backend in ("event", "vectorized"):
            capture = DrawCapture()
            out = run_service_replications(
                reference_dist,
                bag,
                config=config,
                n_replications=64,
                seed=seed,
                backend=backend,
                capture=capture,
            )
            _regret_ok(
                regret_from_outcomes(out, capture, reference_dist, bag, DELTA)
            )

    def test_fig9_regret_experiment_dominates(self):
        from repro.experiments.fig9_regret import run

        result = run(n_replications=50)
        assert result.all_dominated
        for cell in result.cells:
            assert cell.n_completed == 50
            assert cell.min_pct >= 100.0 - 1e-7

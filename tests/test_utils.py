"""Tests for the shared utility layer."""

import numpy as np
import pytest

from repro.utils.integrate import cumulative_trapezoid, first_moment, trapezoid_integral
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0) == 0.0
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        assert check_probability("p", 0) == 0.0
        assert check_probability("p", 1) == 1.0
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5.0
        assert check_in_range("x", 0, 0, 10) == 0.0
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 10, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_error_messages_include_name(self):
        with pytest.raises(ValueError, match="tau1"):
            check_positive("tau1", -1)


class TestIntegrate:
    def test_trapezoid_polynomial(self):
        # int_0^2 3t^2 dt = 8
        assert trapezoid_integral(lambda t: 3 * t**2, 0, 2, num=4097) == pytest.approx(8.0, rel=1e-6)

    def test_signed_and_empty_intervals(self):
        assert trapezoid_integral(lambda t: np.ones_like(t), 2, 2) == 0.0
        assert trapezoid_integral(lambda t: np.ones_like(t), 2, 0) == pytest.approx(-2.0)

    def test_num_validation(self):
        with pytest.raises(ValueError):
            trapezoid_integral(lambda t: t, 0, 1, num=1)

    def test_first_moment_uniform(self):
        # int_0^1 t * 1 dt = 0.5
        assert first_moment(lambda t: np.ones_like(t), 0, 1) == pytest.approx(0.5, rel=1e-6)

    def test_cumulative_trapezoid(self):
        x = np.linspace(0, 1, 101)
        c = cumulative_trapezoid(2 * x, x)
        np.testing.assert_allclose(c, x**2, atol=1e-4)
        assert c[0] == 0.0

    def test_cumulative_trapezoid_shape_mismatch(self):
        with pytest.raises(ValueError):
            cumulative_trapezoid(np.ones(3), np.ones(4))


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_floatfmt(self):
        out = format_table(["x"], [[3.14159]], floatfmt=".1f")
        assert "3.1" in out and "3.14" not in out

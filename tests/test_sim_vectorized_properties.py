"""Property-based tests for the vectorized Monte-Carlo kernels.

Hypothesis sweeps schedules, checkpoint costs, start ages, and seeds
through the batched backend, asserting the structural invariants the
replication sweeps rely on:

* wasted work is non-negative and obeys the exact accounting identity
  ``makespan = plan walltime + wasted + restarts * latency``;
* every replication terminates with the full job durably completed;
* under zero checkpoint cost, refining the checkpoint plan (more
  frequent checkpoints) never increases any replication's completion
  time — with common random numbers the deaths per round are identical,
  so the comparison is pointwise, not just in expectation;
* conditioned lifetime sampling respects the conditioning age.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.sim.backend import run_replications
from repro.sim.vectorized import sample_lifetimes

# Keep the per-segment failure probability away from 1 (segment length
# well under the exponential's worst-case MTTF of 1 h), so every config
# terminates in a modest number of rounds — pathological schedules that
# *cannot* finish are covered separately by the max_rounds test in
# test_sim_backend_equivalence.py.
segments_strategy = st.lists(
    st.floats(0.05, 2.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)
seed_strategy = st.integers(0, 2**32 - 1)
rate_strategy = st.floats(0.2, 1.0, allow_nan=False, allow_infinity=False)


def make_dist(kind: str, rate: float):
    if kind == "exponential":
        return ExponentialDistribution(rate=rate)
    return UniformLifetimeDistribution(24.0)


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(["exponential", "uniform"]),
    rate=rate_strategy,
    segments=segments_strategy,
    delta=st.floats(0.0, 0.1, allow_nan=False),
    start_age=st.floats(0.0, 20.0, allow_nan=False),
    latency=st.floats(0.0, 0.5, allow_nan=False),
    seed=seed_strategy,
)
def test_invariants(kind, rate, segments, delta, start_age, latency, seed):
    dist = make_dist(kind, rate)
    out = run_replications(
        dist,
        segments,
        delta=delta,
        start_age=start_age,
        restart_latency=latency,
        n_replications=64,
        seed=seed,
        backend="vectorized",
    )
    job = sum(segments)
    walltime = job + delta * (len(segments) - 1)
    # Non-negative waste, full termination, exact accounting.
    assert (out.wasted_hours >= 0.0).all()
    np.testing.assert_allclose(out.completed_work, job, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        out.makespan,
        walltime + out.wasted_hours + out.n_restarts * latency,
        rtol=0.0,
        atol=1e-9,
    )
    assert out.n_rounds == int(out.n_restarts.max()) + 1
    # No waste at all implies the no-failure walltime exactly.
    clean = out.n_restarts == 0
    np.testing.assert_allclose(out.makespan[clean], walltime, rtol=0.0, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(["exponential", "uniform"]),
    rate=rate_strategy,
    segments=st.lists(st.floats(0.1, 2.0, allow_nan=False), min_size=1, max_size=4),
    seed=seed_strategy,
)
def test_refinement_monotone_under_free_checkpoints(kind, rate, segments, seed):
    """Zero-cost checkpoints: a strictly finer plan can only help.

    The round protocol draws each replication's r-th lifetime as a
    function of (seed, replication, round) alone, so both plans see the
    same death sequence and the comparison holds per replication.
    """
    dist = make_dist(kind, rate)
    refined = [half for s in segments for half in (s / 2.0, s / 2.0)]
    coarse = run_replications(
        dist, segments, delta=0.0, n_replications=64, seed=seed, backend="vectorized"
    )
    fine = run_replications(
        dist, refined, delta=0.0, n_replications=64, seed=seed, backend="vectorized"
    )
    assert (fine.makespan <= coarse.makespan + 1e-9).all()
    assert (fine.wasted_hours <= coarse.wasted_hours + 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(["exponential", "uniform"]),
    rate=rate_strategy,
    start_age=st.floats(0.0, 20.0, allow_nan=False),
    seed=seed_strategy,
)
def test_conditioned_sampling_respects_age(kind, rate, start_age, seed):
    dist = make_dist(kind, rate)
    rng = np.random.default_rng(seed)
    draws = sample_lifetimes(dist, 256, rng, start_age=start_age)
    assert (draws >= start_age - 1e-7).all()
    assert draws.shape == (256,)


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(["exponential", "uniform"]),
    rate=rate_strategy,
    segments=segments_strategy,
    start_age=st.floats(0.0, 12.0, allow_nan=False),
    seed=st.integers(0, 1000),
)
def test_backends_agree_on_random_configs(kind, rate, segments, start_age, seed):
    """Randomised counterpart of the grid in test_sim_backend_equivalence."""
    dist = make_dist(kind, rate)
    results = [
        run_replications(
            dist,
            segments,
            delta=1.0 / 60.0,
            start_age=start_age,
            n_replications=16,
            seed=seed,
            backend=backend,
        )
        for backend in ("event", "vectorized")
    ]
    np.testing.assert_allclose(
        results[1].makespan, results[0].makespan, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(results[1].n_restarts, results[0].n_restarts)


def test_sample_lifetimes_validation():
    dist = UniformLifetimeDistribution(24.0)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_lifetimes(dist, -1, rng)
    with pytest.raises(ValueError):
        sample_lifetimes(dist, 8, rng, start_age=-0.5)

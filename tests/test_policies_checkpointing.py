"""Tests for the DP checkpoint scheduler (paper Section 4.3, Eqs. 9-13)."""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.policies.checkpointing import (
    CheckpointPolicy,
    evaluate_schedule,
    simulate_schedule,
)
from repro.policies.youngdaly import (
    initial_rate_mttf,
    young_daly_interval,
    young_daly_schedule,
)

DELTA = 1.0 / 60.0


@pytest.fixture(scope="module")
def policy(reference_dist):
    return CheckpointPolicy(reference_dist, step=0.1, delta=DELTA)


class TestPlanStructure:
    def test_segments_cover_job(self, policy):
        plan = policy.plan(4.0, 0.0)
        assert sum(plan.segments) == pytest.approx(4.0)
        assert len(plan.checkpoint_times) == len(plan.segments) - 1
        assert plan.n_checkpoints >= 1

    def test_checkpoint_times_cumulative(self, policy):
        plan = policy.plan(4.0, 0.0)
        np.testing.assert_allclose(
            plan.checkpoint_times, np.cumsum(plan.segments)[:-1]
        )

    def test_intervals_increase_on_fresh_vm(self, policy):
        """The paper's signature schedule: intervals grow as the early
        hazard decays (cf. the (15, 28, 38, 59, 128) example)."""
        plan = policy.plan(5.0, 0.0)
        iv = plan.intervals_minutes()
        assert len(iv) >= 3
        assert all(b >= a - 1e-9 for a, b in zip(iv, iv[1:]))
        assert iv[-1] > 2.5 * iv[0]

    def test_stable_phase_barely_checkpoints(self, policy):
        """Mid-life hazard is ~0: the optimal plan is (near-)checkpoint-free."""
        plan = policy.plan(4.0, 8.0)
        assert plan.n_checkpoints <= 1
        assert plan.overhead_fraction < 0.02

    def test_near_deadline_checkpoints_heavily(self, policy):
        plan_mid = policy.plan(4.0, 10.0)
        plan_late = policy.plan(4.0, 19.0)
        assert plan_late.n_checkpoints >= plan_mid.n_checkpoints
        assert plan_late.expected_makespan > plan_mid.expected_makespan

    def test_expected_makespan_at_least_job_length(self, policy):
        for s in (0.0, 8.0, 16.0):
            assert policy.expected_makespan(4.0, s) >= 4.0 - 1e-9

    def test_plan_deterministic(self, policy):
        assert policy.plan(3.0, 0.0) == policy.plan(3.0, 0.0)

    def test_table_cache_reused(self, reference_dist):
        p = CheckpointPolicy(reference_dist, step=0.25, delta=DELTA)
        p.plan(2.0, 0.0)
        table = p._tables[8]
        p.plan(2.0, 4.0)  # same length, different age: no re-solve
        assert p._tables[8] is table

    def test_validation(self, policy, reference_dist):
        with pytest.raises(ValueError):
            policy.plan(0.0)
        with pytest.raises(ValueError):
            policy.plan(0.01)  # below one work-step
        with pytest.raises(ValueError):
            policy.plan(2.0, -1.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(reference_dist, step=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(reference_dist, variant="wrong")


class TestVariants:
    def test_paper_variant_also_increasing_intervals(self, reference_dist):
        p = CheckpointPolicy(reference_dist, step=0.1, delta=DELTA, variant="paper")
        iv = p.plan(4.0, 0.0).intervals_minutes()
        assert all(b >= a - 1e-9 for a, b in zip(iv, iv[1:]))

    def test_conditional_costs_more_near_deadline(self, reference_dist):
        """Only the conditional variant understands that a VM alive at
        hour 20 is condemned; the paper-literal form underestimates."""
        cond = CheckpointPolicy(reference_dist, step=0.1, delta=DELTA, variant="conditional")
        paper = CheckpointPolicy(reference_dist, step=0.1, delta=DELTA, variant="paper")
        assert cond.expected_makespan(3.0, 20.0) > paper.expected_makespan(3.0, 20.0)


class TestAnalyticVsMonteCarlo:
    def test_dp_makespan_matches_simulation(self, reference_dist, policy):
        plan = policy.plan(4.0, 0.0)
        mc = simulate_schedule(
            reference_dist,
            plan.segments,
            delta=DELTA,
            start_age=0.0,
            n_runs=4000,
            rng=np.random.default_rng(7),
        )
        assert plan.expected_makespan == pytest.approx(mc.mean(), rel=0.05)

    def test_evaluate_schedule_matches_simulation(self, reference_dist):
        sched = young_daly_schedule(3.0, 0.3)
        analytic = evaluate_schedule(reference_dist, sched, delta=DELTA, start_age=0.0)
        mc = simulate_schedule(
            reference_dist,
            sched,
            delta=DELTA,
            start_age=0.0,
            n_runs=4000,
            rng=np.random.default_rng(8),
        )
        assert analytic == pytest.approx(mc.mean(), rel=0.05)

    def test_aged_start_agreement(self, reference_dist):
        sched = [1.0, 1.0]
        analytic = evaluate_schedule(reference_dist, sched, delta=DELTA, start_age=12.0)
        mc = simulate_schedule(
            reference_dist,
            sched,
            delta=DELTA,
            start_age=12.0,
            n_runs=3000,
            rng=np.random.default_rng(9),
        )
        assert analytic == pytest.approx(mc.mean(), rel=0.05)


class TestOptimality:
    def test_dp_beats_young_daly(self, reference_dist, policy):
        """Fig. 8: the DP schedule's expected makespan must not exceed the
        Young-Daly schedule's under the same failure law."""
        tau = young_daly_interval(DELTA, 1.0)
        for J in (2.0, 4.0, 6.0):
            yd = evaluate_schedule(
                reference_dist, young_daly_schedule(J, tau), delta=DELTA, start_age=0.0
            )
            assert policy.expected_makespan(J, 0.0) <= yd + 1e-6

    def test_dp_beats_no_checkpointing_on_fresh_vm(self, reference_dist, policy):
        J = 4.0
        none = evaluate_schedule(reference_dist, [J], delta=DELTA, start_age=0.0)
        assert policy.expected_makespan(J, 0.0) < none

    def test_no_checkpointing_optimal_in_stable_phase(self, reference_dist, policy):
        """Where hazard ~ 0, paying delta per checkpoint is pure loss."""
        J = 2.0
        none = evaluate_schedule(reference_dist, [J], delta=DELTA, start_age=8.0)
        assert policy.expected_makespan(J, 8.0) <= none + 1e-6


class TestYoungDaly:
    def test_interval_formula(self):
        assert young_daly_interval(DELTA, 1.0) == pytest.approx(np.sqrt(2 * DELTA))

    def test_schedule_covers_job(self):
        sched = young_daly_schedule(4.0, 0.3)
        assert sum(sched) == pytest.approx(4.0)
        assert all(s > 0 for s in sched)
        assert max(sched[:-1] or sched) <= 0.3 + 1e-12

    def test_interval_longer_than_job(self):
        assert young_daly_schedule(0.1, 5.0) == [0.1]

    def test_initial_rate_mttf(self, reference_dist):
        mttf = initial_rate_mttf(reference_dist)
        assert mttf == pytest.approx(1.0 / float(reference_dist.hazard(1e-3)), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_daly_interval(0.0, 1.0)
        with pytest.raises(ValueError):
            young_daly_schedule(0.0, 1.0)


class TestExponentialSanity:
    def test_young_daly_near_optimal_for_memoryless(self):
        """Under a true exponential law, the DP schedule's makespan should
        be close to Young-Daly's (YD is the first-order optimum there)."""
        d = ExponentialDistribution(rate=0.5, horizon=60.0)
        policy = CheckpointPolicy(d, step=0.1, delta=DELTA)
        J = 4.0
        dp = policy.expected_makespan(J, 0.0)
        tau = young_daly_interval(DELTA, 2.0)
        yd = evaluate_schedule(d, young_daly_schedule(J, tau), delta=DELTA, start_age=0.0)
        # The two numbers come from different discretisations (DP grid vs
        # fixed-schedule evaluator), so compare with tolerance only.
        assert dp == pytest.approx(yd, rel=0.02)

"""Tests for the batch computing service (paper Section 5)."""

import pytest

from repro.service.api import BagRequest, JobRequest
from repro.service.bag import BagOfJobs
from repro.service.controller import BatchComputingService, ServiceConfig
from repro.service.costs import CostModel, on_demand_baseline_cost
from repro.service.database import MetadataStore
from repro.sim.cloud import CloudProvider
from repro.sim.cluster import SimJob
from repro.sim.engine import Simulator
from repro.sim.events import VMPreempted
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog


def make_service(seed=0, **config_kwargs):
    cat = default_catalog()
    sim = Simulator()
    cloud = CloudProvider(sim, cat, RandomStreams(seed))
    cfg = ServiceConfig(**{"max_vms": 4, "vm_type": "n1-highcpu-16", **config_kwargs})
    model = cat.distribution(cfg.vm_type, cfg.zone)
    return sim, cloud, BatchComputingService(sim, cloud, model, cfg)


class TestAPI:
    def test_job_request_validation(self):
        with pytest.raises(ValueError):
            JobRequest(work_hours=0.0)
        with pytest.raises(ValueError):
            JobRequest(work_hours=1.0, width=0)

    def test_bag_request_validation(self):
        with pytest.raises(ValueError):
            BagRequest(jobs=[])
        bag = BagRequest(jobs=[JobRequest(work_hours=2.0, width=3)])
        assert bag.total_work_hours == pytest.approx(6.0)


class TestBagOfJobs:
    def test_estimate_starts_at_declared_and_converges(self):
        req = BagRequest(jobs=[JobRequest(work_hours=2.0)] * 5)
        bag = BagOfJobs(bag_id=0, request=req)
        assert bag.estimated_runtime() == 2.0
        for v in (1.5, 1.6, 1.7):
            bag.record_completion(v)
        assert bag.estimated_runtime() == pytest.approx(1.6)

    def test_cv_monitoring(self):
        req = BagRequest(jobs=[JobRequest(work_hours=2.0)])
        bag = BagOfJobs(bag_id=0, request=req)
        assert bag.runtime_cv() == 0.0
        bag.record_completion(1.0)
        bag.record_completion(3.0)
        assert bag.runtime_cv() > 0.5

    def test_invalid_completion(self):
        bag = BagOfJobs(bag_id=0, request=BagRequest(jobs=[JobRequest(work_hours=1.0)]))
        with pytest.raises(ValueError):
            bag.record_completion(0.0)


class TestCosts:
    def test_on_demand_baseline(self):
        bag = BagRequest(jobs=[JobRequest(work_hours=1.0, width=4)] * 10)
        cost = on_demand_baseline_cost(bag, "n1-highcpu-16")
        assert cost == pytest.approx(40 * 0.5672)

    def test_cost_model_discount(self):
        cm = CostModel(default_catalog())
        assert cm.discount("n1-highcpu-16") == pytest.approx(0.5672 / 0.12)
        assert cm.preemptible_rate("n1-highcpu-2") == 0.0150


class TestMetadataStore:
    def test_job_and_bag_registration(self):
        store = MetadataStore()
        bid = store.new_bag("b")
        job = SimJob(job_id=store.new_job_id(), work_hours=1.0, bag_id=bid)
        store.register_job(job, "j0")
        with pytest.raises(ValueError):
            store.register_job(job)
        status = store.job_status(job.job_id)
        assert status.name == "j0" and status.state == "pending"
        bag = store.bag_status(bid, include_jobs=True)
        assert bag.n_jobs == 1 and not bag.done
        assert bag.job_statuses[0].job_id == job.job_id


class TestServiceEndToEnd:
    def test_small_bag_completes_and_reports(self):
        sim, cloud, svc = make_service(seed=31)
        bag = BagRequest(jobs=[JobRequest(work_hours=0.25, width=2)] * 12, name="t")
        bid = svc.submit_bag(bag)
        svc.run_until_bag_done(bid)
        svc.shutdown()
        rep = svc.report(bid)
        st = svc.bag_status(bid)
        assert st.done
        assert rep.metrics.n_jobs_completed == 12
        assert rep.metrics.total_cost > 0
        assert rep.on_demand_baseline == pytest.approx(12 * 0.25 * 2 * 0.5672)
        assert rep.cost_reduction_factor > 2.0

    def test_every_preemption_recovered(self):
        """Jobs hit by preemptions must still all complete."""
        sim, cloud, svc = make_service(seed=32, vm_type="n1-highcpu-32")
        bag = BagRequest(jobs=[JobRequest(work_hours=0.5)] * 30)
        bid = svc.submit_bag(bag)
        svc.run_until_bag_done(bid)
        svc.shutdown()
        rep = svc.report(bid)
        assert rep.metrics.n_jobs_completed == 30
        assert cloud.log.count(VMPreempted) > 0  # highcpu-32 churns

    def test_checkpointing_service_mode(self):
        sim, cloud, svc = make_service(
            seed=33, use_checkpointing=True, checkpoint_step=0.25
        )
        bag = BagRequest(jobs=[JobRequest(work_hours=2.0)] * 4)
        bid = svc.submit_bag(bag)
        svc.run_until_bag_done(bid)
        svc.shutdown()
        assert svc.bag_status(bid).done

    def test_memoryless_baseline_mode(self):
        sim, cloud, svc = make_service(seed=34, use_reuse_policy=False)
        bag = BagRequest(jobs=[JobRequest(work_hours=0.25)] * 10)
        bid = svc.submit_bag(bag)
        svc.run_until_bag_done(bid)
        svc.shutdown()
        assert svc.bag_status(bid).done

    def test_fleet_cap_respected(self):
        sim, cloud, svc = make_service(seed=35, max_vms=3)
        bag = BagRequest(jobs=[JobRequest(work_hours=0.25)] * 20)
        bid = svc.submit_bag(bag)
        svc.run_until_bag_done(bid)
        # At no point may more than max_vms preemptible workers coexist;
        # reconstruct concurrency from the event log.
        events = []
        for e in cloud.log:
            name = type(e).__name__
            if name == "VMLaunched" and e.vm_type == "n1-highcpu-16":
                events.append((e.time, +1))
            elif name in ("VMPreempted", "VMTerminated") and e.vm_type == "n1-highcpu-16":
                events.append((e.time, -1))
        events.sort()
        level = peak = 0
        for _, d in events:
            level += d
            peak = max(peak, level)
        assert peak <= 3

    def test_width_exceeding_cap_rejected(self):
        sim, cloud, svc = make_service(seed=36, max_vms=2)
        with pytest.raises(ValueError):
            svc.submit_job(JobRequest(work_hours=1.0, width=3))

    def test_hot_spares_reaped_when_idle(self):
        sim, cloud, svc = make_service(seed=37, hot_spare_hours=0.5)
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.25)] * 2))
        svc.run_until_bag_done(bid)
        # Let spare timers fire.
        sim.run_until(sim.now + 1.0)
        assert len(svc.cluster.free_nodes()) == 0

    def test_standalone_job_submission(self):
        sim, cloud, svc = make_service(seed=38)
        jid = svc.submit_job(JobRequest(work_hours=0.25, name="solo"))
        while svc.job_status(jid).state != "completed" and sim.step():
            pass
        assert svc.job_status(jid).state == "completed"

    def test_master_node_billed_on_demand(self):
        sim, cloud, svc = make_service(seed=39, run_master=True)
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.25)]))
        svc.run_until_bag_done(bid)
        svc.shutdown()
        assert svc.report(bid).metrics.on_demand_cost > 0.0

    def test_no_master_mode(self):
        sim, cloud, svc = make_service(seed=40, run_master=False)
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.25)]))
        svc.run_until_bag_done(bid)
        svc.shutdown()
        assert svc.report(bid).metrics.on_demand_cost == 0.0

    def test_deterministic_given_seed(self):
        reports = []
        for _ in range(2):
            sim, cloud, svc = make_service(seed=41)
            bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=0.3)] * 8))
            svc.run_until_bag_done(bid)
            svc.shutdown()
            reports.append(svc.report(bid))
        assert reports[0].metrics.total_cost == reports[1].metrics.total_cost
        assert reports[0].makespan_hours == reports[1].makespan_hours


class TestEstimateLength:
    """Regression tests for BatchComputingService._estimate_length: the
    bag estimate feeds every Eq. 8 decision (and the batched service
    kernel reproduces it bit for bit), so its convergence and its
    standalone-job fallback are pinned here."""

    def _service_with_bag(self, jobs):
        sim, cloud, svc = make_service(seed=50)
        bid = svc.submit_bag(BagRequest(jobs=jobs))
        return svc, bid

    def test_estimate_starts_at_first_declared_hours(self):
        svc, bid = self._service_with_bag(
            [JobRequest(work_hours=2.0), JobRequest(work_hours=0.5)]
        )
        job = svc.store.jobs_in_bag(bid)[1]
        # No completions yet: the *first* job's declaration, not job 1's.
        assert svc._estimate_length(job) == 2.0

    def test_estimate_converges_to_trailing_mean(self):
        svc, bid = self._service_with_bag([JobRequest(work_hours=2.0)] * 4)
        job = svc.store.jobs_in_bag(bid)[0]
        for v in (1.0, 1.2, 1.4):
            svc.bags[bid].record_completion(v)
        assert svc._estimate_length(job) == pytest.approx(1.2)

    def test_estimate_window_truncates(self):
        svc, bid = self._service_with_bag([JobRequest(work_hours=5.0)] * 2)
        bag = svc.bags[bid]
        bag.window = 3
        for v in (9.0, 9.0, 1.0, 2.0, 3.0):
            bag.record_completion(v)
        job = svc.store.jobs_in_bag(bid)[0]
        assert svc._estimate_length(job) == pytest.approx(2.0)

    def test_sequential_sum_contract(self):
        """estimated_runtime is a plain left-to-right sum over the tail
        divided by its length — the float sequence the vectorized
        service kernel replays exactly."""
        bag = BagOfJobs(bag_id=0, request=BagRequest(jobs=[JobRequest(work_hours=1.0)]))
        values = [0.1, 0.7, 1.3, 0.2, 2.9, 0.4]
        for v in values:
            bag.record_completion(v)
        total = 0.0
        for v in values[-bag.window :]:
            total += v
        assert bag.estimated_runtime() == total / len(values)

    def test_standalone_job_uses_own_declared_hours(self):
        """The empty-bag / standalone path: no bag state, no estimate."""
        sim, cloud, svc = make_service(seed=51)
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=2.0)]))
        svc.bags[bid].record_completion(0.25)  # bag history must not leak
        solo = SimJob(job_id=svc.store.new_job_id(), work_hours=7.0, bag_id=None)
        assert svc._estimate_length(solo) == 7.0


class TestSpareTimerHygiene:
    def test_reuse_resets_retention_window(self):
        """A VM that idles, works again, and re-idles is retained for a
        full window from its *latest* idle point; previously the stale
        first timer reaped it early."""
        from repro.sim.backend import _RoundProtocolCloud, _RoundUniforms
        from repro.sim.engine import Simulator
        from test_cluster_vectorized_properties import FarFutureLifetime

        import numpy as np

        sim = Simulator()
        dist = FarFutureLifetime()
        cloud = _RoundProtocolCloud(
            sim, dist, _RoundUniforms(np.random.default_rng(0), 1), 0
        )
        svc = BatchComputingService(
            sim,
            cloud,
            dist,
            ServiceConfig(
                max_vms=2, use_reuse_policy=False, hot_spare_hours=1.0,
                run_master=False,
            ),
        )
        svc.submit_job(JobRequest(work_hours=0.3))
        # Second job arrives at t=0.5, while the worker idles (timer at 1.3).
        sim.schedule(0.5, lambda: svc.submit_job(JobRequest(work_hours=0.3)))
        sim.run_until(1.5)
        # Old behavior: the stale 1.3 timer reaps the re-used worker.
        # New: the timer was cancelled when the worker restarted at 0.5;
        # retention now runs from the second idling (0.8) to 1.8.
        assert len(svc.cluster.free_nodes()) == 1
        sim.run_until(2.0)
        assert len(svc.cluster.free_nodes()) == 0


class TestServiceModes:
    def test_fixed_interval_checkpoint_mode(self):
        """ServiceConfig.checkpoint_interval switches the planner to
        Young-Daly-style fixed segments (the batched kernel's mode)."""
        from repro.sim.events import CheckpointWritten

        sim, cloud, svc = make_service(seed=52, checkpoint_interval=0.5)
        job = SimJob(job_id=999, work_hours=1.7, width=1)
        job.checkpointable = True
        plan = svc._plan_checkpoints(job, 0.0)
        assert plan is not None and set(plan) == {0.5}
        bid = svc.submit_bag(BagRequest(jobs=[JobRequest(work_hours=1.2)] * 3))
        svc.run_until_bag_done(bid)
        assert svc.bag_status(bid).done
        assert cloud.log.count(CheckpointWritten) > 0

    def test_fixed_interval_takes_precedence_over_dp(self):
        sim, cloud, svc = make_service(
            seed=53, use_checkpointing=True, checkpoint_interval=0.4
        )
        job = SimJob(job_id=998, work_hours=2.0, width=1)
        job.checkpointable = True
        assert set(svc._plan_checkpoints(job, 0.0)) == {0.4}

    def test_backfill_passthrough_and_completion(self):
        sim, cloud, svc = make_service(seed=54, backfill=True)
        assert svc.cluster.backfill
        bid = svc.submit_bag(
            BagRequest(
                jobs=[JobRequest(work_hours=0.4, width=3)]
                + [JobRequest(work_hours=0.2)] * 6
            )
        )
        svc.run_until_bag_done(bid)
        assert svc.bag_status(bid).done

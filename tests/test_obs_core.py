"""Unit tier for :mod:`repro.obs`: registry, snapshot algebra, tracer.

The load-bearing property is that :meth:`Snapshot.merge` is associative
and commutative (up to the documented gauge ``last := max of lasts``
convention), because shard and chunk snapshots arrive in completion
order and the merged stats must not depend on it.
"""

import json
import pickle

import pytest

from repro.obs import (
    Instrumentation,
    KernelStats,
    MetricsRegistry,
    NULL_REGISTRY,
    NULL_TRACER,
    Snapshot,
    Tracer,
    current_instrumentation,
    instrumented,
    write_metrics_json,
)


def make_snap(deaths, depth, n_sources=1):
    reg = MetricsRegistry()
    reg.inc("events.death", deaths)
    reg.gauge("queue.peak_depth").set(depth)
    reg.histogram("round.width").observe(float(deaths))
    snap = reg.snapshot()
    return Snapshot(
        counters=snap.counters,
        gauges=snap.gauges,
        histograms=snap.histograms,
        n_sources=n_sources,
    )


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.inc("c")
        reg.gauge("g").set(5.0)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap.counter("c") == 4
        assert snap.gauges["g"] == {
            "last": 2.0, "max": 5.0, "min": 2.0, "n_samples": 2,
        }
        assert snap.histograms["h"]["count"] == 2
        assert snap.histograms["h"]["total"] == 4.0
        assert reg.histogram("h").mean == 2.0

    def test_metrics_are_created_on_first_use(self):
        snap = MetricsRegistry().snapshot()
        assert snap.counter("never", default=7) == 7
        assert snap.gauge_max("never", default=1.5) == 1.5

    def test_null_registry_stores_nothing(self):
        NULL_REGISTRY.inc("c", 10)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        snap = NULL_REGISTRY.snapshot()
        assert snap.counters == {} and snap.gauges == {}
        assert snap.n_sources == 0
        assert not NULL_REGISTRY.enabled and MetricsRegistry().enabled


class TestSnapshotMerge:
    def test_merge_sums_counters_and_sources(self):
        merged = make_snap(3, 2.0).merge(make_snap(5, 7.0))
        assert merged.counter("events.death") == 8
        assert merged.gauge_max("queue.peak_depth") == 7.0
        assert merged.n_sources == 2
        assert merged.histograms["round.width"]["count"] == 2

    def test_merge_is_commutative(self):
        a, b = make_snap(3, 2.0), make_snap(5, 7.0)
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a, b, c = make_snap(1, 9.0), make_snap(2, 4.0), make_snap(4, 6.0)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert left.counter("events.death") == 7
        assert left.n_sources == 3

    def test_shard_count_accounting(self):
        shards = [make_snap(i, float(i)) for i in range(1, 6)]
        merged = shards[0]
        for s in shards[1:]:
            merged = merged.merge(s)
        assert merged.n_sources == 5
        assert merged.counter("events.death") == 15

    def test_disjoint_metric_names_union(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.inc("only.a", 2)
        reg_b.gauge("only.b").set(3.0)
        merged = reg_a.snapshot().merge(reg_b.snapshot())
        assert merged.counter("only.a") == 2
        assert merged.gauge_max("only.b") == 3.0

    def test_snapshot_is_picklable(self):
        snap = make_snap(3, 2.0)
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_snapshot_matches_snapshot_merge(self):
        """Folding into a live registry is the same algebra as merge()."""
        a, b = make_snap(3, 2.0), make_snap(5, 7.0)
        reg = MetricsRegistry()
        reg.merge_snapshot(a)
        reg.merge_snapshot(b)
        folded = reg.snapshot()
        merged = a.merge(b)
        assert folded.counters == merged.counters
        assert folded.gauges == merged.gauges
        assert folded.histograms == merged.histograms


class TestTracer:
    def test_spans_nest_and_serialize(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.instant("marker")
        doc = tracer.to_chrome_trace()
        names = [e["name"] for e in doc["traceEvents"]]
        assert "outer" in names and "inner" in names and "marker" in names
        path = tmp_path / "trace.json"
        tracer.write(path)
        assert json.loads(path.read_text()) == doc

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.instant("y")
        assert NULL_TRACER.to_chrome_trace()["traceEvents"] == []


class TestAmbient:
    def test_stack_discipline(self):
        assert current_instrumentation() is None
        inst = Instrumentation()
        with instrumented(inst):
            assert current_instrumentation() is inst
            inner = Instrumentation()
            with instrumented(inner):
                assert current_instrumentation() is inner
            assert current_instrumentation() is inst
        assert current_instrumentation() is None


def make_stats(**overrides):
    base = dict(
        kind="service",
        backend="vectorized",
        n_replications=10,
        workers=1,
        shards=((0, 10),),
        chunk_sizes=(10,),
        n_rounds=40,
        rng_rows=42,
        n_draws=100,
        channel_events={"death": 5, "comp": 10},
        stall_terminations=2,
        boot_grace_activations=1,
        livelock_peak_streak=3,
        peak_queue_depth=2,
        pool_occupancy=(4, 2),
        phase_seconds={"simulate": 0.5},
        peak_rss_bytes=1000,
    )
    base.update(overrides)
    return KernelStats(**base)


class TestKernelStats:
    def test_merge_semantics(self):
        a = make_stats()
        b = make_stats(
            n_replications=6,
            shards=((10, 16),),
            chunk_sizes=(6,),
            n_rounds=55,
            rng_rows=30,
            n_draws=60,
            channel_events={"death": 2, "boot": 7},
            stall_terminations=1,
            boot_grace_activations=4,
            livelock_peak_streak=1,
            peak_queue_depth=9,
            pool_occupancy=(1, 5, 3),
            phase_seconds={"simulate": 0.25, "merge": 0.1},
            peak_rss_bytes=2000,
        )
        m = a.merge(b)
        assert m.n_replications == 16
        assert m.shards == ((0, 10), (10, 16))
        assert m.chunk_sizes == (10, 6)
        assert m.n_rounds == 55 and m.rng_rows == 42
        assert m.n_draws == 160
        assert m.channel_events == {"death": 7, "comp": 10, "boot": 7}
        assert m.stall_terminations == 3
        assert m.boot_grace_activations == 5
        assert m.livelock_peak_streak == 3
        assert m.peak_queue_depth == 9
        assert m.pool_occupancy == (4, 5, 3)
        assert m.phase_seconds == {"simulate": 0.75, "merge": 0.1}
        assert m.peak_rss_bytes == 2000

    def test_merge_rejects_mixed_kind_or_backend(self):
        with pytest.raises(ValueError, match="cannot merge"):
            make_stats().merge(make_stats(backend="event"))
        with pytest.raises(ValueError, match="cannot merge"):
            make_stats().merge(make_stats(kind="cluster"))

    def test_as_dict_round_trips_json(self):
        doc = json.loads(json.dumps(make_stats().as_dict()))
        assert doc["channel_events"]["death"] == 5
        assert doc["pool_occupancy"] == [4, 2]


def test_write_metrics_json(tmp_path):
    reg = MetricsRegistry()
    reg.inc("events.death", 9)
    path = tmp_path / "m.json"
    write_metrics_json(path, reg, meta={"experiment": "unit"})
    doc = json.loads(path.read_text())
    assert doc["generator"] == "repro.obs"
    assert doc["schema_version"] == 1
    assert doc["experiment"] == "unit"
    assert doc["counters"]["events.death"] == 9

"""Tests for the day-of-week catalog dimension (paper Section 5).

The service "parametrizes the bathtub model based on the VM type,
region, time-of-day, and day-of-week"; the catalog encodes a weekend
demand dip.
"""

import numpy as np
import pytest

from repro.traces.catalog import default_catalog
from repro.traces.generator import TraceGenerator
from repro.traces.stats import lifetimes_by


class TestWeekendModifier:
    def test_weekend_lives_longer_at_truth_level(self, catalog):
        weekday = catalog.distribution("n1-highcpu-16", day_of_week=2).mean()
        weekend = catalog.distribution("n1-highcpu-16", day_of_week=6).mean()
        assert weekend > weekday

    def test_weekday_matches_default(self, catalog):
        default = catalog.params("n1-highcpu-16")
        monday = catalog.params("n1-highcpu-16", day_of_week=0)
        assert default == monday

    def test_saturday_and_sunday_equal(self, catalog):
        assert catalog.params("n1-highcpu-16", day_of_week=5) == catalog.params(
            "n1-highcpu-16", day_of_week=6
        )

    def test_invalid_day_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.params("n1-highcpu-16", day_of_week=7)

    def test_composes_with_other_modifiers(self, catalog):
        both = catalog.params("n1-highcpu-16", night=True, day_of_week=6)
        night_only = catalog.params("n1-highcpu-16", night=True)
        assert both.tau1 > night_only.tau1


class TestGeneratorDayOfWeek:
    def test_fixed_day_recorded(self):
        trace = TraceGenerator(seed=60).launch_batch(
            20, "n1-highcpu-16", day_of_week=6
        )
        assert all(r.day_of_week == 6 for r in trace)

    def test_weekend_samples_live_longer_in_aggregate(self):
        gen = TraceGenerator(seed=61)
        weekday = gen.launch_batch(
            800, "n1-highcpu-16", launch_hour=12.0, day_of_week=2
        ).lifetimes()
        weekend = gen.launch_batch(
            800, "n1-highcpu-16", launch_hour=12.0, day_of_week=6
        ).lifetimes()
        assert weekend.mean() > weekday.mean()

    def test_mixed_days_grouped_correctly(self):
        trace = TraceGenerator(seed=62).launch_batch(100, "n1-highcpu-16")
        groups = lifetimes_by(trace, "day_of_week")
        assert set(groups) <= set(range(7))
        assert sum(len(v) for v in groups.values()) == 100

    def test_determinism_preserved(self):
        a = TraceGenerator(seed=63).launch_batch(40, "n1-highcpu-16")
        b = TraceGenerator(seed=63).launch_batch(40, "n1-highcpu-16")
        np.testing.assert_array_equal(a.lifetimes(), b.lifetimes())

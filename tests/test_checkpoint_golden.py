"""Golden regressions for ``CheckpointPolicy.plan`` and its fixed point.

Three pins:

* Under a memoryless law the DP plan must track the Young-Daly
  closed-form optimum (the first-order optimum for exponential
  failures) — interior segments near tau and cost no worse.
* Exact plan snapshots on the reference bathtub law, so any silent
  change to the DP grid, age rounding, or fixed-point solve shows up
  as a diff instead of a drifting simulation.
* The age-0 fixed point: a law the iteration cannot bracket must warn
  (:class:`FixedPointWarning`) and expose its residual rather than
  silently accepting a non-converged expectation.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.policies.checkpointing import (
    CheckpointPolicy,
    FixedPointWarning,
    evaluate_schedule,
)
from repro.policies.youngdaly import young_daly_interval, young_daly_schedule

DELTA = 0.1
STEP = 0.25


class TestExponentialGolden:
    """DP vs the Young-Daly closed form under a true exponential law."""

    @pytest.fixture(scope="class")
    def dist(self):
        return ExponentialDistribution(1.0 / 12.0, horizon=200.0)

    @pytest.fixture(scope="class")
    def policy(self, dist):
        return CheckpointPolicy(dist, step=STEP, delta=DELTA)

    def test_interior_segments_near_young_daly(self, policy):
        tau = young_daly_interval(DELTA, 12.0)
        segments = np.asarray(policy.plan(10.0, 0.0).segments)
        # Interior segments sit on the DP grid within two steps of the
        # continuous optimum (tau ~ 1.55 at this delta/MTTF): the DP
        # trades a little per-segment length to land the final segment
        # on the grid.
        interior = segments[:-1]
        assert np.all(np.abs(interior - tau) <= 2 * STEP + 1e-12)

    def test_plan_cost_at_most_young_daly(self, dist, policy):
        # Grid quantisation costs the DP a sliver at most; it must not
        # lose to the fixed-interval schedule it generalises.
        job = 10.0
        dp_cost = evaluate_schedule(dist, policy.plan(job, 0.0).segments, delta=DELTA)
        tau = young_daly_interval(DELTA, 12.0)
        yd_cost = evaluate_schedule(
            dist, young_daly_schedule(job, tau), delta=DELTA
        )
        assert dp_cost <= yd_cost * (1.0 + 1e-3)
        assert dp_cost == pytest.approx(yd_cost, rel=0.02)

    def test_age_invariance_memoryless(self, policy):
        # Exponential has no age: plans at any start age coincide.
        fresh = policy.plan(6.0, 0.0).segments
        aged = policy.plan(6.0, 37.5).segments
        assert fresh == aged


class TestBathtubGolden:
    """Pinned plans on the reference law (n1-highcpu-16 / us-east1-b)."""

    @pytest.fixture(scope="class")
    def policy(self, reference_dist):
        return CheckpointPolicy(reference_dist, step=STEP, delta=DELTA)

    def test_fresh_vm_plan_pinned(self, policy):
        # Young VM: early churn forces small leading segments, then the
        # stable phase opens up.
        assert policy.plan(5.0, 0.0).segments == (0.75, 1.0, 3.25)

    def test_aged_vm_plan_pinned(self, policy):
        # Old VM near the deadline wall: dense mid-plan checkpoints.
        assert policy.plan(5.0, 20.0).segments == (
            1.75,
            0.75,
            0.5,
            0.25,
            0.25,
            0.25,
            1.25,
        )

    def test_pinned_plans_cover_job(self, policy):
        for age in (0.0, 20.0):
            assert sum(policy.plan(5.0, age).segments) == pytest.approx(5.0)

    def test_converged_fixed_point_reports_zero_residual(self, policy):
        policy.plan(5.0, 0.0)
        assert policy.last_fixed_point_residual == 0.0


class TestFixedPointRegression:
    """The age-0 fixed point must not silently accept non-convergence."""

    def test_unbracketable_law_warns_and_exposes_residual(self):
        # Mean lifetime (0.02 h) far below the work step: the expected
        # makespan recursion has no stable bracket at this grid.
        tiny = ExponentialDistribution(50.0, horizon=10.0)
        with pytest.warns(FixedPointWarning):
            policy = CheckpointPolicy(tiny, step=1.0, delta=0.5)
            policy.plan(3.0, 0.0)
        assert policy.last_fixed_point_residual > 0.0

    def test_healthy_law_does_not_warn(self, reference_dist):
        with warnings.catch_warnings():
            warnings.simplefilter("error", FixedPointWarning)
            policy = CheckpointPolicy(reference_dist, step=STEP, delta=DELTA)
            policy.plan(3.0, 0.0)
        assert policy.last_fixed_point_residual == 0.0

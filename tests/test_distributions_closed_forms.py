"""Closed-form checks per distribution family."""

import math

import numpy as np
import pytest

from repro.core.model import BathtubParams
from repro.distributions import (
    BathtubDistribution,
    ExponentialDistribution,
    GompertzMakehamDistribution,
    LogNormalLifetimeDistribution,
    PiecewisePhaseDistribution,
    PhaseSegment,
    SuperpositionMixture,
    UniformLifetimeDistribution,
    WeibullDistribution,
)


class TestExponential:
    def test_memorylessness(self):
        """P(T <= s+w | T > s) is independent of s — the defining property."""
        d = ExponentialDistribution(rate=0.7)
        probs = [d.conditional_failure_probability(s, 2.0) for s in (0.0, 1.0, 5.0, 20.0)]
        assert max(probs) - min(probs) < 1e-9

    def test_mttf_constructor(self):
        d = ExponentialDistribution.from_mttf(4.0)
        assert d.rate == pytest.approx(0.25)
        assert d.mttf == pytest.approx(4.0)
        assert d.mean() == pytest.approx(4.0)

    def test_closed_ppf(self):
        d = ExponentialDistribution(rate=2.0)
        assert float(d.ppf(0.5)) == pytest.approx(math.log(2) / 2)

    def test_truncated_moment_closed_form(self):
        d = ExponentialDistribution(rate=1.0)
        # int_0^inf t e^-t dt = 1
        assert d.truncated_first_moment(0.0, 60.0) == pytest.approx(1.0, rel=1e-9)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ExponentialDistribution(rate=0.0)


class TestWeibull:
    def test_reduces_to_exponential_at_k1(self):
        w = WeibullDistribution(lam=0.5, k=1.0)
        e = ExponentialDistribution(rate=0.5)
        t = np.linspace(0, 10, 50)
        np.testing.assert_allclose(w.cdf(t), e.cdf(t), rtol=1e-10)

    def test_mean_gamma_formula(self):
        w = WeibullDistribution(lam=0.25, k=2.0)
        assert w.mean() == pytest.approx(math.gamma(1.5) / 0.25, rel=1e-12)

    def test_hazard_monotone_never_bathtub(self):
        """k>1: increasing; k<1: decreasing. Never both — the paper's point."""
        t = np.linspace(0.1, 20, 100)
        inc = np.asarray(WeibullDistribution(0.1, 2.5).hazard(t))
        dec = np.asarray(WeibullDistribution(0.1, 0.5).hazard(t))
        assert np.all(np.diff(inc) > 0)
        assert np.all(np.diff(dec) < 0)


class TestGompertzMakeham:
    def test_hazard_form(self):
        g = GompertzMakehamDistribution(lam=0.05, alpha=0.01, beta=0.3)
        t = np.linspace(0, 10, 30)
        np.testing.assert_allclose(g.hazard(t), 0.05 + 0.01 * np.exp(0.3 * t), rtol=1e-10)

    def test_horizon_captures_tail(self):
        g = GompertzMakehamDistribution(lam=0.05, alpha=0.01, beta=0.3)
        assert float(g.cdf(g.t_max)) > 1 - 1e-8


class TestUniform:
    def test_closed_forms_of_section_61(self):
        """E[W1] = J/2 and E[increase] = J^2/48 for L = 24."""
        u = UniformLifetimeDistribution(24.0)
        for J in (2.0, 10.0, 20.0):
            # E[W1] = (1/F(J)) int_0^J t/L dt = J/2
            m = u.truncated_first_moment(0.0, J)
            assert m / float(u.cdf(J)) == pytest.approx(J / 2)
            # E[increase] = int_0^J t f = J^2 / 48
            assert m == pytest.approx(J * J / 48.0)

    def test_mean(self):
        assert UniformLifetimeDistribution(24.0).mean() == pytest.approx(12.0)


class TestBathtubDistribution:
    def test_delegates_to_model(self, reference_model):
        d = BathtubDistribution(reference_model)
        t = np.linspace(0, 24, 30)
        np.testing.assert_allclose(d.cdf(t), reference_model.cdf(t))
        assert d.mean() == pytest.approx(reference_model.expected_lifetime())
        assert d.params == reference_model.params

    def test_constructible_from_params_and_mapping(self):
        p = BathtubParams(A=0.45, tau1=1.0, tau2=0.8, b=24.0)
        assert BathtubDistribution(p).t_max == BathtubDistribution(p.as_dict()).t_max


class TestPiecewise:
    def test_segment_validation(self):
        with pytest.raises(ValueError):
            PhaseSegment(2.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            PiecewisePhaseDistribution([])
        with pytest.raises(ValueError):
            PiecewisePhaseDistribution([PhaseSegment(1.0, 2.0, 0.1)])  # not at 0
        with pytest.raises(ValueError):
            PiecewisePhaseDistribution(
                [PhaseSegment(0.0, 1.0, 0.1), PhaseSegment(2.0, 3.0, 0.1)]  # gap
            )

    def test_piecewise_exponential_survival(self):
        d = PiecewisePhaseDistribution.bathtub_three_phase(
            early_hazard=0.3, stable_hazard=0.01, final_hazard=1.5
        )
        # Inside the first segment: S(t) = exp(-0.3 t).
        assert float(d.cdf(2.0)) == pytest.approx(1 - math.exp(-0.6), rel=1e-10)
        # Cumulative hazard is continuous across the boundary.
        h = np.asarray(d.cumulative_hazard(np.array([2.999, 3.001])))
        assert abs(h[1] - h[0]) < 1e-2

    def test_terminal_atom(self):
        d = PiecewisePhaseDistribution.bathtub_three_phase(
            early_hazard=0.1, stable_hazard=0.001, final_hazard=0.2
        )
        atom = d.terminal_atom()
        assert 0.0 < atom < 1.0
        assert float(d.cdf(d.t_max)) == 1.0
        assert float(d.cdf(d.t_max - 1e-6)) == pytest.approx(1.0 - atom, abs=1e-4)

    def test_sampling_honours_atom(self, rng):
        d = PiecewisePhaseDistribution.bathtub_three_phase(
            early_hazard=0.05, stable_hazard=0.001, final_hazard=0.05
        )
        s = d.sample(4000, rng)
        at_deadline = np.mean(s >= d.t_max - 1e-9)
        assert at_deadline == pytest.approx(d.terminal_atom(), abs=0.03)

    def test_non_terminal_variant(self):
        d = PiecewisePhaseDistribution(
            [PhaseSegment(0.0, 10.0, 0.2)], terminal=False
        )
        assert d.terminal_atom() == 0.0
        assert float(d.cdf(10.0)) < 1.0


class TestMixture:
    def test_additive_superposition(self):
        e1 = ExponentialDistribution(rate=1.0)
        e2 = ExponentialDistribution(rate=0.1)
        mix = SuperpositionMixture([(0.5, e1), (0.5, e2)])
        t = np.linspace(0, 5, 20)
        expected = 0.5 * np.asarray(e1.cdf(t)) + 0.5 * np.asarray(e2.cdf(t))
        np.testing.assert_allclose(mix.cdf(t), expected, rtol=1e-10)

    def test_two_process_structure_mimics_eq1(self):
        """An early exponential + a deadline process reproduces the bathtub
        shape — the Section 8 'superposition framework' in action."""
        early = ExponentialDistribution(rate=1.0)
        late = PiecewisePhaseDistribution(
            [PhaseSegment(0.0, 21.0, 1e-9), PhaseSegment(21.0, 24.0, 2.0)]
        )
        mix = SuperpositionMixture([(0.46, early), (0.54, late)])
        pdf_early = float(mix.pdf(0.1))
        pdf_mid = float(mix.pdf(12.0))
        pdf_late = float(mix.pdf(23.0))
        assert pdf_early > 10 * pdf_mid
        assert pdf_late > 10 * pdf_mid

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            SuperpositionMixture([(0.0, ExponentialDistribution(1.0))])
        with pytest.raises(ValueError):
            SuperpositionMixture([])

    def test_n_components(self):
        mix = SuperpositionMixture([(1.0, ExponentialDistribution(1.0))])
        assert mix.n_components == 1


class TestLogNormal:
    def test_mean_closed_form(self):
        d = LogNormalLifetimeDistribution(mu=1.0, sigma=0.5)
        assert d.mean() == pytest.approx(math.exp(1.125), rel=1e-12)

    def test_median(self):
        d = LogNormalLifetimeDistribution(mu=1.0, sigma=0.5)
        assert float(d.cdf(math.exp(1.0))) == pytest.approx(0.5, abs=1e-9)

"""Observability neutrality tier: ``instrument=`` changes nothing.

The zero-overhead-when-off contract has a stronger sibling that makes
instrumentation trustworthy at all: turning it ON must not change a
single outcome byte.  The counting sites only *read* simulation state —
they never consume an RNG draw — so every per-replication array is
byte-identical with and without ``instrument=True``, across all four
kernels, both backends, and the sharded worker paths.

The cross-backend class then pins the mirror contract: per-channel
arena event counts and the policy counters (stall terminations,
boot-grace activations) are counted at semantically identical choke
points in the vectorized kernels and the event oracle, so the two
backends' :class:`~repro.obs.KernelStats` agree exactly — an
independent check of the kernels' pick classification that catches
drift before it reaches the 1e-9 outcome tolerance.
"""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.weibull import WeibullDistribution
from repro.sim.backend import (
    DrawCapture,
    run_cluster_replications,
    run_replications,
    run_service_replications,
    run_tenant_replications,
)

DIST = ExponentialDistribution(3.0)
SEGMENTS = [0.8, 0.5, 0.7]
JOBS = [(0.6, 1), (0.4, 2), (0.5, 1)]
TRAFFIC = [
    (0, 0.0, [(0.6, 1), (0.4, 2)]),
    (1, 0.3, [(0.5, 1)]),
    (2, 0.9, [(0.8, 2)]),
]
BACKENDS = ["event", "vectorized"]
WORKERS = [1, 2, 3]


def run_plan(backend, workers=1, instrument=False, capture=None):
    return run_replications(
        DIST, SEGMENTS, n_replications=13, seed=2, restart_latency=0.05,
        backend=backend, workers=workers, instrument=instrument,
        capture=capture,
    )


def run_cluster(backend, workers=1, instrument=False, capture=None):
    return run_cluster_replications(
        DIST, JOBS, n_replications=9, seed=2, pool_size=3,
        backend=backend, workers=workers, instrument=instrument,
        capture=capture,
    )


def run_service(backend, workers=1, instrument=False, capture=None):
    return run_service_replications(
        DIST, JOBS, n_replications=9, seed=2, max_vms=4,
        backend=backend, workers=workers, instrument=instrument,
        capture=capture,
    )


def run_tenancy(backend, workers=1, instrument=False, capture=None):
    return run_tenant_replications(
        DIST, TRAFFIC, n_replications=7, seed=2, max_vms=4,
        backend=backend, workers=workers, instrument=instrument,
        capture=capture,
    )


RUNNERS = {
    "plan": run_plan,
    "cluster": run_cluster,
    "service": run_service,
    "tenancy": run_tenancy,
}


def assert_outcomes_equal(base, instrumented_run):
    """Byte-identity on every outcome field; stats itself is excluded."""
    assert base.stats is None
    assert instrumented_run.stats is not None
    for name, value in vars(base).items():
        if name == "stats":
            continue
        other = getattr(instrumented_run, name)
        if isinstance(value, np.ndarray):
            with np.errstate(invalid="ignore"):
                np.testing.assert_array_equal(value, other, err_msg=name)
        else:
            assert value == other, name


class TestOnOffByteIdentity:
    """4 kernels x 2 backends: instrument on == off, byte for byte."""

    @pytest.mark.parametrize("kind", sorted(RUNNERS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial(self, kind, backend):
        base = RUNNERS[kind](backend)
        on = RUNNERS[kind](backend, instrument=True)
        assert_outcomes_equal(base, on)

    @pytest.mark.sharded
    @pytest.mark.parametrize("kind", sorted(RUNNERS))
    @pytest.mark.parametrize("workers", WORKERS)
    def test_sharded(self, kind, workers):
        base = RUNNERS[kind]("vectorized")
        on = RUNNERS[kind]("vectorized", workers=workers, instrument=True)
        assert_outcomes_equal(base, on)
        assert on.stats.workers == workers

    def test_capture_rows_unchanged(self):
        """Instrumentation never consumes a draw: the realized uniform
        rows of an instrumented sweep equal the uninstrumented ones."""
        for kind in ("plan", "cluster", "service"):
            cap_off, cap_on = DrawCapture(), DrawCapture()
            RUNNERS[kind]("vectorized", capture=cap_off)
            RUNNERS[kind]("vectorized", capture=cap_on, instrument=True)
            assert cap_off.n_rounds == cap_on.n_rounds, kind
            for k, (a, b) in enumerate(zip(cap_off.rows, cap_on.rows)):
                np.testing.assert_array_equal(a, b, err_msg=f"{kind}[{k}]")


class TestCrossBackendStats:
    """The two backends produce the same counted diagnostics."""

    MIRRORED = (
        "kind", "n_replications", "n_rounds", "n_draws",
        "channel_events", "stall_terminations", "boot_grace_activations",
    )

    @pytest.mark.parametrize("kind", sorted(RUNNERS))
    def test_stats_agree(self, kind):
        event = RUNNERS[kind]("event", instrument=True).stats
        vec = RUNNERS[kind]("vectorized", instrument=True).stats
        for field in self.MIRRORED:
            assert getattr(event, field) == getattr(vec, field), field

    def test_channel_schema(self):
        """Each kernel reports its full channel set."""
        expected = {
            "plan": {"restart"},
            "cluster": {"death", "comp"},
            "service": {"death", "comp", "boot", "reap"},
            "tenancy": {"death", "comp", "boot", "reap", "arr"},
        }
        for kind, channels in expected.items():
            stats = RUNNERS[kind]("vectorized", instrument=True).stats
            assert set(stats.channel_events) == channels, kind

    def test_boot_grace_mirror_fires(self):
        """A decreasing-hazard law with a wide grace window exercises
        the grace channel on both sides; the counts agree exactly."""
        dist = WeibullDistribution(0.6, 4.0)
        jobs = [(0.6, 1), (0.4, 2), (0.5, 1), (0.3, 1), (0.7, 2)]
        stats = {}
        for backend in BACKENDS:
            out = run_service_replications(
                dist, jobs, n_replications=12, seed=2, backend=backend,
                max_vms=5, hot_spare_hours=0.2, provision_latency=0.5,
                instrument=True,
            )
            stats[backend] = out.stats
        ev, vec = stats["event"], stats["vectorized"]
        assert ev.boot_grace_activations == vec.boot_grace_activations > 0
        assert ev.channel_events == vec.channel_events
        assert ev.stall_terminations == vec.stall_terminations > 0

    def test_reap_mirror_fires(self):
        """A short hot-spare hold makes spare reaping happen; the reap
        channel (controller timer vs reap arena events) agrees."""
        dist = WeibullDistribution(0.6, 4.0)
        jobs = [(0.6, 1), (0.4, 2), (0.5, 1), (0.3, 1), (0.7, 2)]
        stats = {}
        for backend in BACKENDS:
            out = run_service_replications(
                dist, jobs, n_replications=12, seed=2, backend=backend,
                max_vms=5, hot_spare_hours=0.2, provision_latency=0.05,
                instrument=True,
            )
            stats[backend] = out.stats
        ev, vec = stats["event"], stats["vectorized"]
        assert ev.channel_events == vec.channel_events
        assert ev.channel_events["reap"] > 0

"""Cross-backend equivalence: event-driven vs vectorized Monte Carlo.

The two backends share a round-based draw protocol (see
``repro/sim/backend.py``), so for identical seeds and configurations the
per-replication outcomes must agree to float-associativity noise — we
pin 1e-9 hours, six orders of magnitude above what the implementations
actually drift (~1e-14).
"""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.policies.checkpointing import CheckpointPolicy, simulate_schedule
from repro.policies.scheduling import ModelReusePolicy
from repro.policies.youngdaly import young_daly_schedule
from repro.sim.backend import run_replications
from repro.sim.vectorized import simulate_job_attempts_vectorized

DELTA = 1.0 / 60.0
N = 200
SEEDS = [0, 1, 2, 3, 4]

#: Checkpoint-interval grid: unchecked, dense/sparse Young-Daly, uneven.
SCHEDULES = [
    [3.0],
    young_daly_schedule(3.0, 0.25),
    young_daly_schedule(3.0, 0.75),
    [0.2, 0.5, 1.0, 1.3],
]


def run_both(dist, segments, seed, **kwargs):
    kwargs.setdefault("n_replications", N)
    event = run_replications(dist, segments, seed=seed, backend="event", **kwargs)
    vec = run_replications(dist, segments, seed=seed, backend="vectorized", **kwargs)
    return event, vec


def assert_equivalent(event, vec):
    np.testing.assert_allclose(vec.makespan, event.makespan, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.wasted_hours, event.wasted_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(
        vec.completed_work, event.completed_work, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec.n_restarts, event.n_restarts)
    assert vec.n_rounds == event.n_rounds


class TestBathtubEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: f"K{len(s)}")
    def test_interval_grid(self, reference_dist, seed, schedule):
        assert_equivalent(*run_both(reference_dist, schedule, seed, delta=DELTA))

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("start_age", [0.0, 8.0, 12.0, 20.0])
    def test_start_ages(self, reference_dist, seed, start_age):
        assert_equivalent(
            *run_both(
                reference_dist,
                [0.5, 1.0, 1.5],
                seed,
                delta=DELTA,
                start_age=start_age,
            )
        )

    @pytest.mark.parametrize("seed", [0, 2])
    def test_per_replication_start_ages(self, reference_dist, seed):
        """The policy-evaluation shape: every replication has its own age."""
        ages = np.random.default_rng(seed).random(N) * reference_dist.t_max
        assert_equivalent(
            *run_both(reference_dist, [0.5, 1.0, 1.5], seed, delta=DELTA, start_age=ages)
        )

    def test_scalar_and_array_start_age_agree(self, reference_dist):
        """A constant age array reproduces the scalar start_age path."""
        scalar = run_replications(
            reference_dist, [1.0, 2.0], start_age=8.0, seed=1, n_replications=N
        )
        array = run_replications(
            reference_dist,
            [1.0, 2.0],
            start_age=np.full(N, 8.0),
            seed=1,
            n_replications=N,
        )
        np.testing.assert_allclose(
            array.makespan, scalar.makespan, rtol=0.0, atol=1e-9
        )
        np.testing.assert_array_equal(array.n_restarts, scalar.n_restarts)

    def test_start_age_array_validation(self, reference_dist):
        with pytest.raises(ValueError, match="shape"):
            run_replications(
                reference_dist, [1.0], start_age=np.zeros(3), n_replications=5
            )
        with pytest.raises(ValueError, match=">= 0"):
            run_replications(
                reference_dist,
                [1.0],
                start_age=np.array([0.0, -1.0]),
                n_replications=2,
            )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_restart_latency_and_zero_delta(self, reference_dist, seed):
        assert_equivalent(
            *run_both(
                reference_dist,
                [1.0, 1.0, 2.0],
                seed,
                delta=0.0,
                restart_latency=0.25,
            )
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dp_plan(self, reference_dist, seed):
        """The schedule that matters most: the DP policy's own plan."""
        policy = CheckpointPolicy(reference_dist, step=0.25, delta=DELTA)
        plan = policy.plan(3.0, 0.0)
        assert_equivalent(*run_both(reference_dist, plan.segments, seed, delta=DELTA))


class TestOtherDistributions:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "dist",
        [ExponentialDistribution(rate=0.5), UniformLifetimeDistribution(24.0)],
        ids=["exponential", "uniform"],
    )
    def test_equivalence(self, dist, seed):
        assert_equivalent(
            *run_both(dist, [0.5, 1.0, 1.5], seed, delta=DELTA, start_age=6.0)
        )


class TestFrontEnds:
    def test_simulate_schedule_backend_switch(self, reference_dist):
        """The policies-layer wrapper preserves the contract end to end."""
        sched = young_daly_schedule(2.0, 0.5)
        mk = {
            backend: simulate_schedule(
                reference_dist,
                sched,
                delta=DELTA,
                n_runs=N,
                rng=np.random.default_rng(11),
                backend=backend,
            )
            for backend in ("event", "vectorized")
        }
        np.testing.assert_allclose(
            mk["vectorized"], mk["event"], rtol=0.0, atol=1e-9
        )

    def test_job_attempt_kernel_matches_event_backend(self, reference_dist):
        """The Eq. 8 job-attempt kernel keeps the round-protocol contract:
        same generator state -> same outcomes as the event backend run on
        the policy-chosen effective ages."""
        job = 6.0
        ages = np.random.default_rng(9).random(N) * reference_dist.t_max
        reuse = ModelReusePolicy(reference_dist).decide_batch(job, ages)
        makespan, wasted, completed, restarts, n_rounds = (
            simulate_job_attempts_vectorized(
                reference_dist,
                job,
                ages,
                reuse=reuse,
                restart_latency=0.1,
                rng=np.random.default_rng(5),
            )
        )
        event = run_replications(
            reference_dist,
            [job],
            delta=0.0,
            start_age=np.where(reuse, ages, 0.0),
            restart_latency=0.1,
            n_replications=N,
            seed=np.random.default_rng(5),
            backend="event",
        )
        np.testing.assert_allclose(makespan, event.makespan, rtol=0.0, atol=1e-9)
        np.testing.assert_allclose(
            wasted, event.wasted_hours, rtol=0.0, atol=1e-9
        )
        np.testing.assert_array_equal(restarts, event.n_restarts)
        assert n_rounds == event.n_rounds
        # First-attempt failures are exactly the replications that restarted.
        np.testing.assert_array_equal(
            restarts > 0, makespan > job + 1e-12
        )

    def test_job_attempt_kernel_default_reuses_all(self, reference_dist):
        """reuse=None is the memoryless baseline: every age kept as-is."""
        ages = np.linspace(0.0, 20.0, 64)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        none_mask = simulate_job_attempts_vectorized(
            reference_dist, 2.0, ages, rng=rng_a
        )
        all_true = simulate_job_attempts_vectorized(
            reference_dist, 2.0, ages, reuse=np.ones(64, bool), rng=rng_b
        )
        for got, expected in zip(none_mask, all_true):
            np.testing.assert_array_equal(got, expected)

    def test_zero_replications(self, reference_dist):
        event, vec = run_both(reference_dist, [1.0], 0, n_replications=0)
        assert event.n_replications == vec.n_replications == 0
        assert event.n_rounds == vec.n_rounds == 0

    def test_unfinishable_schedule_raises_on_both(self):
        dist = UniformLifetimeDistribution(24.0)
        for backend in ("event", "vectorized"):
            with pytest.raises(RuntimeError, match="rounds"):
                run_replications(
                    dist,
                    [30.0],
                    n_replications=4,
                    seed=0,
                    backend=backend,
                    max_rounds=3,
                )

    def test_invalid_backend_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="backend"):
            run_replications(reference_dist, [1.0], backend="gpu")

    def test_validation(self, reference_dist):
        with pytest.raises(ValueError):
            run_replications(reference_dist, [])
        with pytest.raises(ValueError):
            run_replications(reference_dist, [0.0])
        with pytest.raises(ValueError):
            run_replications(reference_dist, [1.0], n_replications=-1)
        with pytest.raises(ValueError):
            run_replications(reference_dist, [1.0], start_age=-1.0)

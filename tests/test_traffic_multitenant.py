"""Behavioural tests of the live MultiTenantService front end.

The cross-backend suite (test_tenancy_backend_equivalence.py) pins the
front end against the batched kernel; these tests pin its *semantics*
directly — admission, inter-tenant ordering, elastic fleet sizing, the
keyed cluster queue, and per-tenant bookkeeping.
"""

import numpy as np
import pytest

from repro.service.controller import ServiceConfig
from repro.sim.backend import _RoundProtocolCloud, _RoundUniforms
from repro.sim.cluster import ClusterManager, SimJob
from repro.sim.engine import Simulator
from repro.sim.tenancy_vectorized import (
    BagSubmission,
    TenancyConfig,
    assign_queue_keys,
    normalize_traffic,
    queue_key,
)
from repro.traffic.multitenant import MultiTenantService


def make_service(dist, config=None, *, n=1, seed=0, **kwargs):
    sim = Simulator()
    cloud = _RoundProtocolCloud(sim, dist, _RoundUniforms(np.random.default_rng(seed), n), 0)
    mts = MultiTenantService(
        sim, cloud, dist, config or ServiceConfig(run_master=False), **kwargs
    )
    return sim, mts


class TestQueueKeys:
    def test_fifo_keys_are_global_indices(self):
        tenants = np.array([0, 1, 0, 2])
        np.testing.assert_array_equal(
            assign_queue_keys(tenants, "fifo", 3), [0.0, 1.0, 2.0, 3.0]
        )

    def test_fair_keys_round_robin(self):
        tenants = np.array([0, 0, 0, 1, 1])
        keys = assign_queue_keys(tenants, "fair", 2)
        # tenant 1's first job (key 1) outranks tenant 0's second (key 2).
        np.testing.assert_array_equal(keys, [0.0, 2.0, 4.0, 1.0, 3.0])

    def test_weighted_keys_stride(self):
        tenants = np.array([0, 0, 1, 1])
        keys = assign_queue_keys(tenants, "weighted", 2, weights=(2.0, 1.0))
        np.testing.assert_allclose(keys, [0.5, 1.0, 1.0, 2.0])

    def test_scalar_matches_batch(self):
        tenants = np.array([0, 1, 0, 2, 1, 0])
        for policy in ("fair", "weighted"):
            batch = assign_queue_keys(tenants, policy, 3, weights=(2.0, 1.0, 3.0))
            seen = [0, 0, 0]
            for i, t in enumerate(tenants):
                scalar = queue_key(policy, int(t), seen[t], 3, (2.0, 1.0, 3.0))
                assert scalar == batch[i]
                seen[t] += 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="scheduling"):
            assign_queue_keys(np.array([0]), "lottery", 1)


class TestKeyedClusterQueue:
    def _cluster(self):
        sim = Simulator()
        cluster = ClusterManager(sim, node_selector=lambda job, free: None)
        cluster.enable_keyed_queue()
        return sim, cluster

    def test_orders_by_key_fifo_among_equals(self):
        _, cluster = self._cluster()
        jobs = [SimJob(job_id=i, work_hours=1.0) for i in range(4)]
        for job, key in zip(jobs, [2.0, 1.0, 1.0, 0.5]):
            job.queue_key = key
            cluster.submit(job)
        order = [cluster._queue[i].job_id for i in range(4)]
        assert order == [3, 1, 2, 0]

    def test_unkeyed_jobs_fall_back_to_submission_order(self):
        _, cluster = self._cluster()
        for i in range(3):
            cluster.submit(SimJob(job_id=i, work_hours=1.0))
        assert [j.job_id for j in cluster._queue] == [0, 1, 2]

    def test_enable_on_nonempty_queue_rejected(self):
        sim = Simulator()
        cluster = ClusterManager(sim, node_selector=lambda job, free: None)
        cluster.submit(SimJob(job_id=0, work_hours=1.0))
        with pytest.raises(RuntimeError, match="non-empty"):
            cluster.enable_keyed_queue()


class TestNormalizeTraffic:
    def test_stable_sort_and_conversion(self):
        traffic = normalize_traffic(
            [(1, 2.0, [(1.0, 1)]), (0, 1.0, [(0.5, 1)]), (2, 2.0, [(0.3, 1)])]
        )
        assert [s.tenant for s in traffic] == [0, 1, 2]
        assert all(isinstance(s, BagSubmission) for s in traffic)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one job"):
            normalize_traffic([(0, 1.0, [])])
        with pytest.raises(ValueError, match="tenant"):
            normalize_traffic([(-1, 1.0, [(1.0, 1)])])


class TestMultiTenantService:
    def test_admission_cap_rejects_whole_bags(self, reference_dist):
        sim, mts = make_service(
            reference_dist, n_tenants=2, admission_cap=3,
            config=ServiceConfig(run_master=False, max_vms=2),
        )
        mts.submit_traffic(
            [
                (0, 0.0, [(5.0, 1)] * 3),   # fills tenant 0's cap
                (0, 0.1, [(0.5, 1)]),       # rejected: 3 unfinished + 1 > 3
                (1, 0.1, [(0.5, 1)] * 3),   # tenant 1 unaffected
            ]
        )
        mts.run()
        assert mts.rejected_bags[0] == 1
        assert mts.rejected_bags[1] == 0
        assert mts.admitted_jobs(0) == 3
        assert mts.admitted_jobs(1) == 3
        rejected = [r for r in mts.records if not r.admitted]
        assert len(rejected) == 1 and rejected[0].tenant == 0

    def test_fair_policy_interleaves_tenants(self, reference_dist):
        """With one worker, fair share alternates tenants even though
        tenant 0 submitted everything first."""
        sim, mts = make_service(
            reference_dist, n_tenants=2, scheduling="fair",
            config=ServiceConfig(run_master=False, max_vms=1),
        )
        mts.submit_traffic(
            [
                (0, 0.0, [(0.5, 1)] * 3),
                (1, 0.01, [(0.5, 1)] * 3),
            ]
        )
        mts.run()
        started = sorted(
            (r.start_time, r.tenant) for r in mts.records if r.admitted
        )
        order = [t for _, t in started]
        assert order == [0, 1, 0, 1, 0, 1]

    def test_fifo_policy_serves_in_submission_order(self, reference_dist):
        sim, mts = make_service(
            reference_dist, n_tenants=2, scheduling="fifo",
            config=ServiceConfig(run_master=False, max_vms=1),
        )
        mts.submit_traffic(
            [(0, 0.0, [(0.5, 1)] * 3), (1, 0.01, [(0.5, 1)] * 3)]
        )
        mts.run()
        started = sorted(
            (r.start_time, r.tenant) for r in mts.records if r.admitted
        )
        assert [t for _, t in started] == [0, 0, 0, 1, 1, 1]

    def test_weighted_policy_favours_heavy_tenant(self, reference_dist):
        sim, mts = make_service(
            reference_dist, n_tenants=2, scheduling="weighted",
            tenant_weights=(1.0, 4.0),
            config=ServiceConfig(run_master=False, max_vms=1),
        )
        mts.submit_traffic(
            [(0, 0.0, [(0.5, 1)] * 2), (1, 0.01, [(0.5, 1)] * 4)]
        )
        mts.run()
        started = sorted(
            (r.start_time, r.tenant) for r in mts.records if r.admitted
        )
        # t0's first job starts before t1 arrives; after that the stride
        # keys (t0: 2.0 left; t1: 0.25, 0.5, 0.75, 1.0) put all of the
        # heavy tenant's jobs ahead of t0's second.
        assert [t for _, t in started] == [0, 1, 1, 1, 1, 0]

    def test_elastic_fleet_cap_tracks_active_bags(self, reference_dist):
        sim, mts = make_service(
            reference_dist, n_tenants=2, elastic_vms_per_bag=2,
            config=ServiceConfig(run_master=False, max_vms=8),
        )
        assert mts.service.fleet_cap == 1  # no active bags yet
        mts.submit_traffic(
            [(0, 0.0, [(0.4, 1)] * 2), (1, 0.1, [(0.4, 1)] * 2)]
        )
        caps = []
        while not mts.finished:
            sim.step()
            caps.append(mts.service.fleet_cap)
        assert max(caps) == 4  # two active bags x 2
        assert mts.service.fleet_cap == 1  # back to the floor when drained

    def test_per_tenant_estimates_are_isolated(self, reference_dist):
        """Tenant 1's long jobs must not inflate tenant 0's estimate:
        each bag keeps its own BagOfJobs."""
        sim, mts = make_service(
            reference_dist, n_tenants=2,
            config=ServiceConfig(run_master=False, max_vms=4),
        )
        mts.submit_traffic(
            [(0, 0.0, [(0.2, 1)] * 3), (1, 0.0, [(3.0, 1)] * 2)]
        )
        mts.run()
        bags = mts.service.bags
        estimates = {
            int(bag.request.name.removeprefix("tenant-")): bag.estimated_runtime()
            for bag in bags.values()
        }
        assert estimates[0] == pytest.approx(0.2)
        assert estimates[1] == pytest.approx(3.0)

    def test_bag_state_released_on_drain(self, reference_dist):
        """Per-bag front-end state must not grow with the traffic: both
        the remaining-count and the tenant map drop a drained bag."""
        sim, mts = make_service(
            reference_dist, n_tenants=2,
            config=ServiceConfig(run_master=False, max_vms=2),
        )
        mts.submit_traffic(
            [
                (0, 0.0, [(0.3, 1)] * 2),
                (1, 0.2, [(0.4, 1)]),
                (0, 0.5, [(0.2, 1)] * 3),
            ]
        )
        mts.run()
        assert mts.finished
        assert mts._bag_remaining == {}
        assert mts._bag_tenant == {}
        assert mts._bags_active == 0

    def test_backfill_config_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="backfill"):
            make_service(
                reference_dist,
                config=ServiceConfig(backfill=True),
                n_tenants=1,
            )

    def test_wait_and_bookkeeping(self, reference_dist):
        sim, mts = make_service(
            reference_dist, n_tenants=1,
            config=ServiceConfig(run_master=False, max_vms=2),
        )
        mts.schedule_bag(0, 1.5, [(0.5, 1), (0.5, 1)])
        mts.run()
        assert mts.finished
        assert mts.completed_jobs() == 2
        assert mts.tenant_unfinished(0) == 0
        for rec in mts.records:
            assert rec.wait_hours is not None and rec.wait_hours >= 0.0
            assert rec.finish_time >= rec.start_time >= rec.arrival

    def test_invalid_tenant_rejected(self, reference_dist):
        sim, mts = make_service(reference_dist, n_tenants=2)
        with pytest.raises(ValueError, match="tenant"):
            mts.schedule_bag(5, 0.0, [(1.0, 1)])


class TestTenancyConfigValidation:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            TenancyConfig(scheduling="nope")
        with pytest.raises(ValueError):
            TenancyConfig(tenant_weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            TenancyConfig(admission_cap=0)
        with pytest.raises(ValueError):
            TenancyConfig(elastic_vms_per_bag=-1)

    def test_defaults_valid(self):
        cfg = TenancyConfig()
        assert cfg.scheduling == "fifo"
        assert cfg.admission_cap is None


class TestQueueKeyValidation:
    def test_negative_queue_key_rejected(self):
        """Negative keys are the requeue-at-head reservation; a user job
        carrying one could starve preempted jobs."""
        from repro.service.api import JobRequest

        with pytest.raises(ValueError, match="reserved"):
            JobRequest(work_hours=1.0, queue_key=-5.0)
        assert JobRequest(work_hours=1.0, queue_key=0.0).queue_key == 0.0

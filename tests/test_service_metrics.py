"""Tests for service metrics and remaining small service paths."""

import math

import pytest

from repro.service.metrics import ServiceMetrics
from repro.sim.cloud import BillingReport
from repro.sim.events import EventLog, JobCompleted, JobFailed, VMPreempted


def _billing(total=10.0, pre=8.0, od=2.0):
    return BillingReport(
        total_cost=total,
        preemptible_cost=pre,
        on_demand_cost=od,
        vm_hours=40.0,
        n_launched=5,
        n_preempted=2,
    )


class TestServiceMetrics:
    def test_from_run_aggregates(self):
        log = EventLog()
        log.record(JobCompleted(time=1.0, job_id=0, makespan_hours=1.0))
        log.record(JobCompleted(time=2.0, job_id=1, makespan_hours=3.0))
        log.record(JobFailed(time=1.5, job_id=2, vm_id=9, lost_hours=0.4))
        log.record(VMPreempted(time=1.5, vm_id=9, vm_type="t", age_hours=1.5))
        m = ServiceMetrics.from_run(log, _billing(), wall_clock_hours=2.0)
        assert m.n_jobs_completed == 2
        assert m.n_job_failures == 1
        assert m.n_preemptions == 1
        assert m.total_lost_hours == pytest.approx(0.4)
        assert m.mean_job_makespan == pytest.approx(2.0)
        assert m.total_cost == 10.0

    def test_cost_per_job(self):
        log = EventLog()
        log.record(JobCompleted(time=1.0, job_id=0, makespan_hours=1.0))
        m = ServiceMetrics.from_run(log, _billing(total=5.0), wall_clock_hours=1.0)
        assert m.cost_per_job() == pytest.approx(5.0)

    def test_cost_per_job_no_jobs_is_nan(self):
        m = ServiceMetrics.from_run(EventLog(), _billing(), wall_clock_hours=1.0)
        assert math.isnan(m.cost_per_job())

    def test_empty_log_zeroes(self):
        m = ServiceMetrics.from_run(EventLog(), _billing(), wall_clock_hours=0.5)
        assert m.n_jobs_completed == 0
        assert m.mean_job_makespan == 0.0

"""Tests for the cloud provider, VM lifecycle, cluster manager, and runner."""

import numpy as np
import pytest

from repro.sim.cloud import CloudProvider, PREEMPTION_WARNING_HOURS
from repro.sim.cluster import ClusterManager, JobState, SimJob
from repro.sim.engine import Simulator
from repro.sim.events import JobCompleted, JobFailed, VMPreempted, VMTerminated
from repro.sim.rng import RandomStreams
from repro.sim.vm import SimVM, VMState


def make_cloud(seed=0, start=0.0):
    sim = Simulator(start_time=start)
    return sim, CloudProvider(sim, streams=RandomStreams(seed))


class TestVM:
    def test_lifecycle_transitions(self):
        vm = SimVM(1, "t", "z", launch_time=0.0, preemptible=True, hourly_price=0.1)
        assert vm.alive
        vm.mark_preempted(2.0)
        assert vm.state is VMState.PREEMPTED
        assert vm.age(10.0) == 2.0
        with pytest.raises(RuntimeError):
            vm.mark_terminated(3.0)

    def test_cost_accrual(self):
        vm = SimVM(1, "t", "z", launch_time=1.0, preemptible=True, hourly_price=0.5)
        assert vm.cost(3.0) == pytest.approx(1.0)
        vm.mark_terminated(3.0)
        assert vm.cost(10.0) == pytest.approx(1.0)  # billing stops at end


class TestCloudProvider:
    def test_preemption_fires_within_constraint(self):
        sim, cloud = make_cloud(seed=1)
        vms = [cloud.launch("n1-highcpu-16") for _ in range(20)]
        sim.run()
        for vm in vms:
            assert vm.state is VMState.PREEMPTED
            age = vm.age(sim.now)
            assert 0.0 <= age <= 24.2  # t_max slightly past 24 h

    def test_on_demand_never_preempted(self):
        sim, cloud = make_cloud(seed=2)
        od = cloud.launch("n1-highcpu-2", preemptible=False)
        cloud.launch("n1-highcpu-16")  # a preemptible neighbour
        sim.run()
        assert od.alive

    def test_terminate_cancels_preemption(self):
        sim, cloud = make_cloud(seed=3)
        vm = cloud.launch("n1-highcpu-16")
        cloud.terminate(vm)
        sim.run()
        assert vm.state is VMState.TERMINATED
        assert cloud.log.count(VMPreempted) == 0
        assert cloud.log.count(VMTerminated) == 1

    def test_preemption_callbacks(self):
        sim, cloud = make_cloud(seed=4)
        vm = cloud.launch("n1-highcpu-16")
        seen = []
        vm.on_preempt.append(lambda v, t: seen.append((v.vm_id, t)))
        sim.run()
        assert seen and seen[0][0] == vm.vm_id

    def test_hour_of_day_and_night(self):
        sim = Simulator()
        cloud = CloudProvider(sim, day_origin_hour=9.0)
        assert cloud.hour_of_day(0.0) == 9.0
        assert not cloud.is_night(0.0)
        assert cloud.is_night(12.0)  # 9 + 12 = 21h local
        assert cloud.is_night(22.0)  # 9 + 22 = 7h local

    def test_billing_report(self):
        sim, cloud = make_cloud(seed=5)
        vm = cloud.launch("n1-highcpu-16")
        od = cloud.launch("n1-highcpu-2", preemptible=False)
        sim.run_until(1.0)
        cloud.terminate(vm)
        cloud.terminate(od)
        bill = cloud.billing()
        assert bill.preemptible_cost == pytest.approx(0.12, rel=1e-6)
        assert bill.on_demand_cost == pytest.approx(0.0709, rel=1e-6)
        assert bill.n_launched == 2

    def test_deterministic_across_runs(self):
        ages1 = []
        ages2 = []
        for store in (ages1, ages2):
            sim, cloud = make_cloud(seed=6)
            vms = [cloud.launch("n1-highcpu-16") for _ in range(5)]
            sim.run()
            store.extend(vm.age(sim.now) for vm in vms)
        assert ages1 == ages2


class TestClusterManager:
    def _cluster(self, seed=0):
        sim, cloud = make_cloud(seed=seed)
        cluster = ClusterManager(sim, log=cloud.log)
        return sim, cloud, cluster

    def test_job_runs_and_completes(self):
        sim, cloud, cluster = self._cluster(seed=20)
        vm = cloud.launch("n1-highcpu-2")  # flat early phase: survives
        cluster.add_node(vm)
        job = SimJob(job_id=0, work_hours=0.5)
        cluster.submit(job)
        sim.run_until(1.0)
        assert job.state is JobState.COMPLETED
        assert job.makespan == pytest.approx(0.5)
        assert cluster.free_nodes() == [vm] if vm.alive else True

    def test_gang_width_waits_for_nodes(self):
        sim, cloud, cluster = self._cluster(seed=21)
        job = SimJob(job_id=0, work_hours=0.2, width=2)
        cluster.submit(job)
        stalls = []
        cluster.on_queue_stalled.append(lambda j, n: stalls.append(n))
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        assert job.state is JobState.PENDING
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        assert job.state is JobState.RUNNING

    def test_preemption_requeues_with_rollback(self):
        """A preempted unchecked job loses all progress and re-runs."""
        sim, cloud, cluster = self._cluster(seed=22)
        vm = cloud.launch("n1-highcpu-32")  # aggressive type
        # Force a deterministic preemption by terminating via the provider's
        # schedule: instead, use a long job so some preemption hits it.
        cluster.add_node(vm)
        job = SimJob(job_id=0, work_hours=30.0)  # cannot finish on one VM
        failures = []
        cluster.on_job_failed.append(lambda j, v: failures.append(v.vm_id))
        cluster.submit(job)
        sim.run_until(26.0)
        assert failures, "a 30 h job must get preempted within 24 h"
        assert job.state is JobState.PENDING
        assert job.progress_hours == 0.0
        assert cluster.queue_length == 1

    def test_checkpointing_preserves_progress(self):
        """A 30 h checkpointed job outlives several VMs: progress must
        carry across preemptions and the job must eventually finish."""
        sim, cloud, cluster = self._cluster(seed=23)
        cluster.checkpoint_planner = lambda job, age: [1.0] * 30
        cluster.add_node(cloud.launch("n1-highcpu-16"))
        job = SimJob(job_id=0, work_hours=30.0)
        failures = []

        def replace(j, dead_vm):
            failures.append(dead_vm.vm_id)
            cluster.add_node(cloud.launch("n1-highcpu-16"))

        cluster.on_job_failed.append(replace)
        cluster.submit(job)
        sim.run_until(200.0)
        assert job.state is JobState.COMPLETED
        assert failures, "a 30 h job cannot fit one 24 h-bounded VM"
        assert job.progress_hours == pytest.approx(30.0)

    def test_busy_node_cannot_be_removed(self):
        sim, cloud, cluster = self._cluster(seed=24)
        vm = cloud.launch("n1-highcpu-2")
        cluster.add_node(vm)
        cluster.submit(SimJob(job_id=0, work_hours=5.0))
        with pytest.raises(ValueError):
            cluster.remove_node(vm)

    def test_dead_node_rejected(self):
        sim, cloud, cluster = self._cluster(seed=25)
        vm = cloud.launch("n1-highcpu-16")
        cloud.terminate(vm)
        with pytest.raises(ValueError):
            cluster.add_node(vm)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            SimJob(job_id=0, work_hours=0.0)
        with pytest.raises(ValueError):
            SimJob(job_id=0, work_hours=1.0, width=0)

    def test_completion_callback_and_log(self):
        sim, cloud, cluster = self._cluster(seed=26)
        done = []
        cluster.on_job_complete.append(lambda j: done.append(j.job_id))
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        cluster.submit(SimJob(job_id=7, work_hours=0.1))
        sim.run_until(0.5)
        assert done == [7]
        assert cluster.log.count(JobCompleted) == 1

    def test_fifo_order(self):
        sim, cloud, cluster = self._cluster(seed=27)
        order = []
        cluster.on_job_complete.append(lambda j: order.append(j.job_id))
        cluster.add_node(cloud.launch("n1-highcpu-2"))
        for jid in (0, 1, 2):
            cluster.submit(SimJob(job_id=jid, work_hours=0.1))
        sim.run_until(1.0)
        assert order == [0, 1, 2]

"""Tests for VM-type selection and hot-spare retention policies."""

import pytest

from repro.core.model import ConstrainedPreemptionModel
from repro.core.phases import phase_boundaries
from repro.policies.hotspare import HotSparePolicy
from repro.policies.selection import (
    cheapest_suitable_type,
    expected_job_cost,
    select_vm_type,
)
from repro.traces.catalog import VM_TYPES, default_catalog


@pytest.fixture(scope="module")
def candidates():
    cat = default_catalog()
    return {
        vt: (cat.distribution(vt, "us-central1-c"), cat.spec(vt).preemptible_price)
        for vt in VM_TYPES
    }


class TestSelection:
    def test_expected_cost_positive_and_scales_with_price(self, candidates):
        dist, price = candidates["n1-highcpu-16"]
        c1 = expected_job_cost(dist, 4.0, price)
        c2 = expected_job_cost(dist, 4.0, 2 * price)
        assert c1 > 0 and c2 == pytest.approx(2 * c1)

    def test_cheapest_type_wins_for_cost(self, candidates):
        """Per-core prices are flat, so fewer cores => cheaper job."""
        assert select_vm_type(candidates, 4.0) == "n1-highcpu-2"

    def test_cheapest_suitable_respects_failure_budget(self, candidates):
        choice = cheapest_suitable_type(candidates, 6.0, max_failure_probability=0.3)
        assert choice is not None
        dist, _ = candidates[choice]
        assert float(dist.cdf(6.0)) <= 0.3
        # The aggressive highcpu-32 must be excluded at this budget.
        assert choice != "n1-highcpu-32"

    def test_no_type_fits_tiny_budget_for_long_jobs(self, candidates):
        assert cheapest_suitable_type(candidates, 23.5, max_failure_probability=0.05) is None

    def test_tie_breaks_on_catalog_order_not_name(self, candidates):
        """Exact ties (identical distribution and price) must resolve to
        the earliest *catalog* entry, independent of the names' lexical
        order — renaming a type must not flip selections."""
        dist, price = candidates["n1-highcpu-16"]
        # "zz-first" precedes "aa-second" in insertion order but follows
        # it alphabetically: a name-based (or dict-internals-based)
        # tie-break would pick "aa-second".
        tied = {"zz-first": (dist, price), "aa-second": (dist, price)}
        assert select_vm_type(tied, 4.0) == "zz-first"
        assert cheapest_suitable_type(tied, 1.0) == "zz-first"
        # The rule is positional: reordering the same entries flips it.
        reordered = {"aa-second": (dist, price), "zz-first": (dist, price)}
        assert select_vm_type(reordered, 4.0) == "aa-second"
        assert cheapest_suitable_type(reordered, 1.0) == "aa-second"

    def test_price_tie_still_honours_failure_budget(self, candidates):
        """cheapest_suitable_type's catalog-order tie-break applies only
        within the suitable set: an earlier-but-unsuitable type must not
        win on position."""
        risky_dist, price = candidates["n1-highcpu-32"]
        safe_dist, _ = candidates["n1-highcpu-2"]
        tied = {"risky": (risky_dist, price), "safe": (safe_dist, price)}
        budget = float(risky_dist.cdf(6.0)) - 1e-9
        assert float(safe_dist.cdf(6.0)) <= budget
        assert cheapest_suitable_type(tied, 6.0, max_failure_probability=budget) == "safe"

    def test_validation(self, candidates):
        with pytest.raises(ValueError):
            select_vm_type({}, 1.0)
        with pytest.raises(ValueError):
            select_vm_type(candidates, 0.0)
        with pytest.raises(ValueError):
            cheapest_suitable_type(candidates, 1.0, max_failure_probability=0.0)


class TestHotSpare:
    @pytest.fixture(scope="class")
    def policy(self, reference_params):
        return HotSparePolicy(ConstrainedPreemptionModel(reference_params), hold_hours=1.0)

    def test_early_phase_not_kept(self, policy):
        d = policy.decide(0.5)
        assert not d.keep

    def test_stable_phase_kept(self, policy):
        d = policy.decide(8.0)
        assert d.keep
        assert d.hold_hours == pytest.approx(1.0)

    def test_final_phase_not_kept(self, policy):
        bounds = phase_boundaries(policy.model)
        d = policy.decide(bounds.final_start + 0.5)
        assert not d.keep

    def test_hold_truncated_near_final_phase(self, policy):
        bounds = phase_boundaries(policy.model)
        d = policy.decide(bounds.final_start - 0.4)
        assert d.keep
        assert d.hold_hours == pytest.approx(0.4, abs=1e-6)

    def test_dead_vm_not_kept(self, policy):
        assert not policy.decide(policy.model.t_max + 1.0).keep

    def test_validation(self, policy, reference_params):
        with pytest.raises(ValueError):
            policy.decide(-1.0)
        with pytest.raises(ValueError):
            HotSparePolicy(ConstrainedPreemptionModel(reference_params), hold_hours=0.0)

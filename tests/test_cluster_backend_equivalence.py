"""Cross-backend cluster equivalence: event ClusterManager vs lockstep kernel.

Both backends of :func:`repro.sim.backend.run_cluster_replications`
share the cluster round protocol (draw order, event-sequence
tie-breaking, FIFO/refresh scheduling rules — see
``repro/sim/cluster_vectorized.py``), so for identical seeds and
configurations the per-replication outcomes must agree to
float-associativity noise.  We pin 1e-9 hours, several orders of
magnitude above the observed drift (~1e-13).

The default grid keeps the event backend affordable for tier-1; the
``slow``-marked class re-runs it at higher replication counts and
bigger bags for the scheduled ``slow-equivalence`` CI job.
"""

import numpy as np
import pytest

from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.policies.scheduling import ModelReusePolicy, SchedulingDecision
from repro.sim.backend import run_cluster_replications
from repro.sim.cluster_vectorized import ClusterConfig, GangJob

SEEDS = [0, 1, 2, 3, 4]

#: Small bags with mixed widths; preemption pressure comes from the
#: short-support distributions below.
BAGS = {
    "narrow": [(2.0, 1), (1.5, 1), (0.5, 1), (2.5, 1), (1.0, 1)],
    "mixed": [(2.0, 1), (1.5, 2), (0.5, 3), (2.5, 1), (1.0, 2), (0.25, 1)],
    "wide": [(1.0, 4), (2.0, 3), (1.5, 4), (0.5, 2)],
}

CONFIGS = {
    "reuse-hot": dict(pool_size=4, use_reuse_policy=True, hot_spare=True),
    "reuse-cold": dict(pool_size=4, use_reuse_policy=True, hot_spare=False),
    "memoryless-hot": dict(pool_size=4, use_reuse_policy=False, hot_spare=True),
    "ckpt": dict(pool_size=4, hot_spare=True, checkpoint_interval=0.4),
    "ckpt-cold": dict(pool_size=4, hot_spare=False, checkpoint_interval=0.4),
    "pool6": dict(pool_size=6, hot_spare=True),
    "backfill": dict(pool_size=4, backfill=True),
    "backfill-cold-ckpt": dict(
        pool_size=4, backfill=True, hot_spare=False, checkpoint_interval=0.4
    ),
}


def run_both(dist, jobs, seed, *, n=8, **kwargs):
    event = run_cluster_replications(
        dist, jobs, n_replications=n, seed=seed, backend="event", **kwargs
    )
    vec = run_cluster_replications(
        dist, jobs, n_replications=n, seed=seed, backend="vectorized", **kwargs
    )
    return event, vec


def assert_equivalent(event, vec):
    np.testing.assert_allclose(vec.makespan, event.makespan, rtol=0.0, atol=1e-9)
    np.testing.assert_allclose(
        vec.wasted_hours, event.wasted_hours, rtol=0.0, atol=1e-9
    )
    np.testing.assert_allclose(vec.vm_hours, event.vm_hours, rtol=0.0, atol=1e-9)
    np.testing.assert_array_equal(vec.completed_jobs, event.completed_jobs)
    np.testing.assert_array_equal(vec.n_job_failures, event.n_job_failures)
    np.testing.assert_array_equal(vec.n_preemptions, event.n_preemptions)
    np.testing.assert_array_equal(vec.n_events, event.n_events)
    np.testing.assert_array_equal(vec.n_draws, event.n_draws)
    assert vec.n_rounds == event.n_rounds


class TestEquivalenceGrid:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    def test_uniform_support(self, seed, config):
        """Short uniform support: frequent deaths exercise every path."""
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(*run_both(dist, BAGS["mixed"], seed, **config))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bag", BAGS.values(), ids=BAGS.keys())
    def test_bag_shapes_bathtub(self, reference_dist, seed, bag):
        assert_equivalent(
            *run_both(reference_dist, bag, seed, pool_size=4, checkpoint_interval=0.5)
        )

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize(
        "config",
        [CONFIGS["reuse-cold"], CONFIGS["ckpt"], CONFIGS["memoryless-hot"]],
        ids=["reuse-cold", "ckpt", "memoryless-hot"],
    )
    def test_exponential(self, seed, config):
        dist = ExponentialDistribution(rate=0.7)
        assert_equivalent(*run_both(dist, BAGS["wide"], seed, **config))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_paper_criterion(self, reference_dist, seed):
        """The literal Eq. 8 criterion (fresh-VM churn) also matches."""
        assert_equivalent(
            *run_both(
                reference_dist,
                BAGS["mixed"],
                seed,
                pool_size=4,
                reuse_criterion="paper",
            )
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bag", BAGS.values(), ids=BAGS.keys())
    def test_backfill_bag_shapes(self, reference_dist, seed, bag):
        """Backfill coverage (previously event-only): the kernel's
        queue-order scan past a stuck head must match the real
        ClusterManager's ``backfill=True`` discipline, per-job Eq. 8
        suitability included."""
        assert_equivalent(
            *run_both(reference_dist, bag, seed, pool_size=4, backfill=True)
        )

    @pytest.mark.parametrize("seed", [0, 2])
    def test_backfill_memoryless_exponential(self, seed):
        dist = ExponentialDistribution(rate=0.7)
        assert_equivalent(
            *run_both(
                dist,
                BAGS["mixed"],
                seed,
                pool_size=4,
                backfill=True,
                use_reuse_policy=False,
            )
        )

    def test_identical_jobs_tie_storm(self, reference_dist):
        """A bag of identical jobs completes in simultaneous waves — the
        adversarial case for event-ordering: every wave's completions tie
        to the float and must resolve in the same insertion order on
        both backends."""
        jobs = [(0.75, 2)] * 8
        assert_equivalent(*run_both(reference_dist, jobs, 0, pool_size=6))


class TestDecidePairs:
    """The kernel's fully-batched Eq. 8 path matches the scalar decide."""

    @pytest.mark.parametrize("criterion", ["paper", "conditional"])
    def test_pairs_match_scalar(self, reference_dist, criterion):
        pol = ModelReusePolicy(reference_dist, criterion=criterion)
        rng = np.random.default_rng(0)
        T = rng.uniform(0.05, 8.0, 64)
        ages = rng.uniform(0.0, reference_dist.t_max * 1.05, 64)
        pairs = pol.decide_pairs(T, ages)
        scalar = np.array(
            [
                pol.decide(float(t), float(s)) is SchedulingDecision.REUSE
                for t, s in zip(T, ages)
            ]
        )
        np.testing.assert_array_equal(pairs, scalar)

    def test_pairs_match_batch_at_fixed_length(self, reference_dist):
        pol = ModelReusePolicy(reference_dist, criterion="conditional")
        ages = np.linspace(0.0, reference_dist.t_max, 64)
        np.testing.assert_array_equal(
            pol.decide_pairs(np.full(64, 3.0), ages), pol.decide_batch(3.0, ages)
        )

    def test_pairs_broadcast(self, reference_dist):
        pol = ModelReusePolicy(reference_dist)
        out = pol.decide_pairs(np.array([[2.0], [4.0]]), np.linspace(0, 10, 5))
        assert out.shape == (2, 5)

    def test_pairs_validation(self, reference_dist):
        pol = ModelReusePolicy(reference_dist)
        with pytest.raises(ValueError):
            pol.decide_pairs(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            pol.decide_pairs(np.array([1.0]), np.array([-1.0]))


class TestApiEdges:
    def test_gangjob_and_tuple_inputs_agree(self, reference_dist):
        a = run_cluster_replications(
            reference_dist, [(1.0, 2), (2.0, 1)], n_replications=4, seed=0
        )
        b = run_cluster_replications(
            reference_dist,
            [GangJob(1.0, 2), GangJob(2.0, 1)],
            n_replications=4,
            seed=0,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_config_object_and_kwargs_agree(self, reference_dist):
        cfg = ClusterConfig(pool_size=3, hot_spare=False)
        a = run_cluster_replications(
            reference_dist, [(1.0, 1)] * 3, config=cfg, n_replications=4, seed=1
        )
        b = run_cluster_replications(
            reference_dist,
            [(1.0, 1)] * 3,
            pool_size=3,
            hot_spare=False,
            n_replications=4,
            seed=1,
        )
        np.testing.assert_array_equal(a.makespan, b.makespan)

    def test_config_and_kwargs_conflict(self, reference_dist):
        with pytest.raises(ValueError, match="not both"):
            run_cluster_replications(
                reference_dist,
                [(1.0, 1)],
                config=ClusterConfig(),
                pool_size=2,
            )

    def test_zero_replications(self, reference_dist):
        for backend in ("event", "vectorized"):
            out = run_cluster_replications(
                reference_dist, [(1.0, 1)], n_replications=0, backend=backend
            )
            assert out.n_replications == 0
            assert out.n_rounds == 0

    def test_width_exceeding_pool_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="exceeds pool_size"):
            run_cluster_replications(reference_dist, [(1.0, 9)], pool_size=4)

    def test_empty_bag_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="non-empty"):
            run_cluster_replications(reference_dist, [])

    def test_invalid_backend_rejected(self, reference_dist):
        with pytest.raises(ValueError, match="backend"):
            run_cluster_replications(reference_dist, [(1.0, 1)], backend="gpu")

    def test_unfinishable_bag_raises_on_both(self):
        """A job longer than the support can never finish uncheckpointed."""
        dist = UniformLifetimeDistribution(6.0)
        for backend in ("event", "vectorized"):
            with pytest.raises(RuntimeError, match="events"):
                run_cluster_replications(
                    dist,
                    [(30.0, 1)],
                    pool_size=2,
                    n_replications=2,
                    backend=backend,
                    max_events=200,
                )

    def test_outcome_properties(self, reference_dist):
        out = run_cluster_replications(
            reference_dist, [(1.0, 1)] * 4, pool_size=2, n_replications=8, seed=0
        )
        assert out.n_replications == 8
        assert (out.completed_jobs == 4).all()
        assert out.mean_makespan > 0.0
        assert out.mean_vm_hours > 0.0
        assert 0.0 <= out.failure_fraction <= 1.0
        assert out.mean_cost(2.0) == pytest.approx(2.0 * out.mean_vm_hours)


@pytest.mark.slow
class TestSlowEquivalence:
    """Higher-replication re-run for the scheduled slow-equivalence job."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", CONFIGS.values(), ids=CONFIGS.keys())
    def test_uniform_support_deep(self, seed, config):
        dist = UniformLifetimeDistribution(6.0)
        assert_equivalent(*run_both(dist, BAGS["mixed"], seed, n=64, **config))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_large_bag_bathtub(self, reference_dist, seed):
        rng = np.random.default_rng(seed)
        jobs = [
            (float(h), int(w))
            for h, w in zip(rng.uniform(0.2, 1.5, 40), rng.choice([1, 2, 4], 40))
        ]
        assert_equivalent(
            *run_both(
                reference_dist,
                jobs,
                seed,
                n=32,
                pool_size=8,
                checkpoint_interval=0.5,
            )
        )

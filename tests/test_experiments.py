"""Tests asserting the paper's figure-level claims on the experiment outputs.

Each test runs the corresponding experiment (at reduced size where that
does not change the claim) and checks the *shape* statements from the
paper's evaluation section, as catalogued in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import checkpoint_schedule as exp_sched
from repro.experiments import fig1_model_fit as exp_fig1
from repro.experiments import fig2_characteristics as exp_fig2
from repro.experiments import fig4_wasted_work as exp_fig4
from repro.experiments import fig5_start_time as exp_fig5
from repro.experiments import fig6_job_length as exp_fig6
from repro.experiments import fig7_sensitivity as exp_fig7
from repro.experiments import fig8_checkpointing as exp_fig8
from repro.experiments import fig9_service as exp_fig9
from repro.experiments import params_table as exp_params
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig1.run(n_vms=120, seed=7)

    def test_bathtub_wins(self, result):
        assert result.winner == "bathtub"

    def test_bathtub_r2_high_and_baselines_poor(self, result):
        assert result.scores["bathtub"].r2 > 0.97
        assert result.scores["exponential"].r2 < 0.8
        assert result.scores["weibull"].r2 < 0.9

    def test_fitted_params_in_paper_ranges(self, result):
        p = result.fitted_params["bathtub"]
        assert 0.35 < p["A"] < 0.55
        assert 0.3 < p["tau1"] < 6.0
        assert 22.0 < p["b"] < 26.0

    def test_report_renders(self, result):
        text = exp_fig1.report(result)
        assert "bathtub" in text and "ground truth" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig2.run(per_config=250, seed=11)

    def test_observation_4_mean_lifetime_ordering(self, result):
        means = [result.means[vt] for vt in (
            "n1-highcpu-2", "n1-highcpu-8", "n1-highcpu-32")]
        assert means[0] > means[1] > means[2]

    def test_observation_5_idle_lives_longer(self, result):
        assert result.means["idle"] > result.means["busy"]

    def test_cdfs_are_cdfs(self, result):
        for curves in (result.by_vm_type, result.by_zone, result.by_context):
            for name, curve in curves.items():
                assert np.all(np.diff(curve) >= -1e-12), name
                assert curve[-1] == pytest.approx(1.0, abs=1e-9)

    def test_larger_vm_cdf_dominates(self, result):
        """Fig. 2a: the highcpu-32 CDF sits above highcpu-2 everywhere."""
        big = result.by_vm_type["n1-highcpu-32"]
        small = result.by_vm_type["n1-highcpu-2"]
        interior = (result.grid_hours > 0.5) & (result.grid_hours < 22.0)
        assert np.all(big[interior] >= small[interior] - 0.05)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig4.run(num=48)

    def test_uniform_closed_forms(self, result):
        np.testing.assert_allclose(
            result.wasted_uniform, result.job_lengths / 2.0, rtol=1e-9
        )
        np.testing.assert_allclose(
            result.increase_uniform, result.job_lengths**2 / 48.0, rtol=1e-9
        )

    def test_crossover_near_five_hours(self, result):
        assert 3.0 < result.crossover_hours < 7.0

    def test_ten_hour_job_multiple_times_cheaper(self, result):
        assert result.increase_ratio_at(10.0) > 3.0

    def test_long_jobs_always_cheaper_on_bathtub(self, result):
        long = result.job_lengths >= 8.0
        assert np.all(result.increase_bathtub[long] < result.increase_uniform[long])


class TestFig4MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig4.run_monte_carlo(num=6, n_replications=3000, seed=0)

    def test_matches_analytic_expectations(self, result):
        """Simulated Eq. 5 waste and multi-failure increase track the
        closed forms within Monte-Carlo noise."""
        assert result.max_relative_error() < 0.15

    def test_wasted_below_job_length(self, result):
        assert np.all(result.mc_wasted < result.job_lengths)
        assert np.all(result.mc_wasted >= 0.0)

    def test_report_renders(self, result):
        text = exp_fig4.report_monte_carlo(result)
        assert "MC" in text and "relative error" in text

    def test_backends_agree_statistically(self):
        vec = exp_fig4.run_monte_carlo(num=3, n_replications=400, seed=1)
        ev = exp_fig4.run_monte_carlo(
            num=3, n_replications=400, seed=1, backend="event"
        )
        np.testing.assert_allclose(vec.mc_increase, ev.mc_increase, atol=1e-9)
        np.testing.assert_allclose(vec.mc_wasted, ev.mc_wasted, atol=1e-9)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig5.run(job_length=6.0, num=49)

    def test_memoryless_saturates_at_one(self, result):
        late = result.start_ages > 18.5
        np.testing.assert_allclose(result.memoryless[late], 1.0)

    def test_policy_flat_after_critical_age(self, result):
        past = result.start_ages > result.critical_age + 0.5
        np.testing.assert_allclose(
            result.model_policy[past & (result.start_ages < 24.0)],
            result.fresh_vm_level,
            atol=1e-6,
        )

    def test_fresh_level_near_paper_04(self, result):
        assert 0.3 < result.fresh_vm_level < 0.55

    def test_curves_agree_before_switch(self, result):
        early = result.start_ages < result.critical_age - 0.5
        np.testing.assert_allclose(
            result.model_policy[early], result.memoryless[early], atol=1e-9
        )


class TestFig5MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig5.run_monte_carlo(num=13, n_replications=2000, seed=0)

    def test_mc_matches_closed_form_within_ci(self, result):
        """Sampled placements agree with the analytic curves (~4 sigma)."""
        assert result.max_abs_error() < 0.05

    def test_memoryless_saturates_at_one(self, result):
        late = result.start_ages > 18.5
        np.testing.assert_allclose(result.memoryless_mc[late], 1.0)

    def test_policy_capped_at_fresh_level_after_switch(self, result):
        dist_level = result.model_policy_closed[-1]
        past = result.start_ages > 20.0
        np.testing.assert_allclose(
            result.model_policy_mc[past], dist_level, atol=0.05
        )

    def test_backends_identical(self):
        vec = exp_fig5.run_monte_carlo(num=5, n_replications=150, seed=1)
        ev = exp_fig5.run_monte_carlo(
            num=5, n_replications=150, seed=1, backend="event"
        )
        np.testing.assert_array_equal(vec.model_policy_mc, ev.model_policy_mc)
        np.testing.assert_array_equal(vec.memoryless_mc, ev.memoryless_mc)

    def test_report_renders(self, result):
        text = exp_fig5.report_monte_carlo(result)
        assert "Fig. 5 (MC)" in text and "closed" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig6.run(num_lengths=12, num_ages=48)

    def test_policy_beats_memoryless_everywhere(self, result):
        assert np.all(result.model_policy <= result.memoryless + 1e-9)

    def test_midrange_reduction_close_to_two(self, result):
        assert result.reduction_factor() > 1.4


class TestFig6MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig6.run_monte_carlo(num_lengths=8, n_replications=2500, seed=0)

    def test_mc_matches_closed_form_within_ci(self, result):
        """The closed forms are averaged over the *same* sampled ages, so
        the only gap is lifetime-sampling noise."""
        assert result.max_abs_error() < 0.04

    def test_policy_beats_memoryless(self, result):
        """Paired draws: the MC curves preserve the Fig. 6 ordering."""
        assert np.all(result.model_policy_mc <= result.memoryless_mc + 0.02)
        assert result.reduction_factor() > 1.3

    def test_backends_identical(self):
        vec = exp_fig6.run_monte_carlo(num_lengths=3, n_replications=150, seed=1)
        ev = exp_fig6.run_monte_carlo(
            num_lengths=3, n_replications=150, seed=1, backend="event"
        )
        np.testing.assert_array_equal(vec.model_policy_mc, ev.model_policy_mc)
        np.testing.assert_array_equal(vec.memoryless_mc, ev.memoryless_mc)

    def test_report_renders(self, result):
        text = exp_fig6.report_monte_carlo(result)
        assert "Fig. 6 (MC)" in text and "reduction factor" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig7.run(num_lengths=10, num_ages=32)

    def test_suboptimal_within_paper_gap(self, result):
        """Paper: 'the increase in job failure probability is less than
        2% compared to the best-fit model'."""
        assert result.max_suboptimality_gap() < 0.05

    def test_both_bathtub_models_beat_memoryless(self, result):
        mid = (result.job_lengths > 2.0) & (result.job_lengths < 20.0)
        assert np.all(result.best_fit[mid] < result.memoryless[mid])
        assert np.all(result.suboptimal[mid] < result.memoryless[mid])


class TestFig7MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig7.run_monte_carlo(
            num_lengths=5, num_ages=8, n_replications=400, seed=0
        )

    def test_suboptimal_tracks_best_fit(self, result):
        """Common random numbers: the curves differ only where decisions
        differ, so the MC gap stays small like the analytic one."""
        assert result.max_suboptimality_gap() < 0.1

    def test_bathtub_models_beat_memoryless_on_average(self, result):
        assert result.best_fit.mean() < result.memoryless.mean()
        assert result.suboptimal.mean() < result.memoryless.mean()

    def test_report_renders(self, result):
        text = exp_fig7.report_monte_carlo(result)
        assert "suboptimal" in text and "MC" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig8.run(num_ages=8, num_lengths=5, step=0.2)

    def test_our_overhead_bathtub_shaped(self, result):
        """High at age 0, low mid-life."""
        ours = result.overhead_ours_by_age
        assert ours[0] > ours[len(ours) // 2]

    def test_ours_beats_young_daly_on_average(self, result):
        assert result.overhead_ours_by_age.mean() < result.overhead_yd_by_age.mean()
        assert result.improvement_factor() > 1.2

    def test_our_overhead_moderate(self, result):
        """Paper: under ~10% for short jobs, ~3-5% for longer."""
        assert np.all(result.overhead_ours_by_length < 15.0)

    def test_yd_roughly_flat_mid_life(self, result):
        mid = (result.start_ages > 2.0) & (result.start_ages < 15.0)
        yd = result.overhead_yd_by_age[mid]
        assert yd.std() < 2.0


class TestFig8MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig8.run_monte_carlo(num_lengths=3, n_replications=2000, seed=0)

    def test_mc_close_to_analytic(self, result):
        """The fixed-plan replay pays slightly more than the re-planning
        DP bound, so allow a couple of percentage points."""
        assert result.max_absolute_error_pct() < 2.0

    def test_ours_beats_young_daly(self, result):
        assert np.all(result.mc_ours < result.mc_yd)
        assert result.improvement_factor() > 1.2

    def test_report_renders(self, result):
        text = exp_fig8.report_monte_carlo(result)
        assert "Young-Daly" in text and "MC" in text


class TestCheckpointScheduleTable:
    def test_monotone_increasing_intervals(self):
        res = exp_sched.run(step=0.1)
        assert res.monotone_increasing
        iv = res.intervals_minutes
        assert iv[-1] > 2.0 * iv[0]

    def test_first_interval_near_paper(self):
        res = exp_sched.run(step=0.1)
        assert 5.0 < res.intervals_minutes[0] < 40.0


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig9.run(n_jobs=20, max_vms=8, n_slowdown_seeds=4)

    def test_cost_reduction_factor(self, result):
        """Paper: ~5x; the hard ceiling is the 4.7x price discount."""
        for app in result.costs:
            assert 2.5 < app.reduction_factor < 4.75

    def test_all_apps_cheaper_than_on_demand(self, result):
        for app in result.costs:
            assert app.cost_per_job < app.on_demand_cost_per_job

    def test_slowdown_nonnegative_and_slope_positive(self, result):
        assert np.all(result.runtime_increase_pct >= 0.0)


class TestFig9MonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig9.run_monte_carlo(
            n_jobs=12, pool_size=8, n_replications=24, seed=5
        )

    def test_backends_agree_exactly(self):
        """The fig9-mc event path IS the Fig. 9 service semantics (the
        real ClusterManager loop); the vectorized sweep must reproduce
        its per-replication outcomes at matched seeds."""
        kwargs = dict(n_jobs=8, pool_size=8, n_replications=6, seed=5)
        ev = exp_fig9.run_monte_carlo(backend="event", **kwargs)
        ve = exp_fig9.run_monte_carlo(backend="vectorized", **kwargs)
        for a, b in zip(ev.apps, ve.apps):
            np.testing.assert_allclose(
                b.outcomes.makespan, a.outcomes.makespan, rtol=0.0, atol=1e-9
            )
            np.testing.assert_allclose(
                b.outcomes.vm_hours, a.outcomes.vm_hours, rtol=0.0, atol=1e-9
            )
            np.testing.assert_array_equal(
                b.outcomes.n_preemptions, a.outcomes.n_preemptions
            )
            assert b.cost_per_job == pytest.approx(a.cost_per_job, rel=1e-9)

    def test_cost_reduction_consistent_with_event_fig9(self, result):
        """Same headline as the event-driven Fig. 9: cheaper than
        on-demand, under the 4.7x price-discount ceiling."""
        for app in result.apps:
            assert app.cost_per_job < app.on_demand_cost_per_job
            assert 1.0 < app.reduction_factor < 4.75

    def test_slowdown_cloud_shape(self, result):
        assert np.all(result.runtime_increase_pct >= 0.0)
        assert result.preemption_counts.size == 24

    def test_report_renders(self, result):
        text = exp_fig9.report_monte_carlo(result)
        assert "Monte Carlo" in text and "per preemption" in text


class TestFig9Tenants:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig9_tenants

        return fig9_tenants.run(
            tenant_counts=(2,),
            arrival_rates=(0.5,),
            policies=("fifo", "fair"),
            horizon=4.0,
            n_replications=10,
            seed=0,
        )

    def test_sweep_covers_grid(self, result):
        assert {(p.n_tenants, p.scheduling) for p in result} == {
            (2, "fifo"),
            (2, "fair"),
        }

    def test_metrics_sane(self, result):
        for p in result:
            assert p.mean_wait_hours >= 0.0
            assert p.mean_bounded_slowdown >= 1.0
            assert 0.0 < p.wait_fairness <= 1.0
            assert 0.0 < p.admitted_fraction <= 1.0
            assert p.cost_reduction_factor > 0.0

    def test_policies_are_paired_on_identical_traffic(self, result):
        by_policy = {p.scheduling: p for p in result}
        assert by_policy["fifo"].n_jobs == by_policy["fair"].n_jobs

    def test_backends_agree(self):
        from repro.experiments import fig9_tenants

        kwargs = dict(
            tenant_counts=(2,),
            arrival_rates=(0.5,),
            policies=("fair",),
            horizon=3.0,
            n_replications=4,
            seed=1,
        )
        ev = fig9_tenants.run(backend="event", **kwargs)
        ve = fig9_tenants.run(backend="vectorized", **kwargs)
        for a, b in zip(ev, ve):
            assert b.mean_makespan == pytest.approx(a.mean_makespan, abs=1e-9)
            assert b.mean_wait_hours == pytest.approx(a.mean_wait_hours, abs=1e-9)

    def test_report_renders(self, result):
        from repro.experiments import fig9_tenants

        text = fig9_tenants.report(result)
        assert "tenants" in text and "fairness" in text and "fifo" in text


class TestFig9Pools:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig9_pools

        return fig9_pools.run(n_replications=32, seed=0)

    def test_sweep_covers_grid(self, result):
        assert {(p.mix, p.allocator) for p in result} == {
            (m, a)
            for m in ("balanced", "mostly-cheap", "mostly-stable")
            for a in ("first_fit", "best_fit_price", "reliability")
        }

    def test_metrics_sane(self, result):
        for p in result:
            assert p.n_pools == 2
            assert p.mean_makespan > 0.0
            assert p.mean_cost > 0.0
            assert p.cost_reduction_factor > 0.0
            assert 0.0 <= p.cheap_share <= 1.0

    def test_price_and_reliability_allocators_differ(self, result):
        """The tentpole's acceptance bar: chasing price and chasing
        reliability must be measurably different strategies.  Pool sizes
        partition the fleet cap, so the allocator's lever is grab order
        and stall eviction, not steady-state pool population — which
        side wins on preemptions varies with the scenario, but the two
        rankings must never collapse to the same numbers."""
        by = {(p.mix, p.allocator): p for p in result}
        price = by[("balanced", "best_fit_price")]
        rel = by[("balanced", "reliability")]
        assert price.mean_preemptions != rel.mean_preemptions
        assert price.mean_cost != pytest.approx(rel.mean_cost, rel=1e-3)
        assert price.mean_makespan != pytest.approx(rel.mean_makespan, rel=1e-3)

    def test_backends_agree(self):
        from repro.experiments import fig9_pools

        kwargs = dict(
            allocators=("best_fit_price",), n_replications=4, seed=1
        )
        ev = fig9_pools.run(backend="event", **kwargs)
        ve = fig9_pools.run(backend="vectorized", **kwargs)
        for a, b in zip(ev, ve):
            assert b.mean_makespan == pytest.approx(a.mean_makespan, abs=1e-9)
            assert b.mean_cost == pytest.approx(a.mean_cost, abs=1e-9)

    def test_report_renders(self, result):
        from repro.experiments import fig9_pools

        text = fig9_pools.report(result)
        assert "pools" in text and "allocator" in text
        assert "best_fit_price" in text and "cheap share" in text


class TestSWFTenants:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import swf_tenants

        return swf_tenants.run(
            width_caps=(2,),
            policies=("fifo", "fair"),
            max_jobs=12,
            n_replications=6,
            chunk_size=2,
            seed=3,
        )

    def test_sweep_covers_grid(self, result):
        assert {(p.width_cap, p.scheduling) for p in result} == {
            (2, "fifo"),
            (2, "fair"),
        }

    def test_metrics_sane(self, result):
        for p in result:
            assert p.n_tenants > 1
            assert p.n_jobs == 12
            assert p.mean_makespan > 0.0
            assert p.mean_wait_hours >= 0.0
            assert 0.0 < p.wait_fairness <= 1.0
            assert 0.0 < p.admitted_fraction <= 1.0
            assert p.cost_reduction_factor > 0.0

    def test_chunked_matches_unchunked(self):
        """The streamed batch is byte-identical to the covering chunk."""
        from repro.experiments import swf_tenants

        kwargs = dict(
            width_caps=(2,),
            policies=("fair",),
            max_jobs=10,
            n_replications=5,
            seed=3,
        )
        chunked = swf_tenants.run(chunk_size=2, **kwargs)
        covering = swf_tenants.run(chunk_size=None, **kwargs)
        # Chunked draws legitimately differ from unchunked (the rng is
        # consumed per chunk), but a covering chunk is the same run.
        whole = swf_tenants.run(chunk_size=5, **kwargs)
        assert whole[0] == covering[0]
        assert chunked[0].n_jobs == covering[0].n_jobs

    def test_report_renders(self, result):
        from repro.experiments import swf_tenants

        text = swf_tenants.report(result)
        assert "SWF replay" in text and "sample.swf" in text and "fifo" in text


class TestParamsTable:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_params.run(per_type=250, seed=13)

    def test_every_type_fitted(self, result):
        assert len(result.fits) == 5

    def test_b_recovered_everywhere(self, result):
        for f in result.fits:
            assert f.fitted.b == pytest.approx(24.0, abs=1.0)

    def test_tau1_ordering_recovered(self, result):
        """Fitted early-phase constants must reproduce the size ordering."""
        tau1 = {f.vm_type: f.fitted.tau1 for f in result.fits}
        assert tau1["n1-highcpu-2"] > tau1["n1-highcpu-16"] > tau1["n1-highcpu-32"]

    def test_extremes_of_lifetime_ranking(self, result):
        ranking = result.lifetime_ranking()
        assert ranking[-1] == "n1-highcpu-32"
        assert ranking[0] in ("n1-highcpu-2", "n1-highcpu-4")


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig4-mc", "fig5-mc", "fig6-mc", "fig7-mc", "fig8-mc", "fig9-mc",
            "fig9-regret", "fig9-pools", "fig9-tenants", "swf-tenants",
            "checkpoint-schedule", "params-table",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment(self):
        assert get_experiment("fig1").name == "fig1"
        with pytest.raises(KeyError):
            get_experiment("fig3")  # the paper has no Fig. 3 experiment

    def test_reports_render_for_light_experiments(self):
        for name in ("fig4", "fig5"):
            exp = get_experiment(name)
            text = exp.report(exp.run())
            assert name.replace("fig", "Fig. ") in text

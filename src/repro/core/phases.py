"""Decomposition of the lifetime axis into the paper's three phases.

Observation 1 of the paper: constrained preemptions exhibit three distinct
temporal phases —

* **EARLY** (``t in [0, ~3] h``): steep failure rate while the provider
  preferentially preempts young VMs,
* **STABLE**: long flat middle with a low preemption rate,
* **FINAL**: sharp rise as the 24 h deadline approaches.

The model of Eq. 1 makes these phases quantitative: the early process
``A/tau1 * e^{-t/tau1}`` has decayed to a fraction ``eps`` of its initial
intensity by ``t = tau1 * ln(1/eps)``, and the reclamation process
``A/tau2 * e^{(t-b)/tau2}`` reaches the same fraction of its deadline
intensity at ``t = b + tau2 * ln(eps)``.  With the default
``eps = 0.05`` and the paper's reference fit (``tau1 ~ 1``), the early
phase ends at ~3 h — exactly the paper's empirical boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.utils.validation import check_in_range

__all__ = ["Phase", "PhaseBoundaries", "phase_boundaries", "classify_phase"]


class Phase(Enum):
    """One of the three preemption phases of the bathtub curve."""

    EARLY = "early"
    STABLE = "stable"
    FINAL = "final"


@dataclass(frozen=True)
class PhaseBoundaries:
    """Phase-transition times ``[0, early_end] / (early_end, final_start) / [final_start, t_max]``."""

    early_end: float
    final_start: float
    t_max: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.early_end <= self.final_start <= self.t_max:
            raise ValueError(
                "phase boundaries must satisfy 0 <= early_end <= final_start <= t_max, got "
                f"({self.early_end}, {self.final_start}, {self.t_max})"
            )

    @property
    def stable_duration(self) -> float:
        """Length of the low-failure-rate middle phase (hours)."""
        return self.final_start - self.early_end


def phase_boundaries(
    model: ConstrainedPreemptionModel | BathtubParams,
    *,
    eps: float = 0.05,
) -> PhaseBoundaries:
    """Compute phase-transition times for a fitted bathtub model.

    Parameters
    ----------
    model:
        A :class:`ConstrainedPreemptionModel` or raw :class:`BathtubParams`.
    eps:
        Intensity fraction defining a phase edge (strictly in (0, 1)).
    """
    check_in_range("eps", eps, 0.0, 1.0, inclusive=False)
    if isinstance(model, BathtubParams):
        model = ConstrainedPreemptionModel(model)
    p = model.params
    early_end = p.tau1 * math.log(1.0 / eps)
    final_start = p.b + p.tau2 * math.log(eps)
    t_max = model.t_max
    # Degenerate fits (very slow early decay) can push the early edge past
    # the final edge; collapse the stable phase rather than erroring.
    early_end = min(max(early_end, 0.0), t_max)
    final_start = min(max(final_start, early_end), t_max)
    return PhaseBoundaries(early_end=early_end, final_start=final_start, t_max=t_max)


def classify_phase(
    model: ConstrainedPreemptionModel | BathtubParams,
    t,
    *,
    eps: float = 0.05,
):
    """Classify time(s) ``t`` into :class:`Phase` values.

    Scalar in, :class:`Phase` out; array in, object array of phases out.
    Times outside ``[0, t_max]`` raise ``ValueError``.
    """
    bounds = phase_boundaries(model, eps=eps)
    t_arr = np.asarray(t, dtype=float)
    if np.any((t_arr < 0.0) | (t_arr > bounds.t_max)):
        raise ValueError(
            f"times must lie within the support [0, {bounds.t_max:.4g}]"
        )
    out = np.full(t_arr.shape, Phase.STABLE, dtype=object)
    out[t_arr <= bounds.early_end] = Phase.EARLY
    out[t_arr >= bounds.final_start] = Phase.FINAL
    if out.ndim == 0:
        return out.item()
    return out


def stable_phase_hazard(model: ConstrainedPreemptionModel, *, eps: float = 0.05) -> float:
    """Average hazard rate across the stable phase (failures/hour).

    The paper's VM-reuse policy exists because this value is far below the
    early- and final-phase hazards; it is the "valuable stable VM" rate.
    """
    bounds = phase_boundaries(model, eps=eps)
    if bounds.stable_duration <= 0.0:
        raise ValueError("model has no stable phase at this eps")
    t = np.linspace(bounds.early_end, bounds.final_start, 513)
    h = np.asarray(model.hazard(t), dtype=float)
    return float(np.trapezoid(h, t) / bounds.stable_duration)

"""Expected-lifetime utilities (the paper's MTTF replacement).

Section 3.2.2 closes with the observation that the model's expected
lifetime (Eq. 3) "can be used in lieu of MTTF, for policies and
applications that require a coarse-grained comparison of the preemption
rates of servers of different types".  This module implements that
comparison surface: tabulate and rank candidate VM types by their
expected lifetime under fitted bathtub models.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.model import BathtubParams, ConstrainedPreemptionModel

__all__ = ["expected_lifetime_table", "rank_by_expected_lifetime", "suitability_for_job"]


def _as_model(value: ConstrainedPreemptionModel | BathtubParams) -> ConstrainedPreemptionModel:
    if isinstance(value, BathtubParams):
        return ConstrainedPreemptionModel(value)
    return value


def expected_lifetime_table(
    models: Mapping[str, ConstrainedPreemptionModel | BathtubParams],
    *,
    horizon: float | None = None,
) -> dict[str, float]:
    """Expected lifetime (hours) for each named model.

    ``horizon`` truncates the Eq. 3 integral (``None`` = full support).
    """
    return {
        name: _as_model(m).expected_lifetime(horizon) for name, m in models.items()
    }


def rank_by_expected_lifetime(
    models: Mapping[str, ConstrainedPreemptionModel | BathtubParams],
) -> list[tuple[str, float]]:
    """Model names sorted by decreasing expected lifetime.

    The paper's Observation 4 (larger VMs fail sooner) makes this ranking
    the first-order VM-selection signal: all else equal, pick the type at
    the head of this list.
    """
    table = expected_lifetime_table(models)
    return sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))


def suitability_for_job(
    models: Mapping[str, ConstrainedPreemptionModel | BathtubParams],
    job_length: float,
) -> list[tuple[str, float]]:
    """Rank VM types by success probability for a job of ``job_length`` hours.

    A finer-grained selection signal than raw expected lifetime: the
    probability that a *fresh* VM survives the whole job,
    ``S(T) = 1 - F(T)``.  Section 4.1 notes that high-initial-rate VMs are
    "particularly detrimental for short jobs"; this ranking captures that.
    """
    if job_length < 0:
        raise ValueError(f"job_length must be >= 0, got {job_length}")
    scored = [
        (name, float(_as_model(m).sf(job_length))) for name, m in models.items()
    ]
    return sorted(scored, key=lambda kv: (-kv[1], kv[0]))

"""Reliability-theory view over any failure distribution.

The paper analyses its model "through the lens of reliability theory";
this module provides that lens as a uniform adapter so policies can be
written once against survival/hazard/MTTF and evaluated under *any*
distribution in :mod:`repro.distributions` (exponential, Weibull,
Gompertz-Makeham, uniform, bathtub, ...).

A distribution only needs ``cdf`` and ``pdf`` callables; everything else
(survival, hazard, cumulative hazard, MTTF, mean residual life,
conditional failure probabilities) is derived here, numerically where a
closed form is not supplied.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.utils.integrate import trapezoid_integral
from repro.utils.validation import check_nonnegative

__all__ = ["FailureLaw", "ReliabilityView"]


@runtime_checkable
class FailureLaw(Protocol):
    """Minimal protocol for a lifetime distribution."""

    def cdf(self, t): ...  # noqa: E704 - protocol stub

    def pdf(self, t): ...  # noqa: E704 - protocol stub


class ReliabilityView:
    """Derived reliability quantities for a :class:`FailureLaw`.

    Parameters
    ----------
    law:
        Any object exposing vectorised ``cdf`` and ``pdf``.
    horizon:
        Upper support bound used for numerically derived quantities.
        Pass the distribution's ``t_max`` when known; defaults to the
        paper's 24 h deadline plus an hour of slack.
    """

    def __init__(self, law: FailureLaw, *, horizon: float = 25.0):
        self.law = law
        self.horizon = check_nonnegative("horizon", horizon)

    # -- elementary transforms ----------------------------------------
    def survival(self, t):
        """``S(t) = 1 - F(t)``."""
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.law.cdf(t_arr), dtype=float)
        return out if out.ndim else float(out)

    def hazard(self, t):
        """``h(t) = f(t)/S(t)``, ``inf`` where survival is zero."""
        t_arr = np.asarray(t, dtype=float)
        f = np.asarray(self.law.pdf(t_arr), dtype=float)
        s = np.asarray(self.survival(t_arr), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(s > 0.0, f / np.where(s > 0.0, s, 1.0), np.inf)
        return out if out.ndim else float(out)

    def cumulative_hazard(self, t):
        """``H(t) = -log S(t)``."""
        t_arr = np.asarray(t, dtype=float)
        s = np.asarray(self.survival(t_arr), dtype=float)
        with np.errstate(divide="ignore"):
            out = -np.log(np.clip(s, 0.0, 1.0))
        return out if out.ndim else float(out)

    # -- summary quantities -------------------------------------------
    def mttf(self, *, num: int = 4097) -> float:
        """Mean time to failure ``int_0^horizon S(t) dt`` (+ tail mass at horizon).

        For distributions with bounded support inside ``horizon`` this is
        the exact mean lifetime; the paper uses it as the coarse-grained
        comparison metric replacing spot-market MTTFs.
        """
        return trapezoid_integral(self.survival, 0.0, self.horizon, num=num)

    def mean_residual_life(self, s: float, *, num: int = 2049) -> float:
        """``E[T - s | T > s]`` computed from the survival function."""
        s = check_nonnegative("s", s)
        if s >= self.horizon:
            return 0.0
        surv_s = float(self.survival(s))
        if surv_s <= 0.0:
            return 0.0
        integral = trapezoid_integral(self.survival, s, self.horizon, num=num)
        return integral / surv_s

    def conditional_failure_probability(self, s: float, width: float) -> float:
        """``P(T <= s + width | T > s)``: failure within ``width`` given age ``s``.

        This is the probability a job of length ``width`` started on a VM
        of age ``s`` is killed by a preemption (Section 4.2 / Fig. 5).
        """
        s = check_nonnegative("s", s)
        width = check_nonnegative("width", width)
        surv_s = float(self.survival(s))
        if surv_s <= 0.0:
            return 1.0
        f_end = float(np.asarray(self.law.cdf(s + width), dtype=float))
        f_s = float(np.asarray(self.law.cdf(s), dtype=float))
        return min(max((f_end - f_s) / surv_s, 0.0), 1.0)

    def interval_failure_probability(self, s: float, width: float) -> float:
        """Unconditioned ``F(s + width) - F(s)`` (the paper's Eq. 10 form)."""
        s = check_nonnegative("s", s)
        width = check_nonnegative("width", width)
        f_end = float(np.asarray(self.law.cdf(s + width), dtype=float))
        f_s = float(np.asarray(self.law.cdf(s), dtype=float))
        return min(max(f_end - f_s, 0.0), 1.0)


def exponential_equivalent_rate(view: ReliabilityView) -> float:
    """Rate of the memoryless exponential with the same MTTF.

    Used by the Young-Daly baseline: the paper parameterises Young-Daly
    with the *initial* failure rate of the VM, but policies that only see
    a coarse MTTF would use this equivalent rate instead.
    """
    mttf = view.mttf()
    if mttf <= 0.0:
        raise ValueError("MTTF must be positive to define an equivalent rate")
    return 1.0 / mttf

"""The constrained-preemption probability model (paper Eq. 1-3).

The paper models the CDF of the time-to-preemption ``t`` of a temporally
constrained transient VM (maximum lifetime ``b`` of about 24 hours) as the
superposition of two failure processes::

    F(t) = A * (1 - exp(-t / tau1) + exp((t - b) / tau2))        (Eq. 1)

* ``1 - exp(-t/tau1)`` is a classic exponential process with rate
  ``1/tau1`` that dominates the *early* phase (young VMs are preempted
  preferentially),
* ``exp((t-b)/tau2)`` is an exponential *reclamation* process with rate
  ``1/tau2`` activated near the deadline ``b``,
* ``A`` scales the superposition so that ``F`` spans [0, 1].

The pdf follows by differentiation (Eq. 2)::

    f(t) = A * (exp(-t/tau1)/tau1 + exp((t-b)/tau2)/tau2)

and the truncated first moment has the closed-form antiderivative used in
Eq. 3 and in every policy of Section 4::

    G(t) = -A (t + tau1) exp(-t/tau1) + A (t - tau2) exp((t-b)/tau2)
    int_a^c  t f(t) dt = G(c) - G(a)

``F`` reaches 1 at a finite time ``t_max`` slightly past ``b`` (for the
paper's typical fits, within minutes of the 24 h deadline).  The model
treats ``[0, t_max]`` as the distribution support: ``F`` is clamped to 1
and ``f`` to 0 beyond it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
from scipy.optimize import brentq

from repro.utils.validation import check_positive

__all__ = ["BathtubParams", "ConstrainedPreemptionModel"]

#: Number of points in the cached inverse-CDF interpolation table.
_PPF_TABLE_SIZE = 4097


@dataclass(frozen=True)
class BathtubParams:
    """Parameters of the paper's constrained-preemption model (Eq. 1).

    Attributes
    ----------
    A:
        Scaling constant; typical fits land in ``[0.4, 0.5]``.
    tau1:
        Early-phase time constant (hours); ``1/tau1`` is the early
        preemption rate.  Typical fits: ``[0.5, 5]``.
    tau2:
        Deadline-reclamation time constant (hours); typical fits
        ``~0.8``.
    b:
        Activation time of the final phase (hours); typical fits
        ``~24`` (the provider-imposed maximum lifetime).
    """

    A: float
    tau1: float
    tau2: float
    b: float

    def __post_init__(self) -> None:
        check_positive("A", self.A)
        check_positive("tau1", self.tau1)
        check_positive("tau2", self.tau2)
        check_positive("b", self.b)
        if self.A >= 1.0:
            raise ValueError(f"A must be < 1 for a valid CDF, got {self.A}")
        # Boundary condition F(0) ~ 0 (paper Section 3.2.2): the late
        # process must be negligible at t=0.
        f0 = self.A * math.exp(-self.b / self.tau2)
        if f0 > 0.05:
            raise ValueError(
                "parameters violate the boundary condition F(0) ~ 0: "
                f"F(0) = {f0:.4f} > 0.05 (b/tau2 too small)"
            )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(A, tau1, tau2, b)`` — the fitting order used throughout."""
        return (self.A, self.tau1, self.tau2, self.b)

    def as_dict(self) -> dict[str, float]:
        """Return the parameters as a plain dict (JSON-friendly)."""
        return {"A": self.A, "tau1": self.tau1, "tau2": self.tau2, "b": self.b}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "BathtubParams":
        """Build from any mapping with keys ``A, tau1, tau2, b``."""
        return cls(
            A=float(mapping["A"]),
            tau1=float(mapping["tau1"]),
            tau2=float(mapping["tau2"]),
            b=float(mapping["b"]),
        )


class ConstrainedPreemptionModel:
    """Closed-form bathtub preemption model over support ``[0, t_max]``.

    Parameters
    ----------
    params:
        A :class:`BathtubParams` instance, or anything accepted by
        :meth:`BathtubParams.from_mapping`.

    Notes
    -----
    All array-accepting methods are vectorised NumPy; scalars in,
    scalars out.  The inverse CDF uses an interpolation table of
    ``_PPF_TABLE_SIZE`` nodes refined near the support edges, with a
    ``brentq``-exact scalar variant available as :meth:`ppf_exact`.
    """

    def __init__(self, params: BathtubParams | Mapping[str, float]):
        if not isinstance(params, BathtubParams):
            params = BathtubParams.from_mapping(params)
        self.params = params
        self._t_max = self._solve_t_max()
        self._ppf_grid: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _solve_t_max(self) -> float:
        """Time at which the raw CDF (Eq. 1) reaches exactly 1."""
        p = self.params
        hi = p.b + p.tau2 * math.log(1.0 / p.A) + 1e-9
        # raw_cdf(hi) >= A * (1/A) = 1, raw_cdf(0) = F(0) < 1.
        return float(brentq(lambda t: self._raw_cdf_scalar(t) - 1.0, 0.0, hi))

    def _raw_cdf_scalar(self, t: float) -> float:
        p = self.params
        return p.A * (1.0 - math.exp(-t / p.tau1) + math.exp((t - p.b) / p.tau2))

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------
    @property
    def t_max(self) -> float:
        """Right edge of the support (where the fitted CDF reaches 1)."""
        return self._t_max

    def cdf(self, t):
        """CDF ``F(t)`` of Eq. 1, clamped to [0, 1] outside the support."""
        p = self.params
        t_arr = np.asarray(t, dtype=float)
        raw = p.A * (1.0 - np.exp(-t_arr / p.tau1) + np.exp((t_arr - p.b) / p.tau2))
        out = np.clip(raw, 0.0, 1.0)
        out = np.where(t_arr < 0.0, 0.0, out)
        out = np.where(t_arr >= self._t_max, 1.0, out)
        return out if out.ndim else float(out)

    def pdf(self, t):
        """pdf ``f(t)`` of Eq. 2; zero outside ``[0, t_max]``."""
        p = self.params
        t_arr = np.asarray(t, dtype=float)
        raw = p.A * (
            np.exp(-t_arr / p.tau1) / p.tau1 + np.exp((t_arr - p.b) / p.tau2) / p.tau2
        )
        inside = (t_arr >= 0.0) & (t_arr <= self._t_max)
        out = np.where(inside, raw, 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        """Survival function ``S(t) = 1 - F(t)``."""
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.cdf(t_arr))
        return out if out.ndim else float(out)

    def hazard(self, t):
        """Hazard rate ``h(t) = f(t) / S(t)``; ``inf`` where ``S(t) = 0``.

        This is the bathtub curve of the paper's Fig. 1 inset: high near
        0 (rate ``~A/tau1``), low through the stable middle, and diverging
        at the deadline.
        """
        t_arr = np.asarray(t, dtype=float)
        f = np.asarray(self.pdf(t_arr), dtype=float)
        s = np.asarray(self.sf(t_arr), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(s > 0.0, f / np.where(s > 0.0, s, 1.0), np.inf)
        out = np.where(f == 0.0, np.where(s > 0.0, 0.0, out), out)
        return out if out.ndim else float(out)

    def cumulative_hazard(self, t):
        """Cumulative hazard ``H(t) = -log S(t)``; ``inf`` past ``t_max``."""
        t_arr = np.asarray(t, dtype=float)
        s = np.asarray(self.sf(t_arr), dtype=float)
        with np.errstate(divide="ignore"):
            out = -np.log(s)
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------
    # Moments (closed form, Eq. 3)
    # ------------------------------------------------------------------
    def moment_antiderivative(self, t):
        """Antiderivative ``G(t)`` of ``t f(t)`` (paper Eq. 3 bracket)."""
        p = self.params
        t_arr = np.asarray(t, dtype=float)
        out = p.A * (
            -(t_arr + p.tau1) * np.exp(-t_arr / p.tau1)
            + (t_arr - p.tau2) * np.exp((t_arr - p.b) / p.tau2)
        )
        return out if out.ndim else float(out)

    def truncated_first_moment(self, a: float, c: float) -> float:
        """Closed-form ``int_a^c t f(t) dt`` with bounds clipped to the support.

        This single quantity powers the wasted-work analysis (Eq. 5), the
        makespan expressions (Eq. 7-8), and the checkpoint DP's expected
        lost work (Eq. 13).
        """
        a = min(max(float(a), 0.0), self._t_max)
        c = min(max(float(c), 0.0), self._t_max)
        if c <= a:
            return 0.0
        g = self.moment_antiderivative(np.array([a, c]))
        return float(g[1] - g[0])

    def expected_lifetime(self, horizon: float | None = None) -> float:
        """Expected VM lifetime ``E[L]`` (Eq. 3).

        ``horizon`` defaults to the full support ``t_max``; passing the
        deadline ``b`` reproduces the paper's ``L ~ 24 h`` convention.
        """
        hi = self._t_max if horizon is None else float(horizon)
        return self.truncated_first_moment(0.0, hi)

    def cdf_antiderivative(self, t):
        """Antiderivative of ``F(t)``: ``A (t + tau1 e^{-t/tau1} + tau2 e^{(t-b)/tau2})``.

        Used for closed-form mean residual life (``int S dt = t - int F dt``).
        """
        p = self.params
        t_arr = np.asarray(t, dtype=float)
        out = p.A * (
            t_arr + p.tau1 * np.exp(-t_arr / p.tau1) + p.tau2 * np.exp((t_arr - p.b) / p.tau2)
        )
        return out if out.ndim else float(out)

    def mean_residual_life(self, s: float) -> float:
        """``E[L - s | L > s]``: expected remaining lifetime of a VM aged ``s``.

        A reliability-theory quantity the paper's VM-reuse intuition rests
        on: it *increases* through the early phase (surviving VMs are
        "stable") then collapses as the deadline approaches.
        """
        s = float(s)
        if s >= self._t_max:
            return 0.0
        surv_s = float(self.sf(s))
        if surv_s <= 0.0:
            return 0.0
        # int_s^{t_max} S(t) dt = (t_max - s) - (int F)
        upper = self._t_max
        int_f = float(self.cdf_antiderivative(upper)) - float(self.cdf_antiderivative(s))
        integral = (upper - s) - int_f
        return max(integral, 0.0) / surv_s

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _build_ppf_grid(self) -> tuple[np.ndarray, np.ndarray]:
        if self._ppf_grid is None:
            t = np.linspace(0.0, self._t_max, _PPF_TABLE_SIZE)
            q = np.asarray(self.cdf(t), dtype=float)
            # Strictly increasing q is required by np.interp for a clean
            # inverse; F is strictly increasing on the support already.
            self._ppf_grid = (q, t)
        return self._ppf_grid

    def ppf(self, q):
        """Approximate inverse CDF via a cached interpolation table."""
        grid_q, grid_t = self._build_ppf_grid()
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.interp(q_arr, grid_q, grid_t)
        return out if out.ndim else float(out)

    def ppf_exact(self, q: float) -> float:
        """Exact scalar inverse CDF via root finding (slow, for tests)."""
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        f0 = float(self.cdf(0.0))
        if q <= f0:
            return 0.0
        if q >= 1.0:
            return self._t_max
        return float(brentq(lambda t: self._raw_cdf_scalar(t) - q, 0.0, self._t_max))

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` lifetimes by inverse-transform sampling."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if rng is None:
            rng = np.random.default_rng()
        return np.asarray(self.ppf(rng.random(n)), dtype=float)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.params
        return (
            f"ConstrainedPreemptionModel(A={p.A:.4g}, tau1={p.tau1:.4g}, "
            f"tau2={p.tau2:.4g}, b={p.b:.4g}, t_max={self._t_max:.4g})"
        )

    @staticmethod
    def cdf_function(t: np.ndarray, A: float, tau1: float, tau2: float, b: float) -> np.ndarray:
        """Raw Eq. 1 as a free function for :func:`scipy.optimize.curve_fit`."""
        return A * (1.0 - np.exp(-t / tau1) + np.exp((t - b) / tau2))


def models_from_params(
    items: Iterable[tuple[str, BathtubParams]]
) -> dict[str, ConstrainedPreemptionModel]:
    """Convenience: build a name -> model mapping from (name, params) pairs."""
    return {name: ConstrainedPreemptionModel(p) for name, p in items}

"""The paper's primary contribution: the constrained-preemption model.

This package implements Section 3.2 of the paper:

* :mod:`repro.core.model` -- the closed-form bathtub CDF/pdf of Eq. 1-2,
  its truncated first moments (Eq. 3), and parameter containers.
* :mod:`repro.core.phases` -- decomposition of the lifetime axis into the
  three empirically observed preemption phases.
* :mod:`repro.core.reliability` -- reliability-theory views (survival,
  hazard, cumulative hazard, mean residual life) of any failure model.
* :mod:`repro.core.lifetime` -- expected-lifetime utilities used for
  coarse-grained VM comparison (the paper's MTTF replacement).
"""

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.core.phases import Phase, PhaseBoundaries, classify_phase, phase_boundaries
from repro.core.reliability import ReliabilityView
from repro.core.lifetime import expected_lifetime_table, rank_by_expected_lifetime

__all__ = [
    "BathtubParams",
    "ConstrainedPreemptionModel",
    "Phase",
    "PhaseBoundaries",
    "classify_phase",
    "phase_boundaries",
    "ReliabilityView",
    "expected_lifetime_table",
    "rank_by_expected_lifetime",
]

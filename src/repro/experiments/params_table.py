"""Section 3.2.2 in-text parameter table — fits per VM type.

Fits the bathtub model to synthetic traces of every catalog VM type and
compares (a) recovered vs ground-truth parameters and (b) the expected
lifetimes of Eq. 3 — the paper's MTTF-replacement ranking (larger VM =>
shorter expected lifetime, Observation 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import fit_bathtub
from repro.traces.catalog import VM_TYPES, default_catalog
from repro.traces.generator import TraceGenerator
from repro.utils.tables import format_table

__all__ = ["TypeFit", "ParamsTableResult", "run", "report"]


@dataclass(frozen=True)
class TypeFit:
    """Ground truth vs fitted parameters + lifetimes for one VM type."""

    vm_type: str
    truth: BathtubParams
    fitted: BathtubParams
    expected_lifetime_truth: float
    expected_lifetime_fitted: float
    r2_proxy: float  # 1 - sse/n on the fit grid


@dataclass(frozen=True)
class ParamsTableResult:
    fits: tuple[TypeFit, ...]

    def lifetime_ranking(self) -> list[str]:
        """VM types ordered by decreasing fitted expected lifetime."""
        return [
            f.vm_type
            for f in sorted(self.fits, key=lambda f: -f.expected_lifetime_fitted)
        ]


def run(*, per_type: int = 400, seed: int = 13, zone: str = "us-central1-c") -> ParamsTableResult:
    catalog = default_catalog()
    gen = TraceGenerator(catalog, seed=seed)
    fits: list[TypeFit] = []
    for vt in VM_TYPES:
        lifetimes = gen.launch_batch(per_type, vt, zone, launch_hour=12.0).lifetimes()
        ecdf = EmpiricalCDF.from_samples(lifetimes)
        fit = fit_bathtub(ecdf)
        fitted = BathtubParams.from_mapping(fit.params)
        truth = catalog.params(vt, zone)
        fits.append(
            TypeFit(
                vm_type=vt,
                truth=truth,
                fitted=fitted,
                expected_lifetime_truth=ConstrainedPreemptionModel(truth).expected_lifetime(),
                expected_lifetime_fitted=ConstrainedPreemptionModel(fitted).expected_lifetime(),
                r2_proxy=1.0 - fit.sse / max(len(lifetimes), 1),
            )
        )
    return ParamsTableResult(fits=tuple(fits))


def report(result: ParamsTableResult) -> str:
    rows = [
        (
            f.vm_type,
            f.fitted.A,
            f.fitted.tau1,
            f.fitted.tau2,
            f.fitted.b,
            f.expected_lifetime_fitted,
            f.expected_lifetime_truth,
        )
        for f in result.fits
    ]
    table = format_table(
        ["vm type", "A", "tau1", "tau2", "b", "E[L] fit (h)", "E[L] truth (h)"],
        rows,
        floatfmt=".3f",
        title="Fitted bathtub parameters per VM type (paper Section 3.2.2 ranges)",
    )
    return table + "\nlifetime ranking: " + " > ".join(result.lifetime_ranking())


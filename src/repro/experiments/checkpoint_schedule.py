"""Section 4.3 in-text table — the 5-hour job's checkpoint schedule.

"For a 5 hour job launched on a new VM (time=0), the checkpointing
intervals are (15, 28, 38, 59, 128) minutes."  The defining property is
*monotonically increasing intervals* tracking the falling early-phase
hazard; exact values depend on the fitted parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import reference_distribution
from repro.policies.checkpointing import CheckpointPlan, CheckpointPolicy
from repro.utils.tables import format_table

__all__ = ["ScheduleResult", "run", "report", "PAPER_INTERVALS_MIN"]

#: The paper's quoted schedule (minutes).
PAPER_INTERVALS_MIN = (15.0, 28.0, 38.0, 59.0, 128.0)


@dataclass(frozen=True)
class ScheduleResult:
    """Our DP schedule for the paper's 5 h / delta=1 min scenario."""

    plan: CheckpointPlan
    intervals_minutes: tuple[float, ...]
    paper_intervals_minutes: tuple[float, ...]

    @property
    def monotone_increasing(self) -> bool:
        iv = self.intervals_minutes
        return all(b >= a for a, b in zip(iv, iv[1:]))


def run(
    *, job_hours: float = 5.0, delta: float = 1.0 / 60.0, step: float = 1.0 / 30.0
) -> ScheduleResult:
    """Plan the 5-hour job on a fresh reference VM (2-minute DP steps)."""
    policy = CheckpointPolicy(reference_distribution(), step=step, delta=delta)
    plan = policy.plan(job_hours, 0.0)
    return ScheduleResult(
        plan=plan,
        intervals_minutes=plan.intervals_minutes(),
        paper_intervals_minutes=PAPER_INTERVALS_MIN,
    )


def report(result: ScheduleResult) -> str:
    ours = result.intervals_minutes
    paper = result.paper_intervals_minutes
    width = max(len(ours), len(paper))
    rows = [
        (
            i + 1,
            float(ours[i]) if i < len(ours) else float("nan"),
            float(paper[i]) if i < len(paper) else float("nan"),
        )
        for i in range(width)
    ]
    table = format_table(
        ["segment", "our interval (min)", "paper interval (min)"],
        rows,
        floatfmt=".0f",
        title="Checkpoint schedule — 5 h job on a fresh VM, delta = 1 min",
    )
    return table + (
        f"\nintervals monotonically increasing: {result.monotone_increasing} "
        f"(expected makespan {result.plan.expected_makespan:.3f} h)"
    )


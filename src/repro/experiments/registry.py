"""Experiment registry and CLI.

``python -m repro.experiments <name>`` regenerates one artifact;
``python -m repro.experiments all`` regenerates every table/figure in
DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments import (
    checkpoint_schedule,
    fig1_model_fit,
    fig2_characteristics,
    fig4_wasted_work,
    fig5_start_time,
    fig6_job_length,
    fig7_sensitivity,
    fig8_checkpointing,
    fig9_pools,
    fig9_regret,
    fig9_service,
    fig9_tenants,
    params_table,
    swf_tenants,
)

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: its id, description, and entry points."""

    name: str
    description: str
    run: Callable[..., Any]
    report: Callable[[Any], str]


EXPERIMENTS: dict[str, Experiment] = {
    e.name: e
    for e in (
        Experiment(
            "fig1",
            "Lifetime CDF + model comparison (bathtub vs classical fits)",
            fig1_model_fit.run,
            fig1_model_fit.report,
        ),
        Experiment(
            "fig2",
            "Preemption characteristics by VM type / zone / launch context",
            fig2_characteristics.run,
            fig2_characteristics.report,
        ),
        Experiment(
            "fig4",
            "Wasted work and runtime increase: bathtub vs uniform",
            fig4_wasted_work.run,
            fig4_wasted_work.report,
        ),
        Experiment(
            "fig5",
            "6 h job failure probability vs start age (policy vs memoryless)",
            fig5_start_time.run,
            fig5_start_time.report,
        ),
        Experiment(
            "fig6",
            "Failure probability vs job length, averaged over start ages",
            fig6_job_length.run,
            fig6_job_length.report,
        ),
        Experiment(
            "fig7",
            "Scheduling-policy sensitivity to wrong model parameters",
            fig7_sensitivity.run,
            fig7_sensitivity.report,
        ),
        Experiment(
            "fig8",
            "Checkpointing: DP policy vs Young-Daly overheads",
            fig8_checkpointing.run,
            fig8_checkpointing.report,
        ),
        Experiment(
            "fig9",
            "Batch service: cost per job and preemption impact",
            fig9_service.run,
            fig9_service.report,
        ),
        Experiment(
            "fig4-mc",
            "Fig. 4 validated by batched replications (vectorized backend)",
            fig4_wasted_work.run_monte_carlo,
            fig4_wasted_work.report_monte_carlo,
        ),
        Experiment(
            "fig5-mc",
            "Fig. 5 with simulated job placements per start age (both backends)",
            fig5_start_time.run_monte_carlo,
            fig5_start_time.report_monte_carlo,
        ),
        Experiment(
            "fig6-mc",
            "Fig. 6 with sampled start ages and batched Eq. 8 decisions",
            fig6_job_length.run_monte_carlo,
            fig6_job_length.report_monte_carlo,
        ),
        Experiment(
            "fig7-mc",
            "Fig. 7 with simulated failure outcomes (vectorized backend)",
            fig7_sensitivity.run_monte_carlo,
            fig7_sensitivity.report_monte_carlo,
        ),
        Experiment(
            "fig8-mc",
            "Fig. 8b overheads simulated restart-until-done (vectorized backend)",
            fig8_checkpointing.run_monte_carlo,
            fig8_checkpointing.report_monte_carlo,
        ),
        Experiment(
            "fig9-mc",
            "Fig. 9 over batched end-to-end service replications (both backends)",
            fig9_service.run_monte_carlo,
            fig9_service.report_monte_carlo,
        ),
        Experiment(
            "fig9-regret",
            "Policy ladder scored as % of the hindsight-optimal oracle",
            fig9_regret.run,
            fig9_regret.report,
        ),
        Experiment(
            "fig9-pools",
            "Heterogeneous spot fleet: allocator policy x pool mix sweep",
            fig9_pools.run,
            fig9_pools.report,
        ),
        Experiment(
            "fig9-tenants",
            "Multi-tenant traffic: tenant count x arrival rate x policy sweep",
            fig9_tenants.run,
            fig9_tenants.report,
        ),
        Experiment(
            "swf-tenants",
            "SWF trace replay: HPC log excerpt streamed through the fleet",
            swf_tenants.run,
            swf_tenants.report,
        ),
        Experiment(
            "checkpoint-schedule",
            "The 5-hour job's non-uniform checkpoint intervals",
            checkpoint_schedule.run,
            checkpoint_schedule.report,
        ),
        Experiment(
            "params-table",
            "Fitted bathtub parameters and expected lifetimes per VM type",
            params_table.run,
            params_table.report,
        ),
    )
}


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def run_all() -> dict[str, str]:
    """Run every experiment; returns name -> rendered report."""
    return {name: exp.report(exp.run()) for name, exp in EXPERIMENTS.items()}

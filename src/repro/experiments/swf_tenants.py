"""SWF trace replay: an HPC workload log on the shared preemptible fleet.

Ingests the checked-in Standard Workload Format fixture
(:data:`repro.traces.swf.SAMPLE_SWF`, an HPC2N-style excerpt) through
:func:`repro.traces.swf.swf_traffic` and replays it against the Fig. 1
reference lifetime law under each inter-tenant scheduling policy.  The
replication batch streams through
:func:`repro.sim.backend.run_tenant_replications` in bounded-memory
chunks (``chunk_size``), exercising the same path a production-scale
trace import would take.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.backend import run_tenant_replications
from repro.traces.swf import SAMPLE_SWF, swf_traffic
from repro.traffic.metrics import tenant_report
from repro.utils.tables import format_table

__all__ = ["SWFReplayPoint", "run", "report"]

#: Paper-flavoured rate sheet (preemptible discount ~5x, billed master).
PREEMPTIBLE_RATE = 0.2
ON_DEMAND_RATE = 1.0
MASTER_RATE = 0.05


@dataclass(frozen=True)
class SWFReplayPoint:
    """One (width cap, policy) cell of the trace replay."""

    width_cap: int
    scheduling: str
    n_tenants: int
    n_jobs: int
    mean_makespan: float
    mean_wait_hours: float
    wait_fairness: float
    cost_reduction_factor: float
    admitted_fraction: float


def run(
    *,
    trace_path=SAMPLE_SWF,
    width_caps=(2, 4),
    policies=("fifo", "fair"),
    max_jobs: int | None = 24,
    max_vms: int = 4,
    admission_cap: int | None = 12,
    n_replications: int = 32,
    chunk_size: int | None = 8,
    seed: int = 0,
    backend: str = "vectorized",
) -> list[SWFReplayPoint]:
    """Replay the SWF trace under each (width cap, policy) pair.

    Policy columns within a width cap share the same imported traffic,
    so they are paired comparisons on the identical trace slice.  The
    batch streams in ``chunk_size`` chunks — on the small fixture this
    is cosmetic, but it is the exact code path a multi-thousand-tenant
    trace import runs through.
    """
    points: list[SWFReplayPoint] = []
    for cap in width_caps:
        traffic = swf_traffic(trace_path, width_cap=cap, max_jobs=max_jobs)
        n_tenants = int(max(b.tenant for b in traffic)) + 1
        for policy in policies:
            outcomes = run_tenant_replications(
                default_dist(),
                traffic,
                n_tenants=n_tenants,
                n_replications=n_replications,
                seed=seed,
                backend=backend,
                max_vms=max_vms,
                scheduling=policy,
                admission_cap=admission_cap,
                chunk_size=chunk_size,
            )
            rep = tenant_report(
                outcomes,
                preemptible_rate=PREEMPTIBLE_RATE,
                on_demand_rate=ON_DEMAND_RATE,
                master_rate=MASTER_RATE,
            )
            crf = outcomes.cost_reduction_factor(
                PREEMPTIBLE_RATE, ON_DEMAND_RATE, MASTER_RATE
            )
            points.append(
                SWFReplayPoint(
                    width_cap=cap,
                    scheduling=policy,
                    n_tenants=n_tenants,
                    n_jobs=outcomes.n_jobs,
                    mean_makespan=outcomes.mean_makespan,
                    mean_wait_hours=outcomes.mean_wait_hours,
                    wait_fairness=rep.wait_fairness,
                    cost_reduction_factor=float(crf.mean()),
                    admitted_fraction=float(outcomes.admitted_fraction.mean()),
                )
            )
    return points


def default_dist():
    """The Fig. 1 reference configuration's ground-truth lifetime law."""
    from repro.traces.catalog import default_catalog

    return default_catalog().distribution("n1-highcpu-16", "us-east1-b")


def report(points: list[SWFReplayPoint]) -> str:
    rows = [
        [
            p.width_cap,
            p.scheduling,
            p.n_tenants,
            p.n_jobs,
            f"{p.mean_makespan:.3f}",
            f"{p.mean_wait_hours:.3f}",
            f"{p.wait_fairness:.3f}",
            f"{p.cost_reduction_factor:.2f}",
            f"{100 * p.admitted_fraction:.0f}%",
        ]
        for p in points
    ]
    table = format_table(
        [
            "cap",
            "policy",
            "tenants",
            "jobs",
            "E[mksp] h",
            "E[wait] h",
            "fairness",
            "CRF",
            "admitted",
        ],
        rows,
    )
    return (
        "SWF replay: HPC2N-style trace excerpt on the shared preemptible "
        "fleet\n"
        f"(source: {SAMPLE_SWF.name}; gang widths capped per column; batch "
        "streamed in bounded-memory chunks;\n"
        f"rates: preemptible {PREEMPTIBLE_RATE}, on-demand {ON_DEMAND_RATE}, "
        f"master {MASTER_RATE})\n\n" + table
    )

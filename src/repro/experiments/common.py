"""Shared fixtures for the experiment modules.

Central place for the reference configuration (Fig. 1's
n1-highcpu-16 / us-east1-b), the trace sizes, and the cross-model
failure-probability helper used by the sensitivity study.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.distributions.bathtub import BathtubDistribution
from repro.policies.scheduling import (
    ModelReusePolicy,
    SchedulingDecision,
    job_failure_probability,
)
from repro.traces.catalog import GroundTruthCatalog, default_catalog

__all__ = [
    "REFERENCE_TYPE",
    "REFERENCE_ZONE",
    "reference_distribution",
    "mismatched_policy_failure_probability",
    "monte_carlo_failure_probability",
    "mismatched_policy_failure_probability_mc",
    "job_length_grid",
]

#: The paper's Fig. 1 reference configuration.
REFERENCE_TYPE = "n1-highcpu-16"
REFERENCE_ZONE = "us-east1-b"


def reference_distribution(
    catalog: GroundTruthCatalog | None = None,
) -> BathtubDistribution:
    """Ground-truth lifetime law of the reference configuration."""
    return (catalog or default_catalog()).distribution(REFERENCE_TYPE, REFERENCE_ZONE)


def job_length_grid(max_hours: float = 24.0, num: int = 25) -> np.ndarray:
    """Job lengths spanning (0, max_hours] (excludes 0)."""
    return np.linspace(max_hours / num, max_hours, num)


def mismatched_policy_failure_probability(
    decision_model: LifetimeDistribution,
    true_model: LifetimeDistribution,
    job_length: float,
    start_age: float,
) -> float:
    """Failure probability when the policy *decides* with one model but
    reality follows another (the Fig. 7 sensitivity construction)."""
    policy = ModelReusePolicy(decision_model)
    if policy.decide(job_length, start_age) is SchedulingDecision.REUSE:
        return job_failure_probability(true_model, job_length, start_age)
    return job_failure_probability(true_model, job_length, 0.0)


def monte_carlo_failure_probability(
    dist: LifetimeDistribution,
    job_length: float,
    start_age: float,
    *,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Monte-Carlo estimate of ``P(preempted during job | alive at start_age)``.

    One vectorised conditioned-sampling pass (the backends' round-0 draw,
    see :func:`repro.sim.vectorized.sample_lifetimes`): the first VM
    dying before ``start_age + job_length`` is exactly a preemption
    inside the job's window, and later rounds cannot change the estimate.
    """
    from repro.sim.vectorized import sample_lifetimes

    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    deaths = sample_lifetimes(dist, n_replications, rng, start_age=start_age)
    return float(np.mean(deaths < start_age + job_length))


def mismatched_policy_failure_probability_mc(
    decision_model: LifetimeDistribution,
    true_model: LifetimeDistribution,
    job_length: float,
    start_age: float,
    *,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Monte-Carlo counterpart of :func:`mismatched_policy_failure_probability`.

    The *decision* stays analytic (that is the policy under study); only
    the resulting failure probability is estimated by simulation under
    the true law.
    """
    policy = ModelReusePolicy(decision_model)
    age = (
        start_age
        if policy.decide(job_length, start_age) is SchedulingDecision.REUSE
        else 0.0
    )
    return monte_carlo_failure_probability(
        true_model,
        job_length,
        age,
        n_replications=n_replications,
        seed=seed,
    )

"""CLI entry point: ``python -m repro.experiments [name|all|list]``."""

from __future__ import annotations

import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("usage: python -m repro.experiments <name>|all|list\n")
        for name, exp in sorted(EXPERIMENTS.items()):
            print(f"  {name:20s} {exp.description}")
        return 0
    if argv[0] == "all":
        for name, text in run_all().items():
            print(f"\n=== {name} ===")
            print(text)
        return 0
    exp = get_experiment(argv[0])
    print(exp.report(exp.run()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

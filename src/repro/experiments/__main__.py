"""CLI entry point: ``python -m repro.experiments [name|all|list]``.

The observability flags wrap the whole run in an ambient
:class:`repro.obs.Instrumentation` bundle, so every ``run_*_replications``
sweep an experiment performs lands in one cumulative metrics registry
and one span trace — no experiment needs to thread a kwarg for it:

``--metrics-out m.json``
    write the merged counter/gauge/histogram snapshot as metrics JSON
    (render with ``python tools/obs_report.py m.json``);
``--trace-out t.json``
    write a Chrome-trace file (open at ``chrome://tracing`` or
    https://ui.perfetto.dev);
``--progress``
    print per-chunk progress + ETA lines to stderr.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all


def _print_listing(out) -> None:
    print("usage: python -m repro.experiments <name>|all|list", file=out)
    print("", file=out)
    for name, exp in sorted(EXPERIMENTS.items()):
        print(f"  {name:20s} {exp.description}", file=out)


def _run_one(name: str, seed: int | None) -> str:
    exp = get_experiment(name)
    kwargs = {}
    if seed is not None:
        if "seed" not in inspect.signature(exp.run).parameters:
            raise SystemExit(
                f"error: experiment {name!r} does not accept --seed"
            )
        kwargs["seed"] = seed
    return exp.report(exp.run(**kwargs))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one paper artifact (or all of them).",
    )
    parser.add_argument(
        "name",
        nargs="?",
        help="experiment name, 'all' to run every experiment, "
        "or 'list' to enumerate them",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's root seed (single experiment only)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's merged metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome-trace span file (chrome://tracing)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-chunk progress + ETA to stderr",
    )
    args = parser.parse_args(argv)

    if args.name is None or args.name == "list":
        _print_listing(sys.stdout)
        return 0
    if args.name != "all" and args.name not in EXPERIMENTS:
        print(f"error: unknown experiment {args.name!r}", file=sys.stderr)
        print("known experiments:", file=sys.stderr)
        for name in sorted(EXPERIMENTS):
            print(f"  {name}", file=sys.stderr)
        return 2
    if args.name == "all" and args.seed is not None:
        print("error: --seed applies to a single experiment, not 'all'",
              file=sys.stderr)
        return 2

    from repro.obs import (
        Instrumentation,
        instrumented,
        progress_printer,
        write_metrics_json,
    )

    observing = bool(args.metrics_out or args.trace_out or args.progress)
    inst = Instrumentation(
        progress=progress_printer() if args.progress else None
    )
    ctx = instrumented(inst) if observing else None
    try:
        if ctx is not None:
            ctx.__enter__()
        if args.name == "all":
            for name, text in run_all().items():
                print(f"\n=== {name} ===")
                print(text)
        else:
            print(_run_one(args.name, args.seed))
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)
    if args.metrics_out:
        write_metrics_json(
            args.metrics_out, inst.registry, meta={"experiment": args.name}
        )
        print(f"[repro.obs] metrics written to {args.metrics_out}",
              file=sys.stderr)
    if args.trace_out:
        inst.tracer.write(args.trace_out)
        print(f"[repro.obs] trace written to {args.trace_out} "
              "(open at chrome://tracing)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

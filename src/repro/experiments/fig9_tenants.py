"""Multi-tenant traffic sweep: tenant count x arrival rate x policy.

The Fig. 9 scenario lifted to the traffic layer: instead of one bag on
one fleet, several tenants submit Poisson bag streams to a shared
preemptible fleet, and the sweep scores how the inter-tenant scheduling
policy trades mean wait, fairness across tenants, and the Fig. 9a
cost-reduction factor as load grows.  Runs through
:func:`repro.sim.backend.run_tenant_replications` (both backends; the
event path drives the real multi-tenant controller stack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.backend import run_tenant_replications
from repro.traffic.arrivals import JobMix, PoissonProcess, TenantSpec, sample_traffic
from repro.traffic.metrics import tenant_report
from repro.utils.tables import format_table

__all__ = ["TenantSweepPoint", "run", "report"]

#: Paper-flavoured rate sheet (preemptible discount ~5x, billed master).
PREEMPTIBLE_RATE = 0.2
ON_DEMAND_RATE = 1.0
MASTER_RATE = 0.05


@dataclass(frozen=True)
class TenantSweepPoint:
    """One (tenants, rate, policy) cell of the sweep."""

    n_tenants: int
    arrival_rate: float
    scheduling: str
    n_jobs: int
    mean_makespan: float
    mean_wait_hours: float
    mean_bounded_slowdown: float
    wait_fairness: float
    cost_reduction_factor: float
    admitted_fraction: float


def _tenants(n: int, rate: float, seed: int) -> list[TenantSpec]:
    """``n`` symmetric tenants with lognormal job mixes, Poisson arrivals."""
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(n):
        mean = float(rng.uniform(0.4, 0.9))
        specs.append(
            TenantSpec(
                name=f"tenant-{i}",
                arrivals=PoissonProcess(rate),
                mix=JobMix(
                    mean_hours=mean,
                    cv=0.3,
                    widths=(1, 2),
                    jobs_per_bag=(2, 3),
                ),
                weight=float(i + 1),  # exercises the weighted policy
            )
        )
    return specs


def run(
    *,
    tenant_counts=(2, 4),
    arrival_rates=(0.5, 1.0),
    policies=("fifo", "fair", "weighted"),
    horizon: float = 6.0,
    max_vms: int = 4,
    admission_cap: int | None = 12,
    n_replications: int = 40,
    seed: int = 0,
    backend: str = "vectorized",
) -> list[TenantSweepPoint]:
    """Sweep tenant count x arrival rate x scheduling policy.

    Every cell reuses the same traffic draw per (tenants, rate) pair,
    so policy columns are paired comparisons on identical scenarios.
    """
    points: list[TenantSweepPoint] = []
    for T in tenant_counts:
        for rate in arrival_rates:
            specs = _tenants(T, rate, seed)
            traffic = sample_traffic(specs, horizon, seed=seed + 17 * T)
            if not traffic:
                continue
            weights = tuple(s.weight for s in specs)
            for policy in policies:
                outcomes = run_tenant_replications(
                    default_dist(),
                    traffic,
                    n_tenants=T,
                    n_replications=n_replications,
                    seed=seed,
                    backend=backend,
                    max_vms=max_vms,
                    scheduling=policy,
                    tenant_weights=weights if policy == "weighted" else None,
                    admission_cap=admission_cap,
                )
                rep = tenant_report(
                    outcomes,
                    preemptible_rate=PREEMPTIBLE_RATE,
                    on_demand_rate=ON_DEMAND_RATE,
                    master_rate=MASTER_RATE,
                )
                crf = outcomes.cost_reduction_factor(
                    PREEMPTIBLE_RATE, ON_DEMAND_RATE, MASTER_RATE
                )
                points.append(
                    TenantSweepPoint(
                        n_tenants=T,
                        arrival_rate=float(rate),
                        scheduling=policy,
                        n_jobs=outcomes.n_jobs,
                        mean_makespan=outcomes.mean_makespan,
                        mean_wait_hours=outcomes.mean_wait_hours,
                        mean_bounded_slowdown=float(
                            np.nanmean(rep.mean_bounded_slowdown)
                        ),
                        wait_fairness=rep.wait_fairness,
                        cost_reduction_factor=float(crf.mean()),
                        admitted_fraction=float(
                            outcomes.admitted_fraction.mean()
                        ),
                    )
                )
    return points


def default_dist():
    """The Fig. 1 reference configuration's ground-truth lifetime law."""
    from repro.traces.catalog import default_catalog

    return default_catalog().distribution("n1-highcpu-16", "us-east1-b")


def report(points: list[TenantSweepPoint]) -> str:
    rows = [
        [
            p.n_tenants,
            f"{p.arrival_rate:.2f}",
            p.scheduling,
            p.n_jobs,
            f"{p.mean_wait_hours:.3f}",
            f"{p.mean_bounded_slowdown:.2f}",
            f"{p.wait_fairness:.3f}",
            f"{p.cost_reduction_factor:.2f}",
            f"{100 * p.admitted_fraction:.0f}%",
        ]
        for p in points
    ]
    table = format_table(
        [
            "tenants",
            "rate/h",
            "policy",
            "jobs",
            "E[wait] h",
            "E[bsld]",
            "fairness",
            "CRF",
            "admitted",
        ],
        rows,
    )
    return (
        "Fig. 9 (tenants): multi-tenant traffic on one shared preemptible "
        "fleet\n"
        f"(rates: preemptible {PREEMPTIBLE_RATE}, on-demand {ON_DEMAND_RATE}, "
        f"master {MASTER_RATE}; fairness = Jain index over per-tenant mean "
        "waits)\n\n" + table
    )

"""Fig. 9 — batch-service cost and preemption impact on real workloads.

Panel (a): cost per job of the service (preemptible fleet, model-driven
reuse) against conventional on-demand deployment, for the three paper
applications.  The paper reports ~5x reduction (the raw price discount
is ~4.7x; overheads eat a little of it).

Panel (b): % increase in bag running time versus the number of VM
preemptions observed during the run — roughly linear, ~3% per
preemption in the paper.  We regenerate it by running the same bag under
many seeds and regressing the observed (preemptions, slowdown) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.service.api import BagRequest, JobRequest
from repro.service.controller import MASTER_VM_TYPE, BatchComputingService, ServiceConfig
from repro.sim.backend import ServiceOutcomes, run_service_replications
from repro.sim.cloud import CloudProvider
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog
from repro.utils.tables import format_table

__all__ = [
    "AppCost",
    "Fig9Result",
    "run",
    "report",
    "AppMonteCarlo",
    "Fig9MonteCarloResult",
    "run_monte_carlo",
    "report_monte_carlo",
    "APPLICATIONS",
]

#: The paper's three applications: (name, clean runtime hours, gang width).
#: Runtimes are the paper's: 14 min (Nanoconfinement, 4x16 CPUs),
#: 9 min (Shapes, 4x16), 12.5 min (LULESH, 8x8) — widths scaled to the
#: simulated fleet type.
APPLICATIONS = (
    ("nanoconfinement", 14.0 / 60.0, 4),
    ("shapes", 9.0 / 60.0, 4),
    ("lulesh", 12.5 / 60.0, 8),
)


@dataclass(frozen=True)
class AppCost:
    """Panel (a) bar pair for one application."""

    name: str
    cost_per_job: float
    on_demand_cost_per_job: float
    reduction_factor: float
    n_preemptions: int
    makespan_hours: float


@dataclass(frozen=True)
class Fig9Result:
    """Both panels."""

    costs: tuple[AppCost, ...]
    preemption_counts: np.ndarray
    runtime_increase_pct: np.ndarray
    slope_pct_per_preemption: float


def _run_bag(
    name: str,
    job_hours: float,
    width: int,
    *,
    n_jobs: int,
    seed: int,
    vm_type: str,
    max_vms: int,
) -> tuple[AppCost, float]:
    sim = Simulator()
    cloud = CloudProvider(sim, default_catalog(), RandomStreams(seed))
    model = default_catalog().distribution(vm_type, "us-central1-c")
    svc = BatchComputingService(
        sim,
        cloud,
        model,
        ServiceConfig(vm_type=vm_type, max_vms=max_vms, use_reuse_policy=True),
    )
    bag = BagRequest(
        jobs=[JobRequest(work_hours=job_hours, width=width) for _ in range(n_jobs)],
        name=name,
    )
    bid = svc.submit_bag(bag)
    svc.run_until_bag_done(bid)
    svc.shutdown()
    rep = svc.report(bid)
    app = AppCost(
        name=name,
        cost_per_job=rep.metrics.cost_per_job(),
        on_demand_cost_per_job=rep.on_demand_baseline / n_jobs,
        reduction_factor=rep.cost_reduction_factor,
        n_preemptions=rep.n_preemptions,
        makespan_hours=rep.makespan_hours,
    )
    return app, rep.makespan_hours


def run(
    *,
    n_jobs: int = 60,
    vm_type: str = "n1-highcpu-32",
    max_vms: int = 16,
    seed: int = 5,
    n_slowdown_seeds: int = 10,
) -> Fig9Result:
    """Run all three application bags plus the panel (b) seed sweep."""
    costs = tuple(
        _run_bag(
            name,
            hours,
            width,
            n_jobs=n_jobs,
            seed=seed,
            vm_type=vm_type,
            max_vms=max_vms,
        )[0]
        for name, hours, width in APPLICATIONS
    )
    # Panel (b): repeat the Nanoconfinement bag across seeds; the ideal
    # makespan is approximated by the minimum observed one.
    name, hours, width = APPLICATIONS[0]
    makespans = []
    preemptions = []
    for k in range(n_slowdown_seeds):
        app, mk = _run_bag(
            name,
            hours,
            width,
            n_jobs=n_jobs,
            seed=seed + 100 + k,
            vm_type=vm_type,
            max_vms=max_vms,
        )
        makespans.append(mk)
        preemptions.append(app.n_preemptions)
    makespans_arr = np.asarray(makespans, dtype=float)
    counts = np.asarray(preemptions, dtype=float)
    ideal = float(makespans_arr.min())
    increase = 100.0 * (makespans_arr - ideal) / ideal
    # Least-squares slope through the origin-ish cloud.
    if np.ptp(counts) > 0:
        slope = float(np.polyfit(counts, increase, 1)[0])
    else:
        slope = 0.0
    return Fig9Result(
        costs=costs,
        preemption_counts=counts,
        runtime_increase_pct=increase,
        slope_pct_per_preemption=slope,
    )


def report(result: Fig9Result) -> str:
    rows_a = [
        (
            c.name,
            c.cost_per_job,
            c.on_demand_cost_per_job,
            c.reduction_factor,
            c.n_preemptions,
        )
        for c in result.costs
    ]
    table_a = format_table(
        ["application", "service $/job", "on-demand $/job", "reduction", "preemptions"],
        rows_a,
        floatfmt=".3f",
        title="Fig. 9a — cost per job: our service vs on-demand (paper: ~5x)",
    )
    rows_b = [
        (int(c), float(p))
        for c, p in zip(result.preemption_counts, result.runtime_increase_pct)
    ]
    table_b = format_table(
        ["preemptions", "% runtime increase"],
        rows_b,
        floatfmt=".2f",
        title="Fig. 9b — preemption impact on bag makespan",
    )
    return (
        table_a
        + "\n\n"
        + table_b
        + f"\nslope: {result.slope_pct_per_preemption:.2f}% per preemption (paper: ~3%)"
    )


@dataclass(frozen=True)
class AppMonteCarlo:
    """Replicated panel (a) entry for one application."""

    name: str
    outcomes: ServiceOutcomes
    cost_per_job: float
    on_demand_cost_per_job: float
    reduction_factor: float
    mean_preemptions: float
    mean_makespan_hours: float


@dataclass(frozen=True)
class Fig9MonteCarloResult:
    """Fig. 9 over N replicated cluster runs per application."""

    apps: tuple[AppMonteCarlo, ...]
    preemption_counts: np.ndarray
    runtime_increase_pct: np.ndarray
    slope_pct_per_preemption: float
    backend: str


def run_monte_carlo(
    *,
    n_jobs: int = 60,
    vm_type: str = "n1-highcpu-32",
    pool_size: int = 16,
    n_replications: int = 200,
    seed: int = 5,
    backend: str = "vectorized",
) -> Fig9MonteCarloResult:
    """Fig. 9 via the batched *service* kernel instead of single runs.

    Where :func:`run` replays the full event-driven service once per
    seed, this sweeps ``n_replications`` end-to-end service runs per
    application through
    :func:`repro.sim.backend.run_service_replications` — the same
    controller semantics :func:`run` exercises (cold start, deficit
    provisioning, Eq. 8 reuse on the bag estimate, hot-spare retention
    timers, billed on-demand master, no checkpointing), so panel (a)
    costs come with Monte-Carlo error bars and panel (b) regresses the
    slowdown-vs-preemptions cloud over every replication rather than a
    handful of seeds.  The event backend drives the real
    :class:`BatchComputingService` and gives identical per-replication
    outcomes at matched seeds.
    """
    catalog = default_catalog()
    spec = catalog.spec(vm_type)
    master_rate = catalog.spec(MASTER_VM_TYPE).on_demand_price
    dist = catalog.distribution(vm_type, "us-central1-c")
    apps = []
    for k, (name, hours, width) in enumerate(APPLICATIONS):
        outcomes = run_service_replications(
            dist,
            [(hours, width)] * n_jobs,
            max_vms=pool_size,
            use_reuse_policy=True,
            run_master=True,
            n_replications=n_replications,
            seed=seed + k,
            backend=backend,
        )
        cost_per_job = (
            outcomes.mean_cost(spec.preemptible_price, master_rate) / n_jobs
        )
        od_per_job = hours * width * spec.on_demand_price
        apps.append(
            AppMonteCarlo(
                name=name,
                outcomes=outcomes,
                cost_per_job=cost_per_job,
                on_demand_cost_per_job=od_per_job,
                reduction_factor=od_per_job / cost_per_job if cost_per_job > 0 else float("inf"),
                mean_preemptions=float(outcomes.n_preemptions.mean()),
                mean_makespan_hours=outcomes.mean_makespan,
            )
        )
    # Panel (b): the per-replication (preemptions, slowdown) cloud of the
    # first application; the ideal makespan is the best replication's.
    first = apps[0].outcomes
    counts = first.n_preemptions.astype(float)
    ideal = float(first.makespan.min()) if first.n_replications else 0.0
    increase = (
        100.0 * (first.makespan - ideal) / ideal
        if ideal > 0
        else np.zeros_like(counts)
    )
    if counts.size and np.ptp(counts) > 0:
        slope = float(np.polyfit(counts, increase, 1)[0])
    else:
        slope = 0.0
    return Fig9MonteCarloResult(
        apps=tuple(apps),
        preemption_counts=counts,
        runtime_increase_pct=increase,
        slope_pct_per_preemption=slope,
        backend=backend,
    )


def report_monte_carlo(result: Fig9MonteCarloResult) -> str:
    rows_a = [
        (
            a.name,
            a.cost_per_job,
            a.on_demand_cost_per_job,
            a.reduction_factor,
            a.mean_preemptions,
            a.mean_makespan_hours,
        )
        for a in result.apps
    ]
    n = result.apps[0].outcomes.n_replications if result.apps else 0
    table_a = format_table(
        [
            "application",
            "service $/job",
            "on-demand $/job",
            "reduction",
            "mean preempts",
            "mean makespan h",
        ],
        rows_a,
        floatfmt=".3f",
        title=(
            f"Fig. 9a (Monte Carlo, n={n}, {result.backend} backend) — "
            "cost per job vs on-demand (paper: ~5x)"
        ),
    )
    return (
        table_a
        + f"\nslope: {result.slope_pct_per_preemption:.2f}% runtime increase "
        f"per preemption over {result.preemption_counts.size} replications "
        "(paper: ~3%)"
    )


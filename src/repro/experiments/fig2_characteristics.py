"""Fig. 2 — preemption characteristics by type, time/workload, and zone.

Three panels:

* (a) lifetime CDFs of n1-highcpu-{2,4,8,16,32} in us-central1-c —
  larger VMs are preempted sooner (Observation 4),
* (b) day vs night launches and idle vs busy VMs for the reference type
  — night/idle VMs live longer (Observation 5),
* (c) the reference type across four zones (regional variation).

The result carries median lifetimes per group plus full CDF grids, and
the tests assert the paper's orderings hold in the synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fitting.ecdf import EmpiricalCDF
from repro.traces.catalog import REGIONS, VM_TYPES, default_catalog
from repro.traces.generator import TraceGenerator
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "run", "report"]


@dataclass(frozen=True)
class Fig2Result:
    """CDF grids + medians for every Fig. 2 group."""

    grid_hours: np.ndarray
    by_vm_type: dict[str, np.ndarray]
    by_zone: dict[str, np.ndarray]
    by_context: dict[str, np.ndarray]  # day / night / idle / busy
    medians: dict[str, float]
    means: dict[str, float]


def _cdf_on(grid: np.ndarray, lifetimes: np.ndarray) -> np.ndarray:
    return np.asarray(EmpiricalCDF.from_samples(lifetimes).evaluate(grid), dtype=float)


def run(*, per_config: int = 150, seed: int = 11, grid_num: int = 64) -> Fig2Result:
    """Launch per-panel batches and build the empirical CDFs."""
    gen = TraceGenerator(default_catalog(), seed=seed)
    grid = np.linspace(0.0, 25.0, grid_num)
    medians: dict[str, float] = {}
    means: dict[str, float] = {}

    by_type: dict[str, np.ndarray] = {}
    for vt in VM_TYPES:
        lt = gen.launch_batch(per_config, vt, "us-central1-c", launch_hour=12.0).lifetimes()
        by_type[vt] = _cdf_on(grid, lt)
        medians[vt] = float(np.median(lt))
        means[vt] = float(np.mean(lt))

    by_zone: dict[str, np.ndarray] = {}
    for zone in REGIONS:
        lt = gen.launch_batch(per_config, "n1-highcpu-16", zone, launch_hour=12.0).lifetimes()
        by_zone[zone] = _cdf_on(grid, lt)
        medians[zone] = float(np.median(lt))
        means[zone] = float(np.mean(lt))

    contexts = {
        "day": dict(launch_hour=14.0, idle=False),
        "night": dict(launch_hour=2.0, idle=False),
        "busy": dict(launch_hour=12.0, idle=False),
        "idle": dict(launch_hour=12.0, idle=True),
    }
    by_context: dict[str, np.ndarray] = {}
    for name, kw in contexts.items():
        lt = gen.launch_batch(per_config, "n1-highcpu-16", "us-central1-c", **kw).lifetimes()
        by_context[name] = _cdf_on(grid, lt)
        medians[name] = float(np.median(lt))
        means[name] = float(np.mean(lt))

    return Fig2Result(
        grid_hours=grid,
        by_vm_type=by_type,
        by_zone=by_zone,
        by_context=by_context,
        medians=medians,
        means=means,
    )


def report(result: Fig2Result) -> str:
    """Median/mean lifetimes per group (the plot, in numbers)."""
    rows = [
        (name, result.medians[name], result.means[name])
        for name in list(result.by_vm_type)
        + list(result.by_zone)
        + list(result.by_context)
    ]
    return format_table(
        ["group", "median lifetime (h)", "mean lifetime (h)"],
        rows,
        title="Fig. 2 — lifetimes by VM type / zone / launch context",
    )


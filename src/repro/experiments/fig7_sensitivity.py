"""Fig. 7 — sensitivity of the scheduling policy to model fitting error.

The deliberately "suboptimal" model uses the n1-highcpu-32 parameters to
schedule jobs on VMs whose true law is n1-highcpu-16 (the two differ
sharply, see Fig. 2a).  The paper's result: as long as the surrogate is
*some* bathtub, the scheduling decisions barely change — failure
probability within ~2% of the best-fit model, and both far below the
memoryless baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    job_length_grid,
    mismatched_policy_failure_probability,
    mismatched_policy_failure_probability_mc,
    monte_carlo_failure_probability,
    reference_distribution,
)
from repro.policies.scheduling import MemorylessSchedulingPolicy
from repro.traces.catalog import default_catalog
from repro.utils.tables import format_table

__all__ = [
    "Fig7Result",
    "Fig7MonteCarloResult",
    "run",
    "run_monte_carlo",
    "report",
    "report_monte_carlo",
]


@dataclass(frozen=True)
class Fig7Result:
    """Average failure probability per job length for three policies."""

    job_lengths: np.ndarray
    memoryless: np.ndarray
    best_fit: np.ndarray
    suboptimal: np.ndarray

    def max_suboptimality_gap(self) -> float:
        """Worst absolute gap between suboptimal and best-fit curves."""
        return float(np.max(np.abs(self.suboptimal - self.best_fit)))


def run(*, num_lengths: int = 20, num_ages: int = 64) -> Fig7Result:
    truth = reference_distribution()
    # Suboptimal surrogate: a *different* VM type's law (highcpu-32 in
    # us-central1-c), i.e. badly wrong parameters but still bathtub.
    surrogate = default_catalog().distribution("n1-highcpu-32", "us-central1-c")
    base = MemorylessSchedulingPolicy(truth)
    lengths = job_length_grid(24.0, num_lengths)
    ages = np.linspace(0.0, truth.t_max, num_ages, endpoint=False)

    def avg(decision_model) -> np.ndarray:
        out = np.empty(len(lengths))
        for i, j in enumerate(lengths):
            probs = [
                mismatched_policy_failure_probability(decision_model, truth, float(j), float(s))
                for s in ages
            ]
            out[i] = float(np.mean(probs))
        return out

    best = avg(truth)
    subopt = avg(surrogate)
    memoryless = np.array(
        [
            float(np.mean([base.failure_probability(float(j), float(s)) for s in ages]))
            for j in lengths
        ]
    )
    return Fig7Result(
        job_lengths=lengths, memoryless=memoryless, best_fit=best, suboptimal=subopt
    )


@dataclass(frozen=True)
class Fig7MonteCarloResult:
    """Replication-based Fig. 7 curves (decisions analytic, outcomes MC)."""

    job_lengths: np.ndarray
    vm_ages: np.ndarray
    memoryless: np.ndarray
    best_fit: np.ndarray
    suboptimal: np.ndarray
    n_replications: int
    backend: str

    def max_suboptimality_gap(self) -> float:
        """Worst absolute gap between suboptimal and best-fit curves."""
        return float(np.max(np.abs(self.suboptimal - self.best_fit)))


def run_monte_carlo(
    *,
    num_lengths: int = 10,
    num_ages: int = 16,
    n_replications: int = 1000,
    seed: int = 0,
) -> Fig7MonteCarloResult:
    """Fig. 7 with simulated (rather than closed-form) failure outcomes.

    The scheduling *decisions* still come from the analytic models (that
    mismatch is the experiment); each chosen (age, job) pair is then
    estimated by a vectorised conditioned-sampling sweep under the true
    law.
    """
    truth = reference_distribution()
    surrogate = default_catalog().distribution("n1-highcpu-32", "us-central1-c")
    lengths = job_length_grid(24.0, num_lengths)
    ages = np.linspace(0.0, truth.t_max, num_ages, endpoint=False)

    # Common random numbers: every policy re-seeds identically per grid
    # point, so curves differ only where the *decisions* differ.
    def point_seed(i: int, a: int) -> np.random.Generator:
        return np.random.default_rng([seed, i, a])

    def avg_mc(point_probability) -> np.ndarray:
        out = np.empty(len(lengths))
        for i, j in enumerate(lengths):
            probs = [
                point_probability(float(j), float(s), point_seed(i, a))
                for a, s in enumerate(ages)
            ]
            out[i] = float(np.mean(probs))
        return out

    def policy_point(decision_model):
        def point(j, s, rng):
            return mismatched_policy_failure_probability_mc(
                decision_model, truth, j, s, n_replications=n_replications, seed=rng
            )

        return point

    best = avg_mc(policy_point(truth))
    subopt = avg_mc(policy_point(surrogate))
    # Memoryless baseline: always reuse, whatever the age.
    memoryless = avg_mc(
        lambda j, s, rng: monte_carlo_failure_probability(
            truth, j, s, n_replications=n_replications, seed=rng
        )
    )
    return Fig7MonteCarloResult(
        job_lengths=lengths,
        vm_ages=ages,
        memoryless=memoryless,
        best_fit=best,
        suboptimal=subopt,
        n_replications=n_replications,
        backend="vectorized",
    )


def report(result: Fig7Result) -> str:
    rows = [
        (float(j), result.memoryless[i], result.best_fit[i], result.suboptimal[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        ["job length (h)", "memoryless", "best-fit bathtub", "suboptimal bathtub"],
        rows,
        floatfmt=".3f",
        title="Fig. 7 — scheduling-policy sensitivity to model parameters",
    )
    return table + (
        f"\nmax |suboptimal - best-fit| = {result.max_suboptimality_gap():.3f} "
        "(paper: < 0.02)"
    )


def report_monte_carlo(result: Fig7MonteCarloResult) -> str:
    rows = [
        (float(j), result.memoryless[i], result.best_fit[i], result.suboptimal[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        ["job length (h)", "memoryless", "best-fit bathtub", "suboptimal bathtub"],
        rows,
        floatfmt=".3f",
        title=(
            f"Fig. 7 (MC) — {result.n_replications} replications per point, "
            f"{result.backend} backend"
        ),
    )
    return table + (
        f"\nmax |suboptimal - best-fit| = {result.max_suboptimality_gap():.3f} "
        "(paper: < 0.02 analytic; MC adds sampling noise)"
    )


"""Fig. 7 — sensitivity of the scheduling policy to model fitting error.

The deliberately "suboptimal" model uses the n1-highcpu-32 parameters to
schedule jobs on VMs whose true law is n1-highcpu-16 (the two differ
sharply, see Fig. 2a).  The paper's result: as long as the surrogate is
*some* bathtub, the scheduling decisions barely change — failure
probability within ~2% of the best-fit model, and both far below the
memoryless baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    job_length_grid,
    mismatched_policy_failure_probability,
    reference_distribution,
)
from repro.policies.scheduling import MemorylessSchedulingPolicy
from repro.traces.catalog import default_catalog
from repro.utils.tables import format_table

__all__ = ["Fig7Result", "run", "report"]


@dataclass(frozen=True)
class Fig7Result:
    """Average failure probability per job length for three policies."""

    job_lengths: np.ndarray
    memoryless: np.ndarray
    best_fit: np.ndarray
    suboptimal: np.ndarray

    def max_suboptimality_gap(self) -> float:
        """Worst absolute gap between suboptimal and best-fit curves."""
        return float(np.max(np.abs(self.suboptimal - self.best_fit)))


def run(*, num_lengths: int = 20, num_ages: int = 64) -> Fig7Result:
    truth = reference_distribution()
    # Suboptimal surrogate: a *different* VM type's law (highcpu-32 in
    # us-central1-c), i.e. badly wrong parameters but still bathtub.
    surrogate = default_catalog().distribution("n1-highcpu-32", "us-central1-c")
    base = MemorylessSchedulingPolicy(truth)
    lengths = job_length_grid(24.0, num_lengths)
    ages = np.linspace(0.0, truth.t_max, num_ages, endpoint=False)

    def avg(decision_model) -> np.ndarray:
        out = np.empty(len(lengths))
        for i, j in enumerate(lengths):
            probs = [
                mismatched_policy_failure_probability(decision_model, truth, float(j), float(s))
                for s in ages
            ]
            out[i] = float(np.mean(probs))
        return out

    best = avg(truth)
    subopt = avg(surrogate)
    memoryless = np.array(
        [
            float(np.mean([base.failure_probability(float(j), float(s)) for s in ages]))
            for j in lengths
        ]
    )
    return Fig7Result(
        job_lengths=lengths, memoryless=memoryless, best_fit=best, suboptimal=subopt
    )


def report(result: Fig7Result) -> str:
    rows = [
        (float(j), result.memoryless[i], result.best_fit[i], result.suboptimal[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        ["job length (h)", "memoryless", "best-fit bathtub", "suboptimal bathtub"],
        rows,
        floatfmt=".3f",
        title="Fig. 7 — scheduling-policy sensitivity to model parameters",
    )
    return table + (
        f"\nmax |suboptimal - best-fit| = {result.max_suboptimality_gap():.3f} "
        "(paper: < 0.02)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))

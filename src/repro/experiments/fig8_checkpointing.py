"""Fig. 8 — checkpointing effectiveness: DP policy vs Young-Daly.

Panel (a): expected % increase in running time of a 4-hour job versus
its *start age*.  The DP policy's overhead is bathtub-shaped (it
checkpoints hard only where the hazard is high); Young-Daly — configured
from the memoryless view of the VM (MTTF = 1 h from the initial failure
rate, per the paper) — pays a flat heavy overhead everywhere.

Panel (b): expected % increase versus *job length* for jobs started on
fresh VMs.

Both panels use the analytic fixed-schedule evaluator for Young-Daly
and the DP table for our policy; the Monte-Carlo validator in the test
suite pins both against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import reference_distribution
from repro.policies.checkpointing import CheckpointPolicy, evaluate_schedule
from repro.policies.youngdaly import young_daly_interval, young_daly_schedule
from repro.sim.backend import run_replications
from repro.utils.tables import format_table

__all__ = [
    "Fig8Result",
    "Fig8MonteCarloResult",
    "run",
    "run_monte_carlo",
    "report",
    "report_monte_carlo",
]

#: The paper's Young-Daly parameterisation: MTTF inferred from the
#: initial failure rate, stated as 1 hour.
YD_MTTF_HOURS = 1.0


@dataclass(frozen=True)
class Fig8Result:
    """Overhead (%) series for both panels."""

    start_ages: np.ndarray
    overhead_ours_by_age: np.ndarray
    overhead_yd_by_age: np.ndarray
    job_lengths: np.ndarray
    overhead_ours_by_length: np.ndarray
    overhead_yd_by_length: np.ndarray
    panel_a_job_hours: float
    delta_hours: float

    def improvement_factor(self) -> float:
        """Mean Young-Daly / ours overhead ratio over panel (b)."""
        ours = np.maximum(self.overhead_ours_by_length, 1e-9)
        return float(np.mean(self.overhead_yd_by_length / ours))


def run(
    *,
    panel_a_job: float = 4.0,
    max_length: float = 9.0,
    num_ages: int = 16,
    num_lengths: int = 9,
    delta: float = 1.0 / 60.0,
    step: float = 0.1,
) -> Fig8Result:
    dist = reference_distribution()
    policy = CheckpointPolicy(dist, step=step, delta=delta)
    tau = young_daly_interval(delta, YD_MTTF_HOURS)

    # Panel (a): 4 h job across start ages (stop where it can still fit).
    ages = np.linspace(0.0, max(dist.t_max - panel_a_job - 1.0, 1.0), num_ages)
    ours_a = np.empty(num_ages)
    yd_a = np.empty(num_ages)
    yd_sched_a = young_daly_schedule(panel_a_job, tau)
    for i, s in enumerate(ages):
        ours_a[i] = 100.0 * (
            policy.expected_makespan(panel_a_job, float(s)) - panel_a_job
        ) / panel_a_job
        em = evaluate_schedule(dist, yd_sched_a, delta=delta, start_age=float(s))
        yd_a[i] = 100.0 * (em - panel_a_job) / panel_a_job

    # Panel (b): job lengths at start age 0.
    lengths = np.linspace(1.0, max_length, num_lengths)
    ours_b = np.empty(num_lengths)
    yd_b = np.empty(num_lengths)
    for i, j in enumerate(lengths):
        ours_b[i] = 100.0 * (policy.expected_makespan(float(j), 0.0) - j) / j
        em = evaluate_schedule(
            dist, young_daly_schedule(float(j), tau), delta=delta, start_age=0.0
        )
        yd_b[i] = 100.0 * (em - j) / j

    return Fig8Result(
        start_ages=ages,
        overhead_ours_by_age=ours_a,
        overhead_yd_by_age=yd_a,
        job_lengths=lengths,
        overhead_ours_by_length=ours_b,
        overhead_yd_by_length=yd_b,
        panel_a_job_hours=panel_a_job,
        delta_hours=delta,
    )


@dataclass(frozen=True)
class Fig8MonteCarloResult:
    """Replication-based Fig. 8b: simulated overheads for both policies."""

    job_lengths: np.ndarray
    mc_ours: np.ndarray
    mc_yd: np.ndarray
    analytic_ours: np.ndarray
    analytic_yd: np.ndarray
    n_replications: int
    backend: str

    def improvement_factor(self) -> float:
        """Mean simulated Young-Daly / ours overhead ratio."""
        ours = np.maximum(self.mc_ours, 1e-9)
        return float(np.mean(self.mc_yd / ours))

    def max_absolute_error_pct(self) -> float:
        """Worst |MC - analytic| overhead gap in percentage points."""
        return float(
            max(
                np.max(np.abs(self.mc_ours - self.analytic_ours)),
                np.max(np.abs(self.mc_yd - self.analytic_yd)),
            )
        )


def run_monte_carlo(
    *,
    max_length: float = 9.0,
    num_lengths: int = 5,
    delta: float = 1.0 / 60.0,
    step: float = 0.1,
    start_age: float = 0.0,
    n_replications: int = 4000,
    seed: int = 0,
    backend: str = "vectorized",
) -> Fig8MonteCarloResult:
    """Simulate the Fig. 8b overhead comparison with actual replications.

    Both schedules (the DP plan and Young-Daly) run restart-until-done
    through :func:`repro.sim.backend.run_replications` under the same
    lifetime law and per-length seeds (common random numbers), so the
    simulated improvement factor is directly comparable to the analytic
    one.
    """
    dist = reference_distribution()
    policy = CheckpointPolicy(dist, step=step, delta=delta)
    tau = young_daly_interval(delta, YD_MTTF_HOURS)
    lengths = np.linspace(1.0, max_length, num_lengths)
    mc_ours = np.empty(num_lengths)
    mc_yd = np.empty(num_lengths)
    an_ours = np.empty(num_lengths)
    an_yd = np.empty(num_lengths)
    for i, j in enumerate(lengths):
        J = float(j)
        plan = policy.plan(J, start_age)
        yd_sched = young_daly_schedule(J, tau)
        mc = {}
        for tag, segments in (("ours", plan.segments), ("yd", yd_sched)):
            out = run_replications(
                dist,
                segments,
                delta=delta,
                start_age=start_age,
                n_replications=n_replications,
                seed=np.random.default_rng([seed, i]),
                backend=backend,
            )
            mc[tag] = 100.0 * (out.mean_makespan - J) / J
        mc_ours[i], mc_yd[i] = mc["ours"], mc["yd"]
        an_ours[i] = 100.0 * (policy.expected_makespan(J, start_age) - J) / J
        em = evaluate_schedule(dist, yd_sched, delta=delta, start_age=start_age)
        an_yd[i] = 100.0 * (em - J) / J
    return Fig8MonteCarloResult(
        job_lengths=lengths,
        mc_ours=mc_ours,
        mc_yd=mc_yd,
        analytic_ours=an_ours,
        analytic_yd=an_yd,
        n_replications=n_replications,
        backend=backend,
    )


def report(result: Fig8Result) -> str:
    rows_a = [
        (float(s), result.overhead_ours_by_age[i], result.overhead_yd_by_age[i])
        for i, s in enumerate(result.start_ages)
    ]
    table_a = format_table(
        ["start age (h)", "our policy (%)", "Young-Daly (%)"],
        rows_a,
        floatfmt=".2f",
        title=f"Fig. 8a — {result.panel_a_job_hours:.0f} h job: % runtime increase vs start age",
    )
    rows_b = [
        (float(j), result.overhead_ours_by_length[i], result.overhead_yd_by_length[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table_b = format_table(
        ["job length (h)", "our policy (%)", "Young-Daly (%)"],
        rows_b,
        floatfmt=".2f",
        title="Fig. 8b — % runtime increase vs job length (start age 0)",
    )
    return (
        table_a
        + "\n\n"
        + table_b
        + f"\nmean Young-Daly/ours overhead ratio: {result.improvement_factor():.1f}x (paper: ~5x)"
    )


def report_monte_carlo(result: Fig8MonteCarloResult) -> str:
    rows = [
        (
            float(j),
            result.mc_ours[i],
            result.analytic_ours[i],
            result.mc_yd[i],
            result.analytic_yd[i],
        )
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        [
            "job length (h)",
            "ours MC (%)",
            "ours analytic (%)",
            "YD MC (%)",
            "YD analytic (%)",
        ],
        rows,
        floatfmt=".2f",
        title=(
            f"Fig. 8b (MC) — {result.n_replications} replications per point, "
            f"{result.backend} backend"
        ),
    )
    return table + (
        f"\nsimulated Young-Daly/ours overhead ratio: "
        f"{result.improvement_factor():.1f}x (paper: ~5x)"
    )


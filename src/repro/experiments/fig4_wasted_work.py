"""Fig. 4 — wasted computation and runtime increase, bathtub vs uniform.

Panel (a): expected wasted hours given one preemption, ``E[W1(J)]``
(Eq. 5).  Uniform-on-[0,24] gives exactly ``J/2``; the bathtub's flat
middle keeps it far lower for long jobs.

Panel (b): unconditional expected increase in running time
``P(fail) * E[W1] = int_0^J t f(t) dt``.  Uniform gives ``J^2/48``;
the bathtub curve crosses it near 5 hours (paper: "for jobs longer than
5 hours, a cross-over point is reached"), and a 10-hour job suffers only
~30 minutes vs the uniform law's ~2 hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.uniform import UniformLifetimeDistribution
from repro.experiments.common import job_length_grid, reference_distribution
from repro.policies.runtime import expected_increase_in_runtime, expected_wasted_work
from repro.utils.tables import format_table

__all__ = ["Fig4Result", "run", "report"]


@dataclass(frozen=True)
class Fig4Result:
    """Wasted-work and runtime-increase series for both laws."""

    job_lengths: np.ndarray
    wasted_bathtub: np.ndarray
    wasted_uniform: np.ndarray
    increase_bathtub: np.ndarray
    increase_uniform: np.ndarray
    crossover_hours: float

    def increase_ratio_at(self, hours: float) -> float:
        """uniform / bathtub runtime-increase ratio at a job length."""
        idx = int(np.argmin(np.abs(self.job_lengths - hours)))
        b = self.increase_bathtub[idx]
        return float(self.increase_uniform[idx] / b) if b > 0 else float("inf")


def run(*, num: int = 48, deadline: float = 24.0) -> Fig4Result:
    """Evaluate Eqs. 5 and 7 on a grid of job lengths."""
    bathtub = reference_distribution()
    uniform = UniformLifetimeDistribution(deadline)
    lengths = job_length_grid(deadline, num)
    wasted_b = np.array([expected_wasted_work(bathtub, float(j)) for j in lengths])
    wasted_u = np.array([expected_wasted_work(uniform, float(j)) for j in lengths])
    inc_b = np.array([expected_increase_in_runtime(bathtub, float(j)) for j in lengths])
    inc_u = np.array([expected_increase_in_runtime(uniform, float(j)) for j in lengths])
    # First job length beyond which the bathtub increase stays below the
    # uniform increase (the Section 6.1 crossover).
    below = inc_b < inc_u
    crossover = float(lengths[-1])
    for k in range(len(lengths)):
        if np.all(below[k:]):
            crossover = float(lengths[k])
            break
    return Fig4Result(
        job_lengths=lengths,
        wasted_bathtub=wasted_b,
        wasted_uniform=wasted_u,
        increase_bathtub=inc_b,
        increase_uniform=inc_u,
        crossover_hours=crossover,
    )


def report(result: Fig4Result) -> str:
    rows = [
        (
            float(j),
            result.wasted_bathtub[i],
            result.wasted_uniform[i],
            result.increase_bathtub[i],
            result.increase_uniform[i],
        )
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        [
            "job length (h)",
            "E[W1] bathtub",
            "E[W1] uniform",
            "E[increase] bathtub",
            "E[increase] uniform",
        ],
        rows,
        floatfmt=".3f",
        title="Fig. 4 — wasted work and expected runtime increase",
    )
    return (
        table
        + f"\ncrossover at ~{result.crossover_hours:.1f} h (paper: ~5 h); "
        + f"10 h job: bathtub {result.increase_ratio_at(10.0):.1f}x cheaper than uniform"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))

"""Fig. 4 — wasted computation and runtime increase, bathtub vs uniform.

Panel (a): expected wasted hours given one preemption, ``E[W1(J)]``
(Eq. 5).  Uniform-on-[0,24] gives exactly ``J/2``; the bathtub's flat
middle keeps it far lower for long jobs.

Panel (b): unconditional expected increase in running time
``P(fail) * E[W1] = int_0^J t f(t) dt``.  Uniform gives ``J^2/48``;
the bathtub curve crosses it near 5 hours (paper: "for jobs longer than
5 hours, a cross-over point is reached"), and a 10-hour job suffers only
~30 minutes vs the uniform law's ~2 hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.uniform import UniformLifetimeDistribution
from repro.experiments.common import job_length_grid, reference_distribution
from repro.policies.runtime import (
    expected_increase_in_runtime,
    expected_makespan_multi_failure,
    expected_wasted_work,
)
from repro.sim.backend import run_replications
from repro.sim.rng import RandomStreams
from repro.utils.tables import format_table

__all__ = [
    "Fig4Result",
    "Fig4MonteCarloResult",
    "run",
    "run_monte_carlo",
    "report",
    "report_monte_carlo",
]


@dataclass(frozen=True)
class Fig4Result:
    """Wasted-work and runtime-increase series for both laws."""

    job_lengths: np.ndarray
    wasted_bathtub: np.ndarray
    wasted_uniform: np.ndarray
    increase_bathtub: np.ndarray
    increase_uniform: np.ndarray
    crossover_hours: float

    def increase_ratio_at(self, hours: float) -> float:
        """uniform / bathtub runtime-increase ratio at a job length."""
        idx = int(np.argmin(np.abs(self.job_lengths - hours)))
        b = self.increase_bathtub[idx]
        return float(self.increase_uniform[idx] / b) if b > 0 else float("inf")


def run(*, num: int = 48, deadline: float = 24.0) -> Fig4Result:
    """Evaluate Eqs. 5 and 7 on a grid of job lengths."""
    bathtub = reference_distribution()
    uniform = UniformLifetimeDistribution(deadline)
    lengths = job_length_grid(deadline, num)
    wasted_b = np.array([expected_wasted_work(bathtub, float(j)) for j in lengths])
    wasted_u = np.array([expected_wasted_work(uniform, float(j)) for j in lengths])
    inc_b = np.array([expected_increase_in_runtime(bathtub, float(j)) for j in lengths])
    inc_u = np.array([expected_increase_in_runtime(uniform, float(j)) for j in lengths])
    # First job length beyond which the bathtub increase stays below the
    # uniform increase (the Section 6.1 crossover).
    below = inc_b < inc_u
    crossover = float(lengths[-1])
    for k in range(len(lengths)):
        if np.all(below[k:]):
            crossover = float(lengths[k])
            break
    return Fig4Result(
        job_lengths=lengths,
        wasted_bathtub=wasted_b,
        wasted_uniform=wasted_u,
        increase_bathtub=inc_b,
        increase_uniform=inc_u,
        crossover_hours=crossover,
    )


@dataclass(frozen=True)
class Fig4MonteCarloResult:
    """Replication-based validation of the Fig. 4 expectations.

    ``mc_wasted`` estimates Eq. 5 (``E[W1]``: hours lost per preemption);
    ``mc_increase`` estimates the restart-until-done runtime increase,
    whose analytic counterpart is the renewal recursion of
    :func:`expected_makespan_multi_failure` (the multi-failure extension
    the paper notes "easily follows" from Eq. 7).
    """

    job_lengths: np.ndarray
    mc_wasted: np.ndarray
    analytic_wasted: np.ndarray
    mc_increase: np.ndarray
    analytic_increase: np.ndarray
    n_replications: int
    backend: str

    def max_relative_error(self) -> float:
        """Worst MC-vs-analytic relative error across both panels."""
        rel_w = np.abs(self.mc_wasted - self.analytic_wasted) / np.maximum(
            self.analytic_wasted, 1e-9
        )
        rel_i = np.abs(self.mc_increase - self.analytic_increase) / np.maximum(
            self.analytic_increase, 1e-9
        )
        return float(max(rel_w.max(), rel_i.max()))


def run_monte_carlo(
    *,
    num: int = 12,
    deadline: float = 24.0,
    n_replications: int = 4000,
    seed: int = 0,
    backend: str = "vectorized",
) -> Fig4MonteCarloResult:
    """Validate the Fig. 4 closed forms by batched replication sweeps.

    Each job length runs as a single unchecked segment through
    :func:`repro.sim.backend.run_replications`; per-preemption wasted
    hours estimate Eq. 5 and mean makespan minus job length estimates
    the multi-failure runtime increase.
    """
    bathtub = reference_distribution()
    lengths = job_length_grid(deadline, num)
    streams = RandomStreams(seed)
    mc_wasted = np.empty(num)
    mc_increase = np.empty(num)
    an_wasted = np.empty(num)
    an_increase = np.empty(num)
    for i, j in enumerate(lengths):
        J = float(j)
        out = run_replications(
            bathtub,
            [J],
            delta=0.0,
            n_replications=n_replications,
            seed=streams.spawn("fig4", i),
            backend=backend,
        )
        failures = int(out.n_restarts.sum())
        mc_wasted[i] = out.wasted_hours.sum() / failures if failures else 0.0
        mc_increase[i] = out.mean_makespan - J
        an_wasted[i] = expected_wasted_work(bathtub, J)
        an_increase[i] = expected_makespan_multi_failure(bathtub, J) - J
    return Fig4MonteCarloResult(
        job_lengths=lengths,
        mc_wasted=mc_wasted,
        analytic_wasted=an_wasted,
        mc_increase=mc_increase,
        analytic_increase=an_increase,
        n_replications=n_replications,
        backend=backend,
    )


def report(result: Fig4Result) -> str:
    rows = [
        (
            float(j),
            result.wasted_bathtub[i],
            result.wasted_uniform[i],
            result.increase_bathtub[i],
            result.increase_uniform[i],
        )
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        [
            "job length (h)",
            "E[W1] bathtub",
            "E[W1] uniform",
            "E[increase] bathtub",
            "E[increase] uniform",
        ],
        rows,
        floatfmt=".3f",
        title="Fig. 4 — wasted work and expected runtime increase",
    )
    return (
        table
        + f"\ncrossover at ~{result.crossover_hours:.1f} h (paper: ~5 h); "
        + f"10 h job: bathtub {result.increase_ratio_at(10.0):.1f}x cheaper than uniform"
    )


def report_monte_carlo(result: Fig4MonteCarloResult) -> str:
    rows = [
        (
            float(j),
            result.mc_wasted[i],
            result.analytic_wasted[i],
            result.mc_increase[i],
            result.analytic_increase[i],
        )
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        [
            "job length (h)",
            "E[W1] MC",
            "E[W1] analytic",
            "E[increase] MC",
            "E[increase] analytic",
        ],
        rows,
        floatfmt=".3f",
        title=(
            f"Fig. 4 (MC) — {result.n_replications} replications per point, "
            f"{result.backend} backend"
        ),
    )
    return table + f"\nmax MC/analytic relative error: {result.max_relative_error():.3f}"


"""Fig. 1 — CDF of Preemptible-VM lifetimes and the model comparison.

Reproduces the headline figure: the empirical lifetime CDF of
n1-highcpu-16 in us-east1-b against least-squares fits of (a) the
paper's constrained-preemption model, (b) classical exponential,
(c) classic Weibull, (d) Gompertz-Makeham.  The paper's model must fit
dramatically better — that gap is the paper's first quantitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import reference_distribution
from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.metrics import GoodnessOfFit
from repro.fitting.selection import ModelComparison, compare_models
from repro.traces.generator import TraceGenerator
from repro.utils.tables import format_table

__all__ = ["Fig1Result", "run", "report"]

_FAMILIES = ("bathtub", "exponential", "weibull", "gompertz-makeham")


@dataclass(frozen=True)
class Fig1Result:
    """Data behind Fig. 1: CDF curves + goodness-of-fit per family."""

    grid_hours: np.ndarray
    empirical_cdf: np.ndarray
    model_cdfs: dict[str, np.ndarray]
    model_pdfs: dict[str, np.ndarray]
    scores: dict[str, GoodnessOfFit]
    fitted_params: dict[str, dict[str, float]]
    ranking: tuple[str, ...]
    n_samples: int

    @property
    def winner(self) -> str:
        return self.ranking[0]


def run(*, n_vms: int = 120, seed: int = 7, grid_num: int = 64) -> Fig1Result:
    """Generate the Fig. 1 dataset and fit all candidate families."""
    trace = TraceGenerator(seed=seed).figure1_trace(n_vms)
    lifetimes = trace.lifetimes()
    ecdf = EmpiricalCDF.from_samples(lifetimes)
    comparison: ModelComparison = compare_models(ecdf, lifetimes, families=_FAMILIES)
    grid = np.linspace(0.0, 25.0, grid_num)
    model_cdfs = {
        name: np.asarray(fit.distribution.cdf(grid), dtype=float)
        for name, fit in comparison.fits.items()
    }
    model_pdfs = {
        name: np.asarray(fit.distribution.pdf(grid), dtype=float)
        for name, fit in comparison.fits.items()
    }
    return Fig1Result(
        grid_hours=grid,
        empirical_cdf=np.asarray(ecdf.evaluate(grid), dtype=float),
        model_cdfs=model_cdfs,
        model_pdfs=model_pdfs,
        scores=comparison.scores,
        fitted_params={n: dict(f.params) for n, f in comparison.fits.items()},
        ranking=comparison.ranking,
        n_samples=len(lifetimes),
    )


def report(result: Fig1Result) -> str:
    """Fig. 1 as text: per-family goodness of fit + the bathtub params."""
    rows = [
        (
            name,
            result.scores[name].r2,
            result.scores[name].rmse,
            result.scores[name].ks,
            result.scores[name].aic,
        )
        for name in result.ranking
    ]
    table = format_table(
        ["model", "r2", "rmse", "ks", "aic"],
        rows,
        title=f"Fig. 1 — model fits to {result.n_samples} lifetimes "
        f"(winner: {result.winner})",
    )
    p = result.fitted_params.get("bathtub", {})
    params_line = (
        "\nfitted bathtub params: "
        + ", ".join(f"{k}={v:.3f}" for k, v in p.items())
        + "  (paper ranges: A in [0.4,0.5], tau1 in [0.5,5], tau2 ~ 0.8, b ~ 24)"
    )
    # Ground-truth comparison: the generator's true parameters.
    truth = reference_distribution().params
    truth_line = (
        "ground truth:          "
        + f"A={truth.A:.3f}, tau1={truth.tau1:.3f}, tau2={truth.tau2:.3f}, b={truth.b:.3f}"
    )
    return table + params_line + "\n" + truth_line


"""Fig. 6 — failure probability vs job length, averaged over start times.

Jobs arrive at arbitrary points in a VM's life; averaging the Fig. 5
curves over a uniform start age gives the per-length failure
probability.  The paper's claim: "for all but the shortest and longest
jobs, the failure probability with our policy is half of that of
existing memoryless policies."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import job_length_grid, reference_distribution
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    average_failure_probability,
    effective_start_ages,
    job_failure_probability_batch,
)
from repro.sim.backend import run_replications
from repro.sim.rng import RandomStreams
from repro.utils.tables import format_table

__all__ = [
    "Fig6Result",
    "Fig6MonteCarloResult",
    "run",
    "run_monte_carlo",
    "report",
    "report_monte_carlo",
]


@dataclass(frozen=True)
class Fig6Result:
    """Average failure probability per job length under both policies."""

    job_lengths: np.ndarray
    memoryless: np.ndarray
    model_policy: np.ndarray

    def reduction_factor(self) -> float:
        """Mean memoryless/ours ratio over mid-range job lengths."""
        mask = (self.job_lengths >= 2.0) & (self.job_lengths <= 18.0)
        ours = np.maximum(self.model_policy[mask], 1e-9)
        return float(np.mean(self.memoryless[mask] / ours))


def run(*, num_lengths: int = 24, num_ages: int = 96) -> Fig6Result:
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    base = MemorylessSchedulingPolicy(dist)
    lengths = job_length_grid(24.0, num_lengths)
    ours_p = np.array(
        [average_failure_probability(ours, float(j), num_ages=num_ages) for j in lengths]
    )
    base_p = np.array(
        [average_failure_probability(base, float(j), num_ages=num_ages) for j in lengths]
    )
    return Fig6Result(job_lengths=lengths, memoryless=base_p, model_policy=ours_p)


@dataclass(frozen=True)
class Fig6MonteCarloResult:
    """Sampled counterpart of :class:`Fig6Result`.

    Start ages are *sampled* uniformly per replication (instead of the
    closed form's uniform grid), the batch Eq. 8 decision picks aged vs
    fresh VMs, and the failure fraction comes from simulated restart
    rounds.  ``*_closed`` holds the closed-form probability averaged
    over the *same sampled ages*, so the MC-vs-closed gap is pure
    lifetime-sampling noise.
    """

    job_lengths: np.ndarray
    memoryless_mc: np.ndarray
    memoryless_closed: np.ndarray
    model_policy_mc: np.ndarray
    model_policy_closed: np.ndarray
    n_replications: int
    backend: str

    def max_abs_error(self) -> float:
        """Worst MC-vs-closed-form gap across both curves."""
        return float(
            max(
                np.abs(self.memoryless_mc - self.memoryless_closed).max(),
                np.abs(self.model_policy_mc - self.model_policy_closed).max(),
            )
        )

    def reduction_factor(self) -> float:
        """Mean memoryless/ours MC ratio over mid-range job lengths."""
        mask = (self.job_lengths >= 2.0) & (self.job_lengths <= 18.0)
        ours = np.maximum(self.model_policy_mc[mask], 1e-9)
        return float(np.mean(self.memoryless_mc[mask] / ours))


def run_monte_carlo(
    *,
    num_lengths: int = 12,
    n_replications: int = 3000,
    seed: int = 0,
    backend: str = "vectorized",
) -> Fig6MonteCarloResult:
    """Validate the Fig. 6 averages by sampled job placements.

    For each job length, one batch of ``n_replications`` placements runs
    through :func:`repro.sim.backend.run_replications` with
    *per-replication* start ages: each job lands on a VM of uniformly
    sampled age, the vectorised Eq. 8 decision
    (:func:`effective_start_ages`) replaces rejected VMs with fresh
    ones, and a replication counts as failed when its first VM is
    preempted.  Both policies see identical sampled ages *and* identical
    lifetime uniforms (common random numbers), so replication ``i``'s
    two runs differ only through the conditioning age the policy chose —
    the MC curves are fully paired.
    """
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    lengths = job_length_grid(24.0, num_lengths)
    streams = RandomStreams(seed)
    ours_mc = np.empty(num_lengths)
    base_mc = np.empty(num_lengths)
    ours_cf = np.empty(num_lengths)
    base_cf = np.empty(num_lengths)
    for i, j in enumerate(lengths):
        T = float(j)
        ages = streams.spawn("fig6-ages", i).random(n_replications) * dist.t_max
        eff, _ = effective_start_ages(ours, T, ages)
        # One entropy per grid point, instantiated fresh for each policy:
        # both runs consume identical round-protocol uniforms (pairing).
        lifetime_entropy = [seed, 1 + i]
        for start, mc, cf in (
            (eff, ours_mc, ours_cf),
            (ages, base_mc, base_cf),
        ):
            out = run_replications(
                dist,
                [T],
                delta=0.0,
                start_age=start,
                n_replications=n_replications,
                seed=np.random.default_rng(
                    np.random.SeedSequence(lifetime_entropy)
                ),
                backend=backend,
            )
            mc[i] = out.failure_fraction
            cf[i] = float(np.mean(job_failure_probability_batch(dist, T, start)))
    return Fig6MonteCarloResult(
        job_lengths=lengths,
        memoryless_mc=base_mc,
        memoryless_closed=base_cf,
        model_policy_mc=ours_mc,
        model_policy_closed=ours_cf,
        n_replications=n_replications,
        backend=backend,
    )


def report(result: Fig6Result) -> str:
    rows = [
        (float(j), result.memoryless[i], result.model_policy[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        ["job length (h)", "memoryless P(fail)", "our policy P(fail)"],
        rows,
        floatfmt=".3f",
        title="Fig. 6 — failure probability vs job length (averaged over start ages)",
    )
    return table + (
        f"\nmid-range reduction factor: {result.reduction_factor():.2f}x (paper: ~2x)"
    )


def report_monte_carlo(result: Fig6MonteCarloResult) -> str:
    rows = [
        (
            float(j),
            result.memoryless_mc[i],
            result.memoryless_closed[i],
            result.model_policy_mc[i],
            result.model_policy_closed[i],
        )
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        [
            "job length (h)",
            "memoryless MC",
            "memoryless closed",
            "our policy MC",
            "our policy closed",
        ],
        rows,
        floatfmt=".3f",
        title=(
            f"Fig. 6 (MC) — {result.n_replications} sampled placements per "
            f"length, {result.backend} backend"
        ),
    )
    return table + (
        f"\nmax |MC - closed form|: {result.max_abs_error():.3f}; "
        f"mid-range reduction factor: {result.reduction_factor():.2f}x (paper: ~2x)"
    )


"""Fig. 6 — failure probability vs job length, averaged over start times.

Jobs arrive at arbitrary points in a VM's life; averaging the Fig. 5
curves over a uniform start age gives the per-length failure
probability.  The paper's claim: "for all but the shortest and longest
jobs, the failure probability with our policy is half of that of
existing memoryless policies."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import job_length_grid, reference_distribution
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    average_failure_probability,
)
from repro.utils.tables import format_table

__all__ = ["Fig6Result", "run", "report"]


@dataclass(frozen=True)
class Fig6Result:
    """Average failure probability per job length under both policies."""

    job_lengths: np.ndarray
    memoryless: np.ndarray
    model_policy: np.ndarray

    def reduction_factor(self) -> float:
        """Mean memoryless/ours ratio over mid-range job lengths."""
        mask = (self.job_lengths >= 2.0) & (self.job_lengths <= 18.0)
        ours = np.maximum(self.model_policy[mask], 1e-9)
        return float(np.mean(self.memoryless[mask] / ours))


def run(*, num_lengths: int = 24, num_ages: int = 96) -> Fig6Result:
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    base = MemorylessSchedulingPolicy(dist)
    lengths = job_length_grid(24.0, num_lengths)
    ours_p = np.array(
        [average_failure_probability(ours, float(j), num_ages=num_ages) for j in lengths]
    )
    base_p = np.array(
        [average_failure_probability(base, float(j), num_ages=num_ages) for j in lengths]
    )
    return Fig6Result(job_lengths=lengths, memoryless=base_p, model_policy=ours_p)


def report(result: Fig6Result) -> str:
    rows = [
        (float(j), result.memoryless[i], result.model_policy[i])
        for i, j in enumerate(result.job_lengths)
    ]
    table = format_table(
        ["job length (h)", "memoryless P(fail)", "our policy P(fail)"],
        rows,
        floatfmt=".3f",
        title="Fig. 6 — failure probability vs job length (averaged over start ages)",
    )
    return table + (
        f"\nmid-range reduction factor: {result.reduction_factor():.2f}x (paper: ~2x)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))

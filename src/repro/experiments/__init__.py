"""Experiment harness: one module per paper figure/table.

Every experiment module exposes

* ``run(...)`` — compute the figure's data series (seeded, deterministic),
  returning a frozen result dataclass,
* ``report(result)`` — the series as an aligned ASCII table (the textual
  equivalent of the paper's plot),

and is registered in :mod:`repro.experiments.registry` so that
``python -m repro.experiments <name>`` regenerates any single artifact
and ``python -m repro.experiments all`` regenerates the whole evaluation.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all

__all__ = ["EXPERIMENTS", "get_experiment", "run_all"]

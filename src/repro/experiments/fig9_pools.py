"""Heterogeneous-fleet sweep: allocator policy x spot pool mix.

The Fig. 9 economics with the pool axis switched on: the fleet is a
catalog of spot pools (cheap-but-flaky vs pricey-but-stable, per-pool
lifetime laws and prices from the fitted catalog), and the sweep scores
how the placement :class:`~repro.sim.placement.Allocator` trades the
billed cost of the heterogeneous fleet (``pool_vm_hours @ prices``)
against preemption exposure and makespan.  Chasing price parks the bag
on the flaky pool and pays in preemptions; chasing reliability pays the
stable pool's premium — the sweep quantifies both sides on identical
paired replications.

Runs through :func:`repro.sim.backend.run_service_replications` (both
backends; the event path drives the real controller + ``ClusterManager``
with the same plugin pair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.backend import run_service_replications
from repro.sim.placement import PoolSpec
from repro.utils.tables import format_table

__all__ = ["PoolSweepPoint", "run", "report", "default_mixes"]

#: On-demand counterfactual rate (the Fig. 9a baseline).
ON_DEMAND_RATE = 1.0

#: The default bag: mixed widths, Fig. 9 flavoured lengths.
DEFAULT_JOBS = ((0.6, 1), (0.4, 2), (0.5, 1), (0.8, 2), (0.3, 1))


@dataclass(frozen=True)
class PoolSweepPoint:
    """One (pool mix, allocator) cell of the sweep."""

    mix: str
    allocator: str
    n_pools: int
    mean_makespan: float
    mean_preemptions: float
    mean_cost: float
    cost_reduction_factor: float
    #: Fraction of billed VM-hours spent in the cheapest pool.
    cheap_share: float


def default_mixes(max_vms: int = 4) -> dict[str, tuple[PoolSpec, ...]]:
    """Cheap-flaky / pricey-stable catalogs partitioning ``max_vms``.

    The flaky pool runs the catalog's most aggressive type
    (``n1-highcpu-32``: shortest lifetimes) at a deep discount; the
    stable pool runs the long-lived ``n1-highcpu-2`` law at a premium —
    the price/reliability tension the allocators arbitrate.
    """
    from repro.traces.catalog import default_catalog

    cat = default_catalog()
    flaky = cat.distribution("n1-highcpu-32", "us-east1-b")
    stable = cat.distribution("n1-highcpu-2", "us-east1-b")
    half = max_vms // 2
    return {
        "balanced": (
            PoolSpec("cheap-flaky", half, dist=flaky, price=0.2),
            PoolSpec("pricey-stable", max_vms - half, dist=stable, price=0.6),
        ),
        "mostly-cheap": (
            PoolSpec("cheap-flaky", max_vms - 1, dist=flaky, price=0.2),
            PoolSpec("pricey-stable", 1, dist=stable, price=0.6),
        ),
        "mostly-stable": (
            PoolSpec("cheap-flaky", 1, dist=flaky, price=0.2),
            PoolSpec("pricey-stable", max_vms - 1, dist=stable, price=0.6),
        ),
    }


def run(
    *,
    allocators=("first_fit", "best_fit_price", "reliability"),
    mixes: dict[str, tuple[PoolSpec, ...]] | None = None,
    jobs=DEFAULT_JOBS,
    max_vms: int = 4,
    n_replications: int = 200,
    seed: int = 0,
    backend: str = "vectorized",
) -> list[PoolSweepPoint]:
    """Sweep allocator policy x pool mix on the service kernel.

    Every cell runs the same seed, so allocator columns are paired
    comparisons: the round protocol feeds identical uniforms and only
    the pool choice (hence the ``ppf`` each uniform maps through)
    differs.
    """
    mixes = default_mixes(max_vms) if mixes is None else mixes
    points: list[PoolSweepPoint] = []
    for mix_name, pools in mixes.items():
        prices = np.array([p.price for p in pools])
        cheapest = int(np.argmin(prices))
        # The sweep-level dist is the fallback for dist-less PoolSpecs;
        # the default mixes pin every pool explicitly.
        fallback = pools[0].dist
        for allocator in allocators:
            out = run_service_replications(
                fallback,
                jobs,
                max_vms=max_vms,
                run_master=False,
                pools=pools,
                allocator=allocator,
                n_replications=n_replications,
                seed=seed,
                backend=backend,
            )
            cost = out.pool_vm_hours @ prices
            mean_cost = float(cost.mean())
            baseline = out.on_demand_baseline(ON_DEMAND_RATE)
            hours = out.pool_vm_hours.sum(axis=0)
            points.append(
                PoolSweepPoint(
                    mix=mix_name,
                    allocator=allocator,
                    n_pools=len(pools),
                    mean_makespan=out.mean_makespan,
                    mean_preemptions=float(out.n_preemptions.mean()),
                    mean_cost=mean_cost,
                    cost_reduction_factor=(
                        baseline / mean_cost if mean_cost > 0.0 else float("inf")
                    ),
                    cheap_share=float(
                        hours[cheapest] / hours.sum() if hours.sum() > 0.0 else 0.0
                    ),
                )
            )
    return points


def report(points: list[PoolSweepPoint]) -> str:
    rows = [
        [
            p.mix,
            p.allocator,
            p.n_pools,
            f"{p.mean_makespan:.3f}",
            f"{p.mean_preemptions:.2f}",
            f"{p.mean_cost:.3f}",
            f"{p.cost_reduction_factor:.2f}",
            f"{100 * p.cheap_share:.0f}%",
        ]
        for p in points
    ]
    table = format_table(
        [
            "mix",
            "allocator",
            "pools",
            "E[makespan] h",
            "E[preempt]",
            "E[cost]",
            "CRF",
            "cheap share",
        ],
        rows,
    )
    return (
        "Fig. 9 (pools): heterogeneous spot fleet, allocator x pool mix\n"
        "(cost = pool_vm_hours @ catalog prices; CRF = on-demand baseline "
        f"at {ON_DEMAND_RATE} over billed cost; cheap share = billed hours "
        "landing in the cheapest pool)\n\n" + table
    )

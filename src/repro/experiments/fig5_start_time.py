"""Fig. 5 — effect of job start time on failure probability (6 h job).

The memoryless baseline always reuses the running VM, so a 6-hour job
started after hour 18 *cannot* finish before the 24 h deadline — its
failure probability saturates at 1.  The model policy detects (via
Eq. 8) that a fresh VM is cheaper past the critical age and pins the
failure probability at the fresh-VM level ``F(6) ~ 0.4``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import reference_distribution
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    SchedulingDecision,
)
from repro.sim.backend import run_replications
from repro.sim.rng import RandomStreams
from repro.utils.tables import format_table

__all__ = [
    "Fig5Result",
    "Fig5MonteCarloResult",
    "run",
    "run_monte_carlo",
    "report",
    "report_monte_carlo",
]


@dataclass(frozen=True)
class Fig5Result:
    """Failure probability vs start age under both policies."""

    start_ages: np.ndarray
    memoryless: np.ndarray
    model_policy: np.ndarray
    job_length: float
    critical_age: float
    fresh_vm_level: float


def run(*, job_length: float = 6.0, num: int = 49) -> Fig5Result:
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    base = MemorylessSchedulingPolicy(dist)
    ages = np.linspace(0.0, dist.t_max, num)
    ours_p = np.array([ours.failure_probability(job_length, float(s)) for s in ages])
    base_p = np.array([base.failure_probability(job_length, float(s)) for s in ages])
    return Fig5Result(
        start_ages=ages,
        memoryless=base_p,
        model_policy=ours_p,
        job_length=job_length,
        critical_age=ours.critical_age(job_length),
        fresh_vm_level=float(dist.cdf(job_length)),
    )


@dataclass(frozen=True)
class Fig5MonteCarloResult:
    """Sampled counterpart of :class:`Fig5Result`.

    Each curve point is the fraction of ``n_replications`` simulated
    placements whose first VM was preempted inside the job's window,
    next to the closed-form probability it estimates.
    """

    start_ages: np.ndarray
    memoryless_mc: np.ndarray
    memoryless_closed: np.ndarray
    model_policy_mc: np.ndarray
    model_policy_closed: np.ndarray
    job_length: float
    n_replications: int
    backend: str

    def max_abs_error(self) -> float:
        """Worst MC-vs-closed-form gap across both curves."""
        return float(
            max(
                np.abs(self.memoryless_mc - self.memoryless_closed).max(),
                np.abs(self.model_policy_mc - self.model_policy_closed).max(),
            )
        )


def run_monte_carlo(
    *,
    job_length: float = 6.0,
    num: int = 25,
    n_replications: int = 2000,
    seed: int = 0,
    backend: str = "vectorized",
) -> Fig5MonteCarloResult:
    """Validate the Fig. 5 closed forms by simulated job placements.

    The *decision* stays analytic (that is the policy under study); the
    resulting failure probability is estimated by running each start age
    as a batch of uncheckpointed restart-until-done jobs through
    :func:`repro.sim.backend.run_replications`, so the sweep runs on
    either backend with identical seeded outcomes.
    """
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    base = MemorylessSchedulingPolicy(dist)
    ages = np.linspace(0.0, dist.t_max, num)
    streams = RandomStreams(seed)
    ours_mc = np.empty(num)
    base_mc = np.empty(num)
    ours_cf = np.empty(num)
    base_cf = np.empty(num)
    for i, s in enumerate(ages):
        age = float(s)
        eff = (
            age
            if ours.decide(job_length, age) is SchedulingDecision.REUSE
            else 0.0
        )
        for label, start, mc in (
            ("model", eff, ours_mc),
            ("memoryless", age, base_mc),
        ):
            out = run_replications(
                dist,
                [job_length],
                delta=0.0,
                start_age=start,
                n_replications=n_replications,
                seed=streams.spawn(f"fig5-{label}", i),
                backend=backend,
            )
            mc[i] = out.failure_fraction
        ours_cf[i] = ours.failure_probability(job_length, age)
        base_cf[i] = base.failure_probability(job_length, age)
    return Fig5MonteCarloResult(
        start_ages=ages,
        memoryless_mc=base_mc,
        memoryless_closed=base_cf,
        model_policy_mc=ours_mc,
        model_policy_closed=ours_cf,
        job_length=job_length,
        n_replications=n_replications,
        backend=backend,
    )


def report(result: Fig5Result) -> str:
    rows = [
        (float(s), result.memoryless[i], result.model_policy[i])
        for i, s in enumerate(result.start_ages)
    ]
    table = format_table(
        ["start age (h)", "memoryless P(fail)", "our policy P(fail)"],
        rows,
        floatfmt=".3f",
        title=f"Fig. 5 — {result.job_length:.0f} h job failure probability vs start age",
    )
    return (
        table
        + f"\npolicy switches to fresh VMs past age {result.critical_age:.2f} h; "
        + f"flat level F({result.job_length:.0f}) = {result.fresh_vm_level:.3f} (paper: ~0.4)"
    )


def report_monte_carlo(result: Fig5MonteCarloResult) -> str:
    rows = [
        (
            float(s),
            result.memoryless_mc[i],
            result.memoryless_closed[i],
            result.model_policy_mc[i],
            result.model_policy_closed[i],
        )
        for i, s in enumerate(result.start_ages)
    ]
    table = format_table(
        [
            "start age (h)",
            "memoryless MC",
            "memoryless closed",
            "our policy MC",
            "our policy closed",
        ],
        rows,
        floatfmt=".3f",
        title=(
            f"Fig. 5 (MC) — {result.job_length:.0f} h job, "
            f"{result.n_replications} replications per age, "
            f"{result.backend} backend"
        ),
    )
    return table + f"\nmax |MC - closed form|: {result.max_abs_error():.3f}"


"""Fig. 5 — effect of job start time on failure probability (6 h job).

The memoryless baseline always reuses the running VM, so a 6-hour job
started after hour 18 *cannot* finish before the 24 h deadline — its
failure probability saturates at 1.  The model policy detects (via
Eq. 8) that a fresh VM is cheaper past the critical age and pins the
failure probability at the fresh-VM level ``F(6) ~ 0.4``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import reference_distribution
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
)
from repro.utils.tables import format_table

__all__ = ["Fig5Result", "run", "report"]


@dataclass(frozen=True)
class Fig5Result:
    """Failure probability vs start age under both policies."""

    start_ages: np.ndarray
    memoryless: np.ndarray
    model_policy: np.ndarray
    job_length: float
    critical_age: float
    fresh_vm_level: float


def run(*, job_length: float = 6.0, num: int = 49) -> Fig5Result:
    dist = reference_distribution()
    ours = ModelReusePolicy(dist)
    base = MemorylessSchedulingPolicy(dist)
    ages = np.linspace(0.0, dist.t_max, num)
    ours_p = np.array([ours.failure_probability(job_length, float(s)) for s in ages])
    base_p = np.array([base.failure_probability(job_length, float(s)) for s in ages])
    return Fig5Result(
        start_ages=ages,
        memoryless=base_p,
        model_policy=ours_p,
        job_length=job_length,
        critical_age=ours.critical_age(job_length),
        fresh_vm_level=float(dist.cdf(job_length)),
    )


def report(result: Fig5Result) -> str:
    rows = [
        (float(s), result.memoryless[i], result.model_policy[i])
        for i, s in enumerate(result.start_ages)
    ]
    table = format_table(
        ["start age (h)", "memoryless P(fail)", "our policy P(fail)"],
        rows,
        floatfmt=".3f",
        title=f"Fig. 5 — {result.job_length:.0f} h job failure probability vs start age",
    )
    return (
        table
        + f"\npolicy switches to fresh VMs past age {result.critical_age:.2f} h; "
        + f"flat level F({result.job_length:.0f}) = {result.fresh_vm_level:.3f} (paper: ~0.4)"
    )


if __name__ == "__main__":  # pragma: no cover
    print(report(run()))

"""Fig. 9 regret — paper policies scored against the hindsight optimum.

Fig. 9 reports what the service *costs*; this companion asks how much
of that cost is forced by the draws versus chosen by the policy.  Each
cell replays one paper policy on one application bag with a
:class:`~repro.sim.backend.DrawCapture` attached, hands the exact
consumed lifetime multiset of every replication to
:func:`repro.baselines.hindsight_lower_bound`, and reports the policy's
worker VM-hours as a percentage of the hindsight-optimal bound — by
construction at or above 100% on every single replication (the regret
test tier pins this; a cell below 100% would falsify either the
simulator's billing or the bound's proof).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import RegretTable, regret_from_outcomes
from repro.policies.youngdaly import young_daly_interval
from repro.sim.backend import DrawCapture, run_service_replications
from repro.sim.service_vectorized import ServiceBatchConfig
from repro.traces.catalog import default_catalog
from repro.utils.tables import format_table

__all__ = [
    "APPLICATIONS",
    "POLICIES",
    "RegretCell",
    "Fig9RegretResult",
    "run",
    "report",
]

#: Fig. 9 application bags, scaled down to keep the per-replication
#: oracle pairing cheap: (name, clean runtime hours, gang width, jobs).
APPLICATIONS = (
    ("nanoconfinement", 14.0 / 60.0, 4, 12),
    ("shapes", 9.0 / 60.0, 4, 12),
    ("lulesh", 12.5 / 60.0, 8, 8),
)


def _policy_grid(dist, checkpoint_cost: float):
    """The paper's policy ladder as service-kernel configurations."""
    tau = young_daly_interval(max(checkpoint_cost, 1e-6), dist.mean())
    base = dict(
        provision_latency=0.0,
        run_master=False,
        checkpoint_cost=checkpoint_cost,
    )
    return (
        ("memoryless", dict(base, use_reuse_policy=False)),
        ("model-reuse", dict(base, use_reuse_policy=True)),
        (
            "reuse+yd-interval",
            dict(base, use_reuse_policy=True, checkpoint_interval=tau),
        ),
        ("reuse+dp-ckpt", dict(base, use_reuse_policy=True, checkpoint="dp")),
    )


#: Policy names, in ladder order (configs are law-dependent).
POLICIES = ("memoryless", "model-reuse", "reuse+yd-interval", "reuse+dp-ckpt")


@dataclass(frozen=True)
class RegretCell:
    """One (application, policy) cell of the regret table."""

    application: str
    policy: str
    table: RegretTable
    mean_pct: float
    min_pct: float
    max_pct: float
    min_regret_hours: float
    n_completed: int


@dataclass(frozen=True)
class Fig9RegretResult:
    """Every cell plus the sweep's shape."""

    cells: tuple[RegretCell, ...]
    n_replications: int
    backend: str

    @property
    def all_dominated(self) -> bool:
        """True when every completed replication sits at >= 100%."""
        return all(c.min_regret_hours >= -1e-9 for c in self.cells)


def run(
    *,
    vm_type: str = "n1-highcpu-16",
    zone: str = "us-east1-b",
    max_vms: int = 16,
    checkpoint_cost: float = 0.05,
    n_replications: int = 100,
    seed: int = 7,
    backend: str = "vectorized",
) -> Fig9RegretResult:
    """Score the policy ladder against the hindsight oracle per cell."""
    dist = default_catalog().distribution(vm_type, zone)
    cells = []
    for a, (name, hours, width, n_jobs) in enumerate(APPLICATIONS):
        bag = [(hours, width)] * n_jobs
        for p, (policy, overrides) in enumerate(
            _policy_grid(dist, checkpoint_cost)
        ):
            config = ServiceBatchConfig(max_vms=max_vms, **overrides)
            capture = DrawCapture()
            outcomes = run_service_replications(
                dist,
                bag,
                config=config,
                n_replications=n_replications,
                seed=seed + 31 * a + p,
                backend=backend,
                capture=capture,
            )
            table = regret_from_outcomes(
                outcomes, capture, dist, bag, checkpoint_cost
            )
            done = table.completed
            pct = table.pct_of_oracle[done]
            cells.append(
                RegretCell(
                    application=name,
                    policy=policy,
                    table=table,
                    mean_pct=float(pct.mean()) if pct.size else float("nan"),
                    min_pct=float(pct.min()) if pct.size else float("nan"),
                    max_pct=float(pct.max()) if pct.size else float("nan"),
                    min_regret_hours=(
                        float(table.regret[done].min()) if done.any() else 0.0
                    ),
                    n_completed=int(done.sum()),
                )
            )
    return Fig9RegretResult(
        cells=tuple(cells),
        n_replications=n_replications,
        backend=backend,
    )


def report(result: Fig9RegretResult) -> str:
    rows = [
        (
            c.application,
            c.policy,
            c.mean_pct,
            c.min_pct,
            c.max_pct,
            f"{c.n_completed}/{result.n_replications}",
        )
        for c in result.cells
    ]
    table = format_table(
        [
            "application",
            "policy",
            "mean % of oracle",
            "min %",
            "max %",
            "completed",
        ],
        rows,
        floatfmt=".1f",
        title=(
            f"Fig. 9 regret (n={result.n_replications}, {result.backend} "
            "backend) — worker VM-hours as % of hindsight-optimal"
        ),
    )
    verdict = (
        "oracle dominance holds: every completed replication >= 100%"
        if result.all_dominated
        else "ORACLE DOMINANCE VIOLATED — some replication beat the bound"
    )
    return table + "\n" + verdict


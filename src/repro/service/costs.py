"""Cost accounting (the Fig. 9a comparison).

Preemptible cost comes from the simulator's billing; the on-demand
baseline is the counterfactual the paper compares against: the same
work executed on never-preempted on-demand VMs at list price (no wasted
work, no checkpoint overhead — the paper's conventional deployment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.api import BagRequest
from repro.traces.catalog import GroundTruthCatalog, default_catalog
from repro.utils.validation import check_nonnegative

__all__ = ["CostModel", "on_demand_baseline_cost"]


@dataclass(frozen=True)
class CostModel:
    """Price lookups over a catalog (one place to swap price sheets)."""

    catalog: GroundTruthCatalog

    def preemptible_rate(self, vm_type: str) -> float:
        return self.catalog.spec(vm_type).preemptible_price

    def on_demand_rate(self, vm_type: str) -> float:
        return self.catalog.spec(vm_type).on_demand_price

    def discount(self, vm_type: str) -> float:
        """On-demand / preemptible ratio (~4.7x on the 2019 sheet)."""
        return self.catalog.spec(vm_type).discount


def on_demand_baseline_cost(
    bag: BagRequest,
    vm_type: str,
    *,
    catalog: GroundTruthCatalog | None = None,
    master_hours: float = 0.0,
    master_rate: float = 0.0,
) -> float:
    """Cost of running ``bag`` on conventional on-demand VMs.

    Ideal execution: every job runs exactly once, each of its ``width``
    VMs billed for the job's duration at the on-demand rate.
    """
    catalog = catalog or default_catalog()
    rate = catalog.spec(vm_type).on_demand_price
    check_nonnegative("master_hours", master_hours)
    check_nonnegative("master_rate", master_rate)
    return bag.total_work_hours * rate + master_hours * master_rate

"""The bag-of-jobs abstraction (paper Section 5).

Scientific sweeps submit one application over many parameter points;
run times within a bag vary little.  The controller uses completions of
early bag members to estimate the run time of later ones — which feeds
the reuse policy (needs job length ``T``) and the checkpoint planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.service.api import BagRequest

__all__ = ["BagOfJobs"]


@dataclass
class BagOfJobs:
    """Controller-side state of one bag: estimates and bookkeeping.

    The run-time estimate starts at the user-declared ``work_hours`` of
    the first job and converges to the trailing mean of observed
    completions (uninterrupted run times, not makespans).
    """

    bag_id: int
    request: BagRequest
    observed_runtimes: list[float] = field(default_factory=list)
    window: int = 16

    def record_completion(self, uninterrupted_hours: float) -> None:
        """Record the clean run time of a finished bag member."""
        if uninterrupted_hours <= 0:
            raise ValueError("uninterrupted_hours must be positive")
        self.observed_runtimes.append(float(uninterrupted_hours))

    def estimated_runtime(self) -> float:
        """Best current estimate of a member job's run time (hours).

        The trailing mean is accumulated with a plain sequential sum in
        completion order: the estimate feeds Eq. 8 scheduling decisions,
        and the batched service kernel
        (:mod:`repro.sim.service_vectorized`) reproduces the identical
        float operations so both backends see bit-equal estimates.
        """
        if self.observed_runtimes:
            tail = self.observed_runtimes[-self.window :]
            total = 0.0
            for value in tail:
                total += value
            return total / len(tail)
        return float(self.request.jobs[0].work_hours)

    def runtime_cv(self) -> float:
        """Coefficient of variation of observed run times (0 if < 2 obs).

        The paper's homogeneity assumption can be monitored with this:
        a large CV means the bag abstraction's estimates are unreliable.
        """
        if len(self.observed_runtimes) < 2:
            return 0.0
        arr = np.asarray(self.observed_runtimes, dtype=float)
        mean = float(arr.mean())
        if mean == 0.0:
            return 0.0
        return float(arr.std(ddof=1) / mean)

"""In-memory metadata store (the controller's "local database").

The paper's controller keeps the job queue and metadata in a local
database; an indexed in-memory store keeps the reproduction dependency
free while preserving the query surface (by job, by bag, by state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.api import BagStatus, JobStatus
from repro.sim.cluster import JobState, SimJob

__all__ = ["MetadataStore"]


@dataclass
class _BagRecord:
    bag_id: int
    name: str
    job_ids: list[int] = field(default_factory=list)


class MetadataStore:
    """Job and bag registry with status projection."""

    def __init__(self) -> None:
        self._jobs: dict[int, SimJob] = {}
        self._names: dict[int, str] = {}
        self._bags: dict[int, _BagRecord] = {}
        self._next_job_id = 0
        self._next_bag_id = 0

    # -- registration ---------------------------------------------------
    def new_job_id(self) -> int:
        jid = self._next_job_id
        self._next_job_id += 1
        return jid

    def register_job(self, job: SimJob, name: str = "") -> None:
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        self._jobs[job.job_id] = job
        self._names[job.job_id] = name
        if job.bag_id is not None:
            self._bags[job.bag_id].job_ids.append(job.job_id)

    def new_bag(self, name: str = "") -> int:
        bid = self._next_bag_id
        self._next_bag_id += 1
        self._bags[bid] = _BagRecord(bag_id=bid, name=name)
        return bid

    # -- queries ----------------------------------------------------------
    def job(self, job_id: int) -> SimJob:
        return self._jobs[job_id]

    def jobs(self) -> list[SimJob]:
        return list(self._jobs.values())

    def jobs_in_bag(self, bag_id: int) -> list[SimJob]:
        return [self._jobs[j] for j in self._bags[bag_id].job_ids]

    def job_status(self, job_id: int) -> JobStatus:
        job = self._jobs[job_id]
        return JobStatus(
            job_id=job.job_id,
            name=self._names.get(job.job_id, ""),
            state=job.state.value,
            progress_hours=job.progress_hours,
            work_hours=job.work_hours,
            attempts=job.attempts,
            failures=job.failures,
            makespan_hours=job.makespan,
        )

    def bag_status(self, bag_id: int, *, include_jobs: bool = False) -> BagStatus:
        rec = self._bags[bag_id]
        jobs = [self._jobs[j] for j in rec.job_ids]
        return BagStatus(
            bag_id=bag_id,
            name=rec.name,
            n_jobs=len(jobs),
            n_completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
            n_failures=sum(j.failures for j in jobs),
            job_statuses=tuple(self.job_status(j.job_id) for j in jobs)
            if include_jobs
            else (),
        )

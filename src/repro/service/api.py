"""Request/response surface of the batch service.

The paper's controller exposes an HTTP API; transport is irrelevant to
the evaluation, so these dataclasses *are* the API: users construct
requests, the controller returns statuses.  A thin HTTP layer could wrap
them one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.utils.validation import check_positive

__all__ = ["JobRequest", "JobStatus", "BagRequest", "BagStatus"]


@dataclass(frozen=True)
class JobRequest:
    """A single batch job submission.

    Attributes
    ----------
    work_hours:
        Uninterrupted running time on the requested gang.
    width:
        Number of VMs the job occupies simultaneously.
    name:
        Free-form label (e.g. the parameter-point identifier).
    checkpointable:
        Whether the application supports checkpoint/restart (the paper's
        MD applications did not; LULESH-style ones do).
    queue_key:
        Optional scheduling priority (lower runs first, >= 0) for
        clusters in keyed-queue mode — the multi-tenant front end's
        inter-tenant policies ride on this.  Ignored under plain FIFO
        queueing.  Negative keys are reserved for the cluster's
        requeue-at-head handling of preempted jobs and are rejected.
    tenant:
        Optional owning-tenant index.  Drives the ``tenant_affinity``
        allocator's per-tenant pool ranking in heterogeneous fleets
        (see :mod:`repro.sim.placement`); ignored otherwise.
    """

    work_hours: float
    width: int = 1
    name: str = ""
    checkpointable: bool = True
    queue_key: float | None = None
    tenant: int | None = None

    def __post_init__(self) -> None:
        check_positive("work_hours", self.work_hours)
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.queue_key is not None and self.queue_key < 0:
            raise ValueError(
                f"queue_key must be >= 0 (negative keys are reserved for "
                f"requeued preempted jobs), got {self.queue_key}"
            )


@dataclass(frozen=True)
class BagRequest:
    """A bag of jobs: one application swept over a parameter space.

    Within a bag, "jobs show little variation in their running time"
    (Section 5); the controller exploits this by estimating run times of
    later jobs from earlier completions.
    """

    jobs: Sequence[JobRequest]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a bag must contain at least one job")

    @property
    def total_work_hours(self) -> float:
        return sum(j.work_hours * j.width for j in self.jobs)


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time view of a submitted job."""

    job_id: int
    name: str
    state: str
    progress_hours: float
    work_hours: float
    attempts: int
    failures: int
    makespan_hours: float | None


@dataclass(frozen=True)
class BagStatus:
    """Aggregate view of a bag."""

    bag_id: int
    name: str
    n_jobs: int
    n_completed: int
    n_failures: int
    job_statuses: tuple[JobStatus, ...] = field(default_factory=tuple)

    @property
    def done(self) -> bool:
        return self.n_completed == self.n_jobs

"""The Section 5 batch computing service.

A centralised controller (Fig. 3 of the paper) that manages a cluster of
preemptible VMs on the simulated cloud, applies the Section 4 policies
(model-driven VM reuse, DP checkpointing, hot spares), exposes a
submit/status API, accounts costs, and supports the bag-of-jobs
abstraction for scientific parameter sweeps.
"""

from repro.service.api import BagRequest, BagStatus, JobRequest, JobStatus
from repro.service.bag import BagOfJobs
from repro.service.controller import (
    BatchComputingService,
    ProvisioningLivelockError,
    ServiceConfig,
    ServiceReport,
)
from repro.service.costs import CostModel, on_demand_baseline_cost
from repro.service.database import MetadataStore
from repro.service.evaluate import (
    PolicyEvaluation,
    ServiceEvaluation,
    ServicePolicyEvaluator,
    TenantEvaluation,
    sweep_configurations,
)
from repro.service.metrics import ServiceMetrics

__all__ = [
    "BagRequest",
    "BagStatus",
    "JobRequest",
    "JobStatus",
    "BagOfJobs",
    "BatchComputingService",
    "ProvisioningLivelockError",
    "ServiceConfig",
    "ServiceReport",
    "TenantEvaluation",
    "CostModel",
    "on_demand_baseline_cost",
    "MetadataStore",
    "PolicyEvaluation",
    "ServiceEvaluation",
    "ServicePolicyEvaluator",
    "ServiceMetrics",
    "sweep_configurations",
]

"""Headless Monte-Carlo evaluation of service policy configurations.

The event-driven :class:`~repro.service.controller.BatchComputingService`
is the semantics oracle for the Section 5 system, but scoring a policy
configuration with it means replaying the whole queue/cluster event loop
once per seed — far too slow for production replication counts.  This
module evaluates the *policy content* of a configuration — the Eq. 8
VM-reuse decision, the hot-spare retention window, and the DP checkpoint
plan — over N independent job placements through the shared
backend-selection API (:func:`repro.sim.backend.run_replications`), so a
(reuse x hot-spare x checkpoint) grid sweeps at vectorized speed with
the event backend available as a cross-check.

Replication model (one job placement per replication)
-----------------------------------------------------
1. A candidate worker VM went idle and a job arrives ``idle_gap`` hours
   later; the VM's age at arrival is sampled uniformly over the
   lifetime law's support (the Fig. 6 "jobs arrive at arbitrary points
   in a VM's life" assumption).
2. **Hot spare** — the candidate is still around only if the idle gap is
   within the configuration's retention window
   (``ServiceConfig.hot_spare_hours``, the controller's ``_node_idle``
   rule); otherwise the job boots a fresh VM.
3. **Reuse decision** — surviving candidates pass through the batch
   Eq. 8 decision (:meth:`ModelReusePolicy.decide_batch` with the
   controller's survival-conditioned criterion, or always-reuse when
   ``use_reuse_policy`` is off).  Rejected candidates are replaced by
   fresh VMs, exactly like the controller's ``_select_nodes``.
4. **Execution** — the job runs its checkpoint plan (the DP plan for
   the job at age 0 when ``use_checkpointing`` is on, else one
   uncheckpointed segment) with its first VM's lifetime conditioned on
   the chosen start age, restarting until done;
   ``ServiceConfig.provision_latency`` is charged per preemption.

Determinism: the arrival draws (ages, idle gaps) are consumed from the
generator *before* the round protocol starts, and both backends consume
the round protocol identically, so one seed gives identical
per-replication outcomes on ``"event"`` and ``"vectorized"`` (within
1e-9 hours; pinned by ``tests/test_service_evaluate.py``).  Evaluating
several configurations with the same seed pairs them through common
random numbers: identical arrival ages and identical round-0 uniforms.

Usage::

    from repro.service import ServiceConfig
    from repro.service.evaluate import ServicePolicyEvaluator
    from repro.traces import default_catalog

    dist = default_catalog().distribution("n1-highcpu-16", "us-east1-b")
    ev = ServicePolicyEvaluator(dist, ServiceConfig(use_reuse_policy=True))
    result = ev.evaluate(6.0, n_replications=10_000, seed=0)
    print(result.failure_fraction, result.expected_failure_fraction)
    print(result.mean_makespan, result.reuse_fraction)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.policies.checkpointing import CheckpointPolicy
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    job_failure_probability_batch,
)
from repro.service.controller import ServiceConfig
from repro.sim.backend import (
    ClusterOutcomes,
    ReplicationOutcomes,
    ServiceOutcomes,
    TenantOutcomes,
    run_cluster_replications,
    run_replications,
    run_service_replications,
    run_tenant_replications,
)
from repro.sim.cluster_vectorized import ClusterConfig, GangJob
from repro.sim.service_vectorized import ServiceBatchConfig
from repro.sim.tenancy_vectorized import TenancyConfig
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "PolicyEvaluation",
    "ClusterEvaluation",
    "ServiceEvaluation",
    "TenantEvaluation",
    "ServicePolicyEvaluator",
    "sweep_configurations",
]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Scored outcome of one (configuration, job length) evaluation.

    Attributes
    ----------
    outcomes:
        Per-replication makespan / wasted hours / restarts from
        :func:`repro.sim.backend.run_replications`.
    vm_ages:
        Sampled candidate VM age at job arrival, shape ``(n,)``.
    idle_gaps:
        Sampled hours the candidate sat idle before the job arrived.
    spare_available:
        Candidate retained by the hot-spare window at arrival.
    reused:
        Job ran on the aged candidate (available *and* chosen by the
        reuse decision); fresh VM otherwise.
    start_ages:
        Age the job's first VM actually had (candidate age where
        ``reused``, else 0).
    expected_failure_fraction:
        Closed-form ``P(>= 1 preemption)`` averaged over the sampled
        start ages — the analytic curve the Monte-Carlo
        ``failure_fraction`` estimates.
    """

    config: ServiceConfig
    job_length: float
    segments: tuple[float, ...]
    outcomes: ReplicationOutcomes
    vm_ages: np.ndarray
    idle_gaps: np.ndarray
    spare_available: np.ndarray
    reused: np.ndarray
    start_ages: np.ndarray
    expected_failure_fraction: float
    backend: str

    @property
    def n_replications(self) -> int:
        return self.outcomes.n_replications

    @property
    def failure_fraction(self) -> float:
        """Monte-Carlo ``P(job preempted at least once)``."""
        return self.outcomes.failure_fraction

    @property
    def mean_makespan(self) -> float:
        return self.outcomes.mean_makespan

    @property
    def mean_wasted_hours(self) -> float:
        return self.outcomes.mean_wasted_hours

    @property
    def reuse_fraction(self) -> float:
        """Fraction of jobs placed on an aged (hot-spare) VM."""
        return float(np.mean(self.reused))

    @property
    def spare_hit_fraction(self) -> float:
        """Fraction of arrivals that found the candidate still retained."""
        return float(np.mean(self.spare_available))

    def mean_cost_per_job(self, price_per_hour: float) -> float:
        """Mean billed VM-hours per job times the hourly price."""
        check_nonnegative("price_per_hour", price_per_hour)
        return self.mean_makespan * price_per_hour

    def cost_reduction_factor(
        self, preemptible_rate: float, on_demand_rate: float
    ) -> float:
        """Ideal on-demand cost over the configuration's expected cost.

        The Fig. 9a metric in evaluator form: on-demand runs the job
        once at list price; the preemptible fleet pays the discounted
        rate for the whole makespan (wasted work included).
        """
        check_positive("preemptible_rate", preemptible_rate)
        check_nonnegative("on_demand_rate", on_demand_rate)
        spend = self.mean_makespan * preemptible_rate
        return (self.job_length * on_demand_rate) / spend if spend > 0 else float("inf")

    def summary(self) -> str:
        """One-line human summary (policy flags -> headline numbers)."""
        flags = (
            f"reuse={'on' if self.config.use_reuse_policy else 'off'} "
            f"ckpt={'on' if self.config.use_checkpointing else 'off'} "
            f"spare={self.config.hot_spare_hours:g}h"
        )
        return (
            f"[{flags}] n={self.n_replications} ({self.backend}): "
            f"P(fail) {self.failure_fraction:.3f} "
            f"(closed form {self.expected_failure_fraction:.3f}), "
            f"E[makespan] {self.mean_makespan:.3f} h, "
            f"reused {100 * self.reuse_fraction:.0f}% of placements"
        )


@dataclass(frozen=True)
class ClusterEvaluation:
    """Scored outcome of one cluster-scale (bag + configuration) sweep.

    Where :class:`PolicyEvaluation` scores a single job placement per
    replication, this scores the *whole service scenario*: the bag's
    gang jobs competing for the configuration's VM pool, per
    replication, through
    :func:`repro.sim.backend.run_cluster_replications`.
    """

    config: ServiceConfig
    cluster_config: ClusterConfig
    jobs: tuple[GangJob, ...]
    outcomes: ClusterOutcomes
    backend: str

    @property
    def n_replications(self) -> int:
        return self.outcomes.n_replications

    @property
    def mean_makespan(self) -> float:
        return self.outcomes.mean_makespan

    @property
    def mean_wasted_hours(self) -> float:
        return self.outcomes.mean_wasted_hours

    @property
    def failure_fraction(self) -> float:
        """Fraction of cluster runs that saw at least one gang abort."""
        return self.outcomes.failure_fraction

    @property
    def total_work_hours(self) -> float:
        """Ideal VM-hours of the bag (work x gang width, summed)."""
        return float(sum(j.work_hours * j.width for j in self.jobs))

    def mean_cost_per_job(self, price_per_hour: float) -> float:
        """Mean billed cluster-run cost per bag member."""
        return self.outcomes.mean_cost(price_per_hour) / len(self.jobs)

    def cost_reduction_factor(
        self, preemptible_rate: float, on_demand_rate: float
    ) -> float:
        """Ideal on-demand bag cost over the configuration's mean cost."""
        check_positive("preemptible_rate", preemptible_rate)
        check_nonnegative("on_demand_rate", on_demand_rate)
        spend = self.outcomes.mean_cost(preemptible_rate)
        baseline = self.total_work_hours * on_demand_rate
        return baseline / spend if spend > 0 else float("inf")

    def summary(self) -> str:
        flags = (
            f"reuse={'on' if self.config.use_reuse_policy else 'off'} "
            f"ckpt={'dp' if self.cluster_config.checkpoint == 'dp' else 'on' if self.cluster_config.checkpoint_interval else 'off'} "
            f"spare={'on' if self.cluster_config.hot_spare else 'off'} "
            f"pool={self.cluster_config.pool_size}"
        )
        return (
            f"[{flags}] {len(self.jobs)} jobs x n={self.n_replications} "
            f"({self.backend}): E[makespan] {self.mean_makespan:.3f} h, "
            f"E[waste] {self.mean_wasted_hours:.3f} h, "
            f"P(any abort) {self.failure_fraction:.3f}"
        )


@dataclass(frozen=True)
class ServiceEvaluation:
    """Scored outcome of one full-service (bag + configuration) sweep.

    The highest-fidelity evaluation mode: each replication is one
    complete :class:`BatchComputingService` run — cold start, lazy
    deficit provisioning under ``provision_latency``, Eq. 8 filtering
    on the evolving bag runtime estimate, hot-spare retention timers,
    master billing — through
    :func:`repro.sim.backend.run_service_replications`, so the
    ``ServiceReport`` quantities (cost-reduction factor, on-demand
    baseline, preemptions, makespan) come with Monte-Carlo error bars.
    """

    config: ServiceConfig
    batch_config: ServiceBatchConfig
    jobs: tuple[GangJob, ...]
    outcomes: ServiceOutcomes
    backend: str

    @property
    def n_replications(self) -> int:
        return self.outcomes.n_replications

    @property
    def mean_makespan(self) -> float:
        return self.outcomes.mean_makespan

    @property
    def mean_wasted_hours(self) -> float:
        return self.outcomes.mean_wasted_hours

    @property
    def failure_fraction(self) -> float:
        """Fraction of service runs that saw at least one gang abort."""
        return self.outcomes.failure_fraction

    @property
    def total_work_hours(self) -> float:
        """Ideal VM-hours of the bag (work x gang width, summed)."""
        return self.outcomes.total_work_hours

    def mean_cost_per_job(
        self, preemptible_rate: float, master_rate: float = 0.0
    ) -> float:
        """Mean billed service-run cost per bag member."""
        return self.outcomes.mean_cost(preemptible_rate, master_rate) / len(self.jobs)

    def cost_reduction_factor(
        self,
        preemptible_rate: float,
        on_demand_rate: float,
        master_rate: float = 0.0,
    ) -> float:
        """Mean Fig. 9a metric: on-demand baseline over mean billed cost."""
        check_positive("preemptible_rate", preemptible_rate)
        check_nonnegative("on_demand_rate", on_demand_rate)
        spend = self.outcomes.mean_cost(preemptible_rate, master_rate)
        baseline = self.outcomes.on_demand_baseline(on_demand_rate)
        return baseline / spend if spend > 0 else float("inf")

    def summary(self) -> str:
        flags = (
            f"reuse={'on' if self.batch_config.use_reuse_policy else 'off'} "
            f"ckpt={'dp' if self.batch_config.checkpoint == 'dp' else 'on' if self.batch_config.checkpoint_interval else 'off'} "
            f"lat={self.batch_config.provision_latency:g}h "
            f"fleet={self.batch_config.max_vms}"
        )
        return (
            f"[{flags}] {len(self.jobs)} jobs x n={self.n_replications} "
            f"({self.backend}): E[makespan] {self.mean_makespan:.3f} h, "
            f"E[waste] {self.mean_wasted_hours:.3f} h, "
            f"P(any abort) {self.failure_fraction:.3f}"
        )


@dataclass(frozen=True)
class TenantEvaluation:
    """Scored outcome of one multi-tenant traffic sweep.

    The traffic-serving evaluation mode: each replication replays the
    whole traffic trace through the full controller semantics plus the
    tenancy layer (inter-tenant scheduling, admission, elastic fleet
    sizing) via :func:`repro.sim.backend.run_tenant_replications`; see
    :func:`repro.traffic.metrics.tenant_report` for the per-tenant SLO
    aggregation of :attr:`outcomes`.
    """

    config: ServiceConfig
    tenancy_config: TenancyConfig
    outcomes: TenantOutcomes
    backend: str

    @property
    def n_replications(self) -> int:
        return self.outcomes.n_replications

    @property
    def mean_makespan(self) -> float:
        return self.outcomes.mean_makespan

    @property
    def mean_wait_hours(self) -> float:
        """Mean queueing delay over all admitted jobs and replications."""
        return self.outcomes.mean_wait_hours

    @property
    def admitted_fraction(self) -> float:
        return float(self.outcomes.admitted_fraction.mean())

    def cost_reduction_factor(
        self,
        preemptible_rate: float,
        on_demand_rate: float,
        master_rate: float = 0.0,
    ) -> float:
        """Mean Fig. 9a metric over the admitted workload."""
        crf = self.outcomes.cost_reduction_factor(
            preemptible_rate, on_demand_rate, master_rate
        )
        return float(crf.mean()) if crf.size else float("inf")

    def summary(self) -> str:
        cfg = self.tenancy_config
        flags = (
            f"sched={cfg.scheduling} "
            f"cap={'-' if cfg.admission_cap is None else cfg.admission_cap} "
            f"elastic={'-' if cfg.elastic_vms_per_bag is None else cfg.elastic_vms_per_bag} "
            f"fleet={cfg.max_vms}"
        )
        return (
            f"[{flags}] {self.outcomes.n_jobs} jobs x "
            f"{self.outcomes.n_tenants} tenants x n={self.n_replications} "
            f"({self.backend}): E[wait] {self.mean_wait_hours:.3f} h, "
            f"admitted {100 * self.admitted_fraction:.0f}%"
        )


class ServicePolicyEvaluator:
    """Monte-Carlo scorer for one (lifetime law, service configuration).

    Instantiate directly, or from a live controller via
    :meth:`repro.service.controller.BatchComputingService.policy_evaluator`
    to score exactly the policies the controller is running.

    Parameters
    ----------
    dist:
        Lifetime law of the worker VM type.
    config:
        Service knobs to score; defaults to ``ServiceConfig()``.  Only
        the policy-content fields are read (``use_reuse_policy``,
        ``use_checkpointing``, ``checkpoint_cost``, ``checkpoint_step``,
        ``hot_spare_hours``, ``provision_latency``).
    """

    def __init__(self, dist: LifetimeDistribution, config: ServiceConfig | None = None):
        self.dist = dist
        self.config = config or ServiceConfig()
        # Same criterion choice as BatchComputingService: the literal
        # Eq. 8 form churns fresh VMs for short jobs (see
        # ModelReusePolicy.criterion).
        self.policy: ModelReusePolicy | MemorylessSchedulingPolicy
        if self.config.use_reuse_policy:
            self.policy = ModelReusePolicy(dist, criterion="conditional")
        else:
            self.policy = MemorylessSchedulingPolicy(dist)
        self._ckpt: CheckpointPolicy | None = None
        if self.config.use_checkpointing:
            self._ckpt = CheckpointPolicy(
                dist,
                step=self.config.checkpoint_step,
                delta=self.config.checkpoint_cost,
            )

    def plan_segments(self, job_length: float) -> tuple[float, ...]:
        """Checkpoint segments the configuration runs the job with.

        The DP plan for the job on a fresh VM when checkpointing is on
        (the plan shipped with the job; per-age re-planning is the
        controller's online refinement), one uncheckpointed segment
        otherwise.
        """
        J = check_positive("job_length", job_length)
        if self._ckpt is None or J < self.config.checkpoint_step:
            return (J,)
        return self._ckpt.plan(J, 0.0).segments

    def evaluate(
        self,
        job_length: float,
        *,
        n_replications: int = 1000,
        seed: int | np.random.Generator | None = 0,
        backend: str = "vectorized",
        max_idle_hours: float | None = None,
        max_rounds: int = 10_000,
    ) -> PolicyEvaluation:
        """Score the configuration over ``n_replications`` placements.

        ``max_idle_hours`` bounds the sampled idle gap before each
        arrival (default: twice the hot-spare window, so roughly half
        the arrivals still find the candidate VM).  See the module
        docstring for the replication model and determinism contract.
        """
        J = check_positive("job_length", job_length)
        n = int(n_replications)
        if n < 0:
            raise ValueError(f"n_replications must be >= 0, got {n}")
        hold = self.config.hot_spare_hours
        max_idle = 2.0 * hold if max_idle_hours is None else max_idle_hours
        check_nonnegative("max_idle_hours", max_idle)
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        # Arrival draws: two full-width rows, consumed before the round
        # protocol so both backends see the same generator state.
        vm_ages = rng.random(n) * self.dist.t_max
        idle_gaps = rng.random(n) * max_idle
        spare_available = idle_gaps <= hold
        decisions = self.policy.decide_batch(J, vm_ages)
        reused = spare_available & decisions
        start_ages = np.where(reused, vm_ages, 0.0)
        segments = self.plan_segments(J)
        outcomes = run_replications(
            self.dist,
            segments,
            delta=self.config.checkpoint_cost,
            start_age=start_ages,
            restart_latency=self.config.provision_latency,
            n_replications=n,
            seed=rng,
            backend=backend,
            max_rounds=max_rounds,
        )
        # P(>= 1 preemption) = P(first VM dies inside the plan's total
        # walltime), closed form at each sampled start age.
        walltime = float(sum(segments)) + self.config.checkpoint_cost * (
            len(segments) - 1
        )
        expected = (
            float(
                np.mean(
                    job_failure_probability_batch(self.dist, walltime, start_ages)
                )
            )
            if n
            else 0.0
        )
        return PolicyEvaluation(
            config=self.config,
            job_length=J,
            segments=tuple(segments),
            outcomes=outcomes,
            vm_ages=vm_ages,
            idle_gaps=idle_gaps,
            spare_available=spare_available,
            reused=reused,
            start_ages=start_ages,
            expected_failure_fraction=expected,
            backend=backend,
        )


    @staticmethod
    def _as_bag(jobs) -> tuple[GangJob, ...]:
        """Normalise a jobs argument (``GangJob`` s or tuples) to a bag."""
        return tuple(j if isinstance(j, GangJob) else GangJob(*j) for j in jobs)

    def _run_sweep(
        self,
        runner,
        payload,
        config,
        *,
        n_replications,
        seed,
        backend,
        max_events,
        **extra,
    ):
        """The one backend/seed plumbing site for every sweep front end.

        ``runner`` is one of the :mod:`repro.sim.backend` replication
        entry points; ``payload`` its scenario argument (a bag or a
        traffic trace).  Keeping the forwarding here means the cluster,
        service, and tenancy front ends cannot drift apart in how they
        thread the evaluator's lifetime law and the caller's
        replication/seed/backend knobs.  ``extra`` carries
        runner-specific knobs (the tenancy runner's ``chunk_size``).
        """
        return runner(
            self.dist,
            payload,
            config=config,
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            max_events=max_events,
            **extra,
        )

    def cluster_config(
        self,
        *,
        pool_size: int | None = None,
        hot_spare: bool = True,
        checkpoint_interval: float | None = None,
    ) -> ClusterConfig:
        """Map the service configuration onto the cluster kernel's knobs.

        ``pool_size`` defaults to the service's ``max_vms``.  When
        checkpointing is on and no interval is given, the kernel runs
        the controller's own per-attempt DP plans via
        ``checkpoint="dp"`` (the batched plan walker), so the mapping
        needs no fixed-interval stand-in.
        """
        dp = checkpoint_interval is None and self.config.use_checkpointing
        return ClusterConfig(
            pool_size=pool_size or self.config.max_vms,
            use_reuse_policy=self.config.use_reuse_policy,
            reuse_criterion="conditional",
            hot_spare=hot_spare,
            checkpoint="dp" if dp else "interval",
            checkpoint_interval=checkpoint_interval,
            checkpoint_cost=self.config.checkpoint_cost,
            checkpoint_step=self.config.checkpoint_step,
        )

    def service_batch_config(
        self,
        *,
        checkpoint_interval: float | None = None,
    ) -> ServiceBatchConfig:
        """Map the service configuration onto the service kernel's knobs.

        The mapping is one-to-one (the kernel models the controller's
        own semantics), checkpointing included: when
        ``use_checkpointing`` is on and no fixed interval resolves, the
        kernel runs the controller's per-attempt DP plans via
        ``checkpoint="dp"`` — see
        :meth:`ServiceBatchConfig.from_service_config`.
        """
        return ServiceBatchConfig.from_service_config(
            self.config, checkpoint_interval=checkpoint_interval
        )

    def evaluate_service(
        self,
        jobs,
        *,
        n_replications: int = 256,
        seed: int | np.random.Generator | None = 0,
        backend: str = "vectorized",
        checkpoint_interval: float | None = None,
        max_events: int = 1_000_000,
    ) -> ServiceEvaluation:
        """Score the configuration over full end-to-end service runs.

        ``jobs`` is the bag — :class:`GangJob` entries or
        ``(work_hours, width)`` tuples.  Each replication replays the
        complete Fig. 3 controller loop (cold start, deficit
        provisioning with boot latency, bag-estimate Eq. 8 filtering,
        hot-spare retention, master billing, optional backfill) through
        the backend-selection API; the event path drives the real
        :class:`BatchComputingService` and is the oracle (same seed,
        identical outcomes within 1e-9).  This supersedes
        :meth:`evaluate_cluster` whenever controller effects —
        provisioning latency, master cost, estimation feedback — are
        part of the question.
        """
        bag = self._as_bag(jobs)
        batch_cfg = self.service_batch_config(checkpoint_interval=checkpoint_interval)
        outcomes = self._run_sweep(
            run_service_replications,
            bag,
            batch_cfg,
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            max_events=max_events,
        )
        return ServiceEvaluation(
            config=self.config,
            batch_config=batch_cfg,
            jobs=bag,
            outcomes=outcomes,
            backend=backend,
        )

    def evaluate_cluster(
        self,
        jobs,
        *,
        n_replications: int = 256,
        seed: int | np.random.Generator | None = 0,
        backend: str = "vectorized",
        pool_size: int | None = None,
        hot_spare: bool = True,
        checkpoint_interval: float | None = None,
        max_events: int = 1_000_000,
    ) -> ClusterEvaluation:
        """Score the configuration over whole-cluster bag replications.

        ``jobs`` is the bag — :class:`GangJob` entries or
        ``(work_hours, width)`` tuples.  Each replication simulates the
        full Section 5 scenario (FIFO gang queue, Eq. 8 reuse
        refreshes, hot-spare substitution, checkpoint restarts) through
        the backend-selection API, so a policy grid scores at vectorized
        speed with the event-driven :class:`ClusterManager` path as the
        oracle (same seed, identical outcomes within 1e-9).

        This scores a *pre-booted pool* (the cluster kernel's model);
        for the controller's own cold-start semantics — deficit
        provisioning, boot latency, master billing, bag-estimate
        feedback — use :meth:`evaluate_service`.
        """
        bag = self._as_bag(jobs)
        cluster_cfg = self.cluster_config(
            pool_size=pool_size,
            hot_spare=hot_spare,
            checkpoint_interval=checkpoint_interval,
        )
        outcomes = self._run_sweep(
            run_cluster_replications,
            bag,
            cluster_cfg,
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            max_events=max_events,
        )
        return ClusterEvaluation(
            config=self.config,
            cluster_config=cluster_cfg,
            jobs=bag,
            outcomes=outcomes,
            backend=backend,
        )

    def tenancy_config(
        self,
        *,
        scheduling: str = "fifo",
        tenant_weights=None,
        admission_cap: int | None = None,
        elastic_vms_per_bag: int | None = None,
        checkpoint_interval: float | None = None,
        estimate_window: int = 16,
    ) -> TenancyConfig:
        """Map the service configuration onto the tenancy kernel's knobs.

        The service-kernel subset follows
        :meth:`service_batch_config` (including the ``checkpoint="dp"``
        mapping when ``use_checkpointing`` is on with no fixed
        interval); the tenancy-specific knobs — scheduling policy, weights, admission
        cap, elastic sizing — are passed through.  ``backfill`` has no
        tenancy equivalent (inter-tenant policies own the queue order)
        and is rejected, exactly like the live
        :class:`~repro.traffic.multitenant.MultiTenantService`.
        """
        if self.config.backfill:
            raise ValueError(
                "backfill is incompatible with inter-tenant scheduling; "
                "pick a tenancy scheduling policy instead"
            )
        interval = (
            checkpoint_interval
            if checkpoint_interval is not None
            else self.config.checkpoint_interval
        )
        dp = interval is None and self.config.use_checkpointing
        return TenancyConfig(
            max_vms=self.config.max_vms,
            use_reuse_policy=self.config.use_reuse_policy,
            hot_spare_hours=self.config.hot_spare_hours,
            provision_latency=self.config.provision_latency,
            run_master=self.config.run_master,
            checkpoint="dp" if dp else "interval",
            checkpoint_interval=interval,
            checkpoint_cost=self.config.checkpoint_cost,
            checkpoint_step=self.config.checkpoint_step,
            estimate_window=estimate_window,
            max_attempts_per_job=self.config.max_attempts_per_job,
            livelock_threshold=self.config.livelock_threshold,
            scheduling=scheduling,
            tenant_weights=tenant_weights,
            admission_cap=admission_cap,
            elastic_vms_per_bag=elastic_vms_per_bag,
        )

    def evaluate_tenants(
        self,
        traffic,
        *,
        n_replications: int = 256,
        seed: int | np.random.Generator | None = 0,
        backend: str = "vectorized",
        scheduling: str = "fifo",
        tenant_weights=None,
        admission_cap: int | None = None,
        elastic_vms_per_bag: int | None = None,
        checkpoint_interval: float | None = None,
        estimate_window: int = 16,
        max_events: int = 1_000_000,
        chunk_size: int | None = None,
    ) -> TenantEvaluation:
        """Score the configuration over multi-tenant traffic runs.

        ``traffic`` is a sequence of
        :class:`~repro.sim.tenancy_vectorized.BagSubmission` s (or
        ``(tenant, time, jobs)`` triples), typically one
        :func:`repro.traffic.arrivals.sample_traffic` draw or an SWF
        import (:func:`repro.traces.swf.swf_traffic`).  Each
        replication serves the whole trace on a shared fleet under the
        chosen inter-tenant scheduling policy; the event path drives
        the real :class:`~repro.traffic.multitenant.MultiTenantService`
        and is the oracle (same seed, identical outcomes within 1e-9).
        ``chunk_size`` streams the batch in bounded-memory chunks (see
        :func:`repro.sim.backend.run_tenant_replications`) — set it for
        production-scale traces (tens of thousands of jobs).  This is
        the top of the evaluation-mode ladder: use it whenever the
        question involves *traffic* — contention across tenants,
        admission, fairness — rather than a single bag.
        """
        cfg = self.tenancy_config(
            scheduling=scheduling,
            tenant_weights=tenant_weights,
            admission_cap=admission_cap,
            elastic_vms_per_bag=elastic_vms_per_bag,
            checkpoint_interval=checkpoint_interval,
            estimate_window=estimate_window,
        )
        outcomes = self._run_sweep(
            run_tenant_replications,
            traffic,
            cfg,
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            max_events=max_events,
            chunk_size=chunk_size,
        )
        return TenantEvaluation(
            config=self.config,
            tenancy_config=cfg,
            outcomes=outcomes,
            backend=backend,
        )


def sweep_configurations(
    dist: LifetimeDistribution,
    configs: Sequence[ServiceConfig],
    job_length: float,
    *,
    n_replications: int = 1000,
    seed: int = 0,
    backend: str = "vectorized",
    max_idle_hours: float | None = None,
) -> list[PolicyEvaluation]:
    """Score several configurations with common random numbers.

    Every configuration is evaluated from a fresh generator with the
    same ``seed``, so all of them consume identical uniforms: identical
    arrival ages, identical idle-gap quantiles, and identical round-0
    lifetime draws — differences between entries are policy effects,
    not sampling noise (paired comparison).  Note the gap *hours* scale
    with each configuration's window (``2 * hot_spare_hours`` unless
    ``max_idle_hours`` pins them), so across different windows it is the
    gap quantiles, not the hours, that are paired.
    """
    return [
        ServicePolicyEvaluator(dist, cfg).evaluate(
            job_length,
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            max_idle_hours=max_idle_hours,
        )
        for cfg in configs
    ]

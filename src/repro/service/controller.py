"""The central batch-service controller (paper Fig. 3).

Responsibilities, mirroring Section 5:

* maintain a cluster of preemptible VMs on the (simulated) cloud, capped
  at ``max_vms``, plus a small on-demand master node (the Slurm head),
* accept bag-of-jobs submissions; estimate member run times from earlier
  completions (:class:`repro.service.bag.BagOfJobs`),
* apply the **model-driven VM-reuse policy** when placing jobs: a free
  VM is used only if the Eq. 8 expected makespan on it beats a fresh VM,
  otherwise it is released and a new VM launched,
* optionally plan **DP checkpoint schedules** per job attempt (jobs
  whose applications support checkpointing),
* keep idle *stable* VMs as **hot spares** for a bounded window,
* account costs and expose job/bag status queries.

The controller is deliberately event-driven: it only acts from cluster
callbacks (job completed/failed, node idle, queue stalled) — the same
callback architecture as the paper's Slurm-integrated service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.distributions.base import LifetimeDistribution
from repro.policies.checkpointing import CheckpointPolicy
from repro.policies.hotspare import HotSparePolicy
from repro.policies.scheduling import ModelReusePolicy, SchedulingDecision
from repro.service.api import BagRequest, BagStatus, JobRequest, JobStatus
from repro.service.bag import BagOfJobs
from repro.service.costs import on_demand_baseline_cost
from repro.service.database import MetadataStore
from repro.service.metrics import ServiceMetrics
from repro.sim.cloud import CloudProvider
from repro.sim.cluster import ClusterManager, JobState, SimJob
from repro.sim.engine import EventHandle, Simulator
from repro.sim.placement import PoolSpec, make_allocator, resolve_pools
from repro.sim.service_vectorized import ProvisioningLivelockError
from repro.sim.vm import SimVM
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "ServiceConfig",
    "ServiceReport",
    "BatchComputingService",
    "ProvisioningLivelockError",
]

#: Machine type of the shared Slurm master (2-CPU non-preemptible VM).
MASTER_VM_TYPE = "n1-highcpu-2"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of the batch service.

    Attributes
    ----------
    vm_type, zone:
        Worker fleet configuration (one type per service instance, as in
        the paper's experiments).
    max_vms:
        Worker-fleet size cap (the paper's experiments use 32).
    use_reuse_policy:
        True = the Section 4.2 model policy; False = memoryless baseline
        (always reuse, never proactively replace).
    use_checkpointing:
        Enable the Section 4.3 DP checkpoint planner for checkpointable
        jobs.
    checkpoint_cost:
        Hours per checkpoint write (paper evaluation: 1 minute).
    checkpoint_step:
        DP work-step granularity in hours.
    checkpoint_interval:
        Fixed-interval checkpointing mode: write a checkpoint every
        this many work hours (Young-Daly style) instead of running the
        DP planner.  Takes precedence over ``use_checkpointing`` when
        both are set; this is the mode the batched service kernel
        (:func:`repro.sim.backend.run_service_replications`) models.
    hot_spare_hours:
        Idle retention window for stable VMs (paper: 1 hour).
    provision_latency:
        Boot delay for new worker VMs, in hours.
    run_master:
        Launch the 2-CPU on-demand master node (billed).
    backfill:
        Unreserved backfill in the cluster queue: jobs behind a stuck
        head may start on nodes the head cannot use (see
        :class:`repro.sim.cluster.ClusterManager`).  Default is the
        paper's strict FIFO.
    max_attempts_per_job:
        Safety valve against jobs that can never finish.
    livelock_threshold:
        Consecutive queue-stall rounds that terminated policy-rejected
        idle workers, with no job start or completion in between,
        before :class:`ProvisioningLivelockError` is raised.  The
        boot-grace fallback (a VM no older than its pool's boot latency
        is always accepted — terminating it buys a replacement no
        younger) resolves the churn pathology itself; this guardrail
        remains as a backstop against future policy regressions.
    pools:
        Optional heterogeneous fleet catalog
        (:class:`repro.sim.placement.PoolSpec` entries; sizes must sum
        to ``max_vms``).  ``None`` = single anonymous pool, the
        historical behaviour.
    allocator:
        Placement-order plugin name (``first_fit``, ``best_fit_price``,
        ``reliability``, ``tenant_affinity``); see
        :mod:`repro.sim.placement`.  Only meaningful with >1 pool.
    """

    vm_type: str = "n1-highcpu-16"
    zone: str = "us-central1-c"
    max_vms: int = 8
    use_reuse_policy: bool = True
    use_checkpointing: bool = False
    checkpoint_cost: float = 1.0 / 60.0
    checkpoint_step: float = 0.1
    checkpoint_interval: float | None = None
    hot_spare_hours: float = 1.0
    provision_latency: float = 0.0
    run_master: bool = True
    backfill: bool = False
    max_attempts_per_job: int = 1000
    livelock_threshold: int = 500
    pools: tuple[PoolSpec, ...] | None = None
    allocator: str = "first_fit"

    def __post_init__(self) -> None:
        check_positive("max_vms", self.max_vms)
        check_positive("livelock_threshold", self.livelock_threshold)
        check_nonnegative("checkpoint_cost", self.checkpoint_cost)
        check_positive("checkpoint_step", self.checkpoint_step)
        if self.checkpoint_interval is not None:
            check_positive("checkpoint_interval", self.checkpoint_interval)
        check_positive("hot_spare_hours", self.hot_spare_hours)
        check_nonnegative("provision_latency", self.provision_latency)
        if self.pools is not None:
            object.__setattr__(self, "pools", tuple(self.pools))
        make_allocator(self.allocator)


@dataclass(frozen=True)
class ServiceReport:
    """Final accounting of a service run (feeds Fig. 9)."""

    metrics: ServiceMetrics
    on_demand_baseline: float
    cost_reduction_factor: float
    n_preemptions: int
    makespan_hours: float


class BatchComputingService:
    """Event-driven controller over one simulated cloud + cluster."""

    #: Optional :class:`repro.obs.MetricsRegistry`.  ``None`` (the class
    #: default) keeps the hot path free of any instrumentation work;
    #: counters here mirror the vectorized kernels' names exactly so
    #: per-channel event counts agree across backends.
    obs = None

    def __init__(
        self,
        sim: Simulator,
        cloud: CloudProvider,
        lifetime_model: LifetimeDistribution,
        config: ServiceConfig | None = None,
    ):
        self.sim = sim
        self.cloud = cloud
        self.config = config or ServiceConfig()
        self.model = lifetime_model
        self.store = MetadataStore()
        self.bags: dict[int, BagOfJobs] = {}
        self._provisioning = 0
        self._spare_timers: dict[int, EventHandle] = {}
        self._master: SimVM | None = None
        #: Dynamic worker-fleet cap (<= config.max_vms).  The static
        #: config value by default; the multi-tenant front end resizes
        #: it between bags (elastic fleet sizing).
        self.fleet_cap = self.config.max_vms
        self._fruitless_stalls = 0
        # Heterogeneous fleet catalog: each pool carries its own
        # lifetime law, price, and boot latency.  None = one anonymous
        # pool with the service-wide model and provision_latency.
        self.pools = resolve_pools(
            self.config.pools,
            dist=lifetime_model,
            n_slots=self.config.max_vms,
            provision_latency=self.config.provision_latency,
        )
        self.allocator = make_allocator(self.config.allocator)
        self._provisioning_pool = [0] * len(self.pools)
        # The service uses the survival-conditioned reuse criterion: the
        # literal Eq. 8 form rejects stable aged VMs for short jobs,
        # causing fresh-VM churn (see ModelReusePolicy.criterion docs).
        self._reuse_policies = [
            ModelReusePolicy(p.dist, criterion="conditional") for p in self.pools
        ]
        self._reuse = self._reuse_policies[0]
        self._ckpt: CheckpointPolicy | None = None
        if self.config.use_checkpointing:
            self._ckpt = CheckpointPolicy(
                lifetime_model,
                step=self.config.checkpoint_step,
                delta=self.config.checkpoint_cost,
            )
        self.cluster = ClusterManager(
            sim,
            log=cloud.log,
            node_selector=self._select_nodes,
            checkpoint_planner=self._plan_checkpoints,
            checkpoint_cost=self.config.checkpoint_cost,
            backfill=self.config.backfill,
            allocator=self.allocator,
            pools=self.pools,
        )
        self.cluster.on_job_complete.append(self._job_completed)
        self.cluster.on_job_failed.append(self._job_failed)
        self.cluster.on_node_idle.append(self._node_idle)
        self.cluster.on_queue_stalled.append(self._queue_stalled)
        if self.config.run_master:
            self._master = cloud.launch(
                MASTER_VM_TYPE, self.config.zone, preemptible=False
            )

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit_bag(self, request: BagRequest) -> int:
        """Submit a bag; returns the bag id for status queries."""
        bag_id = self.store.new_bag(request.name)
        self.bags[bag_id] = BagOfJobs(bag_id=bag_id, request=request)
        for req in request.jobs:
            self._submit_job(req, bag_id)
        return bag_id

    def submit_job(self, request: JobRequest) -> int:
        """Submit a standalone job; returns the job id."""
        return self._submit_job(request, None)

    def _submit_job(self, request: JobRequest, bag_id: int | None) -> int:
        if request.width > self.config.max_vms:
            raise ValueError(
                f"job width {request.width} exceeds max_vms {self.config.max_vms}"
            )
        job = SimJob(
            job_id=self.store.new_job_id(),
            work_hours=request.work_hours,
            width=request.width,
            bag_id=bag_id,
            submit_time=self.sim.now,
        )
        # Stash checkpointability on the job object for the planner hook.
        job.checkpointable = request.checkpointable  # type: ignore[attr-defined]
        if request.queue_key is not None:
            job.queue_key = float(request.queue_key)  # type: ignore[attr-defined]
        # Tenant tag drives per-tenant pool affinity; must be set before
        # submit() — submission triggers an immediate scheduling pass.
        job.tenant = getattr(request, "tenant", None)  # type: ignore[attr-defined]
        self.store.register_job(job, request.name)
        self.cluster.submit(job)
        return job.job_id

    # ------------------------------------------------------------------
    # Policy hooks (called by the cluster manager)
    # ------------------------------------------------------------------
    def _estimate_length(self, job: SimJob) -> float:
        if job.bag_id is not None:
            return self.bags[job.bag_id].estimated_runtime()
        return job.work_hours

    def _vm_suitable(self, length: float, vm: SimVM) -> bool:
        """Reuse verdict for one free VM, with the boot-grace fallback.

        A VM no older than its pool's boot latency is always accepted:
        terminating it and provisioning afresh yields a replacement no
        younger than what we already hold, so rejection can only churn
        (the PR-4 livelock).  Beyond the grace window the pool's Eq. 8
        conditional criterion decides.  Mirrors ``_decide`` in
        :mod:`repro.sim.service_vectorized`.
        """
        age = vm.age(self.sim.now)
        if age <= self.pools[vm.pool].boot_latency:
            return True
        policy = self._reuse_policies[vm.pool]
        return policy.decide(length, age) is SchedulingDecision.REUSE

    def _select_nodes(self, job: SimJob, free: Sequence[SimVM]) -> list[SimVM] | None:
        """Reuse-policy-filtered node selection (oldest suitable first)."""
        length = max(self._estimate_length(job), 1e-6)
        if self.config.use_reuse_policy:
            suitable = [vm for vm in free if self._vm_suitable(length, vm)]
        else:
            suitable = list(free)
        if len(suitable) < job.width:
            return None
        selected = suitable[: job.width]
        for vm in selected:
            self._cancel_spare_timer(vm.vm_id)
        self._fruitless_stalls = 0  # a job is starting: real progress
        return selected

    def _plan_checkpoints(self, job: SimJob, start_age: float) -> list[float] | None:
        if not getattr(job, "checkpointable", True):
            return None
        tau = self.config.checkpoint_interval
        if tau is not None:
            # Fixed-interval mode: enough tau-segments to cover the
            # attempt; JobExecution clips to the exact remaining hours.
            n_seg = int(math.ceil(job.remaining_hours / tau)) + 1
            return [tau] * n_seg
        if self._ckpt is None:
            return None
        remaining = job.remaining_hours
        if remaining < self.config.checkpoint_step:
            return None
        plan = self._ckpt.plan(remaining, start_age)
        return list(plan.segments)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _job_completed(self, job: SimJob) -> None:
        self._fruitless_stalls = 0
        if job.bag_id is not None:
            self.bags[job.bag_id].record_completion(job.work_hours)

    def _job_failed(self, job: SimJob, dead_vm: SimVM) -> None:
        if job.attempts >= self.config.max_attempts_per_job:
            raise RuntimeError(
                f"job {job.job_id} exceeded {self.config.max_attempts_per_job} attempts"
            )

    def _node_idle(self, vm: SimVM) -> None:
        """Hot-spare bookkeeping when a node has no work.

        At most one live timer exists per VM: going idle again resets
        the retention window (the stale timer is cancelled rather than
        left to fire against a VM that re-idled later), and the timer is
        cancelled whenever the VM starts work, is terminated, or dies —
        so a pending timer always refers to the VM's *current* idle
        spell.
        """
        if self.cluster.queue_length > 0:
            return  # it will be picked up by try_schedule
        self._cancel_spare_timer(vm.vm_id)
        hold = self.config.hot_spare_hours
        handle = self.sim.schedule(hold, lambda: self._reap_spare(vm.vm_id))
        self._spare_timers[vm.vm_id] = handle

    def _cancel_spare_timer(self, vm_id: int) -> None:
        handle = self._spare_timers.pop(vm_id, None)
        if handle is not None:
            handle.cancel()

    def _reap_spare(self, vm_id: int) -> None:
        if self.obs is not None:
            # Counted at entry (even when the reap is a no-op): the
            # vectorized kernel counts every fired reap arena event the
            # same way, and cancelled timers never fire on either side.
            self.obs.inc("events.reap")
        self._spare_timers.pop(vm_id, None)
        for vm in self.cluster.free_nodes():
            if vm.vm_id == vm_id and self.cluster.queue_length == 0:
                self.cluster.remove_node(vm)
                self.cloud.terminate(vm)
                return

    def _queue_stalled(self, job: SimJob, n_free: int) -> None:
        """Launch workers to unblock the queue head (respecting the cap)."""
        length = max(self._estimate_length(job), 1e-6)
        free = self.cluster.free_nodes(job)
        if self.config.use_reuse_policy:
            suitable = [vm for vm in free if self._vm_suitable(length, vm)]
            if self.obs is not None:
                # Boot-grace activations: free VMs spared *only* by the
                # grace window (pure Eq. 8 verdict would reject them).
                # Mirrors ``_count_graced`` in the vectorized kernel.
                graced = 0
                for vm in free:
                    age = vm.age(self.sim.now)
                    if age <= self.pools[vm.pool].boot_latency and (
                        self._reuse_policies[vm.pool].decide(length, age)
                        is not SchedulingDecision.REUSE
                    ):
                        graced += 1
                if graced:
                    self.obs.inc("stall.graced", graced)
            # Policy-rejected idle VMs are released: the model says any
            # job placed there now would be better off on a fresh VM.
            # The boot-grace fallback in _vm_suitable exempts VMs a
            # replacement could not improve on, so this release cannot
            # churn indefinitely.
            terminated = 0
            for vm in free:
                if vm not in suitable:
                    self._cancel_spare_timer(vm.vm_id)
                    self.cluster.remove_node(vm)
                    self.cloud.terminate(vm)
                    terminated += 1
            if terminated:
                if self.obs is not None:
                    self.obs.inc("stall.terminations", terminated)
                # Backstop guardrail for terminate/provision churn:
                # stall rounds that keep rejecting and replacing idle
                # workers, with no job ever starting, are livelock.
                # The grace window resolves the known pathology; this
                # protects against future policy regressions.
                self._fruitless_stalls += 1
                if self.obs is not None:
                    self.obs.gauge("livelock.peak_streak").set(
                        self._fruitless_stalls
                    )
                if self._fruitless_stalls >= self.config.livelock_threshold:
                    raise ProvisioningLivelockError(
                        f"{self._fruitless_stalls} consecutive queue stalls "
                        "terminated policy-rejected idle workers without any "
                        "job starting or completing; the reuse policy rejects "
                        "every VM age under this lifetime law despite the "
                        "boot-grace fallback (see "
                        "ServiceConfig.livelock_threshold)"
                    )
        else:
            suitable = free
        alive_workers = len(self.cluster.free_nodes()) + len(self.cluster.busy_nodes())
        deficit = job.width - len(suitable) - self._provisioning
        headroom = self.fleet_cap - alive_workers - self._provisioning
        to_launch = min(deficit, headroom)
        rank = self.allocator.rank_for(self.pools, getattr(job, "tenant", None))
        for _ in range(max(to_launch, 0)):
            pool = self._pick_boot_pool(rank)
            self._provisioning += 1
            self._provisioning_pool[pool] += 1
            self.sim.schedule(
                self.pools[pool].boot_latency,
                lambda p=pool: self._boot_worker(p),
            )

    def _pick_boot_pool(self, rank: Sequence[int]) -> int:
        """First pool in ``rank`` order with headroom (alive + in flight).

        Mirrors ``_boot_pool`` in the vectorized service kernel: each
        pending boot claims its pool slot at schedule time, so a burst
        of launches spills across pools deterministically.
        """
        occ = list(self._provisioning_pool)
        for vm in self.cluster.free_nodes():
            occ[vm.pool] += 1
        for vm in self.cluster.busy_nodes():
            occ[vm.pool] += 1
        for p in rank:
            if occ[p] < self.pools[p].size:
                return p
        raise RuntimeError("no pool headroom; fleet invariant violated")

    def _boot_worker(self, pool: int = 0) -> None:
        self._provisioning -= 1
        self._provisioning_pool[pool] -= 1
        vm = self.cloud.launch(
            self.config.vm_type, self.config.zone, preemptible=True, pool=pool
        )
        # An idle VM's death must clear its retention timer (runs before
        # the cluster's preemption handler, appended at add_node).
        vm.on_preempt.append(lambda v, now: self._cancel_spare_timer(v.vm_id))
        self.cluster.add_node(vm)

    # ------------------------------------------------------------------
    # Run / status / reporting
    # ------------------------------------------------------------------
    def bag_done(self, bag_id: int) -> bool:
        return self.store.bag_status(bag_id).done

    def run_until_bag_done(self, bag_id: int, *, max_events: int = 5_000_000) -> None:
        """Drive the simulator until every job of the bag completes."""
        for _ in range(max_events):
            if self.bag_done(bag_id):
                return
            if not self.sim.step():
                raise RuntimeError("simulation drained before the bag finished")
        raise RuntimeError(f"exceeded {max_events} events")

    def shutdown(self) -> None:
        """Terminate all service VMs (workers, spares, master)."""
        for vm in list(self.cluster.free_nodes()):
            self._cancel_spare_timer(vm.vm_id)
            self.cluster.remove_node(vm)
            self.cloud.terminate(vm)
        if self._master is not None and self._master.alive:
            self.cloud.terminate(self._master)

    def policy_evaluator(self):
        """Headless Monte-Carlo scorer for this service's configuration.

        Returns a :class:`repro.service.evaluate.ServicePolicyEvaluator`
        wired to the same lifetime model and config, so batch scoring
        ("what failure probability / cost does this policy mix give at
        10k replications?") runs through the vectorized backend without
        replaying the event-driven controller loop.
        """
        from repro.service.evaluate import ServicePolicyEvaluator

        return ServicePolicyEvaluator(self.model, self.config)

    def job_status(self, job_id: int) -> JobStatus:
        return self.store.job_status(job_id)

    def bag_status(self, bag_id: int, *, include_jobs: bool = False) -> BagStatus:
        return self.store.bag_status(bag_id, include_jobs=include_jobs)

    def report(self, bag_id: int, *, start_time: float = 0.0) -> ServiceReport:
        """Final cost/performance report for a completed bag."""
        bag = self.bags[bag_id]
        metrics = ServiceMetrics.from_run(
            self.cloud.log, self.cloud.billing(), self.sim.now - start_time
        )
        master_hours = self.sim.now - start_time if self.config.run_master else 0.0
        baseline = on_demand_baseline_cost(
            bag.request,
            self.config.vm_type,
            catalog=self.cloud.catalog,
            master_hours=0.0,
        )
        factor = baseline / metrics.total_cost if metrics.total_cost > 0 else float("inf")
        return ServiceReport(
            metrics=metrics,
            on_demand_baseline=baseline,
            cost_reduction_factor=factor,
            n_preemptions=metrics.n_preemptions,
            makespan_hours=self.sim.now - start_time,
        )

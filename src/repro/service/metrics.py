"""Service-level metrics derived from the simulation event log."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cloud import BillingReport
from repro.sim.events import EventLog, JobCompleted, JobFailed, VMPreempted

__all__ = ["ServiceMetrics"]


@dataclass(frozen=True)
class ServiceMetrics:
    """Summary of one service run (feeds Fig. 9 and EXPERIMENTS.md)."""

    n_jobs_completed: int
    n_job_failures: int
    n_preemptions: int
    total_lost_hours: float
    mean_job_makespan: float
    wall_clock_hours: float
    total_cost: float
    preemptible_cost: float
    on_demand_cost: float
    vm_hours: float

    @classmethod
    def from_run(
        cls, log: EventLog, billing: BillingReport, wall_clock_hours: float
    ) -> "ServiceMetrics":
        completed = log.of_type(JobCompleted)
        failed = log.of_type(JobFailed)
        makespans = np.array([e.makespan_hours for e in completed], dtype=float)
        return cls(
            n_jobs_completed=len(completed),
            n_job_failures=len(failed),
            n_preemptions=log.count(VMPreempted),
            total_lost_hours=float(sum(e.lost_hours for e in failed)),
            mean_job_makespan=float(makespans.mean()) if makespans.size else 0.0,
            wall_clock_hours=wall_clock_hours,
            total_cost=billing.total_cost,
            preemptible_cost=billing.preemptible_cost,
            on_demand_cost=billing.on_demand_cost,
            vm_hours=billing.vm_hours,
        )

    def cost_per_job(self) -> float:
        """Mean USD per completed job (the Fig. 9a y-axis)."""
        if self.n_jobs_completed == 0:
            return float("nan")
        return self.total_cost / self.n_jobs_completed

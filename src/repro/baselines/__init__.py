"""Hindsight baselines: what the realized draws made possible.

The policies in :mod:`repro.service` and :mod:`repro.sim` act online —
they see a lifetime law, never the draws.  This package scores them
against the *hindsight optimum*: given the exact lifetime realisations
a replication consumed (recorded by
:class:`repro.sim.backend.DrawCapture`), the cheapest VM-hour spend any
schedule could have achieved.  The gap — regret — is the price of not
knowing the future, and every policy must sit at or above 100% of the
oracle on every replication (the ``fig9-regret`` experiment and
``tests/test_regret_oracle.py`` pin exactly that).
"""

from repro.baselines.oracle import (
    HindsightBound,
    InfeasibleScheduleError,
    OracleSchedule,
    RegretTable,
    hindsight_lower_bound,
    minimal_segments_dp,
    oracle_schedule_dp,
    regret_from_outcomes,
    segment_count_bound,
)

__all__ = [
    "HindsightBound",
    "InfeasibleScheduleError",
    "OracleSchedule",
    "RegretTable",
    "hindsight_lower_bound",
    "minimal_segments_dp",
    "oracle_schedule_dp",
    "regret_from_outcomes",
    "segment_count_bound",
]

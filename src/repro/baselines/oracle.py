"""Hindsight-optimal schedule bounds over realized lifetime draws.

Given the multiset of VM lifetimes a replication actually consumed
(recorded draw-for-draw by :class:`repro.sim.backend.DrawCapture`),
what is the cheapest worker VM-hour spend *any* schedule could have
achieved for the bag?  This module answers with a bracket:

* :func:`hindsight_lower_bound` — a provable per-job lower bound.  A
  gang of ``g`` distinct VMs has min lifetime at most the ``g``-th
  largest draw ``C_g`` (at most ``g - 1`` draws exceed it), so every
  completed non-final segment fits ``sigma + delta <= C_g`` and the
  final one ``sigma <= C_g``; covering ``w`` work hours therefore takes
  at least ``m* = 1 + ceil((w - C_g) / (C_g - delta))`` segments, and
  the job bills at least ``g * (w + (m* - 1) * delta)``.  The argument
  never constrains *which* VMs a job uses — sharing, reuse, and
  restarts are all allowed — so every policy's realized worker hours
  sit at or above the bound on the same draws.  This is the regret
  baseline.
* :func:`oracle_schedule_dp` — the exact optimum of the *disjoint-gang*
  schedule space on small instances (<= ~8 jobs), by DP over job
  subsets: an exchange argument shows some optimal disjoint assignment
  hands out consecutive blocks of the descending-sorted pool, so
  ``dp[S]`` = cheapest cost of job set ``S`` on the first
  ``sum(widths in S)`` draws.  Disjointness can only hurt, so this is
  an *upper* bracket on the true hindsight optimum; when it meets the
  lower bound the bracket is tight and the bound is certified exact.

:func:`segment_count_bound` is the closed-form ``m*`` and
:func:`minimal_segments_dp` re-derives it by a memo-table DP on a work
grid — the independent cross-check the golden tests lean on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

# Slack subtracted before each ceil: never round a float-fuzz exact
# multiple *up*, which would overstate the bound and break the
# regret >= 0 guarantee.
_CEIL_SLACK = 1e-12


class InfeasibleScheduleError(ValueError):
    """No schedule completes the work on the given lifetime pool."""


def segment_count_bound(work: float, cap: float, delta: float) -> int:
    """Minimum number of segments covering ``work`` hours.

    ``cap`` bounds each segment's walltime on the hosting gang (the
    gang-min lifetime): a final segment takes ``sigma <= cap``, a
    non-final one ``sigma + delta <= cap``.  Closed form of the
    covering recurrence ``(m - 1) * (cap - delta) + cap >= work``.
    """
    if work <= 0:
        return 0
    if cap >= work:
        return 1
    span = cap - delta
    if span <= 0:
        raise InfeasibleScheduleError(
            f"no progress possible: cap {cap:g} h leaves no room for a "
            f"checkpoint of {delta:g} h, yet {work:g} h remain"
        )
    return 1 + int(math.ceil((work - cap) / span - _CEIL_SLACK))


def minimal_segments_dp(
    work: float, cap: float, delta: float, *, quantum: float = 1e-6
) -> int:
    """``segment_count_bound`` re-derived by a memo-table DP.

    Work is rounded up to a grid of ``quantum`` hours and segment
    budgets down, so the DP answer can only meet or exceed the closed
    form — and equals it whenever the inputs sit on the grid.  Kept
    deliberately independent of :func:`segment_count_bound` so the two
    cross-check each other.
    """
    if work <= 0:
        return 0
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum}")
    if cap >= work:
        # Exact feasibility boundary, kept off the grid: rounding work
        # up and cap down must not split a job one segment covers.
        return 1
    span = cap - delta
    if span <= 0:
        raise InfeasibleScheduleError(
            f"no progress possible: cap {cap:g} h leaves no room for a "
            f"checkpoint of {delta:g} h, yet {work:g} h remain"
        )
    remaining = int(math.ceil(work / quantum - _CEIL_SLACK))
    final_max = int(math.floor(cap / quantum + _CEIL_SLACK))
    inner_max = int(math.floor(span / quantum + _CEIL_SLACK))
    if remaining > final_max and inner_max <= 0:
        raise InfeasibleScheduleError(
            f"quantum {quantum:g} h cannot resolve a non-final segment "
            f"within cap {cap:g} h minus checkpoint {delta:g} h"
        )

    # Fill the memo bottom-up along the reachable chain (the recursion
    # r -> r - inner_max visits one value per depth, which overflows
    # the stack on fine grids).
    memo: dict[int, int] = {}
    chain = []
    r = remaining
    while r > final_max:
        chain.append(r)
        r -= inner_max
    memo[r] = 1
    for r in reversed(chain):
        memo[r] = 1 + memo[r - inner_max]
    return memo[remaining]


def _job_tuple(job) -> tuple[float, int]:
    """``(work_hours, width)`` from a GangJob or a plain pair."""
    work = getattr(job, "work_hours", None)
    if work is not None:
        return float(work), int(job.width)
    work, width = job
    return float(work), int(width)


@dataclass(frozen=True)
class HindsightBound:
    """Per-replication lower bound on worker VM-hours for a bag."""

    total: float
    per_job: tuple[float, ...]
    segments: tuple[int, ...]
    feasible: bool


def hindsight_lower_bound(lifetimes, jobs, delta: float) -> HindsightBound:
    """Provable VM-hour floor for ``jobs`` on a realized lifetime pool.

    Each job is bounded independently against the *full* pool (its
    best imaginable gang), so VM sharing between jobs never invalidates
    the bound.  ``feasible=False`` (with infinite entries) marks jobs
    no schedule on this pool completes — a policy replication that
    finished every job always yields a finite bound.
    """
    pool = np.sort(np.asarray(lifetimes, dtype=float))[::-1]
    per_job: list[float] = []
    segments: list[int] = []
    feasible = True
    for job in jobs:
        work, width = _job_tuple(job)
        if width > pool.size:
            per_job.append(math.inf)
            segments.append(0)
            feasible = False
            continue
        cap = float(pool[width - 1])
        try:
            m = segment_count_bound(work, cap, delta)
        except InfeasibleScheduleError:
            per_job.append(math.inf)
            segments.append(0)
            feasible = False
            continue
        per_job.append(width * (work + (m - 1) * delta))
        segments.append(m)
    return HindsightBound(
        total=float(sum(per_job)),
        per_job=tuple(per_job),
        segments=tuple(segments),
        feasible=feasible,
    )


@dataclass(frozen=True)
class OracleSchedule:
    """Optimal disjoint-gang schedule (small-instance DP)."""

    total: float
    per_job: tuple[float, ...]
    gang_caps: tuple[float, ...]
    order: tuple[int, ...]
    certified: bool


def oracle_schedule_dp(
    lifetimes, jobs, delta: float, *, max_jobs: int = 10
) -> OracleSchedule:
    """Exact optimum over disjoint gang assignments, by subset DP.

    Some optimal disjoint assignment hands each job a consecutive block
    of the descending-sorted pool (swapping any two draws above both
    gang minima changes nothing, so assignments can be untangled block
    by block), which collapses the search to an ordering problem:
    ``dp[S]`` is the cheapest cost of scheduling job set ``S`` on the
    pool's first ``sum(widths in S)`` draws.  ``certified`` reports
    whether this optimum meets :func:`hindsight_lower_bound` — when it
    does, the bracket is tight and the bound *is* the hindsight
    optimum.
    """
    parsed = [_job_tuple(j) for j in jobs]
    n = len(parsed)
    if n > max_jobs:
        raise ValueError(
            f"subset DP is exponential in jobs: got {n} > max_jobs={max_jobs}"
        )
    pool = np.sort(np.asarray(lifetimes, dtype=float))[::-1]
    need = sum(w for _, w in parsed)
    if need > pool.size:
        raise InfeasibleScheduleError(
            f"disjoint gangs need {need} VMs, pool has {pool.size} draws"
        )

    def job_cost(idx: int, used: int) -> float:
        work, width = parsed[idx]
        cap = float(pool[used + width - 1])
        try:
            m = segment_count_bound(work, cap, delta)
        except InfeasibleScheduleError:
            return math.inf
        return width * (work + (m - 1) * delta)

    full = (1 << n) - 1
    dp = [math.inf] * (full + 1)
    choice = [-1] * (full + 1)
    dp[0] = 0.0
    width_of = [w for _, w in parsed]
    for mask in range(full + 1):
        if not math.isfinite(dp[mask]):
            continue
        used = sum(width_of[i] for i in range(n) if mask & (1 << i))
        for i in range(n):
            if mask & (1 << i):
                continue
            nxt = mask | (1 << i)
            cand = dp[mask] + job_cost(i, used)
            if cand < dp[nxt]:
                dp[nxt] = cand
                choice[nxt] = i

    if not math.isfinite(dp[full]):
        raise InfeasibleScheduleError(
            "no disjoint-gang schedule completes every job on this pool"
        )

    order: list[int] = []
    mask = full
    while mask:
        i = choice[mask]
        order.append(i)
        mask &= ~(1 << i)
    order.reverse()

    per_job = [0.0] * n
    gang_caps = [0.0] * n
    used = 0
    for i in order:
        per_job[i] = job_cost(i, used)
        gang_caps[i] = float(pool[used + width_of[i] - 1])
        used += width_of[i]

    bound = hindsight_lower_bound(pool, parsed, delta)
    total = float(dp[full])
    certified = bound.feasible and math.isclose(
        total, bound.total, rel_tol=1e-12, abs_tol=1e-12
    )
    return OracleSchedule(
        total=total,
        per_job=tuple(per_job),
        gang_caps=tuple(gang_caps),
        order=tuple(order),
        certified=certified,
    )


@dataclass(frozen=True)
class RegretTable:
    """Draw-level pairing of a policy sweep against the oracle bound.

    One row per replication: the policy's realized worker VM-hours,
    the hindsight bound on the *same* consumed draws, their difference
    (regret — non-negative whenever ``completed``), and the policy's
    cost as a percentage of the oracle.  ``completed`` masks
    replications where the policy finished the whole bag; aborted runs
    spent fewer hours than the full bag demands and carry no
    dominance guarantee.
    """

    policy_hours: np.ndarray
    oracle_hours: np.ndarray
    regret: np.ndarray
    pct_of_oracle: np.ndarray
    completed: np.ndarray

    @property
    def n_replications(self) -> int:
        return int(self.policy_hours.size)

    def summary(self) -> str:
        done = self.completed
        if not done.any():
            return f"regret: 0/{self.n_replications} replications completed"
        pct = self.pct_of_oracle[done]
        return (
            f"regret over {int(done.sum())}/{self.n_replications} completed: "
            f"policy at {pct.mean():.1f}% of hindsight-optimal "
            f"(min {pct.min():.1f}%, max {pct.max():.1f}%)"
        )


def regret_from_outcomes(
    outcomes, capture, dist, jobs, delta: float
) -> RegretTable:
    """Pair a sweep's outcomes with its capture, draw for draw.

    ``outcomes`` is a :class:`~repro.sim.backend.ClusterOutcomes` or
    :class:`~repro.sim.backend.ServiceOutcomes` from a run that passed
    ``capture``; replication ``i`` consumed exactly the first
    ``n_draws[i]`` rows of column ``i`` of the capture's round table,
    so its oracle sees precisely the lifetimes the policy saw.
    """
    lifetimes = capture.lifetimes(dist)
    n = int(np.asarray(outcomes.n_draws).size)
    if lifetimes.shape[1] != n:
        raise ValueError(
            f"capture is {lifetimes.shape[1]} replications wide but the "
            f"outcomes carry {n}; pair each run with its own capture"
        )
    jobs = [_job_tuple(j) for j in jobs]
    n_jobs = len(jobs)
    policy_hours = np.asarray(outcomes.vm_hours, dtype=float)
    completed = np.asarray(outcomes.completed_jobs) == n_jobs
    oracle_hours = np.empty(n, dtype=float)
    for i in range(n):
        consumed = lifetimes[: int(outcomes.n_draws[i]), i]
        oracle_hours[i] = hindsight_lower_bound(consumed, jobs, delta).total
    with np.errstate(invalid="ignore"):
        regret = policy_hours - oracle_hours
        pct = np.where(
            oracle_hours > 0, 100.0 * policy_hours / oracle_hours, np.inf
        )
    return RegretTable(
        policy_hours=policy_hours,
        oracle_hours=oracle_hours,
        regret=regret,
        pct_of_oracle=pct,
        completed=completed,
    )

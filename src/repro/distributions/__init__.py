"""Failure-distribution zoo.

Every distribution the paper fits in Fig. 1 (exponential, Weibull,
Gompertz-Makeham), the uniform-on-[0, L] law used as the Fig. 4 baseline,
the paper's own bathtub model as a first-class sampling distribution, and
the Section 8 extensions (phase-wise segmented model, generic
superposition mixture).

All distributions share the :class:`~repro.distributions.base.LifetimeDistribution`
interface: vectorised ``cdf/pdf/sf/hazard/ppf/sample`` plus truncated
first moments, so policies and fitters are written once.
"""

from repro.distributions.base import LifetimeDistribution
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.weibull import WeibullDistribution
from repro.distributions.gompertz import GompertzMakehamDistribution
from repro.distributions.uniform import UniformLifetimeDistribution
from repro.distributions.lognormal import LogNormalLifetimeDistribution
from repro.distributions.bathtub import BathtubDistribution
from repro.distributions.piecewise import PiecewisePhaseDistribution, PhaseSegment
from repro.distributions.mixture import SuperpositionMixture

__all__ = [
    "LifetimeDistribution",
    "ExponentialDistribution",
    "WeibullDistribution",
    "GompertzMakehamDistribution",
    "UniformLifetimeDistribution",
    "LogNormalLifetimeDistribution",
    "BathtubDistribution",
    "PiecewisePhaseDistribution",
    "PhaseSegment",
    "SuperpositionMixture",
]

"""Classic Weibull lifetimes, ``F(t) = 1 - e^{-(lambda t)^k}``.

The standard tool for non-constant failure rates; the paper shows
(Section 3.2.1) that even Weibull cannot produce the sharp deadline
inflection of constrained preemptions — its failure-rate growth is
polynomial while the deadline reclamation is exponential.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["WeibullDistribution"]


class WeibullDistribution(LifetimeDistribution):
    """Weibull with rate parameter ``lam`` and shape ``k``.

    ``k < 1`` gives a decreasing hazard (early-failure regime), ``k = 1``
    is exponential, ``k > 1`` an increasing hazard (wear-out regime).
    No single ``k`` produces a bathtub — which is exactly why the paper
    needs a two-process model.
    """

    def __init__(self, lam: float, k: float, *, horizon: float | None = None):
        super().__init__()
        self.lam = check_positive("lam", lam)
        self.k = check_positive("k", k)
        if horizon is None:
            # F(horizon) = 1 - 1e-9  =>  (lam*h)^k = -ln(1e-9)
            horizon = (-math.log(1e-9)) ** (1.0 / self.k) / self.lam
        self.t_max = check_positive("horizon", horizon)

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        z = (self.lam * np.maximum(t_arr, 0.0)) ** self.k
        out = np.where(t_arr < 0.0, 0.0, 1.0 - np.exp(-z))
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        tt = np.maximum(t_arr, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (self.lam * tt) ** self.k
            # k*(lam^k)*t^(k-1)*exp(-z); handle t=0 for k<1 (density diverges)
            dens = self.k * self.lam**self.k * tt ** (self.k - 1.0) * np.exp(-z)
        out = np.where(t_arr < 0.0, 0.0, dens)
        return out if out.ndim else float(out)

    def hazard(self, t):
        """``h(t) = k lam^k t^{k-1}`` — monotone, never bathtub."""
        t_arr = np.asarray(t, dtype=float)
        tt = np.maximum(t_arr, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = self.k * self.lam**self.k * tt ** (self.k - 1.0)
        out = np.where(t_arr < 0.0, 0.0, out)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = (-np.log1p(-q_arr)) ** (1.0 / self.k) / self.lam
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Closed form ``Gamma(1 + 1/k)/lam``."""
        return math.gamma(1.0 + 1.0 / self.k) / self.lam

"""Superposition of failure processes — the Section 8 generalisation.

The paper closes by noting that "the principle adopted to break down the
problem into the superposition of processes characterized by different
failure rates can also be considered as a general framework".  Eq. 1 is a
two-process instance; this module provides the k-process generalisation:

* each component contributes an *additive* term to the (unnormalised)
  CDF, exactly as the two exponentials do in Eq. 1;
* a shared scale ``A`` maps the superposition onto [0, 1].

Components are (weight, LifetimeDistribution) pairs; the composite CDF is
``F(t) = clip(sum_i w_i F_i(t), 0, 1)`` with support ending where the sum
first reaches 1 (mirroring the Eq. 1 support convention).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import brentq

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["SuperpositionMixture"]


class SuperpositionMixture(LifetimeDistribution):
    """Additive superposition of weighted lifetime laws.

    Parameters
    ----------
    components:
        Sequence of ``(weight, distribution)`` with positive weights.
        Weights need not sum to 1: like the paper's ``A``, they jointly
        control where the superposed CDF reaches 1.
    """

    def __init__(self, components: Sequence[tuple[float, LifetimeDistribution]]):
        super().__init__()
        if not components:
            raise ValueError("at least one component is required")
        self.weights = tuple(check_positive("weight", w) for w, _ in components)
        self.dists = tuple(d for _, d in components)
        self.t_max = self._solve_t_max()

    def _raw_cdf(self, t: np.ndarray) -> np.ndarray:
        t_arr = np.asarray(t, dtype=float)
        total = np.zeros_like(t_arr, dtype=float)
        for w, d in zip(self.weights, self.dists):
            total = total + w * np.asarray(d.cdf(t_arr), dtype=float)
        return total

    def _solve_t_max(self) -> float:
        hi = max(d.t_max for d in self.dists)
        raw_hi = float(self._raw_cdf(np.asarray(hi)))
        if raw_hi < 1.0:
            # Superposition never reaches 1 inside component horizons:
            # treat the furthest horizon as the practical edge.
            return hi
        return float(brentq(lambda t: float(self._raw_cdf(np.asarray(t))) - 1.0, 0.0, hi))

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.clip(self._raw_cdf(t_arr), 0.0, 1.0)
        out = np.where(t_arr < 0.0, 0.0, out)
        out = np.where(t_arr >= self.t_max, np.minimum(1.0, np.maximum(out, float(self._raw_cdf(np.asarray(self.t_max))))), out)
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        total = np.zeros_like(t_arr, dtype=float)
        for w, d in zip(self.weights, self.dists):
            total = total + w * np.asarray(d.pdf(t_arr), dtype=float)
        inside = (t_arr >= 0.0) & (t_arr <= self.t_max)
        out = np.where(inside, total, 0.0)
        return out if out.ndim else float(out)

    @property
    def n_components(self) -> int:
        return len(self.dists)

"""Memoryless exponential lifetimes — the classical preemption model.

This is the model all prior transient-computing systems assume (Section
2.2): ``F(t) = 1 - e^{-lambda t}`` with ``lambda = 1/MTTF``.  The paper's
Fig. 1 shows it cannot capture the 24 h deadline; we keep it as the
baseline everywhere.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["ExponentialDistribution"]


class ExponentialDistribution(LifetimeDistribution):
    """``Exp(rate)`` with closed-form moments and sampling.

    Parameters
    ----------
    rate:
        Failure rate ``lambda`` (1/hours).  ``mttf = 1/rate``.
    horizon:
        Practical right edge for sampling tables; defaults to a point
        where ``F`` is within 1e-9 of 1.
    """

    def __init__(self, rate: float, *, horizon: float | None = None):
        super().__init__()
        self.rate = check_positive("rate", rate)
        if horizon is None:
            horizon = -math.log(1e-9) / self.rate
        self.t_max = check_positive("horizon", horizon)

    @classmethod
    def from_mttf(cls, mttf: float) -> "ExponentialDistribution":
        """Construct from a mean time to failure (hours)."""
        return cls(1.0 / check_positive("mttf", mttf))

    @property
    def mttf(self) -> float:
        """Mean time to failure ``1/rate``."""
        return 1.0 / self.rate

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.where(t_arr < 0.0, 0.0, 1.0 - np.exp(-self.rate * np.maximum(t_arr, 0.0)))
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.where(
            t_arr < 0.0, 0.0, self.rate * np.exp(-self.rate * np.maximum(t_arr, 0.0))
        )
        return out if out.ndim else float(out)

    def hazard(self, t):
        """Constant hazard ``lambda`` — the memoryless signature."""
        t_arr = np.asarray(t, dtype=float)
        out = np.where(t_arr < 0.0, 0.0, self.rate)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = -np.log1p(-q_arr) / self.rate
        return out if out.ndim else float(out)

    def truncated_first_moment(self, a: float, c: float, *, num: int = 0) -> float:
        """Closed form: ``int t lam e^{-lam t} dt = [-(t + 1/lam) e^{-lam t}]``."""
        a = max(float(a), 0.0)
        c = float(c)
        if c <= a:
            return 0.0

        def anti(t: float) -> float:
            return -(t + 1.0 / self.rate) * math.exp(-self.rate * t)

        return anti(c) - anti(a)

    def mean(self) -> float:
        return 1.0 / self.rate

    def conditional_failure_probability(self, s: float, width: float) -> float:
        """Exact memoryless form ``1 - e^{-rate * width}``.

        The generic (F(s+w) - F(s)) / S(s) formula loses precision deep in
        the tail where S(s) underflows toward 0; memorylessness gives the
        answer in closed form independent of ``s``.
        """
        width = max(float(width), 0.0)
        return float(-np.expm1(-self.rate * width))

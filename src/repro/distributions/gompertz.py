"""Gompertz-Makeham lifetimes (actuarial aging model).

``F(t) = 1 - exp(-lambda t - (alpha/beta) (e^{beta t} - 1))`` — an
age-independent Makeham term ``lambda`` plus an exponentially aging
Gompertz term.  The paper fits it in Fig. 1 as the strongest classical
bathtub candidate; it still misses the deadline inflection because its
aging starts at t=0 rather than being *activated* near the deadline.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["GompertzMakehamDistribution"]


class GompertzMakehamDistribution(LifetimeDistribution):
    """Gompertz-Makeham with Makeham rate ``lam``, Gompertz ``alpha, beta``."""

    def __init__(
        self,
        lam: float,
        alpha: float,
        beta: float,
        *,
        horizon: float | None = None,
    ):
        super().__init__()
        self.lam = check_positive("lam", lam)
        self.alpha = check_positive("alpha", alpha)
        self.beta = check_positive("beta", beta)
        if horizon is None:
            horizon = self._solve_horizon()
        self.t_max = check_positive("horizon", horizon)

    def _cumhaz(self, t: np.ndarray) -> np.ndarray:
        return self.lam * t + (self.alpha / self.beta) * np.expm1(self.beta * t)

    def _solve_horizon(self) -> float:
        target = -math.log(1e-9)
        hi = 1.0
        while float(self._cumhaz(np.asarray(hi))) < target:
            hi *= 2.0
            if hi > 1e6:  # pragma: no cover - pathological parameters
                return 1e6
        return float(
            brentq(lambda t: float(self._cumhaz(np.asarray(t))) - target, 0.0, hi)
        )

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        tt = np.maximum(t_arr, 0.0)
        out = np.where(t_arr < 0.0, 0.0, -np.expm1(-self._cumhaz(tt)))
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        tt = np.maximum(t_arr, 0.0)
        haz = self.lam + self.alpha * np.exp(self.beta * tt)
        out = np.where(t_arr < 0.0, 0.0, haz * np.exp(-self._cumhaz(tt)))
        return out if out.ndim else float(out)

    def hazard(self, t):
        """``h(t) = lam + alpha e^{beta t}`` — monotone increasing."""
        t_arr = np.asarray(t, dtype=float)
        out = np.where(
            t_arr < 0.0, 0.0, self.lam + self.alpha * np.exp(self.beta * np.maximum(t_arr, 0.0))
        )
        return out if out.ndim else float(out)

"""The paper's constrained-preemption model as a sampling distribution.

Thin adapter exposing :class:`repro.core.model.ConstrainedPreemptionModel`
through the :class:`~repro.distributions.base.LifetimeDistribution`
interface, so the trace generator, the simulator, and the policies all
consume it exactly like any classical law.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.distributions.base import LifetimeDistribution

__all__ = ["BathtubDistribution"]


class BathtubDistribution(LifetimeDistribution):
    """Bathtub lifetimes with CDF of paper Eq. 1 over ``[0, t_max]``."""

    def __init__(self, params: BathtubParams | Mapping[str, float] | ConstrainedPreemptionModel):
        super().__init__()
        if isinstance(params, ConstrainedPreemptionModel):
            self.model = params
        else:
            self.model = ConstrainedPreemptionModel(params)
        self.t_max = self.model.t_max

    @property
    def params(self) -> BathtubParams:
        """The underlying Eq. 1 parameters."""
        return self.model.params

    def cdf(self, t):
        return self.model.cdf(t)

    def pdf(self, t):
        return self.model.pdf(t)

    def sf(self, t):
        return self.model.sf(t)

    def hazard(self, t):
        return self.model.hazard(t)

    def ppf(self, q):
        return self.model.ppf(q)

    def ppf_table(self):
        """The model's exact ``(q, t)`` interpolation grid (see base class)."""
        return self.model._build_ppf_grid()

    def truncated_first_moment(self, a: float, c: float, *, num: int = 0) -> float:
        """Exact closed form via the Eq. 3 antiderivative."""
        return self.model.truncated_first_moment(a, c)

    def truncated_first_moment_batch(self, a, c, *, num: int = 0):
        """Exact closed form over arrays of bounds (one antiderivative pass)."""
        a_arr, c_arr = np.broadcast_arrays(
            np.asarray(a, dtype=float), np.asarray(c, dtype=float)
        )
        a_clip = np.clip(a_arr, 0.0, self.t_max)
        c_clip = np.clip(c_arr, 0.0, self.t_max)
        g = self.model.moment_antiderivative
        out = np.asarray(g(c_clip), dtype=float) - np.asarray(g(a_clip), dtype=float)
        return np.where(c_clip > a_clip, out, 0.0)

    def mean(self) -> float:
        return self.model.expected_lifetime()

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        return self.model.sample(n, rng)

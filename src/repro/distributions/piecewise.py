"""Phase-wise (segmented) preemption model — paper Section 8 future work.

The discussion section sketches "a piece-wise continuously differentiable
model, where the three phases are modeled either as segmented linear
regions ... or an initial exponential phase and two linear phases".  This
module implements that idea generically: a lifetime law defined by a
sequence of :class:`PhaseSegment` s, each contributing a constant hazard
over its interval (piecewise-exponential survival), which is the standard
segmented representation in survival analysis.

A three-segment instance with (high, low, very-high) hazards reproduces
the bathtub qualitatively and fits the empirical CDF competitively; the
model-selection experiment compares it against the closed-form Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["PhaseSegment", "PiecewisePhaseDistribution"]


@dataclass(frozen=True)
class PhaseSegment:
    """A constant-hazard phase ``[start, end)`` with rate ``hazard`` (1/h)."""

    start: float
    end: float
    hazard: float

    def __post_init__(self) -> None:
        check_nonnegative("start", self.start)
        check_positive("end", self.end)
        check_nonnegative("hazard", self.hazard)
        if self.end <= self.start:
            raise ValueError(f"segment end {self.end} must exceed start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class PiecewisePhaseDistribution(LifetimeDistribution):
    """Piecewise-exponential lifetimes from contiguous constant-hazard phases.

    Parameters
    ----------
    segments:
        Contiguous segments covering ``[0, T)`` (first starts at 0, each
        starts where the previous ends).
    terminal:
        If True (default), any survivor at the final segment's end is
        preempted there — the hard deadline; the CDF jumps to 1.
    """

    def __init__(self, segments: Sequence[PhaseSegment], *, terminal: bool = True):
        super().__init__()
        if not segments:
            raise ValueError("at least one segment is required")
        segs = list(segments)
        if segs[0].start != 0.0:
            raise ValueError("first segment must start at 0")
        for prev, cur in zip(segs, segs[1:]):
            if cur.start != prev.end:
                raise ValueError(
                    f"segments must be contiguous: {prev.end} != {cur.start}"
                )
        self.segments = tuple(segs)
        self.terminal = bool(terminal)
        self.t_max = segs[-1].end
        # Precompute boundary cumulative hazards for vectorised evaluation.
        self._starts = np.array([s.start for s in segs])
        self._ends = np.array([s.end for s in segs])
        self._rates = np.array([s.hazard for s in segs])
        cum = np.concatenate([[0.0], np.cumsum(self._rates * (self._ends - self._starts))])
        self._cum_at_start = cum[:-1]

    def cumulative_hazard(self, t):
        """Vectorised ``H(t)`` = sum of completed segments + partial segment."""
        t_arr = np.asarray(t, dtype=float)
        tt = np.clip(t_arr, 0.0, self.t_max)
        idx = np.clip(np.searchsorted(self._ends, tt, side="right"), 0, len(self.segments) - 1)
        out = self._cum_at_start[idx] + self._rates[idx] * (tt - self._starts[idx])
        return out if out.ndim else float(out)

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = -np.expm1(-np.asarray(self.cumulative_hazard(t_arr), dtype=float))
        out = np.where(t_arr < 0.0, 0.0, out)
        if self.terminal:
            out = np.where(t_arr >= self.t_max, 1.0, out)
        return out if out.ndim else float(out)

    def pdf(self, t):
        """Density within segments; the terminal atom at ``t_max`` is *not*
        part of the density (it is a point mass of size ``S(t_max^-)``)."""
        t_arr = np.asarray(t, dtype=float)
        tt = np.clip(t_arr, 0.0, self.t_max)
        idx = np.clip(np.searchsorted(self._ends, tt, side="right"), 0, len(self.segments) - 1)
        haz = self._rates[idx]
        dens = haz * np.exp(-np.asarray(self.cumulative_hazard(tt), dtype=float))
        inside = (t_arr >= 0.0) & (t_arr < self.t_max)
        out = np.where(inside, dens, 0.0)
        return out if out.ndim else float(out)

    def terminal_atom(self) -> float:
        """Probability mass preempted exactly at the deadline."""
        if not self.terminal:
            return 0.0
        return float(np.exp(-self._cum_at_start[-1] - self._rates[-1] * self.segments[-1].duration))

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Inverse-transform sampling honouring the terminal atom."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if rng is None:
            rng = np.random.default_rng()
        u = rng.random(n)
        # Invert H: u -> t with H(t) = -log(1-u), per-segment linear inverse.
        target = -np.log1p(-np.clip(u, 0.0, 1.0 - 1e-15))
        cum_end = self._cum_at_start + self._rates * (self._ends - self._starts)
        idx = np.clip(np.searchsorted(cum_end, target, side="left"), 0, len(self.segments) - 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            within = np.where(
                self._rates[idx] > 0.0,
                (target - self._cum_at_start[idx]) / np.where(self._rates[idx] > 0.0, self._rates[idx], 1.0),
                np.inf,
            )
        t = self._starts[idx] + within
        return np.minimum(t, self.t_max)

    @classmethod
    def bathtub_three_phase(
        cls,
        *,
        early_hazard: float,
        stable_hazard: float,
        final_hazard: float,
        early_end: float = 3.0,
        final_start: float = 21.5,
        deadline: float = 24.0,
    ) -> "PiecewisePhaseDistribution":
        """The canonical three-phase bathtub of the paper's Observation 1."""
        return cls(
            [
                PhaseSegment(0.0, early_end, early_hazard),
                PhaseSegment(early_end, final_start, stable_hazard),
                PhaseSegment(final_start, deadline, final_hazard),
            ]
        )

"""Log-normal lifetimes — an additional unimodal-hazard comparator.

Not fitted in the paper's Fig. 1, but a standard survival-analysis
candidate; we include it in the model-selection study so the selection
machinery has a non-monotone-hazard classical alternative to reject.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["LogNormalLifetimeDistribution"]

_SQRT2 = math.sqrt(2.0)


class LogNormalLifetimeDistribution(LifetimeDistribution):
    """``log T ~ Normal(mu, sigma^2)``."""

    def __init__(self, mu: float, sigma: float, *, horizon: float | None = None):
        super().__init__()
        self.mu = float(mu)
        self.sigma = check_positive("sigma", sigma)
        if horizon is None:
            # 1 - 1e-9 quantile: mu + sigma * Phi^-1(1-1e-9), Phi^-1 ~ 6.0
            horizon = math.exp(self.mu + 6.0 * self.sigma)
        self.t_max = check_positive("horizon", horizon)

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        with np.errstate(divide="ignore"):
            z = (np.log(np.maximum(t_arr, 1e-300)) - self.mu) / self.sigma
        out = np.where(t_arr <= 0.0, 0.0, 0.5 * (1.0 + erf(z / _SQRT2)))
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        tt = np.maximum(t_arr, 1e-300)
        with np.errstate(divide="ignore"):
            z = (np.log(tt) - self.mu) / self.sigma
        dens = np.exp(-0.5 * z * z) / (tt * self.sigma * math.sqrt(2.0 * math.pi))
        out = np.where(t_arr <= 0.0, 0.0, dens)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Closed form ``exp(mu + sigma^2/2)``."""
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

"""Abstract lifetime-distribution interface.

Concrete subclasses implement ``cdf`` and ``pdf``; the base class derives
survival, hazard, sampling (inverse transform through a cached
interpolation table), and truncated first moments numerically.  Subclasses
with closed forms (exponential, bathtub) override the derived methods for
speed and exactness.

Design notes (HPC guide idioms):

* every method is vectorised — scalars in, scalars out; arrays in, arrays
  out — with no Python loops over elements;
* the inverse-CDF table is built lazily once and reused (cache, don't
  recompute);
* numeric moments use a single trapezoid pass over a shared grid.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.integrate import first_moment

__all__ = ["LifetimeDistribution"]

_PPF_TABLE_SIZE = 4097


class LifetimeDistribution(abc.ABC):
    """A distribution of non-negative VM lifetimes with bounded interest window.

    Attributes
    ----------
    t_max:
        Right edge used for sampling tables and numeric moments.  For
        deadline-bounded laws this is the true support edge; for unbounded
        laws (exponential, Weibull, ...) it is a practical horizon far into
        the tail (subclasses choose it so that ``F(t_max) ~ 1``).
    """

    #: Subclasses must set this in ``__init__``.
    t_max: float

    def __init__(self) -> None:
        self._ppf_grid: tuple[np.ndarray, np.ndarray] | None = None

    # -- abstract ------------------------------------------------------
    @abc.abstractmethod
    def cdf(self, t):
        """Cumulative distribution function, clamped to [0, 1]."""

    @abc.abstractmethod
    def pdf(self, t):
        """Probability density function (0 outside the support)."""

    # -- derived -------------------------------------------------------
    def sf(self, t):
        """Survival function ``1 - F(t)``."""
        t_arr = np.asarray(t, dtype=float)
        out = 1.0 - np.asarray(self.cdf(t_arr), dtype=float)
        return out if out.ndim else float(out)

    def hazard(self, t):
        """Hazard rate ``f(t)/S(t)`` (``inf`` where survival is 0)."""
        t_arr = np.asarray(t, dtype=float)
        f = np.asarray(self.pdf(t_arr), dtype=float)
        s = np.asarray(self.sf(t_arr), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(s > 0.0, f / np.where(s > 0.0, s, 1.0), np.inf)
        return out if out.ndim else float(out)

    def truncated_first_moment(self, a: float, c: float, *, num: int = 4097) -> float:
        """``int_a^c t f(t) dt``; numeric by default, exact in subclasses."""
        a = max(float(a), 0.0)
        c = min(float(c), self.t_max)
        if c <= a:
            return 0.0
        return first_moment(self.pdf, a, c, num=num)

    def truncated_first_moment_batch(self, a, c, *, num: int = 4097):
        """Vectorised ``int_a^c t f(t) dt`` over arrays of bounds.

        The generic implementation loops over the scalar
        :meth:`truncated_first_moment` (one numeric integration per
        element, elementwise identical to the scalar calls); subclasses
        with a closed-form antiderivative override it with one array
        pass.  Used by the batched Eq. 8 reuse decision in
        :mod:`repro.policies.scheduling`.
        """
        a_arr, c_arr = np.broadcast_arrays(
            np.asarray(a, dtype=float), np.asarray(c, dtype=float)
        )
        flat = np.array(
            [
                self.truncated_first_moment(float(x), float(y), num=num)
                for x, y in zip(a_arr.ravel(), c_arr.ravel())
            ],
            dtype=float,
        )
        return flat.reshape(a_arr.shape)

    def mean(self) -> float:
        """Mean lifetime over ``[0, t_max]``."""
        return self.truncated_first_moment(0.0, self.t_max)

    # -- sampling --------------------------------------------------------
    def _build_ppf_grid(self) -> tuple[np.ndarray, np.ndarray]:
        if self._ppf_grid is None:
            t = np.linspace(0.0, self.t_max, _PPF_TABLE_SIZE)
            q = np.asarray(self.cdf(t), dtype=float)
            # Enforce monotonicity against floating-point wobble so that
            # np.interp gives a well-defined inverse.
            q = np.maximum.accumulate(q)
            self._ppf_grid = (q, t)
        return self._ppf_grid

    def ppf(self, q):
        """Inverse CDF via the cached interpolation table."""
        grid_q, grid_t = self._build_ppf_grid()
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.interp(q_arr, grid_q, grid_t)
        return out if out.ndim else float(out)

    def ppf_table(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(q, t)`` grid with ``ppf(q) == np.interp(q, *table)``, or ``None``.

        The compiled replication backend (:mod:`repro.sim.compiled`)
        evaluates the inverse CDF inside its inner loop; to stay
        bit-identical to the NumPy kernels it needs the exact
        interpolation table ``ppf`` reads.  Subclasses that override
        :meth:`ppf` with a closed form return ``None`` (the compiled
        path then falls back to Python-side ``ppf`` rows).
        """
        if type(self).ppf is not LifetimeDistribution.ppf:
            return None
        return self._build_ppf_grid()

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` lifetimes (inverse-transform sampling)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if rng is None:
            rng = np.random.default_rng()
        return np.asarray(self.ppf(rng.random(n)), dtype=float)

    # -- conveniences ----------------------------------------------------
    def conditional_failure_probability(self, s: float, width: float) -> float:
        """``P(T <= s + width | T > s)``; 1.0 when survival at ``s`` is 0."""
        s = max(float(s), 0.0)
        width = max(float(width), 0.0)
        surv = float(np.asarray(self.sf(s), dtype=float))
        if surv <= 0.0:
            return 1.0
        delta = float(np.asarray(self.cdf(s + width), dtype=float)) - float(
            np.asarray(self.cdf(s), dtype=float)
        )
        return min(max(delta / surv, 0.0), 1.0)

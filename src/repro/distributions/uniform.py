"""Uniform preemptions on ``[0, L]`` — the Fig. 4 thought-experiment baseline.

Section 6.1 compares bathtub preemptions against preemptions spread
uniformly over the 24 h window: ``F(t) = t / L``.  Under this law the
expected single-preemption waste of a job of length ``J`` is exactly
``J/2`` and the expected increase in running time is ``J^2 / (2L)``
(``= J^2/48`` for ``L = 24``), both of which this class reproduces in
closed form and the tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["UniformLifetimeDistribution"]


class UniformLifetimeDistribution(LifetimeDistribution):
    """Uniform lifetimes on ``[0, L]`` (default ``L = 24`` hours)."""

    def __init__(self, L: float = 24.0):
        super().__init__()
        self.L = check_positive("L", L)
        self.t_max = self.L

    def cdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.clip(t_arr / self.L, 0.0, 1.0)
        return out if out.ndim else float(out)

    def pdf(self, t):
        t_arr = np.asarray(t, dtype=float)
        inside = (t_arr >= 0.0) & (t_arr <= self.L)
        out = np.where(inside, 1.0 / self.L, 0.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = q_arr * self.L
        return out if out.ndim else float(out)

    def truncated_first_moment(self, a: float, c: float, *, num: int = 0) -> float:
        """Closed form ``(c^2 - a^2) / (2 L)`` on the support."""
        a = min(max(float(a), 0.0), self.L)
        c = min(max(float(c), 0.0), self.L)
        if c <= a:
            return 0.0
        return (c * c - a * a) / (2.0 * self.L)

    def mean(self) -> float:
        return self.L / 2.0

"""Goodness-of-fit metrics for CDF fits.

The paper reports goodness of fit via r-squared (Section 6.2.1 speaks of
"high goodness-of-fit (r2) error"); we add RMSE, the Kolmogorov-Smirnov
statistic, and sample-based AIC so model selection has standard criteria.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.fitting.ecdf import EmpiricalCDF

__all__ = ["r_squared", "rmse", "ks_statistic", "GoodnessOfFit", "evaluate_fit"]


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination ``1 - SS_res/SS_tot``."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValueError("observed and predicted must have the same shape")
    resid = observed - predicted
    ss_res = float(np.dot(resid, resid))
    centred = observed - observed.mean()
    ss_tot = float(np.dot(centred, centred))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot


def rmse(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Root-mean-square error."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValueError("observed and predicted must have the same shape")
    return float(np.sqrt(np.mean((observed - predicted) ** 2)))


def ks_statistic(ecdf: EmpiricalCDF, dist: LifetimeDistribution) -> float:
    """Kolmogorov-Smirnov ``sup_t |F_hat(t) - F(t)|`` over the event grid.

    Evaluated at the empirical jump points (both sides of each step), the
    exact supremum for a step ECDF against a continuous model.
    """
    t = ecdf.times
    model = np.asarray(dist.cdf(t), dtype=float)
    upper = ecdf.probabilities
    lower = np.concatenate([[0.0], ecdf.probabilities[:-1]])
    return float(np.max(np.maximum(np.abs(upper - model), np.abs(model - lower))))


@dataclass(frozen=True)
class GoodnessOfFit:
    """Bundle of fit-quality metrics for one fitted distribution."""

    r2: float
    rmse: float
    ks: float
    log_likelihood: float
    aic: float
    n_params: int


def evaluate_fit(
    ecdf: EmpiricalCDF,
    dist: LifetimeDistribution,
    lifetimes: np.ndarray,
    *,
    n_params: int,
    grid_num: int = 256,
) -> GoodnessOfFit:
    """Score a fitted distribution on both the CDF grid and the raw samples."""
    t, y = ecdf.grid(grid_num)
    pred = np.asarray(dist.cdf(t), dtype=float)
    lifetimes = np.asarray(lifetimes, dtype=float)
    dens = np.asarray(dist.pdf(lifetimes), dtype=float)
    # Terminal atoms / support clamps can yield zero density at observed
    # points; floor to keep the likelihood finite while penalising.
    loglik = float(np.sum(np.log(np.maximum(dens, 1e-300))))
    aic = 2.0 * n_params - 2.0 * loglik
    return GoodnessOfFit(
        r2=r_squared(y, pred),
        rmse=rmse(y, pred),
        ks=ks_statistic(ecdf, dist),
        log_likelihood=loglik,
        aic=aic,
        n_params=n_params,
    )

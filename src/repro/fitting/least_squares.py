"""Least-squares CDF fitting of every candidate model (paper Fig. 1).

The paper fits Eq. 1 to the empirical CDF "using least squares function
fitting methods (we use scipy's optimize.curve_fit with the dogbox
technique)".  We do exactly that for the bathtub model, and fit the
classical baselines (exponential, Weibull, Gompertz-Makeham) the same
way so the Fig. 1 comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy.optimize import curve_fit

from repro.core.model import BathtubParams, ConstrainedPreemptionModel
from repro.distributions.base import LifetimeDistribution
from repro.distributions.bathtub import BathtubDistribution
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.gompertz import GompertzMakehamDistribution
from repro.distributions.piecewise import PiecewisePhaseDistribution
from repro.distributions.weibull import WeibullDistribution
from repro.fitting.ecdf import EmpiricalCDF

__all__ = [
    "FitResult",
    "fit_bathtub",
    "fit_exponential",
    "fit_weibull",
    "fit_gompertz_makeham",
    "fit_piecewise_bathtub",
]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a least-squares CDF fit.

    Attributes
    ----------
    name:
        Model family name (``"bathtub"``, ``"exponential"``, ...).
    distribution:
        The fitted distribution object.
    params:
        Fitted parameters by name.
    sse:
        Sum of squared CDF residuals on the fitting grid.
    """

    name: str
    distribution: LifetimeDistribution
    params: Mapping[str, float]
    sse: float


def _grid_from(ecdf: EmpiricalCDF, num: int) -> tuple[np.ndarray, np.ndarray]:
    return ecdf.grid(num)


def _sse(model_cdf: Callable[[np.ndarray], np.ndarray], t: np.ndarray, y: np.ndarray) -> float:
    resid = np.asarray(model_cdf(t), dtype=float) - y
    return float(np.dot(resid, resid))


def fit_bathtub(
    ecdf: EmpiricalCDF,
    *,
    num: int = 256,
    deadline_guess: float = 24.0,
) -> FitResult:
    """Fit Eq. 1 with ``curve_fit(method="dogbox")`` (the paper's recipe).

    Initial guess and bounds encode the boundary condition ``F(0) ~ 0``
    and the published parameter ranges, keeping the optimiser inside the
    physically meaningful region.
    """
    t, y = _grid_from(ecdf, num)
    p0 = (0.45, 1.5, 0.8, deadline_guess)
    bounds = (
        [0.05, 0.05, 0.05, deadline_guess * 0.5],
        [0.999, 50.0, 10.0, deadline_guess * 1.5],
    )
    popt, _ = curve_fit(
        ConstrainedPreemptionModel.cdf_function,
        t,
        y,
        p0=p0,
        bounds=bounds,
        method="dogbox",
        maxfev=20000,
    )
    params = BathtubParams(A=popt[0], tau1=popt[1], tau2=popt[2], b=popt[3])
    dist = BathtubDistribution(params)
    return FitResult(
        name="bathtub",
        distribution=dist,
        params=params.as_dict(),
        sse=_sse(dist.cdf, t, y),
    )


def fit_exponential(ecdf: EmpiricalCDF, *, num: int = 256) -> FitResult:
    """Fit ``F(t) = 1 - e^{-lambda t}`` by least squares on the CDF."""
    t, y = _grid_from(ecdf, num)

    def cdf(tt, rate):
        return 1.0 - np.exp(-rate * tt)

    popt, _ = curve_fit(cdf, t, y, p0=(0.2,), bounds=([1e-6], [100.0]), method="dogbox")
    dist = ExponentialDistribution(rate=float(popt[0]))
    return FitResult(
        name="exponential",
        distribution=dist,
        params={"rate": float(popt[0])},
        sse=_sse(dist.cdf, t, y),
    )


def fit_weibull(ecdf: EmpiricalCDF, *, num: int = 256) -> FitResult:
    """Fit the classic Weibull CDF ``1 - e^{-(lambda t)^k}``."""
    t, y = _grid_from(ecdf, num)

    def cdf(tt, lam, k):
        return 1.0 - np.exp(-((lam * np.maximum(tt, 0.0)) ** k))

    popt, _ = curve_fit(
        cdf, t, y, p0=(0.1, 1.0), bounds=([1e-6, 0.05], [10.0, 20.0]), method="dogbox",
        maxfev=20000,
    )
    dist = WeibullDistribution(lam=float(popt[0]), k=float(popt[1]))
    return FitResult(
        name="weibull",
        distribution=dist,
        params={"lam": float(popt[0]), "k": float(popt[1])},
        sse=_sse(dist.cdf, t, y),
    )


def fit_gompertz_makeham(ecdf: EmpiricalCDF, *, num: int = 256) -> FitResult:
    """Fit the Gompertz-Makeham CDF of Section 3.2.1."""
    t, y = _grid_from(ecdf, num)

    def cdf(tt, lam, alpha, beta):
        return 1.0 - np.exp(-lam * tt - (alpha / beta) * np.expm1(beta * tt))

    popt, _ = curve_fit(
        cdf,
        t,
        y,
        p0=(0.05, 1e-3, 0.3),
        bounds=([1e-8, 1e-10, 1e-3], [10.0, 1.0, 3.0]),
        method="dogbox",
        maxfev=40000,
    )
    dist = GompertzMakehamDistribution(
        lam=float(popt[0]), alpha=float(popt[1]), beta=float(popt[2])
    )
    return FitResult(
        name="gompertz-makeham",
        distribution=dist,
        params={"lam": float(popt[0]), "alpha": float(popt[1]), "beta": float(popt[2])},
        sse=_sse(dist.cdf, t, y),
    )


def fit_piecewise_bathtub(
    ecdf: EmpiricalCDF,
    *,
    num: int = 256,
    early_end: float = 3.0,
    final_start: float = 21.5,
    deadline: float = 24.0,
) -> FitResult:
    """Fit the Section 8 three-segment phase-wise model.

    Phase boundaries are fixed (they come from the statistical analysis);
    the three hazards are the free parameters.
    """
    t, y = _grid_from(ecdf, num)

    def cdf(tt, h_early, h_stable, h_final):
        dist = PiecewisePhaseDistribution.bathtub_three_phase(
            early_hazard=h_early,
            stable_hazard=h_stable,
            final_hazard=h_final,
            early_end=early_end,
            final_start=final_start,
            deadline=deadline,
        )
        return np.asarray(dist.cdf(tt), dtype=float)

    popt, _ = curve_fit(
        cdf,
        t,
        y,
        p0=(0.2, 0.02, 1.0),
        bounds=([1e-6, 1e-8, 1e-6], [20.0, 5.0, 50.0]),
        method="dogbox",
        maxfev=20000,
    )
    dist = PiecewisePhaseDistribution.bathtub_three_phase(
        early_hazard=float(popt[0]),
        stable_hazard=float(popt[1]),
        final_hazard=float(popt[2]),
        early_end=early_end,
        final_start=final_start,
        deadline=deadline,
    )
    return FitResult(
        name="piecewise",
        distribution=dist,
        params={
            "early_hazard": float(popt[0]),
            "stable_hazard": float(popt[1]),
            "final_hazard": float(popt[2]),
        },
        sse=_sse(dist.cdf, t, y),
    )

"""Model fitting and statistical validation.

Implements the paper's fitting pipeline (Section 3.2): build an empirical
CDF from observed preemptions, least-squares fit candidate distributions
with :func:`scipy.optimize.curve_fit` (``method="dogbox"``, as the paper
specifies), score goodness of fit, and select among models.  Extensions:
maximum-likelihood fitting, Kaplan-Meier handling of censored records,
bootstrap confidence intervals, and the Section 8 change-point detector.
"""

from repro.fitting.ecdf import EmpiricalCDF, kaplan_meier
from repro.fitting.least_squares import (
    FitResult,
    fit_bathtub,
    fit_exponential,
    fit_gompertz_makeham,
    fit_piecewise_bathtub,
    fit_weibull,
)
from repro.fitting.metrics import GoodnessOfFit, evaluate_fit, ks_statistic, r_squared, rmse
from repro.fitting.mle import mle_bathtub, mle_exponential
from repro.fitting.selection import ModelComparison, compare_models
from repro.fitting.bootstrap import bootstrap_bathtub_ci
from repro.fitting.changepoint import ChangePointReport, detect_policy_change

__all__ = [
    "EmpiricalCDF",
    "kaplan_meier",
    "FitResult",
    "fit_bathtub",
    "fit_exponential",
    "fit_gompertz_makeham",
    "fit_piecewise_bathtub",
    "fit_weibull",
    "GoodnessOfFit",
    "evaluate_fit",
    "ks_statistic",
    "r_squared",
    "rmse",
    "mle_bathtub",
    "mle_exponential",
    "ModelComparison",
    "compare_models",
    "bootstrap_bathtub_ci",
    "ChangePointReport",
    "detect_policy_change",
]

"""Empirical CDF estimation, with and without right-censoring.

The plain ECDF is what the paper fits against (all of its VMs were
observed to preemption).  :func:`kaplan_meier` generalises to censored
records — VMs the *user* terminated before the provider preempted them —
which arises naturally when traces come from a production service rather
than a dedicated study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmpiricalCDF", "kaplan_meier"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """Step-function empirical CDF over observed lifetimes.

    Attributes
    ----------
    times:
        Sorted distinct observation times.
    probabilities:
        ``P(T <= times[i])`` — right-continuous step heights.
    n:
        Number of observations behind the estimate.
    """

    times: np.ndarray
    probabilities: np.ndarray
    n: int

    @classmethod
    def from_samples(cls, lifetimes: np.ndarray) -> "EmpiricalCDF":
        """Standard ECDF: ``F_hat(t) = #{x_i <= t} / n``."""
        lifetimes = np.asarray(lifetimes, dtype=float)
        if lifetimes.size == 0:
            raise ValueError("cannot build an ECDF from zero samples")
        if np.any(lifetimes < 0):
            raise ValueError("lifetimes must be non-negative")
        srt = np.sort(lifetimes)
        times, counts = np.unique(srt, return_counts=True)
        probs = np.cumsum(counts) / lifetimes.size
        return cls(times=times, probabilities=probs, n=int(lifetimes.size))

    def evaluate(self, t) -> np.ndarray:
        """Evaluate the step function at times ``t`` (vectorised)."""
        t_arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times, t_arr, side="right")
        padded = np.concatenate([[0.0], self.probabilities])
        out = padded[idx]
        return out if out.ndim else float(out)

    def grid(self, num: int = 256) -> tuple[np.ndarray, np.ndarray]:
        """A uniform (t, F_hat(t)) grid over [0, max lifetime] for fitting."""
        t = np.linspace(0.0, float(self.times[-1]), num)
        return t, np.asarray(self.evaluate(t), dtype=float)

    def median(self) -> float:
        """Smallest observed time with ``F_hat >= 0.5``."""
        idx = int(np.searchsorted(self.probabilities, 0.5, side="left"))
        idx = min(idx, len(self.times) - 1)
        return float(self.times[idx])


def kaplan_meier(
    lifetimes: np.ndarray,
    censored: np.ndarray,
) -> EmpiricalCDF:
    """Kaplan-Meier estimate of the preemption CDF with right-censoring.

    Parameters
    ----------
    lifetimes:
        Observation times (to preemption, or to censoring).
    censored:
        Boolean array: True where the VM was *not* preempted (censored).

    Returns
    -------
    EmpiricalCDF
        ``1 - S_hat(t)`` evaluated at the distinct event times.
    """
    lifetimes = np.asarray(lifetimes, dtype=float)
    censored = np.asarray(censored, dtype=bool)
    if lifetimes.shape != censored.shape:
        raise ValueError("lifetimes and censored must have the same shape")
    if lifetimes.size == 0:
        raise ValueError("cannot build a Kaplan-Meier estimate from zero samples")
    if np.any(lifetimes < 0):
        raise ValueError("lifetimes must be non-negative")
    order = np.argsort(lifetimes, kind="stable")
    t_sorted = lifetimes[order]
    event = ~censored[order]
    # Distinct event times (where a preemption occurred).
    event_times = np.unique(t_sorted[event])
    if event_times.size == 0:
        raise ValueError("all observations are censored; the CDF is unidentified")
    # At each event time: deaths d_i and at-risk count n_i.
    n_total = lifetimes.size
    # at risk at time t: observations with t_sorted >= t
    at_risk = n_total - np.searchsorted(t_sorted, event_times, side="left")
    deaths = np.array(
        [np.count_nonzero((t_sorted == t) & event) for t in event_times], dtype=float
    )
    surv = np.cumprod(1.0 - deaths / at_risk)
    return EmpiricalCDF(times=event_times, probabilities=1.0 - surv, n=int(n_total))

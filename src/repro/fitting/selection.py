"""Model selection across the candidate distribution families.

Automates the paper's Fig. 1 comparison: fit every family to the same
empirical CDF, score each with :mod:`repro.fitting.metrics`, and rank.
On bathtub data the paper's model must win by a wide margin — the
integration tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import (
    FitResult,
    fit_bathtub,
    fit_exponential,
    fit_gompertz_makeham,
    fit_piecewise_bathtub,
    fit_weibull,
)
from repro.fitting.metrics import GoodnessOfFit, evaluate_fit

__all__ = ["ModelComparison", "compare_models"]

_N_PARAMS = {
    "bathtub": 4,
    "exponential": 1,
    "weibull": 2,
    "gompertz-makeham": 3,
    "piecewise": 3,
}

_FITTERS = {
    "bathtub": fit_bathtub,
    "exponential": fit_exponential,
    "weibull": fit_weibull,
    "gompertz-makeham": fit_gompertz_makeham,
    "piecewise": fit_piecewise_bathtub,
}


@dataclass(frozen=True)
class ModelComparison:
    """All fits plus their scores, ranked best-first by RMSE."""

    fits: dict[str, FitResult]
    scores: dict[str, GoodnessOfFit]
    ranking: tuple[str, ...]

    @property
    def best(self) -> str:
        """Name of the winning family."""
        return self.ranking[0]

    def improvement_over(self, other: str, *, metric: str = "rmse") -> float:
        """Factor by which the best model beats ``other`` on ``metric``."""
        best_val = getattr(self.scores[self.best], metric)
        other_val = getattr(self.scores[other], metric)
        if best_val == 0.0:
            return float("inf")
        return other_val / best_val


def compare_models(
    ecdf: EmpiricalCDF,
    lifetimes: np.ndarray,
    *,
    families: tuple[str, ...] = ("bathtub", "exponential", "weibull", "gompertz-makeham"),
    grid_num: int = 256,
) -> ModelComparison:
    """Fit and score the requested families against one empirical CDF.

    Families that fail to converge are dropped from the comparison rather
    than aborting it (mirrors how a production fitter must behave when a
    family simply cannot express the data).
    """
    fits: dict[str, FitResult] = {}
    scores: dict[str, GoodnessOfFit] = {}
    for name in families:
        try:
            fitter = _FITTERS[name]
        except KeyError:
            raise ValueError(f"unknown model family {name!r}") from None
        try:
            result = fitter(ecdf, num=grid_num)
        except RuntimeError:  # curve_fit convergence failure
            continue
        fits[name] = result
        scores[name] = evaluate_fit(
            ecdf,
            result.distribution,
            lifetimes,
            n_params=_N_PARAMS[name],
            grid_num=grid_num,
        )
    if not fits:
        raise RuntimeError("no candidate family converged")
    ranking = tuple(sorted(fits, key=lambda n: scores[n].rmse))
    return ModelComparison(fits=fits, scores=scores, ranking=ranking)

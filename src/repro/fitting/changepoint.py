"""Preemption-policy drift detection (paper Section 8).

"Our model allows detecting policy and phase changes by comparing
observed data with model-predictions and detect change-points, and a
long-running cloud service can continuously update the model based on
recent preemption behavior."

Implementation: a sequential two-sample monitor.  Maintain the fitted
reference model; for each new window of observed lifetimes compute the
Kolmogorov-Smirnov distance between the window's ECDF and the model CDF
and flag a change when it exceeds the (sample-size aware) critical value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.metrics import ks_statistic

__all__ = ["ChangePointReport", "detect_policy_change", "PolicyDriftMonitor"]


def _ks_critical(n: int, alpha: float) -> float:
    """One-sample KS critical value (asymptotic): ``c(alpha)/sqrt(n)``."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c / math.sqrt(n)


@dataclass(frozen=True)
class ChangePointReport:
    """Outcome of a drift test on one observation window."""

    ks: float
    critical: float
    n: int
    alpha: float
    changed: bool


def detect_policy_change(
    reference: LifetimeDistribution,
    window_lifetimes: np.ndarray,
    *,
    alpha: float = 0.01,
) -> ChangePointReport:
    """Test whether ``window_lifetimes`` still follow ``reference``.

    Returns a report; ``report.changed`` is True when the KS distance
    between the window ECDF and the reference CDF exceeds the critical
    value at significance ``alpha``.
    """
    window_lifetimes = np.asarray(window_lifetimes, dtype=float)
    if window_lifetimes.size < 8:
        raise ValueError("need at least 8 observations per drift window")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    ecdf = EmpiricalCDF.from_samples(window_lifetimes)
    ks = ks_statistic(ecdf, reference)
    crit = _ks_critical(window_lifetimes.size, alpha)
    return ChangePointReport(
        ks=ks, critical=crit, n=int(window_lifetimes.size), alpha=alpha, changed=ks > crit
    )


class PolicyDriftMonitor:
    """Streaming drift monitor over fixed-size windows of lifetimes.

    Feed observed preemption lifetimes one at a time with
    :meth:`observe`; every full window is tested against the reference
    model and appended to :attr:`reports`.
    """

    def __init__(
        self,
        reference: LifetimeDistribution,
        *,
        window: int = 50,
        alpha: float = 0.01,
    ):
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        self.reference = reference
        self.window = int(window)
        self.alpha = float(alpha)
        self._buffer: list[float] = []
        self.reports: list[ChangePointReport] = []

    def observe(self, lifetime: float) -> ChangePointReport | None:
        """Record one lifetime; returns a report when a window completes."""
        if lifetime < 0:
            raise ValueError(f"lifetime must be >= 0, got {lifetime}")
        self._buffer.append(float(lifetime))
        if len(self._buffer) < self.window:
            return None
        report = detect_policy_change(
            self.reference, np.asarray(self._buffer), alpha=self.alpha
        )
        self.reports.append(report)
        self._buffer.clear()
        return report

    @property
    def drift_detected(self) -> bool:
        """True if any completed window flagged a change."""
        return any(r.changed for r in self.reports)

"""Maximum-likelihood fitting — an alternative to least-squares CDF fits.

The paper fits CDFs by least squares; MLE is the statistically efficient
alternative and serves as a cross-check: on synthetic data both methods
must recover the ground-truth parameters within sampling noise, which the
tests assert.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.core.model import BathtubParams
from repro.distributions.bathtub import BathtubDistribution
from repro.distributions.exponential import ExponentialDistribution

__all__ = ["mle_exponential", "mle_bathtub"]


def mle_exponential(lifetimes: np.ndarray) -> ExponentialDistribution:
    """Closed-form exponential MLE: ``rate = 1 / mean``."""
    lifetimes = np.asarray(lifetimes, dtype=float)
    if lifetimes.size == 0:
        raise ValueError("need at least one observation")
    mean = float(np.mean(lifetimes))
    if mean <= 0.0:
        raise ValueError("mean lifetime must be positive")
    return ExponentialDistribution(rate=1.0 / mean)


def _bathtub_negloglik(theta: np.ndarray, lifetimes: np.ndarray) -> float:
    A, tau1, tau2, b = theta
    try:
        dist = BathtubDistribution(BathtubParams(A=A, tau1=tau1, tau2=tau2, b=b))
    except ValueError:
        return 1e12
    dens = np.asarray(dist.pdf(lifetimes), dtype=float)
    if np.any(dens <= 0.0):
        # Observations outside the candidate support: strongly penalised
        # but smooth enough for the optimiser to climb out.
        dens = np.maximum(dens, 1e-12)
    # The fitted F may not integrate to exactly 1 over the support when
    # F(0) > 0; the normalisation term keeps the likelihood proper.
    mass = float(dist.cdf(dist.t_max)) - float(dist.cdf(0.0))
    if mass <= 0.0:
        return 1e12
    return float(-(np.sum(np.log(dens)) - lifetimes.size * np.log(mass)))


def mle_bathtub(
    lifetimes: np.ndarray,
    *,
    x0: BathtubParams | None = None,
    deadline_guess: float = 24.0,
) -> BathtubDistribution:
    """Numerically maximise the Eq. 2 likelihood (Nelder-Mead with bounds).

    Parameters
    ----------
    lifetimes:
        Observed (uncensored) lifetimes in hours.
    x0:
        Optional starting point; defaults to the paper's typical fit.
    deadline_guess:
        Initial value for ``b``.
    """
    lifetimes = np.asarray(lifetimes, dtype=float)
    if lifetimes.size < 4:
        raise ValueError("need at least 4 observations for a 4-parameter MLE")
    if x0 is None:
        x0 = BathtubParams(A=0.45, tau1=1.5, tau2=0.8, b=deadline_guess)
    theta0 = np.array(x0.as_tuple())
    res = minimize(
        _bathtub_negloglik,
        theta0,
        args=(lifetimes,),
        method="Nelder-Mead",
        options={"maxiter": 4000, "xatol": 1e-6, "fatol": 1e-9},
    )
    A, tau1, tau2, b = res.x
    return BathtubDistribution(BathtubParams(A=float(A), tau1=float(tau1), tau2=float(tau2), b=float(b)))

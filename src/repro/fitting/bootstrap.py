"""Bootstrap confidence intervals for fitted bathtub parameters.

The paper reports point estimates only; a production service acting on a
fitted model should know how tight those estimates are.  Nonparametric
bootstrap: resample lifetimes with replacement, refit Eq. 1, report
percentile intervals per parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import fit_bathtub

__all__ = ["BootstrapCI", "bootstrap_bathtub_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile bootstrap interval for one parameter."""

    name: str
    point: float
    low: float
    high: float
    level: float

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def bootstrap_bathtub_ci(
    lifetimes: np.ndarray,
    *,
    n_boot: int = 200,
    level: float = 0.95,
    seed: int = 0,
    grid_num: int = 128,
) -> dict[str, BootstrapCI]:
    """Bootstrap CIs for ``A, tau1, tau2, b``.

    Resamples that fail to fit are skipped (and counted against
    ``n_boot``); at least 20 successful refits are required.
    """
    lifetimes = np.asarray(lifetimes, dtype=float)
    if lifetimes.size < 10:
        raise ValueError("need at least 10 observations to bootstrap")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    rng = np.random.default_rng(seed)
    point_fit = fit_bathtub(EmpiricalCDF.from_samples(lifetimes), num=grid_num)
    draws: dict[str, list[float]] = {k: [] for k in point_fit.params}
    successes = 0
    for _ in range(n_boot):
        resampled = rng.choice(lifetimes, size=lifetimes.size, replace=True)
        try:
            fit = fit_bathtub(EmpiricalCDF.from_samples(resampled), num=grid_num)
        except RuntimeError:
            continue
        successes += 1
        for k, v in fit.params.items():
            draws[k].append(v)
    if successes < 20:
        raise RuntimeError(
            f"only {successes}/{n_boot} bootstrap refits converged; cannot form CIs"
        )
    alpha = (1.0 - level) / 2.0
    out: dict[str, BootstrapCI] = {}
    for k, values in draws.items():
        arr = np.asarray(values, dtype=float)
        out[k] = BootstrapCI(
            name=k,
            point=float(point_fit.params[k]),
            low=float(np.quantile(arr, alpha)),
            high=float(np.quantile(arr, 1.0 - alpha)),
            level=level,
        )
    return out

"""Synthetic preemption-trace substrate.

The paper's empirical study launched 870 real Google Preemptible VMs; we
have no cloud, so this package provides the closest synthetic equivalent
(see DESIGN.md, substitution table):

* :mod:`repro.traces.schema` -- the preemption-record data model,
* :mod:`repro.traces.catalog` -- ground-truth bathtub parameters per VM
  type / region / time-of-day / workload, tuned to the paper's reported
  fit ranges and qualitative observations 1-5,
* :mod:`repro.traces.generator` -- seeded sampling of preemption records,
* :mod:`repro.traces.io` -- CSV/JSON round-trip (the public dataset format),
* :mod:`repro.traces.stats` -- per-group summary statistics,
* :mod:`repro.traces.swf` -- Standard Workload Format ingestion (real
  cluster logs -> multi-tenant traffic).
"""

from repro.traces.schema import PreemptionRecord, PreemptionTrace, TraceMetadata
from repro.traces.catalog import (
    GroundTruthCatalog,
    VMSpec,
    default_catalog,
    REGIONS,
    VM_TYPES,
)
from repro.traces.generator import TraceGenerator
from repro.traces.io import load_trace_csv, load_trace_json, save_trace_csv, save_trace_json
from repro.traces.stats import group_summary, lifetimes_by, trace_summary
from repro.traces.swf import SAMPLE_SWF, SWFJob, SWFLog, parse_swf, swf_traffic

__all__ = [
    "SAMPLE_SWF",
    "SWFJob",
    "SWFLog",
    "parse_swf",
    "swf_traffic",
    "PreemptionRecord",
    "PreemptionTrace",
    "TraceMetadata",
    "GroundTruthCatalog",
    "VMSpec",
    "default_catalog",
    "REGIONS",
    "VM_TYPES",
    "TraceGenerator",
    "load_trace_csv",
    "load_trace_json",
    "save_trace_csv",
    "save_trace_json",
    "group_summary",
    "lifetimes_by",
    "trace_summary",
]

"""Standard Workload Format (SWF) trace ingestion.

SWF is the lingua franca of the parallel-workload archives consumed by
accasim-style workload simulators: ``;``-prefixed header directives
followed by one whitespace-separated 18-field record per job (job
number, submit/wait/run times in seconds, allocated processors, ...,
user and group IDs).  ``-1`` marks a missing value throughout.

This module turns such a log (e.g. an HPC2N-style cluster trace) into
the tenancy layer's traffic vocabulary:

* :func:`parse_swf` -- strict structural parse into an :class:`SWFLog`
  (header directives + :class:`SWFJob` records, malformed lines
  rejected with their line number),
* :func:`swf_traffic` -- the :func:`repro.traffic.arrivals.sample_traffic`
  -compatible entry point: jobs become :class:`BagSubmission` s, tenants
  are the trace's user (or group) IDs densely renumbered by first
  appearance, and jobs a tenant submitted in the same second coalesce
  into one bag (SWF array submissions).

The result feeds :func:`repro.sim.backend.run_tenant_replications`
directly; ``max_jobs`` slices let the event oracle replay a prefix of
the very same trace for equivalence pinning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.sim.cluster_vectorized import GangJob
from repro.sim.tenancy_vectorized import BagSubmission, normalize_traffic
from repro.utils.validation import check_positive

__all__ = [
    "SWFJob",
    "SWFLog",
    "parse_swf",
    "swf_traffic",
    "SWF_FIELDS",
    "SAMPLE_SWF",
]

#: Checked-in miniature HPC2N-style log (directives, array submissions,
#: -1 fallbacks) used by the tests, benchmarks, and the ``swf-tenants``
#: experiment.
SAMPLE_SWF = Path(__file__).parent / "data" / "sample.swf"

#: The 18 record fields of the standard, in order.
SWF_FIELDS = (
    "job_id",
    "submit_s",
    "wait_s",
    "run_s",
    "alloc_procs",
    "avg_cpu_s",
    "used_mem_kb",
    "req_procs",
    "req_time_s",
    "req_mem_kb",
    "status",
    "user",
    "group",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time_s",
)

_INT_FIELDS = frozenset(
    {
        "job_id",
        "alloc_procs",
        "req_procs",
        "status",
        "user",
        "group",
        "executable",
        "queue",
        "partition",
        "preceding_job",
    }
)


@dataclass(frozen=True)
class SWFJob:
    """One SWF job record (seconds and KB as in the raw log; -1 = missing)."""

    job_id: int
    submit_s: float
    wait_s: float
    run_s: float
    alloc_procs: int
    avg_cpu_s: float
    used_mem_kb: float
    req_procs: int
    req_time_s: float
    req_mem_kb: float
    status: int
    user: int
    group: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time_s: float

    @property
    def runtime_s(self) -> float:
        """Measured runtime, falling back to the requested time."""
        return self.run_s if self.run_s > 0.0 else self.req_time_s

    @property
    def procs(self) -> int:
        """Allocated processors, falling back to the requested count."""
        return self.alloc_procs if self.alloc_procs > 0 else self.req_procs


@dataclass(frozen=True)
class SWFLog:
    """A parsed SWF trace: header directives plus job records."""

    header: dict[str, str]
    jobs: tuple[SWFJob, ...]
    source: str = ""

    def __len__(self) -> int:
        return len(self.jobs)


def parse_swf(path: str | Path) -> SWFLog:
    """Parse an SWF log file.

    Header directives (``; Key: Value``) collect into
    :attr:`SWFLog.header`; every non-comment, non-blank line must carry
    exactly the 18 numeric fields of the standard — anything else
    raises ``ValueError`` naming the offending line.
    """
    path = Path(path)
    header: dict[str, str] = {}
    jobs: list[SWFJob] = []
    with path.open() as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";"):
                body = line.lstrip(";").strip()
                if ":" in body:
                    key, _, value = body.partition(":")
                    header[key.strip()] = value.strip()
                continue
            fields = line.split()
            if len(fields) != len(SWF_FIELDS):
                raise ValueError(
                    f"{path.name}:{lineno}: expected {len(SWF_FIELDS)} "
                    f"fields, got {len(fields)}"
                )
            values = {}
            for name, token in zip(SWF_FIELDS, fields):
                try:
                    values[name] = (
                        int(token) if name in _INT_FIELDS else float(token)
                    )
                except ValueError:
                    raise ValueError(
                        f"{path.name}:{lineno}: field {name!r} is not "
                        f"numeric: {token!r}"
                    ) from None
                if name not in _INT_FIELDS and not math.isfinite(values[name]):
                    # float() accepts "nan"/"inf", which would otherwise
                    # leak past the -1 missing-value convention and
                    # poison downstream arithmetic silently.
                    raise ValueError(
                        f"{path.name}:{lineno}: field {name!r} is not "
                        f"finite: {token!r}"
                    )
            jobs.append(SWFJob(**values))
    return SWFLog(header=header, jobs=tuple(jobs), source=str(path))


def swf_traffic(
    path: str | Path,
    *,
    tenant_field: str = "user",
    width_cap: int | None = None,
    max_jobs: int | None = None,
    horizon_hours: float | None = None,
) -> tuple[BagSubmission, ...]:
    """SWF log -> time-sorted :class:`BagSubmission` traffic.

    The mapping onto the tenancy vocabulary:

    * **tenant** — the record's ``user`` (or ``group``, via
      ``tenant_field``) ID, densely renumbered ``0..T-1`` by first
      appearance in submit order, so tenant ids are deterministic for a
      given trace regardless of the raw ID values (``-1`` unknowns form
      their own tenant).
    * **time** — submit time in hours, shifted so the first usable job
      arrives at 0.
    * **bag** — jobs one tenant submitted in the same second form one
      bag (array submissions); otherwise one job per bag.
    * **job** — ``work_hours`` from the measured runtime (requested
      time when unmeasured), ``width`` from allocated processors
      (requested when unallocated), optionally clipped to
      ``width_cap`` so wide HPC gangs fit a bounded fleet.

    Jobs with no positive runtime or processor count even after the
    fallbacks are skipped.  ``max_jobs`` keeps only the first N usable
    jobs and ``horizon_hours`` only those submitted inside the window —
    the slicing knobs the event-oracle equivalence runs use.
    """
    if tenant_field not in ("user", "group"):
        raise ValueError(
            f"tenant_field must be 'user' or 'group', got {tenant_field!r}"
        )
    if width_cap is not None:
        check_positive("width_cap", width_cap)
    if max_jobs is not None:
        check_positive("max_jobs", max_jobs)
    if horizon_hours is not None:
        check_positive("horizon_hours", horizon_hours)
    log = parse_swf(path)
    usable = [
        job
        for job in sorted(log.jobs, key=lambda j: (j.submit_s, j.job_id))
        if job.runtime_s > 0.0 and job.procs > 0 and job.submit_s >= 0.0
    ]
    if not usable:
        raise ValueError(f"{Path(path).name}: no usable job records")
    t0 = usable[0].submit_s
    tenant_ids: dict[int, int] = {}
    bags: dict[tuple[int, float], list[GangJob]] = {}
    kept = 0
    for job in usable:
        time_h = (job.submit_s - t0) / 3600.0
        if horizon_hours is not None and time_h >= horizon_hours:
            break
        if max_jobs is not None and kept >= max_jobs:
            break
        raw = job.user if tenant_field == "user" else job.group
        tenant = tenant_ids.setdefault(raw, len(tenant_ids))
        width = job.procs if width_cap is None else min(job.procs, width_cap)
        bags.setdefault((tenant, time_h), []).append(
            GangJob(job.runtime_s / 3600.0, int(width))
        )
        kept += 1
    return normalize_traffic(
        BagSubmission(tenant=tenant, time=time_h, jobs=tuple(jobs))
        for (tenant, time_h), jobs in bags.items()
    )

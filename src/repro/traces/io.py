"""Trace serialisation: CSV (dataset-compatible) and JSON round-trips.

The paper publishes its preemption dataset as flat files; these loaders
let users swap in the real dataset for the synthetic one without touching
any downstream code.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.traces.schema import PreemptionRecord, PreemptionTrace, TraceMetadata

__all__ = ["save_trace_csv", "load_trace_csv", "save_trace_json", "load_trace_json"]

_FIELDS = [
    "vm_type",
    "zone",
    "lifetime_hours",
    "day_of_week",
    "launch_hour",
    "idle",
    "censored",
]

_TRUE = {"1", "true", "t", "yes"}
_FALSE = {"0", "false", "f", "no"}


def _parse_bool(column: str, raw: str) -> bool:
    """Accept both our 0/1 encoding and the True/False spellings found
    in externally exported datasets (pandas ``to_csv`` writes the
    latter)."""
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise ValueError(
        f"column {column!r}: cannot parse {raw!r} as a boolean "
        "(expected 0/1 or true/false)"
    )


def save_trace_csv(trace: PreemptionTrace, path: str | Path) -> None:
    """Write one row per record with a header line."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for r in trace.records:
            writer.writerow(
                {
                    "vm_type": r.vm_type,
                    "zone": r.zone,
                    "lifetime_hours": repr(r.lifetime_hours),
                    "day_of_week": r.day_of_week,
                    "launch_hour": repr(r.launch_hour),
                    "idle": int(r.idle),
                    "censored": int(r.censored),
                }
            )


def load_trace_csv(path: str | Path) -> PreemptionTrace:
    """Load a trace written by :func:`save_trace_csv` (or the real dataset)."""
    path = Path(path)
    records: list[PreemptionRecord] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        missing = set(_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"CSV is missing columns: {sorted(missing)}")
        for row in reader:
            records.append(
                PreemptionRecord(
                    vm_type=row["vm_type"],
                    zone=row["zone"],
                    lifetime_hours=float(row["lifetime_hours"]),
                    day_of_week=int(row["day_of_week"]),
                    launch_hour=float(row["launch_hour"]),
                    idle=_parse_bool("idle", row["idle"]),
                    censored=_parse_bool("censored", row["censored"]),
                )
            )
    return PreemptionTrace(records=records, metadata=TraceMetadata(source=str(path)))


def save_trace_json(trace: PreemptionTrace, path: str | Path) -> None:
    """Write the trace (records + metadata) as a single JSON document."""
    path = Path(path)
    doc = {
        "metadata": {
            "seed": trace.metadata.seed,
            "source": trace.metadata.source,
            "notes": trace.metadata.notes,
        },
        "records": [
            {
                "vm_type": r.vm_type,
                "zone": r.zone,
                "lifetime_hours": r.lifetime_hours,
                "day_of_week": r.day_of_week,
                "launch_hour": r.launch_hour,
                "idle": r.idle,
                "censored": r.censored,
            }
            for r in trace.records
        ],
    }
    path.write_text(json.dumps(doc, indent=1))


def load_trace_json(path: str | Path) -> PreemptionTrace:
    """Load a trace written by :func:`save_trace_json`."""
    doc = json.loads(Path(path).read_text())
    meta = doc.get("metadata", {})
    records = [PreemptionRecord(**r) for r in doc["records"]]
    return PreemptionTrace(
        records=records,
        metadata=TraceMetadata(
            seed=meta.get("seed"),
            source=meta.get("source", str(path)),
            notes=meta.get("notes", ""),
        ),
    )

"""Data model for preemption traces.

Mirrors the fields of the paper's public dataset
(github.com/kadupitiya/goog-preemption-data): one record per VM launch
with its type, zone, launch context, and observed time-to-preemption.
Records may be right-censored (the VM was still alive when observation
stopped — e.g. a job finished and the VM was terminated by *us*), which
the Kaplan-Meier estimator in :mod:`repro.fitting.ecdf` handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.validation import check_nonnegative

__all__ = ["PreemptionRecord", "TraceMetadata", "PreemptionTrace"]


@dataclass(frozen=True)
class PreemptionRecord:
    """A single VM launch and its observed (possibly censored) lifetime.

    Attributes
    ----------
    vm_type:
        Machine type, e.g. ``"n1-highcpu-16"``.
    zone:
        Zone, e.g. ``"us-east1-b"``.
    lifetime_hours:
        Observed time from launch to preemption (or to censoring).
    day_of_week:
        0 = Monday ... 6 = Sunday (launch day, VM-local time).
    launch_hour:
        Hour-of-day of the launch in [0, 24), VM-local time.
    idle:
        True if the VM ran no workload (paper Observation 5).
    censored:
        True if the VM was *not* preempted (terminated by the user or
        still running at observation end).
    """

    vm_type: str
    zone: str
    lifetime_hours: float
    day_of_week: int = 0
    launch_hour: float = 12.0
    idle: bool = False
    censored: bool = False

    def __post_init__(self) -> None:
        check_nonnegative("lifetime_hours", self.lifetime_hours)
        if not 0 <= self.day_of_week <= 6:
            raise ValueError(f"day_of_week must be in [0, 6], got {self.day_of_week}")
        if not 0.0 <= self.launch_hour < 24.0:
            raise ValueError(f"launch_hour must be in [0, 24), got {self.launch_hour}")

    @property
    def night_launch(self) -> bool:
        """True for launches between 8 PM and 8 AM (the paper's split)."""
        return self.launch_hour >= 20.0 or self.launch_hour < 8.0


@dataclass(frozen=True)
class TraceMetadata:
    """Provenance of a trace (generator seed, catalog version, notes)."""

    seed: int | None = None
    source: str = "synthetic"
    notes: str = ""


@dataclass
class PreemptionTrace:
    """An ordered collection of :class:`PreemptionRecord` s plus metadata."""

    records: list[PreemptionRecord] = field(default_factory=list)
    metadata: TraceMetadata = field(default_factory=TraceMetadata)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PreemptionRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> PreemptionRecord:
        return self.records[idx]

    def extend(self, records: Iterable[PreemptionRecord]) -> None:
        self.records.extend(records)

    def lifetimes(self, *, include_censored: bool = False) -> np.ndarray:
        """Observed lifetimes (hours); censored records excluded by default."""
        return np.array(
            [
                r.lifetime_hours
                for r in self.records
                if include_censored or not r.censored
            ],
            dtype=float,
        )

    def censoring_flags(self) -> np.ndarray:
        """Boolean array aligned with ``lifetimes(include_censored=True)``."""
        return np.array([r.censored for r in self.records], dtype=bool)

    def filter(
        self,
        *,
        vm_type: str | None = None,
        zone: str | None = None,
        idle: bool | None = None,
        night: bool | None = None,
    ) -> "PreemptionTrace":
        """Subset the trace by any combination of the study dimensions."""
        out = []
        for r in self.records:
            if vm_type is not None and r.vm_type != vm_type:
                continue
            if zone is not None and r.zone != zone:
                continue
            if idle is not None and r.idle != idle:
                continue
            if night is not None and r.night_launch != night:
                continue
            out.append(r)
        return PreemptionTrace(records=out, metadata=self.metadata)

    def vm_types(self) -> list[str]:
        """Distinct VM types present, sorted."""
        return sorted({r.vm_type for r in self.records})

    def zones(self) -> list[str]:
        """Distinct zones present, sorted."""
        return sorted({r.zone for r in self.records})


def concat_traces(traces: Sequence[PreemptionTrace]) -> PreemptionTrace:
    """Concatenate traces (metadata taken from the first)."""
    if not traces:
        return PreemptionTrace()
    merged = PreemptionTrace(metadata=traces[0].metadata)
    for t in traces:
        merged.extend(t.records)
    return merged

"""Seeded generation of synthetic preemption traces.

Replays the paper's data-collection methodology against the ground-truth
catalog: launch batches of VMs of chosen types/zones at chosen times of
day, observe each until preemption (or censor at a user-supplied
observation window), record everything.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.traces.catalog import GroundTruthCatalog, default_catalog
from repro.traces.schema import PreemptionRecord, PreemptionTrace, TraceMetadata
from repro.utils.validation import check_positive

__all__ = ["TraceGenerator"]


class TraceGenerator:
    """Generates :class:`PreemptionTrace` s from a ground-truth catalog.

    Parameters
    ----------
    catalog:
        Ground-truth catalog; defaults to :func:`default_catalog`.
    seed:
        RNG seed; traces are bit-for-bit reproducible given the seed and
        call sequence.
    """

    def __init__(self, catalog: GroundTruthCatalog | None = None, *, seed: int = 0):
        self.catalog = catalog or default_catalog()
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def launch_batch(
        self,
        n: int,
        vm_type: str,
        zone: str = "us-central1-c",
        *,
        launch_hour: float | None = None,
        day_of_week: int | None = None,
        idle: bool = False,
        observe_hours: float | None = None,
    ) -> PreemptionTrace:
        """Launch ``n`` VMs of one type and observe their preemptions.

        Parameters
        ----------
        launch_hour:
            Hour-of-day for all launches; ``None`` draws uniformly in
            [0, 24) per VM (the paper launched "during days and nights").
        day_of_week:
            Launch day; ``None`` draws uniformly over the week.
        observe_hours:
            If given, VMs alive past this window are right-censored at it.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if observe_hours is not None:
            check_positive("observe_hours", observe_hours)
        hours = (
            np.full(n, float(launch_hour))
            if launch_hour is not None
            else self._rng.uniform(0.0, 24.0, size=n)
        )
        days = (
            np.full(n, int(day_of_week), dtype=int)
            if day_of_week is not None
            else self._rng.integers(0, 7, size=n)
        )
        records: list[PreemptionRecord] = []
        # Group draws by (night, weekend) context so each distribution is
        # sampled vectorised rather than per record.
        night_flags = (hours >= 20.0) | (hours < 8.0)
        weekend_flags = days >= 5
        for night in (False, True):
            for weekend in (False, True):
                mask = (night_flags == night) & (weekend_flags == weekend)
                count = int(mask.sum())
                if count == 0:
                    continue
                dist = self.catalog.distribution(
                    vm_type,
                    zone,
                    night=night,
                    idle=idle,
                    day_of_week=5 if weekend else 0,
                )
                lifetimes = dist.sample(count, self._rng)
                idx = np.flatnonzero(mask)
                for i, lt in zip(idx, lifetimes):
                    censored = observe_hours is not None and lt > observe_hours
                    records.append(
                        PreemptionRecord(
                            vm_type=vm_type,
                            zone=zone,
                            lifetime_hours=float(
                                min(lt, observe_hours) if censored else lt
                            ),
                            day_of_week=int(days[i]),
                            launch_hour=float(hours[i]),
                            idle=idle,
                            censored=censored,
                        )
                    )
        return PreemptionTrace(
            records=records,
            metadata=TraceMetadata(seed=self.seed, source="synthetic", notes=f"{vm_type}@{zone}"),
        )

    def study_trace(
        self,
        *,
        per_config: int = 40,
        vm_types: Sequence[str] | None = None,
        zones: Sequence[str] | None = None,
    ) -> PreemptionTrace:
        """Reproduce the shape of the paper's full 870-VM study.

        Launches ``per_config`` VMs for every (type, zone) pair plus idle
        and night/day splits for the reference type, yielding a mixed
        trace suitable for the Fig. 2 breakdowns.
        """
        vm_types = tuple(vm_types or self.catalog.vm_types())
        zones = tuple(zones or self.catalog.zones())
        merged = PreemptionTrace(
            metadata=TraceMetadata(seed=self.seed, source="synthetic", notes="full study")
        )
        for vt in vm_types:
            for zone in zones:
                merged.extend(self.launch_batch(per_config, vt, zone).records)
        # Idle / busy contrast on the reference type (Observation 5).
        ref = "n1-highcpu-16" if "n1-highcpu-16" in vm_types else vm_types[0]
        merged.extend(self.launch_batch(per_config, ref, zones[0], idle=True).records)
        # Day vs night contrast.
        merged.extend(
            self.launch_batch(per_config, ref, zones[0], launch_hour=14.0).records
        )
        merged.extend(
            self.launch_batch(per_config, ref, zones[0], launch_hour=2.0).records
        )
        return merged

    def figure1_trace(self, n: int = 120) -> PreemptionTrace:
        """The Fig. 1 dataset: n1-highcpu-16 in us-east1-b, daytime, busy."""
        return self.launch_batch(n, "n1-highcpu-16", "us-east1-b", launch_hour=12.0)

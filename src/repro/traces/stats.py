"""Summary statistics over preemption traces (the Section 3.1 analysis).

Provides the per-group breakdowns behind Observations 1-5: lifetimes by
VM type, zone, day/night, and idleness, with the headline statistics the
paper discusses (median/mean lifetime, fraction preempted within the
early phase, fraction surviving to the final phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.traces.schema import PreemptionRecord, PreemptionTrace

__all__ = ["GroupStats", "trace_summary", "group_summary", "lifetimes_by"]


@dataclass(frozen=True)
class GroupStats:
    """Headline lifetime statistics for one group of records."""

    n: int
    mean_hours: float
    median_hours: float
    p10_hours: float
    p90_hours: float
    frac_early: float
    frac_final: float

    @classmethod
    def from_lifetimes(
        cls,
        lifetimes: np.ndarray,
        *,
        early_end: float = 3.0,
        final_start: float = 21.5,
    ) -> "GroupStats":
        lifetimes = np.asarray(lifetimes, dtype=float)
        if lifetimes.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
        return cls(
            n=int(lifetimes.size),
            mean_hours=float(np.mean(lifetimes)),
            median_hours=float(np.median(lifetimes)),
            p10_hours=float(np.percentile(lifetimes, 10)),
            p90_hours=float(np.percentile(lifetimes, 90)),
            frac_early=float(np.mean(lifetimes <= early_end)),
            frac_final=float(np.mean(lifetimes >= final_start)),
        )


def trace_summary(trace: PreemptionTrace) -> GroupStats:
    """Summary over all non-censored records of a trace."""
    return GroupStats.from_lifetimes(trace.lifetimes())


def lifetimes_by(
    trace: PreemptionTrace,
    key: str | Callable[[PreemptionRecord], object],
) -> dict[object, np.ndarray]:
    """Group non-censored lifetimes by a record attribute or callable.

    ``key`` may be ``"vm_type"``, ``"zone"``, ``"idle"``,
    ``"night_launch"``, ``"day_of_week"``, or any callable on records.
    """
    if isinstance(key, str):
        attr = key

        def key_fn(r: PreemptionRecord) -> object:
            return getattr(r, attr)

    else:
        key_fn = key
    groups: dict[object, list[float]] = {}
    for r in trace.records:
        if r.censored:
            continue
        groups.setdefault(key_fn(r), []).append(r.lifetime_hours)
    return {k: np.asarray(v, dtype=float) for k, v in sorted(groups.items(), key=lambda kv: str(kv[0]))}


def group_summary(
    trace: PreemptionTrace,
    key: str | Callable[[PreemptionRecord], object],
) -> dict[object, GroupStats]:
    """Per-group :class:`GroupStats` (the Fig. 2 analysis as numbers)."""
    return {
        k: GroupStats.from_lifetimes(v) for k, v in lifetimes_by(trace, key).items()
    }

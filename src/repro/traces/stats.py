"""Summary statistics over preemption traces (the Section 3.1 analysis).

Provides the per-group breakdowns behind Observations 1-5: lifetimes by
VM type, zone, day/night, and idleness, with the headline statistics the
paper discusses (median/mean lifetime, fraction preempted within the
early phase, fraction surviving to the final phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.traces.schema import PreemptionRecord, PreemptionTrace

__all__ = [
    "GroupStats",
    "trace_summary",
    "group_summary",
    "lifetimes_by",
    "demand_profile",
]


@dataclass(frozen=True)
class GroupStats:
    """Headline lifetime statistics for one group of records."""

    n: int
    mean_hours: float
    median_hours: float
    p10_hours: float
    p90_hours: float
    frac_early: float
    frac_final: float

    @classmethod
    def from_lifetimes(
        cls,
        lifetimes: np.ndarray,
        *,
        early_end: float = 3.0,
        final_start: float = 21.5,
    ) -> "GroupStats":
        lifetimes = np.asarray(lifetimes, dtype=float)
        if lifetimes.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
        return cls(
            n=int(lifetimes.size),
            mean_hours=float(np.mean(lifetimes)),
            median_hours=float(np.median(lifetimes)),
            p10_hours=float(np.percentile(lifetimes, 10)),
            p90_hours=float(np.percentile(lifetimes, 90)),
            frac_early=float(np.mean(lifetimes <= early_end)),
            frac_final=float(np.mean(lifetimes >= final_start)),
        )


def trace_summary(trace: PreemptionTrace) -> GroupStats:
    """Summary over all non-censored records of a trace."""
    return GroupStats.from_lifetimes(trace.lifetimes())


def lifetimes_by(
    trace: PreemptionTrace,
    key: str | Callable[[PreemptionRecord], object],
) -> dict[object, np.ndarray]:
    """Group non-censored lifetimes by a record attribute or callable.

    ``key`` may be ``"vm_type"``, ``"zone"``, ``"idle"``,
    ``"night_launch"``, ``"day_of_week"``, or any callable on records.
    """
    if isinstance(key, str):
        attr = key

        def key_fn(r: PreemptionRecord) -> object:
            return getattr(r, attr)

    else:
        key_fn = key
    groups: dict[object, list[float]] = {}
    for r in trace.records:
        if r.censored:
            continue
        groups.setdefault(key_fn(r), []).append(r.lifetime_hours)
    return {k: np.asarray(v, dtype=float) for k, v in sorted(groups.items(), key=lambda kv: str(kv[0]))}


def group_summary(
    trace: PreemptionTrace,
    key: str | Callable[[PreemptionRecord], object],
) -> dict[object, GroupStats]:
    """Per-group :class:`GroupStats` (the Fig. 2 analysis as numbers)."""
    return {
        k: GroupStats.from_lifetimes(v) for k, v in lifetimes_by(trace, key).items()
    }


def demand_profile(trace: PreemptionTrace) -> np.ndarray:
    """Relative cloud-demand intensity per (day-of-week, hour), mean 1.

    The Section 3 observations tie short preemptible lifetimes to high
    spare-capacity demand (weekday daytime); inverting the per-context
    mean lifetime therefore gives a demand proxy the traffic layer can
    modulate arrival rates with
    (:meth:`repro.traffic.arrivals.WeeklyRateCurve.from_trace`).

    Records are grouped by the generator's launch contexts — (weekend,
    night) with night = launch hour in [20, 8) — and each context's
    weight is ``mean lifetime over all records / mean lifetime in the
    context``; contexts with no records fall back to weight 1.  Returns
    a ``(7, 24)`` array normalised to mean 1 over the week.
    """
    def context(r: PreemptionRecord) -> tuple[bool, bool]:
        night = r.launch_hour >= 20.0 or r.launch_hour < 8.0
        return (r.day_of_week >= 5, night)

    groups = lifetimes_by(trace, context)
    overall = np.concatenate(list(groups.values())) if groups else np.zeros(0)
    profile = np.ones((7, 24))
    if overall.size == 0:
        return profile
    overall_mean = float(overall.mean())
    for (weekend, night), lifetimes in groups.items():
        if lifetimes.size == 0:
            continue
        weight = overall_mean / float(lifetimes.mean())
        days = range(5, 7) if weekend else range(0, 5)
        hours = [h for h in range(24) if (h >= 20 or h < 8) == night]
        for d in days:
            for h in hours:
                profile[d, h] = weight
    return profile / profile.mean()

"""Ground-truth preemption parameters for the synthetic cloud.

This catalog is the synthetic stand-in for Google's (hidden) preemption
policy.  Parameter choices are tuned so that the *fitted* models land in
the ranges the paper reports (Section 3.2.2: ``b ~ 24``, ``tau1 in
[0.5, 5]``, ``tau2 ~ 0.8``, ``A in [0.4, 0.5]``) and so that the
qualitative observations hold:

* **Observation 3** — every configuration is bathtub-shaped;
* **Observation 4** — larger VMs preempt more (smaller ``tau1``, larger
  ``A``): n1-highcpu-32 is the steepest, n1-highcpu-2 the flattest;
* **Observation 5** — night launches and idle VMs live longer
  (multiplicative ``tau1`` stretch, slight ``A`` reduction).

The reference configuration of Fig. 1 (n1-highcpu-16, us-east1-b) has
``F(6) ~ 0.45``, matching the flat ~0.4 job-failure probability of
Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.model import BathtubParams
from repro.distributions.bathtub import BathtubDistribution
from repro.utils.validation import check_positive

__all__ = [
    "VMSpec",
    "GroundTruthCatalog",
    "default_catalog",
    "VM_TYPES",
    "REGIONS",
    "DEADLINE_HOURS",
]

#: Provider-imposed maximum lifetime (Google Preemptible VMs: 24 h).
DEADLINE_HOURS = 24.0

#: The five machine types of the paper's Fig. 2a.
VM_TYPES = (
    "n1-highcpu-2",
    "n1-highcpu-4",
    "n1-highcpu-8",
    "n1-highcpu-16",
    "n1-highcpu-32",
)

#: The four zones of the paper's study (Fig. 2c).
REGIONS = ("us-central1-c", "us-central1-f", "us-west1-a", "us-east1-b")


@dataclass(frozen=True)
class VMSpec:
    """Static description of a machine type (vCPUs and hourly prices).

    Prices are the 2019 us-central1 list prices the paper's cost numbers
    rest on; preemptible is ~4.7x cheaper than on-demand.
    """

    name: str
    cpus: int
    on_demand_price: float
    preemptible_price: float

    def __post_init__(self) -> None:
        check_positive("cpus", self.cpus)
        check_positive("on_demand_price", self.on_demand_price)
        check_positive("preemptible_price", self.preemptible_price)

    @property
    def discount(self) -> float:
        """On-demand / preemptible price ratio (the headline ~4.7x)."""
        return self.on_demand_price / self.preemptible_price


#: 2019 GCP n1-highcpu list prices (USD/hour, us-central1).
VM_SPECS: dict[str, VMSpec] = {
    "n1-highcpu-2": VMSpec("n1-highcpu-2", 2, 0.0709, 0.0150),
    "n1-highcpu-4": VMSpec("n1-highcpu-4", 4, 0.1418, 0.0300),
    "n1-highcpu-8": VMSpec("n1-highcpu-8", 8, 0.2836, 0.0600),
    "n1-highcpu-16": VMSpec("n1-highcpu-16", 16, 0.5672, 0.1200),
    "n1-highcpu-32": VMSpec("n1-highcpu-32", 32, 1.1344, 0.2400),
}

# Base ground-truth parameters per VM type (us-central1-c daytime, busy).
# tau1 decreases and A increases with size (Observation 4).
_BASE_PARAMS: dict[str, BathtubParams] = {
    "n1-highcpu-2": BathtubParams(A=0.42, tau1=5.0, tau2=0.90, b=DEADLINE_HOURS),
    "n1-highcpu-4": BathtubParams(A=0.44, tau1=3.5, tau2=0.90, b=DEADLINE_HOURS),
    "n1-highcpu-8": BathtubParams(A=0.45, tau1=2.2, tau2=0.85, b=DEADLINE_HOURS),
    "n1-highcpu-16": BathtubParams(A=0.46, tau1=1.2, tau2=0.80, b=DEADLINE_HOURS),
    "n1-highcpu-32": BathtubParams(A=0.48, tau1=0.6, tau2=0.80, b=DEADLINE_HOURS),
}

# Zone modifiers for n1-highcpu-16 (Fig. 2c): multiplicative tau1 factor
# and additive A shift.  us-east1-b (the Fig. 1 reference zone) is the
# most aggressive, us-west1-a the gentlest.
_ZONE_MODIFIERS: dict[str, tuple[float, float]] = {
    "us-central1-c": (1.00, 0.000),
    "us-central1-f": (1.35, -0.010),
    "us-west1-a": (1.70, -0.020),
    "us-east1-b": (0.85, +0.010),
}

#: Night launches (8 PM - 8 AM local) see lower demand: tau1 stretched.
_NIGHT_TAU1_FACTOR = 1.40
#: Idle VMs are overcommit-friendly: tau1 stretched further.
_IDLE_TAU1_FACTOR = 1.60
#: Weekend (Saturday=5, Sunday=6) demand dip: mild tau1 stretch.  The
#: paper parameterises its model by day-of-week; weekday variation in
#: its data is mild, so only the weekend contrast is encoded.
_WEEKEND_TAU1_FACTOR = 1.15


class GroundTruthCatalog:
    """Resolves (vm_type, zone, night, idle) to ground-truth parameters.

    The catalog is the single source of truth for both the trace
    generator and the cloud simulator, so fitted models can be validated
    against known parameters.
    """

    def __init__(
        self,
        base_params: dict[str, BathtubParams] | None = None,
        zone_modifiers: dict[str, tuple[float, float]] | None = None,
        vm_specs: dict[str, VMSpec] | None = None,
    ):
        self.base_params = dict(base_params or _BASE_PARAMS)
        self.zone_modifiers = dict(zone_modifiers or _ZONE_MODIFIERS)
        self.vm_specs = dict(vm_specs or VM_SPECS)

    # -- lookups ---------------------------------------------------------
    def vm_types(self) -> tuple[str, ...]:
        return tuple(sorted(self.base_params, key=lambda n: self.vm_specs[n].cpus))

    def zones(self) -> tuple[str, ...]:
        return tuple(self.zone_modifiers)

    def spec(self, vm_type: str) -> VMSpec:
        try:
            return self.vm_specs[vm_type]
        except KeyError:
            raise KeyError(f"unknown VM type {vm_type!r}") from None

    def params(
        self,
        vm_type: str,
        zone: str = "us-central1-c",
        *,
        night: bool = False,
        idle: bool = False,
        day_of_week: int | None = None,
    ) -> BathtubParams:
        """Ground-truth Eq. 1 parameters for a launch context.

        ``day_of_week`` follows the record schema (0 = Monday ...
        6 = Sunday); ``None`` means "a generic weekday".
        """
        try:
            base = self.base_params[vm_type]
        except KeyError:
            raise KeyError(f"unknown VM type {vm_type!r}") from None
        try:
            tau1_factor, a_shift = self.zone_modifiers[zone]
        except KeyError:
            raise KeyError(f"unknown zone {zone!r}") from None
        if day_of_week is not None and not 0 <= int(day_of_week) <= 6:
            raise ValueError(f"day_of_week must be in [0, 6], got {day_of_week}")
        tau1 = base.tau1 * tau1_factor
        A = base.A + a_shift
        if night:
            tau1 *= _NIGHT_TAU1_FACTOR
            A -= 0.005
        if idle:
            tau1 *= _IDLE_TAU1_FACTOR
            A -= 0.010
        if day_of_week is not None and int(day_of_week) >= 5:
            tau1 *= _WEEKEND_TAU1_FACTOR
        return replace(base, A=A, tau1=tau1)

    def distribution(
        self,
        vm_type: str,
        zone: str = "us-central1-c",
        *,
        night: bool = False,
        idle: bool = False,
        day_of_week: int | None = None,
    ) -> BathtubDistribution:
        """Ground-truth lifetime distribution for a launch context."""
        return BathtubDistribution(
            self.params(vm_type, zone, night=night, idle=idle, day_of_week=day_of_week)
        )


_DEFAULT: GroundTruthCatalog | None = None


def default_catalog() -> GroundTruthCatalog:
    """Shared default catalog (constructed once)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = GroundTruthCatalog()
    return _DEFAULT

"""Scientific workloads (paper Section 6 applications, laptop-scale).

Each workload is a real, stepwise NumPy computation implementing the
:class:`~repro.workloads.base.CheckpointableWorkload` protocol —
``step()`` advances physics, ``get_state()/set_state()`` provide
checkpoint/restart — so the service examples run actual simulations, not
sleep loops:

* :mod:`repro.workloads.nanoconfinement` -- molecular dynamics of ions
  confined between charged material surfaces (velocity Verlet, screened
  Coulomb + short-range repulsion),
* :mod:`repro.workloads.shapes` -- relaxation of a charged deformable
  nanoparticle contour toward its optimal shape (electrostatics vs
  surface tension),
* :mod:`repro.workloads.lulesh` -- 1-D Lagrangian shock hydrodynamics
  (Sod problem with artificial viscosity), standing in for LULESH,
* :mod:`repro.workloads.synthetic` -- a tunable busy-work job for
  harness tests,
* :mod:`repro.workloads.profiles` -- the applications' declared
  runtime/width profiles, consumed by the multi-tenant traffic layer's
  job mixes.
"""

from repro.workloads.base import CheckpointableWorkload, WorkloadCheckpoint, run_workload
from repro.workloads.profiles import (
    APPLICATION_PROFILES,
    RuntimeProfile,
    application_profile,
)
from repro.workloads.nanoconfinement import NanoconfinementMD
from repro.workloads.shapes import ShapeRelaxation
from repro.workloads.lulesh import LagrangianShock1D
from repro.workloads.synthetic import SyntheticJob

__all__ = [
    "APPLICATION_PROFILES",
    "CheckpointableWorkload",
    "RuntimeProfile",
    "WorkloadCheckpoint",
    "application_profile",
    "run_workload",
    "NanoconfinementMD",
    "ShapeRelaxation",
    "LagrangianShock1D",
    "SyntheticJob",
]

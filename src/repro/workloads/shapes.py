"""Shape relaxation of a charged deformable nanoparticle.

Stand-in for the paper's Shapes application (Brunk & Jadhao 2019;
Jadhao, Thomas & Olvera de la Cruz, PNAS 2014): MD-based optimisation
that predicts the equilibrium shape of a charged, deformable shell.

2-D version: a closed contour of N vertices carrying total charge Q
relaxes under (a) Coulomb repulsion between vertices, (b) surface
tension (perimeter penalty), and (c) a soft area constraint, via damped
gradient descent.  Charge dominance drives the circle toward elongated /
buckled shapes — the same physics competition as the original.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["ShapeRelaxation"]


class ShapeRelaxation:
    """Damped gradient-descent relaxation of a charged 2-D contour."""

    def __init__(
        self,
        n_vertices: int = 64,
        steps: int = 300,
        *,
        charge: float = 4.0,
        tension: float = 1.0,
        area_stiffness: float = 5.0,
        learning_rate: float = 5e-3,
        seed: int = 0,
    ):
        if n_vertices < 8:
            raise ValueError(f"n_vertices must be >= 8, got {n_vertices}")
        check_positive("steps", steps)
        self.total_steps = int(steps)
        self.steps_done = 0
        self.charge = check_positive("charge", charge)
        self.tension = check_positive("tension", tension)
        self.area_stiffness = check_positive("area_stiffness", area_stiffness)
        self.lr = check_positive("learning_rate", learning_rate)
        rng = np.random.default_rng(seed)
        theta = np.linspace(0.0, 2.0 * np.pi, n_vertices, endpoint=False)
        self.points = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        self.points += rng.normal(scale=0.01, size=self.points.shape)
        self.target_area = self._area()
        self._q = self.charge / n_vertices  # per-vertex charge

    # -- geometry --------------------------------------------------------
    def _area(self) -> float:
        x, y = self.points[:, 0], self.points[:, 1]
        return 0.5 * float(np.abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))))

    def perimeter(self) -> float:
        d = np.roll(self.points, -1, axis=0) - self.points
        return float(np.sum(np.sqrt(np.sum(d * d, axis=1))))

    def energy(self) -> float:
        """Total energy: Coulomb + tension * perimeter + area penalty."""
        d = self.points[:, None, :] - self.points[None, :, :]
        r = np.sqrt(np.sum(d * d, axis=-1))
        np.fill_diagonal(r, np.inf)
        coulomb = 0.5 * self._q * self._q * float(np.sum(1.0 / r))
        area_err = self._area() - self.target_area
        return coulomb + self.tension * self.perimeter() + 0.5 * self.area_stiffness * area_err**2

    def _gradient(self) -> np.ndarray:
        d = self.points[:, None, :] - self.points[None, :, :]
        r = np.sqrt(np.sum(d * d, axis=-1))
        np.fill_diagonal(r, np.inf)
        # d/dx_i of sum_{j<k} q^2/r_jk  =  -q^2 sum_j (x_i - x_j)/r_ij^3
        coul = -self._q * self._q * np.sum(d / (r**3)[..., None], axis=1)
        # Perimeter gradient: unit tangents of adjacent edges.
        nxt = np.roll(self.points, -1, axis=0) - self.points
        prv = self.points - np.roll(self.points, 1, axis=0)
        ln = np.maximum(np.sqrt(np.sum(nxt * nxt, axis=1)), 1e-12)[:, None]
        lp = np.maximum(np.sqrt(np.sum(prv * prv, axis=1)), 1e-12)[:, None]
        perim_grad = prv / lp - nxt / ln
        # Area gradient (shoelace derivative), sign toward target.
        x, y = self.points[:, 0], self.points[:, 1]
        area_grad = 0.5 * np.stack(
            [np.roll(y, -1) - np.roll(y, 1), np.roll(x, 1) - np.roll(x, -1)], axis=1
        )
        signed_area = 0.5 * (np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
        if signed_area < 0:
            area_grad = -area_grad
        area_err = self._area() - self.target_area
        return coul + self.tension * perim_grad + self.area_stiffness * area_err * area_grad

    def step(self) -> None:
        """One damped gradient-descent step (energy non-increasing-ish)."""
        if self.steps_done >= self.total_steps:
            raise RuntimeError("workload already complete")
        self.points -= self.lr * self._gradient()
        self.steps_done += 1

    # -- checkpointing -----------------------------------------------------
    def get_state(self) -> dict[str, Any]:
        return {"steps_done": self.steps_done, "points": self.points.copy()}

    def set_state(self, state: dict[str, Any]) -> None:
        self.steps_done = int(state["steps_done"])
        self.points = state["points"].copy()

    def asphericity(self) -> float:
        """Shape anisotropy from the gyration tensor (0 = circle)."""
        centred = self.points - self.points.mean(axis=0)
        g = centred.T @ centred / self.points.shape[0]
        eig = np.linalg.eigvalsh(g)
        tot = float(eig.sum())
        if tot == 0.0:
            return 0.0
        return float((eig[-1] - eig[0]) / tot)

    def result(self) -> dict[str, float]:
        return {
            "energy": self.energy(),
            "perimeter": self.perimeter(),
            "area": self._area(),
            "asphericity": self.asphericity(),
            "steps_done": float(self.steps_done),
        }

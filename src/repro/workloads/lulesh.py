"""1-D Lagrangian shock hydrodynamics (LULESH stand-in).

LULESH solves the Sedov blast on an unstructured Lagrangian mesh; the
essential numerics — staggered-grid Lagrangian hydro with artificial
viscosity — are exercised here on the classic Sod shock tube in 1-D:

* node velocities/positions and zone density/energy/pressure,
* ideal-gas EOS ``p = (gamma - 1) rho e``,
* von Neumann-Richtmyer artificial viscosity for shock capture,
* CFL-limited (but fixed, for determinism) time step.

The observable is the shock front position and the conserved totals,
which the tests check against the analytic Sod solution's structure
(density plateau ordering, mass/energy conservation).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["LagrangianShock1D"]


class LagrangianShock1D:
    """Sod shock tube on a moving (Lagrangian) 1-D mesh."""

    def __init__(
        self,
        n_zones: int = 200,
        steps: int = 400,
        *,
        gamma: float = 1.4,
        dt: float = 5e-4,
        q_coeff: float = 2.0,
    ):
        if n_zones < 10:
            raise ValueError(f"n_zones must be >= 10, got {n_zones}")
        check_positive("steps", steps)
        self.total_steps = int(steps)
        self.steps_done = 0
        self.gamma = check_positive("gamma", gamma)
        self.dt = check_positive("dt", dt)
        self.q_coeff = check_positive("q_coeff", q_coeff)
        n = int(n_zones)
        self.x = np.linspace(0.0, 1.0, n + 1)  # node positions
        self.u = np.zeros(n + 1)  # node velocities
        centers = 0.5 * (self.x[:-1] + self.x[1:])
        left = centers < 0.5
        self.rho = np.where(left, 1.0, 0.125)
        p0 = np.where(left, 1.0, 0.1)
        self.e = p0 / ((self.gamma - 1.0) * self.rho)  # specific internal energy
        dx = np.diff(self.x)
        self.zone_mass = self.rho * dx  # invariant in Lagrangian frame

    # ------------------------------------------------------------------
    def _pressure(self) -> np.ndarray:
        return (self.gamma - 1.0) * self.rho * self.e

    def _viscosity(self) -> np.ndarray:
        du = np.diff(self.u)
        compressing = du < 0.0
        return np.where(compressing, self.q_coeff * self.rho * du * du, 0.0)

    def step(self) -> None:
        """One explicit Lagrangian step (predictor-free, small fixed dt)."""
        if self.steps_done >= self.total_steps:
            raise RuntimeError("workload already complete")
        dt = self.dt
        p = self._pressure() + self._viscosity()
        # Node accelerations from pressure gradient (nodal mass = half
        # the adjacent zone masses; boundary nodes held fixed).
        force = np.zeros_like(self.u)
        force[1:-1] = -(p[1:] - p[:-1])
        node_mass = np.zeros_like(self.u)
        node_mass[1:-1] = 0.5 * (self.zone_mass[:-1] + self.zone_mass[1:])
        node_mass[0] = node_mass[-1] = np.inf  # rigid walls
        self.u += dt * force / node_mass
        self.u[0] = self.u[-1] = 0.0
        old_x = self.x.copy()
        self.x += dt * self.u
        if np.any(np.diff(self.x) <= 0.0):
            raise RuntimeError("mesh tangled: dt too large for this resolution")
        # Zone updates: density from mass conservation, energy from pdV.
        dx_new = np.diff(self.x)
        rho_new = self.zone_mass / dx_new
        dv = np.diff(self.x) - np.diff(old_x)  # zone volume change
        self.e -= p * dv / self.zone_mass
        np.clip(self.e, 1e-10, None, out=self.e)
        self.rho = rho_new
        self.steps_done += 1

    # ------------------------------------------------------------------
    def get_state(self) -> dict[str, Any]:
        return {
            "steps_done": self.steps_done,
            "x": self.x.copy(),
            "u": self.u.copy(),
            "rho": self.rho.copy(),
            "e": self.e.copy(),
        }

    def set_state(self, state: dict[str, Any]) -> None:
        self.steps_done = int(state["steps_done"])
        self.x = state["x"].copy()
        self.u = state["u"].copy()
        self.rho = state["rho"].copy()
        self.e = state["e"].copy()

    # -- observables -------------------------------------------------------
    def total_mass(self) -> float:
        return float(np.sum(self.zone_mass))

    def total_energy(self) -> float:
        """Internal + kinetic energy (conserved up to viscosity transfer)."""
        internal = float(np.sum(self.zone_mass * self.e))
        node_mass = np.zeros_like(self.u)
        node_mass[1:-1] = 0.5 * (self.zone_mass[:-1] + self.zone_mass[1:])
        node_mass[0] = 0.5 * self.zone_mass[0]
        node_mass[-1] = 0.5 * self.zone_mass[-1]
        kinetic = 0.5 * float(np.sum(node_mass * self.u * self.u))
        return internal + kinetic

    def shock_position(self) -> float:
        """Location of the steepest density gradient right of the origin."""
        centers = 0.5 * (self.x[:-1] + self.x[1:])
        grad = np.abs(np.diff(self.rho))
        mid = 0.5 * (centers[:-1] + centers[1:])
        right = mid > 0.5
        if not np.any(right):
            return 0.5
        idx = np.flatnonzero(right)[np.argmax(grad[right])]
        return float(mid[idx])

    def result(self) -> dict[str, float]:
        return {
            "total_mass": self.total_mass(),
            "total_energy": self.total_energy(),
            "shock_position": self.shock_position(),
            "max_density": float(np.max(self.rho)),
            "steps_done": float(self.steps_done),
        }

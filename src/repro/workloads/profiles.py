"""Canonical runtime profiles of the paper's applications.

The Section 6 evaluation runs three applications whose clean runtimes
and gang widths the paper reports (Nanoconfinement 14 min on 4 nodes,
Shapes 9 min on 4, LULESH 12.5 min on 8 — widths scaled to the
simulated fleet type, as in :mod:`repro.experiments.fig9_service`).
Within a bag, "jobs show little variation in their running time"
(Section 5), so each profile carries a small coefficient of variation.

The traffic layer samples heterogeneous bags from these via
:meth:`repro.traffic.arrivals.JobMix.from_profile`, so multi-tenant
scenarios can be cast as "tenant A streams Shapes sweeps, tenant B
streams LULESH sweeps" instead of abstract length mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["RuntimeProfile", "APPLICATION_PROFILES", "application_profile"]


@dataclass(frozen=True)
class RuntimeProfile:
    """Declared runtime shape of one application's bag members.

    Attributes
    ----------
    name:
        Application identifier.
    mean_hours:
        Clean (uninterrupted) runtime of one parameter point.
    cv:
        Within-bag runtime coefficient of variation (small, per the
        paper's bag-homogeneity observation).
    widths:
        Gang widths the application runs at.
    jobs_per_bag:
        Typical parameter-sweep sizes submitted at once.
    """

    name: str
    mean_hours: float
    cv: float
    widths: tuple[int, ...]
    jobs_per_bag: tuple[int, int] = (4, 12)

    def __post_init__(self) -> None:
        check_positive("mean_hours", self.mean_hours)
        check_nonnegative("cv", self.cv)
        if not self.widths or any(w < 1 for w in self.widths):
            raise ValueError("widths must be a non-empty tuple of ints >= 1")
        lo, hi = self.jobs_per_bag
        if lo < 1 or hi < lo:
            raise ValueError(
                f"jobs_per_bag must satisfy 1 <= lo <= hi, got {self.jobs_per_bag}"
            )


#: The paper's three applications (runtimes/widths as in fig9_service).
APPLICATION_PROFILES: dict[str, RuntimeProfile] = {
    p.name: p
    for p in (
        RuntimeProfile("nanoconfinement", 14.0 / 60.0, 0.05, (4,)),
        RuntimeProfile("shapes", 9.0 / 60.0, 0.05, (4,)),
        RuntimeProfile("lulesh", 12.5 / 60.0, 0.08, (8,)),
        # A laptop-scale synthetic stand-in for harness tests: narrow,
        # more variable, submitted in small bags.
        RuntimeProfile("synthetic", 0.5, 0.3, (1, 2), (2, 6)),
    )
}


def application_profile(name: str) -> RuntimeProfile:
    try:
        return APPLICATION_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATION_PROFILES))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None

"""Synthetic tunable workload for harness and failure-injection tests."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SyntheticJob"]


class SyntheticJob:
    """Deterministic busy-work: iterated affine map over a state vector.

    Cheap, exactly reproducible, and sensitive to any lost or replayed
    step — ideal for asserting checkpoint/restart correctness (the final
    state is a pure function of the number of *effective* steps).
    """

    def __init__(self, size: int = 64, steps: int = 100, *, seed: int = 0):
        check_positive("size", size)
        check_positive("steps", steps)
        self.total_steps = int(steps)
        self.steps_done = 0
        rng = np.random.default_rng(seed)
        self.vector = rng.normal(size=int(size))
        # Contractive map keeps the state bounded for any step count.
        self._scale = 0.999
        self._shift = rng.normal(size=int(size)) * 1e-3

    def step(self) -> None:
        if self.steps_done >= self.total_steps:
            raise RuntimeError("workload already complete")
        self.vector = self._scale * self.vector + self._shift
        self.steps_done += 1

    def get_state(self) -> dict[str, Any]:
        return {"steps_done": self.steps_done, "vector": self.vector.copy()}

    def set_state(self, state: dict[str, Any]) -> None:
        self.steps_done = int(state["steps_done"])
        self.vector = state["vector"].copy()

    def result(self) -> dict[str, float]:
        return {
            "norm": float(np.linalg.norm(self.vector)),
            "mean": float(self.vector.mean()),
            "steps_done": float(self.steps_done),
        }

"""Checkpointable-workload protocol and driver.

The service's checkpoint/restart semantics require applications that can
serialise their state at arbitrary step boundaries.  The protocol is the
minimal contract: ``step()`` advances one unit of work, ``get_state``
returns a deep-copyable snapshot, ``set_state`` restores it exactly
(bit-for-bit — the tests assert restart determinism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = ["CheckpointableWorkload", "WorkloadCheckpoint", "run_workload"]


@runtime_checkable
class CheckpointableWorkload(Protocol):
    """Protocol for stepwise, checkpointable computations."""

    #: total steps the workload wants to run
    total_steps: int
    #: steps completed so far
    steps_done: int

    def step(self) -> None:
        """Advance one work step (must raise past ``total_steps``)."""
        ...

    def get_state(self) -> dict[str, Any]:
        """Snapshot of the full mutable state (deep copies, not views)."""
        ...

    def set_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`get_state`."""
        ...

    def result(self) -> dict[str, float]:
        """Scalar observables of the current state (for verification)."""
        ...


@dataclass(frozen=True)
class WorkloadCheckpoint:
    """A checkpoint: the step count it was taken at plus the state blob."""

    steps_done: int
    state: dict[str, Any]


def run_workload(
    workload: CheckpointableWorkload,
    *,
    checkpoint_every: int | None = None,
    fail_at_steps: frozenset[int] | set[int] = frozenset(),
) -> tuple[dict[str, float], int]:
    """Drive a workload to completion with optional failure injection.

    Parameters
    ----------
    checkpoint_every:
        Snapshot the state every this many steps (``None`` = never).
    fail_at_steps:
        Steps at which a simulated preemption strikes *before* the step
        executes: state rolls back to the last checkpoint (or the start).
        Each listed step fires at most once.

    Returns
    -------
    (result, total_steps_executed):
        Final observables and the number of ``step()`` calls actually
        made (>= ``total_steps`` when failures caused recomputation).
    """
    pending_failures = set(fail_at_steps)
    checkpoint = WorkloadCheckpoint(steps_done=0, state=workload.get_state())
    executed = 0
    while workload.steps_done < workload.total_steps:
        if workload.steps_done in pending_failures:
            pending_failures.discard(workload.steps_done)
            workload.set_state(checkpoint.state)
            continue
        workload.step()
        executed += 1
        if checkpoint_every and workload.steps_done % checkpoint_every == 0:
            checkpoint = WorkloadCheckpoint(
                steps_done=workload.steps_done, state=workload.get_state()
            )
    return workload.result(), executed

"""Molecular dynamics of ions in nanoscale confinement.

Laptop-scale stand-in for the paper's Nanoconfinement application
(ions confined between charged material surfaces; Jing et al., J. Chem.
Phys. 2015).  Physics kept, scale reduced:

* N ions (alternating +/- unit charges) in a slit of width ``L_z``
  with periodic x/y and reflective charged walls in z,
* screened Coulomb (Yukawa) pair interactions plus a soft-core
  repulsion, both cut off at ``r_cut``,
* velocity-Verlet integration with a Berendsen-style thermostat,
* fully vectorised O(N^2) force evaluation (no neighbour lists needed
  at these sizes; the inner loop is pure NumPy broadcasting).

The interesting observable is the ion density profile across the slit
(the contact-density physics of the original application).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["NanoconfinementMD"]


class NanoconfinementMD:
    """Velocity-Verlet MD of confined ions (checkpointable).

    Parameters
    ----------
    n_ions:
        Number of ions (even; half positive, half negative).
    steps:
        Total MD steps (= work units for the service).
    box:
        (Lx, Ly, Lz) box; z is the confined direction.
    kappa:
        Inverse screening length of the Yukawa interaction.
    dt:
        Integration time step.
    wall_strength:
        Prefactor of the repulsive z-wall potential.
    seed:
        Initial-condition RNG seed (state is deterministic given it).
    """

    def __init__(
        self,
        n_ions: int = 64,
        steps: int = 200,
        *,
        box: tuple[float, float, float] = (8.0, 8.0, 4.0),
        kappa: float = 1.0,
        dt: float = 0.002,
        temperature: float = 1.0,
        wall_strength: float = 2.0,
        seed: int = 0,
    ):
        if n_ions < 2 or n_ions % 2:
            raise ValueError(f"n_ions must be even and >= 2, got {n_ions}")
        check_positive("steps", steps)
        self.total_steps = int(steps)
        self.steps_done = 0
        self.box = np.asarray(box, dtype=float)
        self.kappa = check_positive("kappa", kappa)
        self.dt = check_positive("dt", dt)
        self.temperature = check_positive("temperature", temperature)
        self.wall_strength = check_positive("wall_strength", wall_strength)
        self.r_cut = min(float(self.box[0]), float(self.box[1])) / 2.0
        rng = np.random.default_rng(seed)
        n = int(n_ions)
        self.charges = np.empty(n)
        self.charges[::2] = 1.0
        self.charges[1::2] = -1.0
        # Start on a jittered lattice to avoid overlaps.
        grid = int(np.ceil(n ** (1.0 / 3.0)))
        pts = np.stack(
            np.meshgrid(*[np.arange(grid) for _ in range(3)], indexing="ij"), axis=-1
        ).reshape(-1, 3)[:n]
        self.positions = (pts + 0.5) / grid * (self.box - 0.2) + 0.1
        self.positions += rng.normal(scale=0.02, size=(n, 3))
        self.velocities = rng.normal(scale=np.sqrt(temperature), size=(n, 3))
        self.velocities -= self.velocities.mean(axis=0)
        self._forces = self._compute_forces()

    # ------------------------------------------------------------------
    def _pair_displacements(self) -> tuple[np.ndarray, np.ndarray]:
        d = self.positions[:, None, :] - self.positions[None, :, :]
        # Periodic in x, y only (z is confined).
        for axis in (0, 1):
            L = self.box[axis]
            d[..., axis] -= L * np.round(d[..., axis] / L)
        r = np.sqrt(np.sum(d * d, axis=-1))
        return d, r

    def _compute_forces(self) -> np.ndarray:
        d, r = self._pair_displacements()
        n = r.shape[0]
        np.fill_diagonal(r, np.inf)
        qq = self.charges[:, None] * self.charges[None, :]
        inside = r < self.r_cut
        # Yukawa: U = qq exp(-kr)/r; |F| = qq exp(-kr) (1 + kr) / r^2.
        # The self-interaction diagonal holds r = inf, where the product
        # is 0 * inf; it is masked out by `inside` below.
        with np.errstate(over="ignore", invalid="ignore"):
            yuk = qq * np.exp(-self.kappa * r) * (1.0 + self.kappa * r) / (r * r)
        # Soft core: U = (sigma/r)^6 with sigma=0.5; F = 6 sigma^6 / r^7.
        sigma6 = 0.5**6
        soft = 6.0 * sigma6 / r**7
        mag = np.where(inside, yuk + soft, 0.0)
        f = np.sum((mag / r)[..., None] * d, axis=1)
        # Charged reflective walls in z: exponential repulsion from both.
        z = self.positions[:, 2]
        Lz = self.box[2]
        f[:, 2] += self.wall_strength * np.exp(-4.0 * z)
        f[:, 2] -= self.wall_strength * np.exp(-4.0 * (Lz - z))
        return f

    def step(self) -> None:
        """One velocity-Verlet step with a weak Berendsen thermostat."""
        if self.steps_done >= self.total_steps:
            raise RuntimeError("workload already complete")
        dt = self.dt
        self.velocities += 0.5 * dt * self._forces
        self.positions += dt * self.velocities
        # Wrap periodic axes; clamp z softly inside the slit.
        for axis in (0, 1):
            self.positions[:, axis] %= self.box[axis]
        np.clip(self.positions[:, 2], 1e-3, self.box[2] - 1e-3, out=self.positions[:, 2])
        self._forces = self._compute_forces()
        self.velocities += 0.5 * dt * self._forces
        # Berendsen velocity rescale toward the target temperature.
        ke = 0.5 * float(np.sum(self.velocities**2))
        n_dof = 3 * self.positions.shape[0]
        t_inst = 2.0 * ke / n_dof
        if t_inst > 0:
            lam = np.sqrt(1.0 + 0.05 * (self.temperature / t_inst - 1.0))
            self.velocities *= lam
        self.steps_done += 1

    # ------------------------------------------------------------------
    def get_state(self) -> dict[str, Any]:
        return {
            "steps_done": self.steps_done,
            "positions": self.positions.copy(),
            "velocities": self.velocities.copy(),
            "forces": self._forces.copy(),
        }

    def set_state(self, state: dict[str, Any]) -> None:
        self.steps_done = int(state["steps_done"])
        self.positions = state["positions"].copy()
        self.velocities = state["velocities"].copy()
        self._forces = state["forces"].copy()

    def density_profile(self, bins: int = 16) -> np.ndarray:
        """Ion number density across the slit (the physics observable)."""
        hist, _ = np.histogram(
            self.positions[:, 2], bins=bins, range=(0.0, float(self.box[2]))
        )
        return hist / self.positions.shape[0]

    def result(self) -> dict[str, float]:
        ke = 0.5 * float(np.sum(self.velocities**2))
        profile = self.density_profile()
        return {
            "kinetic_energy": ke,
            "temperature": 2.0 * ke / (3.0 * self.positions.shape[0]),
            "contact_density": float(profile[0] + profile[-1]),
            "steps_done": float(self.steps_done),
        }

"""Observability plane: metrics, spans, and per-run kernel diagnostics.

See :mod:`repro.obs.core` for the design and the zero-overhead /
draw-neutrality contract.  Typical use::

    from repro.obs import Instrumentation

    inst = Instrumentation()
    out = run_service_replications(dist, bag, instrument=inst)
    out.stats.channel_events      # per-channel arena event counts
    inst.tracer.write("trace.json")   # -> chrome://tracing

or ambiently, wrapping code that calls the entry points internally::

    from repro.obs import Instrumentation, instrumented

    with instrumented(Instrumentation()) as inst:
        experiment.run()
"""

from repro.obs.core import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    KernelStats,
    MetricsRegistry,
    NULL_REGISTRY,
    NULL_TRACER,
    Snapshot,
    Tracer,
    current_instrumentation,
    instrumented,
    peak_rss_bytes,
    progress_printer,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "KernelStats",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Snapshot",
    "Tracer",
    "current_instrumentation",
    "instrumented",
    "peak_rss_bytes",
    "progress_printer",
    "write_metrics_json",
]

"""The observability plane: metrics registry, span tracer, KernelStats.

Three cooperating pieces, all with a strict *zero-overhead-when-off*
contract:

:class:`MetricsRegistry`
    Named counters, gauges, and histograms.  Instrumented code holds an
    ``obs`` reference that is either a registry or ``None``; every
    recording site is guarded by ``if obs is not None`` (or goes through
    the :data:`NULL_REGISTRY` no-op singleton), so a disabled run costs
    one identity check per site and allocates nothing.

:class:`Tracer`
    Append-only span recorder emitting Chrome-trace-format JSON
    (``chrome://tracing`` / Perfetto load it directly).  Spans wrap the
    *orchestration* phases of a sweep (validate, simulate, shard
    fan-out, chunk k), never the per-round inner loops.

:class:`KernelStats`
    The per-run diagnostic record attached to every ``*Outcomes`` by the
    :mod:`repro.sim.backend` entry points when instrumentation is on:
    rounds, RNG rows, per-channel arena event counts, mirrored policy
    counters (stall terminations, boot-grace activations, livelock
    near-misses), peaks (queue depth, per-pool occupancy, RSS), the
    shard/chunk layout, and per-phase wall time.

The load-bearing guarantee
--------------------------
Instrumentation **never consumes an RNG draw and never changes an
outcome**.  Counters only *read* simulation state; the round protocol
is untouched.  ``tests/test_obs_neutrality.py`` pins outcomes
byte-identical with instrumentation on vs off for every kernel x
backend x workers cell, and pins the per-channel event counts equal
across backends — the diagnostics themselves are equivalence-checked,
not just the outcomes.

Everything here is stdlib-only and picklable where it must cross
process boundaries (:class:`Snapshot` travels back from
``ProcessPoolExecutor`` workers and merges deterministically).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Snapshot",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NULL_TRACER",
    "Instrumentation",
    "instrumented",
    "current_instrumentation",
    "KernelStats",
    "peak_rss_bytes",
    "progress_printer",
    "write_metrics_json",
]


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------

class Counter:
    """Monotone event count; merges across shards by summation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Sampled level tracking its extremes.

    ``set`` records the latest sample and folds it into the running
    min/max, so peaks survive shard merging (where "latest" is
    meaningless, :meth:`Snapshot.merge` keeps the max).
    """

    __slots__ = ("last", "max", "min", "n_samples")

    def __init__(self) -> None:
        self.last = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self.n_samples = 0

    def set(self, value: float) -> None:
        self.last = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        self.n_samples += 1


class Histogram:
    """Streaming summary (count / total / extremes) of observed values."""

    __slots__ = ("count", "total", "max", "min")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


# ----------------------------------------------------------------------
# Snapshot: the picklable merge unit
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Snapshot:
    """Frozen, picklable image of a registry's state.

    This is what travels back from worker processes: each shard (or
    chunk) snapshots its private registry and the parent merges the
    snapshots.  ``merge`` is associative and commutative up to the
    documented gauge convention, so per-shard stats combine
    deterministically regardless of completion order:

    - counters and histogram count/total **sum**;
    - gauge/histogram ``max`` takes the max, ``min`` the min — and a
      merged gauge's ``last`` is the max of the sources' lasts (the
      only order-independent choice);
    - ``n_sources`` sums, giving shard-count accounting for free.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, dict[str, float]] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    n_sources: int = 1

    def merge(self, other: "Snapshot") -> "Snapshot":
        counters = dict(self.counters)
        for name, v in other.counters.items():
            counters[name] = counters.get(name, 0) + v
        gauges = {name: dict(g) for name, g in self.gauges.items()}
        for name, g in other.gauges.items():
            if name not in gauges:
                gauges[name] = dict(g)
            else:
                mine = gauges[name]
                mine["max"] = max(mine["max"], g["max"])
                mine["min"] = min(mine["min"], g["min"])
                mine["last"] = max(mine["last"], g["last"])
                mine["n_samples"] = mine["n_samples"] + g["n_samples"]
        histograms = {name: dict(h) for name, h in self.histograms.items()}
        for name, h in other.histograms.items():
            if name not in histograms:
                histograms[name] = dict(h)
            else:
                mine = histograms[name]
                mine["count"] = mine["count"] + h["count"]
                mine["total"] = mine["total"] + h["total"]
                mine["max"] = max(mine["max"], h["max"])
                mine["min"] = min(mine["min"], h["min"])
        return Snapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            n_sources=self.n_sources + other.n_sources,
        )

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def gauge_max(self, name: str, default: float = 0.0) -> float:
        g = self.gauges.get(name)
        return g["max"] if g is not None else default

    def as_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "n_sources": self.n_sources,
        }


class MetricsRegistry:
    """Named metric store; the live mutable side of :class:`Snapshot`.

    Lookups create metrics on first use, so instrumented code never
    pre-declares anything.  Registries are *not* shared across
    processes — shards snapshot their private registry and the parent
    merges (see :class:`Snapshot`).
    """

    #: Disabled registries (the NULL singleton) report False here so
    #: callers can gate genuinely expensive sampling.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand for ``registry.counter(name).inc(n)``."""
        self.counter(name).inc(n)

    def snapshot(self) -> Snapshot:
        return Snapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={
                k: {
                    "last": g.last,
                    "max": g.max,
                    "min": g.min,
                    "n_samples": g.n_samples,
                }
                for k, g in self._gauges.items()
            },
            histograms={
                k: {"count": h.count, "total": h.total, "max": h.max, "min": h.min}
                for k, h in self._histograms.items()
            },
        )

    def merge_snapshot(self, snap: Snapshot) -> None:
        """Fold a shard/chunk snapshot into this registry in place."""
        for name, v in snap.counters.items():
            self.counter(name).inc(v)
        for name, g in snap.gauges.items():
            gauge = self.gauge(name)
            if not g["n_samples"]:
                continue
            if gauge.n_samples == 0:
                gauge.last = g["last"]
                gauge.max = g["max"]
                gauge.min = g["min"]
            else:  # the Snapshot.merge convention: last := max of lasts
                gauge.last = max(gauge.last, g["last"])
                gauge.max = max(gauge.max, g["max"])
                gauge.min = min(gauge.min, g["min"])
            gauge.n_samples += g["n_samples"]
        for name, h in snap.histograms.items():
            hist = self.histogram(name)
            hist.count += h["count"]
            hist.total += h["total"]
            hist.max = max(hist.max, h["max"])
            hist.min = min(hist.min, h["min"])


class _NullRegistry(MetricsRegistry):
    """The disabled singleton: every lookup returns a shared no-op.

    Exists so code may be written against a registry unconditionally;
    the simulation kernels instead take ``obs=None`` and guard each
    site, which benchmarks as free.
    """

    enabled = False

    def __init__(self) -> None:  # no dicts: nothing is ever stored
        pass

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def snapshot(self) -> Snapshot:
        return Snapshot(n_sources=0)

    def merge_snapshot(self, snap: Snapshot) -> None:
        pass


NULL_REGISTRY = _NullRegistry()


# ----------------------------------------------------------------------
# Span tracer (Chrome trace format)
# ----------------------------------------------------------------------

class Tracer:
    """Records named spans as Chrome-trace "complete" (``X``) events.

    ``write()`` emits the JSON object format chrome://tracing and
    Perfetto load directly.  Timestamps are ``perf_counter``
    microseconds relative to the tracer's creation.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._t0 = time.perf_counter()

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    @contextmanager
    def span(self, name: str, category: str = "repro") -> Iterator[None]:
        start = self._now_us()
        try:
            yield
        finally:
            self.events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": start,
                    "dur": self._now_us() - start,
                    "pid": 0,
                    "tid": 0,
                }
            )

    def instant(self, name: str, category: str = "repro") -> None:
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "ts": self._now_us(),
                "pid": 0,
                "tid": 0,
                "s": "g",
            }
        )

    def to_chrome_trace(self) -> dict[str, Any]:
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs"},
        }

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2)
            fh.write("\n")


class _NullTracer(Tracer):
    enabled = False

    def __init__(self) -> None:
        pass

    @contextmanager
    def span(self, name: str, category: str = "repro") -> Iterator[None]:
        yield

    def instant(self, name: str, category: str = "repro") -> None:
        pass

    def to_chrome_trace(self) -> dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


NULL_TRACER = _NullTracer()


# ----------------------------------------------------------------------
# Instrumentation bundle + ambient stack
# ----------------------------------------------------------------------

@dataclass
class Instrumentation:
    """One run's observability bundle, passed as ``instrument=``.

    ``registry`` accumulates metrics across every entry-point call made
    under this bundle (an experiment may run many sweeps); each call
    additionally gets its own :class:`KernelStats` on the returned
    outcomes.  ``progress`` is an optional ``(done, total, elapsed_s,
    eta_s)`` callback invoked by the chunk-streaming path.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    progress: Callable[[int, int, float, float], None] | None = None


#: Ambient instrumentation stack: entry points called with the default
#: ``instrument=None`` look here, so a CLI can instrument a whole
#: experiment without threading a kwarg through every layer.  Empty in
#: normal operation — the lookup is a truthiness check, preserving the
#: zero-overhead contract.
_AMBIENT: list[Instrumentation] = []


def current_instrumentation() -> Instrumentation | None:
    """The innermost ambient bundle, or None when instrumentation is off."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def instrumented(inst: Instrumentation) -> Iterator[Instrumentation]:
    """Make ``inst`` the ambient bundle for the duration of the block."""
    _AMBIENT.append(inst)
    try:
        yield inst
    finally:
        _AMBIENT.pop()


# ----------------------------------------------------------------------
# KernelStats: the per-run record on every *Outcomes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KernelStats:
    """Diagnostics of one ``run_*_replications`` invocation.

    ``channel_events`` and the three mirrored policy counters
    (``stall_terminations``, ``boot_grace_activations``,
    ``livelock_peak_streak``) agree *exactly* between the event and
    vectorized backends — they are counted at semantically identical
    choke points on both sides, so a cross-backend drift shows up as a
    dict diff here before it shows up as a 1e-9 outcome divergence.
    ``peak_queue_depth`` and ``pool_occupancy`` are sampled diagnostics
    (round-granular in the kernels, event-granular in the oracles) and
    may differ between backends; phase times and RSS are host-local.

    Merge semantics (shards / chunks): counts sum; ``n_rounds``,
    ``rng_rows`` and the peaks take the max (CRN shards replay the
    same row indices); pool occupancy maxes elementwise; the layout
    tuples concatenate.
    """

    kind: str                      # "plan" | "cluster" | "service" | "tenancy"
    backend: str
    n_replications: int
    workers: int
    shards: tuple[tuple[int, int], ...]
    chunk_sizes: tuple[int, ...]
    n_rounds: int
    rng_rows: int
    n_draws: int
    channel_events: dict[str, int]
    stall_terminations: int
    boot_grace_activations: int
    livelock_peak_streak: int
    peak_queue_depth: int
    pool_occupancy: tuple[int, ...]
    phase_seconds: dict[str, float]
    peak_rss_bytes: int

    def merge(self, other: "KernelStats") -> "KernelStats":
        if (self.kind, self.backend) != (other.kind, other.backend):
            raise ValueError(
                f"cannot merge stats of ({self.kind}, {self.backend}) with "
                f"({other.kind}, {other.backend})"
            )
        channels = dict(self.channel_events)
        for name, v in other.channel_events.items():
            channels[name] = channels.get(name, 0) + v
        phases = dict(self.phase_seconds)
        for name, v in other.phase_seconds.items():
            phases[name] = phases.get(name, 0.0) + v
        occ_a, occ_b = self.pool_occupancy, other.pool_occupancy
        if len(occ_a) < len(occ_b):
            occ_a, occ_b = occ_b, occ_a
        occupancy = tuple(
            max(a, occ_b[i]) if i < len(occ_b) else a
            for i, a in enumerate(occ_a)
        )
        return KernelStats(
            kind=self.kind,
            backend=self.backend,
            n_replications=self.n_replications + other.n_replications,
            workers=max(self.workers, other.workers),
            shards=self.shards + other.shards,
            chunk_sizes=self.chunk_sizes + other.chunk_sizes,
            n_rounds=max(self.n_rounds, other.n_rounds),
            rng_rows=max(self.rng_rows, other.rng_rows),
            n_draws=self.n_draws + other.n_draws,
            channel_events=channels,
            stall_terminations=self.stall_terminations + other.stall_terminations,
            boot_grace_activations=(
                self.boot_grace_activations + other.boot_grace_activations
            ),
            livelock_peak_streak=max(
                self.livelock_peak_streak, other.livelock_peak_streak
            ),
            peak_queue_depth=max(self.peak_queue_depth, other.peak_queue_depth),
            pool_occupancy=occupancy,
            phase_seconds=phases,
            peak_rss_bytes=max(self.peak_rss_bytes, other.peak_rss_bytes),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "backend": self.backend,
            "n_replications": self.n_replications,
            "workers": self.workers,
            "shards": [list(s) for s in self.shards],
            "chunk_sizes": list(self.chunk_sizes),
            "n_rounds": self.n_rounds,
            "rng_rows": self.rng_rows,
            "n_draws": self.n_draws,
            "channel_events": dict(self.channel_events),
            "stall_terminations": self.stall_terminations,
            "boot_grace_activations": self.boot_grace_activations,
            "livelock_peak_streak": self.livelock_peak_streak,
            "peak_queue_depth": self.peak_queue_depth,
            "pool_occupancy": list(self.pool_occupancy),
            "phase_seconds": dict(self.phase_seconds),
            "peak_rss_bytes": self.peak_rss_bytes,
        }


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX platforms
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    import sys

    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def progress_printer(stream=None) -> Callable[[int, int, float, float], None]:
    """A ``progress=`` callback writing one status line per chunk.

    Writes to ``stream`` (default ``sys.stderr``, keeping stdout clean
    for reports) as ``done/total (pct)  elapsed  eta``.
    """
    import sys

    out = stream if stream is not None else sys.stderr

    def report(done: int, total: int, elapsed: float, eta: float) -> None:
        pct = 100.0 * done / total if total else 100.0
        eta_txt = f"{eta:6.1f}s" if eta < float("inf") else "    ?s"
        out.write(
            f"\r[repro.obs] {done}/{total} replications ({pct:5.1f}%)  "
            f"elapsed {elapsed:6.1f}s  eta {eta_txt}"
        )
        if done >= total:
            out.write("\n")
        out.flush()

    return report


def write_metrics_json(path, registry: MetricsRegistry, meta: dict | None = None) -> None:
    """Dump a registry snapshot as the metrics-JSON document
    ``tools/obs_report.py`` renders."""
    doc: dict[str, Any] = {"generator": "repro.obs", "schema_version": 1}
    if meta:
        doc.update(meta)
    doc.update(registry.snapshot().as_dict())
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")

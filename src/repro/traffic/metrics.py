"""Per-tenant SLO metrics over multi-tenant sweep outcomes.

Derived views over the equivalence-pinned arrays of
:class:`repro.sim.backend.TenantOutcomes` — any metric here agrees
across backends by construction.  The vocabulary follows the
workload-management literature (and the paper's Fig. 9 economics):

* **wait** — arrival-to-first-start queueing delay,
* **bounded slowdown** — ``max(turnaround / max(work, tau), 1)`` with
  the conventional 0.1 h interactivity threshold ``tau``,
* **cost-reduction factor** — on-demand baseline over billed cost,
  attributed to tenants in proportion to their gang occupancy
  (``(finish - start) x width``) so heavy or failure-prone tenants
  carry their share of the waste,
* **Jain fairness index** — ``(sum x)^2 / (n sum x^2)`` over per-tenant
  mean waits (1 = perfectly even queueing across tenants).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.backend import TenantOutcomes
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "BSLD_THRESHOLD_HOURS",
    "TenantReport",
    "bounded_slowdown",
    "jain_fairness_index",
    "tenant_report",
]

#: Conventional interactivity threshold of the bounded-slowdown metric.
BSLD_THRESHOLD_HOURS = 0.1


def bounded_slowdown(
    turnaround: np.ndarray,
    work_hours: np.ndarray,
    *,
    threshold: float = BSLD_THRESHOLD_HOURS,
) -> np.ndarray:
    """Elementwise ``max(turnaround / max(work, threshold), 1)``.

    ``nan`` entries (rejected jobs) propagate.
    """
    check_positive("threshold", threshold)
    denom = np.maximum(np.asarray(work_hours, dtype=float), threshold)
    return np.maximum(np.asarray(turnaround, dtype=float) / denom, 1.0)


def jain_fairness_index(values) -> float:
    """Jain's index over non-negative per-tenant values (nan-skipped).

    1 when all tenants see identical values, ``1/n`` in the most
    skewed case; 1.0 for an empty or all-nan input (nothing unfair).

    ``nan`` entries mark tenants with no admitted jobs (the
    :func:`tenant_report` convention); they are excluded, so the index
    is always the fairness *over admitted tenants only* — a tenant that
    admitted nothing can neither zero the index nor divide-by-zero it.
    """
    x = np.asarray(values, dtype=float)
    x = x[np.isfinite(x)]
    if x.size == 0:
        return 1.0
    if np.any(x < 0.0):
        raise ValueError("fairness values must be >= 0")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float((x**2).sum())
    if denom == 0.0:
        return 1.0
    return total_sq / denom


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant SLO aggregation of one tenancy sweep.

    Every per-tenant array has shape ``(n_tenants,)``, averaged over
    replications and that tenant's admitted jobs (``nan`` for a tenant
    with no admitted jobs).  ``mean_occupancy_hours`` is the mean gang
    occupancy ``(finish - start) x width`` per admitted job — a
    replication in which the tenant admitted nothing contributes no
    entries (it is *not* counted as zero occupancy).
    """

    n_tenants: int
    n_replications: int
    submitted_jobs: np.ndarray
    mean_admitted_jobs: np.ndarray
    mean_wait_hours: np.ndarray
    mean_bounded_slowdown: np.ndarray
    mean_occupancy_hours: np.ndarray
    cost_reduction_factor: np.ndarray
    wait_fairness: float
    backend: str

    def summary(self) -> str:
        lines = [
            f"tenants={self.n_tenants} n={self.n_replications} "
            f"({self.backend}): wait-fairness {self.wait_fairness:.3f}"
        ]
        for t in range(self.n_tenants):
            lines.append(
                f"  tenant {t}: submitted {int(self.submitted_jobs[t])}, "
                f"admitted {self.mean_admitted_jobs[t]:.1f}, "
                f"E[wait] {self.mean_wait_hours[t]:.3f} h, "
                f"E[bsld] {self.mean_bounded_slowdown[t]:.2f}, "
                f"CRF {self.cost_reduction_factor[t]:.2f}"
            )
        return "\n".join(lines)


def tenant_report(
    outcomes: TenantOutcomes,
    *,
    preemptible_rate: float = 0.2,
    on_demand_rate: float = 1.0,
    master_rate: float = 0.0,
    bsld_threshold: float = BSLD_THRESHOLD_HOURS,
) -> TenantReport:
    """Aggregate a tenancy sweep into per-tenant SLO numbers.

    Cost attribution: each replication's billed cost (workers + master
    at the given rates) is split across tenants in proportion to their
    gang occupancy ``(finish - start) x width`` summed over admitted
    jobs; a tenant's cost-reduction factor is its on-demand baseline
    (admitted ideal work at ``on_demand_rate``) over its mean share.

    A tenant that admits zero bags yields defined values everywhere:
    ``nan`` per-tenant means (never a ZeroDivision or a spurious 0), a
    zero cost share, and exclusion from ``wait_fairness`` — the index
    covers admitted tenants only.
    """
    check_nonnegative("preemptible_rate", preemptible_rate)
    check_nonnegative("on_demand_rate", on_demand_rate)
    check_nonnegative("master_rate", master_rate)
    T = outcomes.n_tenants
    n = outcomes.n_replications
    waits = outcomes.wait_times
    bsld = bounded_slowdown(
        outcomes.turnaround_times, outcomes.job_work[None, :], threshold=bsld_threshold
    )
    occupancy = (
        (outcomes.finish_times - outcomes.start_times)
        * outcomes.job_width[None, :]
    )
    cost = outcomes.total_cost(preemptible_rate, master_rate)
    ideal = outcomes.job_work * outcomes.job_width

    submitted = np.zeros(T)
    mean_admitted = np.zeros(T)
    mean_wait = np.full(T, np.nan)
    mean_bsld = np.full(T, np.nan)
    mean_occ = np.full(T, np.nan)
    crf = np.full(T, np.nan)
    occ_by_tenant = np.zeros((max(n, 1), T))
    for t in range(T):
        jobs_t = outcomes.job_tenant == t
        submitted[t] = int(jobs_t.sum())
        if not jobs_t.any() or n == 0:
            continue
        adm = outcomes.admitted[:, jobs_t]
        mean_admitted[t] = float(adm.sum(axis=1).mean())
        w = waits[:, jobs_t]
        if np.isfinite(w).any():
            mean_wait[t] = float(np.nanmean(w))
            mean_bsld[t] = float(np.nanmean(bsld[:, jobs_t]))
            # Per admitted job, like the wait and slowdown means: a
            # replication that rejected the tenant's bags contributes no
            # entries rather than a spurious zero.
            mean_occ[t] = float(np.nanmean(occupancy[:, jobs_t]))
        occ_by_tenant[:, t] = np.nansum(occupancy[:, jobs_t], axis=1)
    if n:
        occ_total = occ_by_tenant.sum(axis=1)
        safe_total = np.where(occ_total > 0.0, occ_total, 1.0)
        share = np.where(
            occ_total[:, None] > 0.0, occ_by_tenant / safe_total[:, None], 0.0
        )
        tenant_cost = (share * cost[:, None]).mean(axis=0)
        for t in range(T):
            jobs_t = outcomes.job_tenant == t
            baseline = float(
                (outcomes.admitted[:, jobs_t] * ideal[None, jobs_t]).sum(axis=1).mean()
            ) * on_demand_rate
            if tenant_cost[t] > 0.0:
                crf[t] = baseline / tenant_cost[t]
            elif baseline > 0.0:
                crf[t] = np.inf
    return TenantReport(
        n_tenants=T,
        n_replications=n,
        submitted_jobs=submitted,
        mean_admitted_jobs=mean_admitted,
        mean_wait_hours=mean_wait,
        mean_bounded_slowdown=mean_bsld,
        mean_occupancy_hours=mean_occ,
        cost_reduction_factor=crf,
        wait_fairness=jain_fairness_index(mean_wait),
        backend=outcomes.backend,
    )

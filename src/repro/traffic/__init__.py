"""Multi-tenant traffic: arrivals, admission, shared-fleet scheduling.

The layer above the Section 5 controller — where the system serves
*traffic* (many tenants submitting bags over time) instead of replaying
one bag:

* :mod:`repro.traffic.arrivals` -- arrival processes (Poisson, diurnal
  rate curves derived from trace statistics, bursty MMPP) and job-mix
  sampling into :class:`~repro.sim.tenancy_vectorized.BagSubmission`
  traffic traces,
* :mod:`repro.traffic.multitenant` -- the live
  :class:`MultiTenantService` front end over
  :class:`~repro.service.controller.BatchComputingService` (pluggable
  inter-tenant scheduling, admission control, elastic fleet sizing);
  the event-path oracle of the batched tenancy kernel,
* :mod:`repro.traffic.metrics` -- per-tenant SLO metrics (wait,
  bounded slowdown, cost-reduction factor, Jain fairness).

Batched sweeps run through
:func:`repro.sim.backend.run_tenant_replications`; the ``fig9-tenants``
registry experiment sweeps tenant count x arrival rate x policy.
"""

from repro.sim.tenancy_vectorized import (
    BagSubmission,
    TenancyConfig,
    SCHEDULING_POLICIES,
)
from repro.traffic.arrivals import (
    DiurnalProcess,
    JobMix,
    MMPPProcess,
    PoissonProcess,
    TenantSpec,
    WeeklyRateCurve,
    sample_traffic,
)
from repro.traffic.metrics import (
    TenantReport,
    bounded_slowdown,
    jain_fairness_index,
    tenant_report,
)
from repro.traffic.multitenant import MultiTenantService, TenantJobRecord

__all__ = [
    "BagSubmission",
    "TenancyConfig",
    "SCHEDULING_POLICIES",
    "DiurnalProcess",
    "JobMix",
    "MMPPProcess",
    "PoissonProcess",
    "TenantSpec",
    "WeeklyRateCurve",
    "sample_traffic",
    "TenantReport",
    "bounded_slowdown",
    "jain_fairness_index",
    "tenant_report",
    "MultiTenantService",
    "TenantJobRecord",
]

"""Arrival processes: tenants submitting bags over time.

The ROADMAP's "heavy traffic" layer needs *workload generators*: who
submits how much, when.  This module provides the three arrival shapes
the scheduling literature leans on (cf. the accasim-style workload
simulators):

* :class:`PoissonProcess` — homogeneous Poisson arrivals (rate bags/h),
* :class:`DiurnalProcess` — inhomogeneous Poisson driven by a weekly
  rate curve (:class:`WeeklyRateCurve`), derivable from the Section 3
  trace analysis via :meth:`WeeklyRateCurve.from_trace` (busy weekday
  daytime hours — where preemption pressure is highest — submit more),
* :class:`MMPPProcess` — a 2-state Markov-modulated Poisson process for
  bursty traffic (quiet/burst regimes with exponential sojourns).

Each tenant pairs an arrival process with a :class:`JobMix` describing
the bag contents (lognormal job-length mixes over a width distribution,
"shapes"-style heterogeneity); :func:`sample_traffic` turns a set of
:class:`TenantSpec` s into one deterministic, time-sorted sequence of
:class:`~repro.sim.tenancy_vectorized.BagSubmission` s — the *fixed
scenario input* that :func:`repro.sim.backend.run_tenant_replications`
replays on both backends (traffic randomness is sampled here, once;
the Monte-Carlo axis is VM lifetimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.cluster_vectorized import GangJob
from repro.sim.tenancy_vectorized import BagSubmission, normalize_traffic
from repro.traces.schema import PreemptionTrace
from repro.traces.stats import demand_profile
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "WeeklyRateCurve",
    "PoissonProcess",
    "DiurnalProcess",
    "MMPPProcess",
    "JobMix",
    "TenantSpec",
    "sample_traffic",
]

#: Hours in the weekly cycle the diurnal curve repeats over.
WEEK_HOURS = 168


def _clone_generator(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator starting from ``rng``'s current state."""
    bg = rng.bit_generator.__class__()
    bg.state = rng.bit_generator.state
    return np.random.Generator(bg)


def _exponential_flight(
    rng: np.random.Generator, scale: float, start: float, horizon: float
) -> np.ndarray:
    """Arrival times of one exponential flight over ``[start, horizon)``.

    Bit-identical — in values, draw count, and generator end state — to
    the scalar loop ``t += rng.exponential(scale)`` stopping at
    ``t >= horizon``, but vectorised: a *clone* of ``rng`` draws a
    block to count how many exponentials the loop would consume, then
    exactly that many are consumed from ``rng`` itself.  This works
    because ``Generator.exponential(scale, size=k)`` yields the same
    values and end state as ``k`` sequential scalar draws, and a
    cumulative sum seeded with ``start`` reproduces the scalar
    accumulation order of operations.
    """
    span = max(horizon - start, 0.0)
    block = max(64, int(span / scale * 1.25) + 16)
    while True:
        draws = _clone_generator(rng).exponential(scale, size=block)
        cum = np.cumsum(np.concatenate(((start,), draws)))[1:]
        k = int(np.searchsorted(cum, horizon, side="left"))
        if k < block:
            # The scalar loop consumes one draw past the horizon.
            rng.exponential(scale, size=k + 1)
            return cum[:k]
        block *= 2  # flight outran the block: re-clone and retry bigger


@dataclass(frozen=True)
class WeeklyRateCurve:
    """Piecewise-constant arrival rate over a repeating 168-hour week.

    ``hourly_rates[h]`` is the rate (bags/hour) during week-hour ``h``
    (hour 0 = Monday 00:00, matching the trace schema's
    ``day_of_week``/``launch_hour`` conventions).
    """

    hourly_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly_rates) != WEEK_HOURS:
            raise ValueError(
                f"hourly_rates must have {WEEK_HOURS} entries, "
                f"got {len(self.hourly_rates)}"
            )
        rates = tuple(float(r) for r in self.hourly_rates)
        if any(r < 0.0 for r in rates):
            raise ValueError("hourly rates must be >= 0")
        if not any(r > 0.0 for r in rates):
            raise ValueError("at least one hourly rate must be > 0")
        object.__setattr__(self, "hourly_rates", rates)

    @classmethod
    def from_trace(
        cls, trace: PreemptionTrace, base_rate: float
    ) -> "WeeklyRateCurve":
        """Rate curve proportional to the trace's demand profile.

        ``base_rate`` is the *week-average* rate; each hour is scaled by
        :func:`repro.traces.stats.demand_profile` (mean 1 over the
        week), so high-demand contexts — weekday daytime, where
        observed lifetimes are shortest — submit proportionally more.
        """
        check_positive("base_rate", base_rate)
        profile = demand_profile(trace)  # (7, 24), mean 1
        return cls(tuple(float(base_rate * profile[d, h]) for d in range(7) for h in range(24)))

    @classmethod
    def flat(cls, rate: float) -> "WeeklyRateCurve":
        check_positive("rate", rate)
        return cls((float(rate),) * WEEK_HOURS)

    def rate_at(self, t: float) -> float:
        """Instantaneous rate at absolute hour ``t`` (t = 0 is Monday 00:00)."""
        check_nonnegative("t", t)
        return self.hourly_rates[int(t % WEEK_HOURS)]

    def integrate(self, horizon: float) -> float:
        """Cumulative intensity ``Lambda(horizon)`` = expected arrivals."""
        check_nonnegative("horizon", horizon)
        rates = np.asarray(self.hourly_rates)
        full_weeks, rem = divmod(horizon, float(WEEK_HOURS))
        total = full_weeks * rates.sum()
        whole, frac = divmod(rem, 1.0)
        whole = int(whole)
        total += rates[:whole].sum()
        if frac > 0.0:
            total += rates[whole % WEEK_HOURS] * frac
        return float(total)


class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate`` bags/hour."""

    def __init__(self, rate: float):
        self.rate = check_positive("rate", rate)

    def sample_times(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        check_nonnegative("horizon", horizon)
        return _exponential_flight(rng, 1.0 / self.rate, 0.0, float(horizon))


class DiurnalProcess:
    """Inhomogeneous Poisson arrivals driven by a :class:`WeeklyRateCurve`.

    Sampled by inversion of the integrated rate: unit-exponential
    increments in ``Lambda``-space map back to arrival times through the
    piecewise-linear cumulative intensity, so the draw sequence (and
    thus reproducibility) depends only on the generator state.
    """

    def __init__(self, curve: WeeklyRateCurve, *, start_hour: float = 0.0):
        self.curve = curve
        self.start_hour = check_nonnegative("start_hour", start_hour)
        # Inversion table: Lambda at bin edges.  All _invert arithmetic
        # uses these edges (and their final value as the week total) so
        # a cumulative-intensity coordinate can never float past the
        # last edge into a trailing zero-rate bin.
        self._rates = np.asarray(curve.hourly_rates)
        self._edges = np.concatenate([[0.0], np.cumsum(self._rates)])

    def sample_times(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        check_nonnegative("horizon", horizon)
        times = []
        offset = self.start_hour
        target = 0.0  # cumulative-intensity coordinate of the next arrival
        consumed = self.curve.integrate(offset)
        total = self.curve.integrate(offset + horizon)
        while True:
            target += rng.exponential(1.0)
            lam = consumed + target
            if lam >= total:
                break
            t = self._invert(lam) - offset
            if t >= horizon:  # float slack between integrate() and the table
                break
            times.append(t)
        return np.asarray(times, dtype=float)

    def _invert(self, lam: float) -> float:
        """Absolute hour ``t`` with ``Lambda(t) = lam`` (piecewise linear)."""
        week_total = float(self._edges[-1])
        weeks, lam_rem = divmod(lam, week_total)
        # lam_rem < week_total, so the located bin always carries mass:
        # a zero-rate bin has a zero-width edge interval that cannot
        # contain lam_rem (searchsorted skips past it).
        h = int(np.searchsorted(self._edges, lam_rem, side="right") - 1)
        h = min(h, WEEK_HOURS - 1)
        while self._rates[h] == 0.0 and h + 1 < WEEK_HOURS:  # defensive
            h += 1
        frac = (lam_rem - self._edges[h]) / self._rates[h]
        return float(weeks * WEEK_HOURS + h + frac)


class MMPPProcess:
    """2-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates exponential sojourns in a quiet state (rate
    ``rate_low``, mean sojourn ``sojourn_low`` hours) and a burst state
    (``rate_high`` / ``sojourn_high``); within a sojourn arrivals are
    homogeneous Poisson at the state's rate.
    """

    def __init__(
        self,
        rate_low: float,
        rate_high: float,
        *,
        sojourn_low: float = 8.0,
        sojourn_high: float = 1.0,
        start_high: bool = False,
    ):
        self.rate_low = check_nonnegative("rate_low", rate_low)
        self.rate_high = check_positive("rate_high", rate_high)
        self.sojourn_low = check_positive("sojourn_low", sojourn_low)
        self.sojourn_high = check_positive("sojourn_high", sojourn_high)
        self.start_high = bool(start_high)

    def sample_times(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        check_nonnegative("horizon", horizon)
        chunks = []
        t = 0.0
        high = self.start_high
        while t < horizon:
            mean = self.sojourn_high if high else self.sojourn_low
            rate = self.rate_high if high else self.rate_low
            end = min(t + rng.exponential(mean), horizon)
            if rate > 0.0:
                chunks.append(_exponential_flight(rng, 1.0 / rate, t, end))
            t = end
            high = not high
        if not chunks:
            return np.asarray([], dtype=float)
        return np.concatenate(chunks)


@dataclass(frozen=True)
class JobMix:
    """Heterogeneous bag contents: a lognormal length mix over gang widths.

    Attributes
    ----------
    mean_hours:
        Mean job length of the mix.
    cv:
        Coefficient of variation of the lognormal length law (0 pins
        every job to ``mean_hours``).
    widths:
        Gang widths jobs may request.
    width_weights:
        Sampling weights over ``widths`` (uniform when ``None``).
    jobs_per_bag:
        Inclusive ``(lo, hi)`` range of bag sizes.
    min_hours:
        Lower clip on sampled lengths (keeps jobs strictly positive).
    """

    mean_hours: float = 1.0
    cv: float = 0.4
    widths: tuple[int, ...] = (1,)
    width_weights: tuple[float, ...] | None = None
    jobs_per_bag: tuple[int, int] = (2, 5)
    min_hours: float = 0.05

    def __post_init__(self) -> None:
        check_positive("mean_hours", self.mean_hours)
        check_nonnegative("cv", self.cv)
        check_positive("min_hours", self.min_hours)
        if not self.widths or any(w < 1 for w in self.widths):
            raise ValueError("widths must be a non-empty tuple of ints >= 1")
        lo, hi = self.jobs_per_bag
        if lo < 1 or hi < lo:
            raise ValueError(f"jobs_per_bag must satisfy 1 <= lo <= hi, got {self.jobs_per_bag}")
        if self.width_weights is not None:
            if len(self.width_weights) != len(self.widths):
                raise ValueError("width_weights must align with widths")
            if any(w < 0 for w in self.width_weights) or sum(self.width_weights) <= 0:
                raise ValueError("width_weights must be >= 0 and sum > 0")

    @classmethod
    def from_profile(cls, profile, **overrides) -> "JobMix":
        """Build a mix from a workload runtime profile.

        ``profile`` is a
        :class:`repro.workloads.profiles.RuntimeProfile` (or anything
        with ``mean_hours``/``cv``/``widths``/``jobs_per_bag``);
        keyword overrides replace individual fields, e.g.
        ``JobMix.from_profile(application_profile("lulesh"),
        jobs_per_bag=(2, 4))``.
        """
        fields = dict(
            mean_hours=profile.mean_hours,
            cv=profile.cv,
            widths=tuple(profile.widths),
            jobs_per_bag=tuple(profile.jobs_per_bag),
        )
        fields.update(overrides)
        return cls(**fields)

    def sample_bag(self, rng: np.random.Generator) -> tuple[GangJob, ...]:
        lo, hi = self.jobs_per_bag
        m = int(rng.integers(lo, hi + 1))
        if self.cv > 0.0:
            sigma = float(np.sqrt(np.log1p(self.cv**2)))
            mu = float(np.log(self.mean_hours)) - 0.5 * sigma**2
            hours = np.exp(rng.normal(mu, sigma, size=m))
        else:
            hours = np.full(m, self.mean_hours)
        hours = np.maximum(hours, self.min_hours)
        if len(self.widths) > 1:
            p = None
            if self.width_weights is not None:
                w = np.asarray(self.width_weights, dtype=float)
                p = w / w.sum()
            widths = rng.choice(np.asarray(self.widths), size=m, p=p)
        else:
            widths = np.full(m, self.widths[0], dtype=np.int64)
        return tuple(GangJob(float(h), int(w)) for h, w in zip(hours, widths))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, an arrival process, a job mix, and a weight.

    ``weight`` feeds the ``"weighted"`` inter-tenant scheduling policy
    (stride scheduling); it is ignored by ``"fifo"`` and ``"fair"``.
    """

    name: str
    arrivals: PoissonProcess | DiurnalProcess | MMPPProcess
    mix: JobMix
    weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)


def sample_traffic(
    tenants: Sequence[TenantSpec],
    horizon: float,
    *,
    seed: int | np.random.Generator | None = 0,
) -> tuple[BagSubmission, ...]:
    """Sample every tenant's submissions over ``[0, horizon)`` hours.

    One generator serves all tenants in declaration order (arrival
    times first, then each bag's contents), so the traffic is a pure
    function of ``(tenants, horizon, seed)``.  Returns submissions
    normalised the way the backends require — stably sorted by time.
    """
    check_positive("horizon", horizon)
    if not tenants:
        raise ValueError("tenants must be non-empty")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    submissions: list[BagSubmission] = []
    for idx, spec in enumerate(tenants):
        for t in spec.arrivals.sample_times(float(horizon), rng):
            submissions.append(
                BagSubmission(tenant=idx, time=float(t), jobs=spec.mix.sample_bag(rng))
            )
    return normalize_traffic(submissions)

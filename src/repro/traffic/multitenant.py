"""Multi-tenant front end over the batch computing service.

One shared :class:`~repro.service.controller.BatchComputingService`
fleet serves *traffic* — many tenants submitting bags over time —
instead of replaying a single bag.  The front end adds the three
tenancy concerns on top of the unmodified controller:

* **Inter-tenant scheduling** — ``"fifo"`` / ``"fair"`` round-robin /
  ``"weighted"`` stride policies, realised as per-job priority keys
  (:func:`repro.sim.tenancy_vectorized.queue_key`) on the cluster's
  keyed queue, so the gang-scheduling core, Eq. 8 reuse filtering, and
  stall provisioning stay exactly the controller's.
* **Admission control** — ``admission_cap`` bounds a tenant's
  unfinished admitted jobs; an oversize bag is rejected whole at
  arrival.
* **Elastic fleet sizing** — with ``elastic_vms_per_bag`` the
  controller's provisioning cap (``BatchComputingService.fleet_cap``)
  tracks ``min(max_vms, elastic x active bags)`` between bag arrivals
  and completions; downsizing happens through idle-retention reaps.

Each tenant keeps per-bag runtime estimates (the controller's
``BagOfJobs`` machinery is already per-bag), so Eq. 8 reuse decisions
are per-tenant by construction.

This class is the *event-path semantics oracle* for the batched
tenancy kernel (:mod:`repro.sim.tenancy_vectorized`):
:func:`repro.sim.backend.run_tenant_replications` with
``backend="event"`` drives one instance per replication, and the
cross-backend tenancy equivalence suite pins both to 1e-9 hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.service.api import BagRequest, JobRequest
from repro.service.controller import BatchComputingService, ServiceConfig
from repro.sim.cluster import SimJob
from repro.sim.engine import Simulator
from repro.sim.tenancy_vectorized import (
    SCHEDULING_POLICIES,
    normalize_traffic,
    queue_key,
)
from repro.utils.validation import check_positive

__all__ = ["TenantJobRecord", "MultiTenantService"]


@dataclass
class TenantJobRecord:
    """Front-end bookkeeping for one scheduled job (admitted or not)."""

    tenant: int
    arrival: float
    work_hours: float
    width: int
    queue_key: float
    admitted: bool = False
    job: SimJob | None = field(default=None, repr=False)

    @property
    def start_time(self) -> float | None:
        return None if self.job is None else self.job.start_time

    @property
    def finish_time(self) -> float | None:
        return None if self.job is None else self.job.finish_time

    @property
    def wait_hours(self) -> float | None:
        """Queueing delay from arrival to first gang start."""
        if self.job is None or self.job.start_time is None:
            return None
        return self.job.start_time - self.arrival


class MultiTenantService:
    """Traffic-serving front end over one :class:`BatchComputingService`.

    Parameters
    ----------
    sim, cloud, lifetime_model, config:
        Forwarded to the wrapped controller.  ``config.backfill`` must
        stay off: inter-tenant policies own the queue order.
    n_tenants:
        Number of tenants (tenant ids are ``0..n_tenants-1``).
    scheduling:
        ``"fifo"``, ``"fair"``, or ``"weighted"`` (see
        :mod:`repro.sim.tenancy_vectorized`).
    tenant_weights:
        Stride weights for ``"weighted"``; all-1 when ``None``.
    admission_cap:
        Max unfinished admitted jobs per tenant (``None`` = admit all).
    elastic_vms_per_bag:
        Elastic fleet sizing increment (``None`` = static
        ``config.max_vms`` cap).
    estimate_window:
        Trailing-completion window of every bag's runtime estimate.
    """

    def __init__(
        self,
        sim: Simulator,
        cloud,
        lifetime_model: LifetimeDistribution,
        config: ServiceConfig | None = None,
        *,
        n_tenants: int,
        scheduling: str = "fifo",
        tenant_weights=None,
        admission_cap: int | None = None,
        elastic_vms_per_bag: int | None = None,
        estimate_window: int = 16,
    ):
        config = config or ServiceConfig()
        if config.backfill:
            raise ValueError(
                "backfill is incompatible with inter-tenant scheduling; "
                "pick a tenancy scheduling policy instead"
            )
        if scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}, got {scheduling!r}"
            )
        check_positive("n_tenants", n_tenants)
        if admission_cap is not None:
            check_positive("admission_cap", admission_cap)
        if elastic_vms_per_bag is not None:
            check_positive("elastic_vms_per_bag", elastic_vms_per_bag)
        check_positive("estimate_window", estimate_window)
        self.sim = sim
        self.service = BatchComputingService(sim, cloud, lifetime_model, config)
        self.service.cluster.enable_keyed_queue()
        self.n_tenants = int(n_tenants)
        self.scheduling = scheduling
        self.tenant_weights = (
            None if tenant_weights is None else tuple(float(w) for w in tenant_weights)
        )
        if self.tenant_weights is not None:
            if len(self.tenant_weights) < self.n_tenants:
                raise ValueError("tenant_weights must cover every tenant")
            if any(w <= 0.0 for w in self.tenant_weights):
                raise ValueError("tenant_weights must be > 0")
        self.admission_cap = admission_cap
        self.elastic_vms_per_bag = elastic_vms_per_bag
        self.estimate_window = int(estimate_window)
        #: All scheduled jobs in submission-schedule order (the global
        #: job order the batched kernel uses), admitted or not.
        self.records: list[TenantJobRecord] = []
        self._global_seq = 0
        self._tenant_job_seq = [0] * self.n_tenants
        self._admitted = np.zeros(self.n_tenants, dtype=np.int64)
        self._done = np.zeros(self.n_tenants, dtype=np.int64)
        self.rejected_bags = np.zeros(self.n_tenants, dtype=np.int64)
        self._pending_arrivals = 0
        self._bags_active = 0
        self._bag_tenant: dict[int, int] = {}
        self._bag_remaining: dict[int, int] = {}
        self._update_fleet_cap()
        self.service.cluster.on_job_complete.append(self._job_completed)

    # ------------------------------------------------------------------
    # Traffic intake
    # ------------------------------------------------------------------
    def submit_traffic(self, traffic) -> None:
        """Schedule every bag submission of a traffic trace.

        ``traffic`` is normalised (time-sorted) first so arrival events
        enter the simulator — and therefore tie-break — in exactly the
        order the batched kernel numbers them.
        """
        for sub in normalize_traffic(traffic):
            self.schedule_bag(sub.tenant, sub.time, sub.jobs)

    def schedule_bag(self, tenant: int, time: float, jobs) -> None:
        """Schedule one bag arrival at absolute hour ``time``.

        Priority keys are assigned now (a pure function of the traffic
        so far — rejected bags still consume per-tenant indices); the
        admission decision happens when the arrival event fires.
        """
        if not 0 <= tenant < self.n_tenants:
            raise ValueError(f"tenant must be in [0, {self.n_tenants}), got {tenant}")
        recs = []
        for j in jobs:
            work, width = (j.work_hours, j.width) if hasattr(j, "work_hours") else j
            if self.scheduling == "fifo":
                key = float(self._global_seq)
            else:
                key = queue_key(
                    self.scheduling,
                    tenant,
                    self._tenant_job_seq[tenant],
                    self.n_tenants,
                    self.tenant_weights,
                )
            self._global_seq += 1
            self._tenant_job_seq[tenant] += 1
            rec = TenantJobRecord(
                tenant=tenant,
                arrival=float(time),
                work_hours=float(work),
                width=int(width),
                queue_key=key,
            )
            recs.append(rec)
            self.records.append(rec)
        self._pending_arrivals += 1
        self.sim.schedule_at(float(time), lambda: self._arrive(tenant, recs))

    # ------------------------------------------------------------------
    # Arrival / completion handlers
    # ------------------------------------------------------------------
    def _arrive(self, tenant: int, recs: list[TenantJobRecord]) -> None:
        self._pending_arrivals -= 1
        m = len(recs)
        if self.admission_cap is not None:
            unfinished = int(self._admitted[tenant] - self._done[tenant])
            if unfinished + m > self.admission_cap:
                self.rejected_bags[tenant] += 1
                return
        self._admitted[tenant] += m
        self._bags_active += 1
        self._update_fleet_cap()
        request = BagRequest(
            jobs=[
                JobRequest(
                    work_hours=r.work_hours,
                    width=r.width,
                    queue_key=r.queue_key,
                    tenant=tenant,
                )
                for r in recs
            ],
            name=f"tenant-{tenant}",
        )
        bag_id = self.service.submit_bag(request)
        self.service.bags[bag_id].window = self.estimate_window
        self._bag_tenant[bag_id] = tenant
        self._bag_remaining[bag_id] = m
        for rec, job in zip(recs, self.service.store.jobs_in_bag(bag_id)):
            rec.admitted = True
            rec.job = job

    def _job_completed(self, job: SimJob) -> None:
        tenant = self._bag_tenant.get(job.bag_id)
        if tenant is None:
            return
        self._done[tenant] += 1
        self._bag_remaining[job.bag_id] -= 1
        if self._bag_remaining[job.bag_id] == 0:
            # Drop *both* per-bag entries: long traffic horizons submit
            # unboundedly many bags, so a drained bag must release all
            # of its front-end state.
            del self._bag_remaining[job.bag_id]
            del self._bag_tenant[job.bag_id]
            self._bags_active -= 1
            self._update_fleet_cap()

    def _update_fleet_cap(self) -> None:
        if self.elastic_vms_per_bag is None:
            return
        self.service.fleet_cap = min(
            self.service.config.max_vms,
            max(self.elastic_vms_per_bag * self._bags_active, 1),
        )

    # ------------------------------------------------------------------
    # Drive / inspect
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """All arrivals processed and every admitted job completed."""
        return self._pending_arrivals == 0 and int(self._admitted.sum()) == int(
            self._done.sum()
        )

    def run(self, *, max_events: int = 5_000_000) -> None:
        """Drive the simulator until the traffic is fully served."""
        for _ in range(max_events):
            if self.finished:
                return
            if not self.sim.step():
                raise RuntimeError("simulation drained before the traffic finished")
        raise RuntimeError(f"exceeded {max_events} events")

    def tenant_unfinished(self, tenant: int) -> int:
        """Admitted-but-incomplete job count for one tenant."""
        return int(self._admitted[tenant] - self._done[tenant])

    def admitted_jobs(self, tenant: int | None = None) -> int:
        if tenant is None:
            return int(self._admitted.sum())
        return int(self._admitted[tenant])

    def completed_jobs(self, tenant: int | None = None) -> int:
        if tenant is None:
            return int(self._done.sum())
        return int(self._done[tenant])

"""Model-driven checkpoint scheduling (paper Section 4.3, Eqs. 9-13).

The policy discretises a job of length ``J`` hours into work-steps of
``step`` hours and chooses, by dynamic programming, after how many steps
to take each checkpoint so that the *expected makespan* is minimised
under the VM's (bathtub) failure law.  The resulting schedule is
non-uniform: short intervals where the hazard is high (young VMs, near
the deadline) and long intervals through the stable phase — e.g. the
paper's 5-hour job at age 0 gets intervals of roughly
(15, 28, 38, 59, 128) minutes.

Recursion (paper Eq. 9-12, with the state being *remaining additional
makespan* so the recursion is properly memoryless)::

    M*(J, t)    = min_{0 < i <= J} M(J, t, i)
    M(J, t, i)  = Psucc * (w + M*(J - i, t + w))
                + Pfail * (E[elapsed | fail] + R + M*(J, 0))
    w           = i * step + delta     (no trailing delta on the final segment)

Two deliberate deviations from the paper's literal equations, both
documented in DESIGN.md:

* Eq. 10 prints ``Pfail = F(t+i+delta) - F(i+delta)``; the window is
  ``(t, t+i+delta]`` so we use ``F(t+w) - F(t)``, optionally normalised
  by survival ``1 - F(t)`` (``variant="conditional"``, the default and
  the statistically correct hazard form; ``variant="paper"`` keeps the
  unconditioned difference).
* Section 4.3's text says a failed job resumes from its checkpoint *on a
  new VM*; the failure branch therefore returns to age 0, which makes
  state ``(J, 0)`` self-referencing.  It is solved by fixed-point
  iteration (a contraction since ``Pfail < 1``), then all other ages are
  filled with a single vectorised NumPy minimisation per remaining-work
  level — no Python loop over candidate intervals (HPC guide idiom).

The expected *lost time* of a failed attempt uses the exact conditional
mean ``E[x - t | t < x <= t+w] = (int_t^{t+w} x f(x) dx)/(F(t+w)-F(t)) - t``
whose numerator is the paper's Eq. 13 integral.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.utils.integrate import cumulative_trapezoid
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "CheckpointPlan",
    "CheckpointPolicy",
    "FixedPointWarning",
    "evaluate_schedule",
    "simulate_schedule",
]

_EPS = 1e-12

# Age-0 fixed point (the self-referencing state (J, 0)): iteration count
# and convergence tolerance.  The iteration is a contraction with factor
# Pfail, so laws whose per-interval failure probability approaches 1
# (mean lifetime << one work-step) converge geometrically slowly; when
# the budget runs out the residual is surfaced instead of silently
# accepting the unconverged value.
_FIXED_POINT_MAX_ITER = 500
_FIXED_POINT_TOL = 1e-10

Variant = Literal["conditional", "paper"]


class FixedPointWarning(UserWarning):
    """The age-0 makespan fixed point did not converge within budget."""


@dataclass(frozen=True)
class CheckpointPlan:
    """An optimal checkpoint schedule for one (job length, start age).

    Attributes
    ----------
    segments:
        Work-hours between consecutive checkpoints, in execution order.
        The final segment is not followed by a checkpoint.
    checkpoint_times:
        Cumulative work-hours at which checkpoints are written
        (``len(segments) - 1`` entries; empty when the whole job is one
        segment).
    expected_makespan:
        Expected wall-clock hours to completion (work + checkpoint
        overhead + expected recomputation).
    job_length, start_age, delta:
        Echo of the query parameters.
    """

    segments: tuple[float, ...]
    checkpoint_times: tuple[float, ...]
    expected_makespan: float
    job_length: float
    start_age: float
    delta: float

    @property
    def n_checkpoints(self) -> int:
        return len(self.checkpoint_times)

    @property
    def overhead_fraction(self) -> float:
        """``(E[makespan] - J) / J`` — the Fig. 8 y-axis (as a fraction)."""
        return (self.expected_makespan - self.job_length) / self.job_length

    def intervals_minutes(self) -> tuple[float, ...]:
        """Segment lengths in minutes (the paper quotes them this way)."""
        return tuple(60.0 * s for s in self.segments)


class _MomentTable:
    """Precomputed F and ``int_0^t x f(x) dx`` on a fine grid for one law."""

    def __init__(self, dist: LifetimeDistribution, horizon: float, *, num: int = 8193):
        self.horizon = horizon
        self.grid = np.linspace(0.0, horizon, num)
        self.F = np.asarray(dist.cdf(self.grid), dtype=float)
        pdf = np.asarray(dist.pdf(self.grid), dtype=float)
        self.Ig = cumulative_trapezoid(self.grid * pdf, self.grid)

    def cdf(self, t: np.ndarray) -> np.ndarray:
        return np.interp(t, self.grid, self.F, left=0.0, right=1.0)

    def moment(self, t: np.ndarray) -> np.ndarray:
        return np.interp(t, self.grid, self.Ig, left=0.0, right=float(self.Ig[-1]))


@dataclass
class _DPTable:
    """Solved DP for one (n_steps, policy) pair."""

    M: np.ndarray  # (n_steps + 1, n_ages) expected additional makespan
    choice: np.ndarray  # (n_steps + 1, n_ages) optimal first-segment steps
    ages: np.ndarray  # (n_ages,) age grid (hours)


class CheckpointPolicy:
    """DP checkpoint scheduler for one lifetime distribution.

    Parameters
    ----------
    dist:
        Lifetime law of the VM type (fitted bathtub in the paper's use).
    step:
        Work-step granularity in hours (default 6 minutes).  Complexity
        is ``O((J/step)^2 * ages)``; the paper notes ``O(T^3)`` and
        precomputes schedules per job length, which the instance-level
        cache here reproduces.
    delta:
        Checkpoint write cost in hours (paper evaluation: 1 minute).
    restart_latency:
        Extra hours charged per failure for acquiring the replacement VM
        (the paper's analysis uses 0).
    variant:
        ``"conditional"`` (default) or ``"paper"`` — see module docstring.
    """

    def __init__(
        self,
        dist: LifetimeDistribution,
        *,
        step: float = 0.1,
        delta: float = 1.0 / 60.0,
        restart_latency: float = 0.0,
        variant: Variant = "conditional",
    ):
        self.dist = dist
        self.step = check_positive("step", step)
        self.delta = check_nonnegative("delta", delta)
        self.restart_latency = check_nonnegative("restart_latency", restart_latency)
        if variant not in ("conditional", "paper"):
            raise ValueError(f"variant must be 'conditional' or 'paper', got {variant!r}")
        self.variant: Variant = variant
        # Age grid: fine enough that delta (possibly << step) lands on it.
        self.age_step = min(self.step, max(self.delta, self.step / 8.0)) / 2.0
        self._horizon = float(dist.t_max)
        self._ages = np.arange(0.0, self._horizon + self.age_step, self.age_step)
        self._moments = _MomentTable(dist, self._horizon + 1.0)
        self._tables: dict[int, _DPTable] = {}
        #: Worst age-0 fixed-point residual of the most recent DP solve
        #: (0.0 when every level converged; inspect after a
        #: :class:`FixedPointWarning`).
        self.last_fixed_point_residual: float = 0.0

    # ------------------------------------------------------------------
    def _n_steps(self, job_length: float) -> int:
        n = int(round(job_length / self.step))
        if n <= 0:
            raise ValueError(
                f"job_length {job_length} is below one work-step ({self.step} h)"
            )
        return n

    def _age_index(self, t: float) -> int:
        return min(int(round(t / self.age_step)), len(self._ages) - 1)

    def _interval_terms(
        self, t_end: np.ndarray, F_t: np.ndarray, Ig_t: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(failure probability, expected elapsed time given failure)."""
        F_end = self._moments.cdf(t_end)
        mass = np.clip(F_end - F_t, 0.0, 1.0)
        if self.variant == "conditional":
            surv = np.maximum(1.0 - F_t, _EPS)
            p = np.clip(mass / surv, 0.0, 1.0)
        else:
            p = mass
        Ig_end = self._moments.moment(t_end)
        with np.errstate(divide="ignore", invalid="ignore"):
            elapsed = np.where(mass > _EPS, (Ig_end - Ig_t) / np.maximum(mass, _EPS) - t, 0.0)
        return p, np.maximum(elapsed, 0.0)

    def _solve(self, n_steps: int) -> _DPTable:
        if n_steps in self._tables:
            return self._tables[n_steps]
        ages = self._ages
        n_ages = ages.size
        F_t = self._moments.cdf(ages)
        Ig_t = self._moments.moment(ages)
        M = np.zeros((n_steps + 1, n_ages))
        choice = np.zeros((n_steps + 1, n_ages), dtype=np.int32)
        R = self.restart_latency
        worst_residual = 0.0

        for j in range(1, n_steps + 1):
            i_vals = np.arange(1, j + 1)
            w = i_vals * self.step + self.delta
            w[-1] = j * self.step  # final segment: no trailing checkpoint
            offsets = np.minimum(
                np.round(w / self.age_step).astype(np.int64), n_ages - 1
            )
            # Successor rows for the success branch: M[j - i, age + w].
            succ_rows = j - i_vals  # (j,)
            # --- fixed point at age 0 ------------------------------------
            t0 = ages[0]
            t0_end = t0 + w
            p0, e0 = self._interval_terms(t0_end, F_t[:1], Ig_t[:1], np.array([t0]))
            p0 = p0.ravel()
            e0 = e0.ravel()
            succ0_idx = np.minimum(offsets, n_ages - 1)
            succ0 = M[succ_rows, succ0_idx]
            x = 0.0
            residual = np.inf
            for _ in range(_FIXED_POINT_MAX_ITER):
                cost0 = (1.0 - p0) * (w + succ0) + p0 * (e0 + R + x)
                new_x = float(np.min(cost0))
                residual = abs(new_x - x)
                x = new_x
                if residual < _FIXED_POINT_TOL:
                    break
            if residual >= _FIXED_POINT_TOL:
                worst_residual = max(worst_residual, residual)
                warnings.warn(
                    f"age-0 makespan fixed point for {j} remaining steps "
                    f"did not converge in {_FIXED_POINT_MAX_ITER} iterations "
                    f"(residual {residual:.3e} h >= {_FIXED_POINT_TOL:g}); "
                    "the lifetime law fails almost every interval — expected "
                    "makespans at this level are lower bounds",
                    FixedPointWarning,
                    stacklevel=3,
                )
            # --- all ages, vectorised over (age, i) ----------------------
            t_end = ages[:, None] + w[None, :]
            p, elapsed = self._interval_terms(
                t_end, F_t[:, None], Ig_t[:, None], ages[:, None]
            )
            succ_idx = np.minimum(np.arange(n_ages)[:, None] + offsets[None, :], n_ages - 1)
            succ = M[succ_rows[None, :], succ_idx]
            cost = (1.0 - p) * (w[None, :] + succ) + p * (elapsed + R + x)
            M[j] = np.min(cost, axis=1)
            choice[j] = i_vals[np.argmin(cost, axis=1)]
        self.last_fixed_point_residual = worst_residual
        table = _DPTable(M=M, choice=choice, ages=ages)
        self._tables[n_steps] = table
        return table

    # ------------------------------------------------------------------
    def plan(self, job_length: float, start_age: float = 0.0) -> CheckpointPlan:
        """Optimal checkpoint schedule for a job started at ``start_age``.

        The schedule is the no-failure execution path; after an actual
        failure the service re-plans for the remaining work at age 0
        (exactly the paper's re-planning rule).
        """
        J = check_positive("job_length", job_length)
        s = check_nonnegative("start_age", start_age)
        n = self._n_steps(J)
        table = self._solve(n)
        segments: list[float] = []
        ckpt_times: list[float] = []
        j = n
        a = self._age_index(s)
        done = 0.0
        while j > 0:
            i = int(table.choice[j, a])
            segments.append(i * self.step)
            done += i * self.step
            if i == j:
                break
            ckpt_times.append(done)
            w = i * self.step + self.delta
            a = min(a + int(round(w / self.age_step)), len(self._ages) - 1)
            j -= i
        return CheckpointPlan(
            segments=tuple(segments),
            checkpoint_times=tuple(ckpt_times),
            expected_makespan=float(table.M[n, self._age_index(s)]),
            job_length=n * self.step,
            start_age=s,
            delta=self.delta,
        )

    def expected_makespan(self, job_length: float, start_age: float = 0.0) -> float:
        """Expected makespan under the optimal schedule (Fig. 8 y-axis)."""
        n = self._n_steps(check_positive("job_length", job_length))
        table = self._solve(n)
        return float(table.M[n, self._age_index(check_nonnegative("start_age", start_age))])


# ----------------------------------------------------------------------
# Fixed-schedule evaluation (for the Young-Daly baseline and ablations)
# ----------------------------------------------------------------------
def evaluate_schedule(
    dist: LifetimeDistribution,
    segments: Sequence[float],
    *,
    delta: float = 1.0 / 60.0,
    start_age: float = 0.0,
    restart_latency: float = 0.0,
    variant: Variant = "conditional",
    age_step: float = 0.01,
) -> float:
    """Expected makespan of a *given* schedule under ``dist``.

    Same failure semantics as :class:`CheckpointPolicy` (failure resumes
    the interrupted segment on a fresh VM), but the schedule is fixed —
    this is how the Young-Daly baseline is scored in Fig. 8.
    """
    segments = [check_positive("segment", s) for s in segments]
    delta = check_nonnegative("delta", delta)
    start_age = check_nonnegative("start_age", start_age)
    horizon = float(dist.t_max)
    ages = np.arange(0.0, horizon + age_step, age_step)
    n_ages = ages.size
    moments = _MomentTable(dist, horizon + 1.0)
    F_t = moments.cdf(ages)
    Ig_t = moments.moment(ages)
    K = len(segments)
    V = np.zeros((K + 1, n_ages))
    R = restart_latency

    def interval_terms(t_end, f_t, ig_t, t):
        F_end = moments.cdf(t_end)
        mass = np.clip(F_end - f_t, 0.0, 1.0)
        if variant == "conditional":
            p = np.clip(mass / np.maximum(1.0 - f_t, _EPS), 0.0, 1.0)
        else:
            p = mass
        Ig_end = moments.moment(t_end)
        with np.errstate(divide="ignore", invalid="ignore"):
            elapsed = np.where(mass > _EPS, (Ig_end - ig_t) / np.maximum(mass, _EPS) - t, 0.0)
        return p, np.maximum(elapsed, 0.0)

    for k in range(K - 1, -1, -1):
        w = segments[k] + (delta if k < K - 1 else 0.0)
        off = min(int(round(w / age_step)), n_ages - 1)
        succ = V[k + 1, np.minimum(np.arange(n_ages) + off, n_ages - 1)]
        # fixed point at age 0
        p0, e0 = interval_terms(
            np.array([w]), F_t[:1], Ig_t[:1], np.array([0.0])
        )
        p0 = float(p0[0])
        e0 = float(e0[0])
        x = 0.0
        for _ in range(10000):
            new_x = (1.0 - p0) * (w + succ[0]) + p0 * (e0 + R + x)
            if abs(new_x - x) < 1e-12:
                x = new_x
                break
            x = new_x
        p, elapsed = interval_terms(ages + w, F_t, Ig_t, ages)
        V[k] = (1.0 - p) * (w + succ) + p * (elapsed + R + x)
    a0 = min(int(round(start_age / age_step)), n_ages - 1)
    return float(V[0, a0])


def simulate_schedule(
    dist: LifetimeDistribution,
    segments: Sequence[float],
    *,
    delta: float = 1.0 / 60.0,
    start_age: float = 0.0,
    restart_latency: float = 0.0,
    n_runs: int = 1000,
    rng: np.random.Generator | None = None,
    max_restarts: int = 10000,
    backend: str = "vectorized",
) -> np.ndarray:
    """Monte-Carlo makespans of a schedule (cross-validates the analytics).

    Each run draws VM lifetimes (the first conditioned on survival to
    ``start_age``), replays the segments, restarts interrupted segments
    on fresh VMs, and records the total wall-clock makespan.  Routed
    through :func:`repro.sim.backend.run_replications`, so 10k-run sweeps
    execute as batched NumPy rounds rather than a Python loop per run;
    pass ``backend="event"`` to drive the discrete-event engine instead
    (same outcomes for the same ``rng`` state, within 1e-9).
    """
    from repro.sim.backend import run_replications

    # max_restarts counts preemptions; the backend caps VM generations
    # (rounds = restarts + 1), so shift by one to keep the old contract.
    return run_replications(
        dist,
        segments,
        delta=delta,
        start_age=start_age,
        restart_latency=restart_latency,
        n_replications=n_runs,
        seed=rng,
        backend=backend,
        max_rounds=max_restarts + 1,
    ).makespan

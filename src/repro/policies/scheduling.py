"""VM-reuse job scheduling (paper Section 4.2, evaluated in Figs. 5-7).

When a job of length ``T`` is ready and a VM of age ``s`` is free, the
service must choose: run on the aged VM, or discard it and launch fresh.
The paper's rule compares the Eq. 8 expected makespans::

    reuse  iff  E[T_s] <= E[T_0]   i.e.   int_s^{s+T} t f <= int_0^T t f

The *memoryless baseline* (what SpotOn-style systems do) always reuses —
under an exponential belief the VM's age carries no information.

The figures plot the resulting *job failure probability*: the chance the
chosen VM is preempted inside the job's window, conditioned on it being
alive when the job starts (for a fresh VM that is simply ``F(T)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "SchedulingDecision",
    "ModelReusePolicy",
    "MemorylessSchedulingPolicy",
    "job_failure_probability",
    "job_failure_probability_batch",
    "average_failure_probability",
    "effective_start_ages",
]


class SchedulingDecision(enum.Enum):
    """Outcome of a scheduling query for (job, VM-age)."""

    REUSE = "reuse"
    NEW_VM = "new_vm"


def job_failure_probability(
    dist: LifetimeDistribution, job_length: float, start_age: float
) -> float:
    """``P(preempted during job | VM alive at start_age)``.

    ``F(T)`` for a fresh VM; the conditional interval probability for an
    aged one.  Returns 1.0 when the job cannot fit before the support
    edge (``start_age + T > t_max``) — the deterministic deadline kill of
    Fig. 5's memoryless curve.
    """
    T = check_positive("job_length", job_length)
    s = check_nonnegative("start_age", start_age)
    return dist.conditional_failure_probability(s, T)


def job_failure_probability_batch(
    dist: LifetimeDistribution, job_length: float, start_ages
) -> np.ndarray:
    """Vectorised :func:`job_failure_probability` over an age array.

    One array pass through the distribution's ``cdf``/``sf``; elementwise
    identical to the scalar form (1.0 where survival at the start age is
    zero).  This is the closed-form counterpart the Fig. 5/6 Monte-Carlo
    variants cross-validate against.
    """
    T = check_positive("job_length", job_length)
    s = np.asarray(start_ages, dtype=float)
    if np.any(s < 0.0):
        raise ValueError("start_ages must be >= 0")
    surv = np.asarray(dist.sf(s), dtype=float)
    mass = np.asarray(dist.cdf(s + T), dtype=float) - np.asarray(
        dist.cdf(s), dtype=float
    )
    safe = np.where(surv > 0.0, surv, 1.0)
    return np.where(surv > 0.0, np.clip(mass / safe, 0.0, 1.0), 1.0)


@dataclass(frozen=True)
class ModelReusePolicy:
    """The paper's model-driven reuse policy for one lifetime law.

    Parameters
    ----------
    dist:
        Fitted (or ground-truth) lifetime distribution of the VM type.
    criterion:
        ``"paper"`` (default) applies Eq. 8 literally: compare
        ``int_s^{s+T} t f(t) dt`` against ``int_0^T t f(t) dt``.  Because
        the integrand weights the VM's *absolute* age rather than the
        work actually lost, the literal form prefers fresh VMs over
        perfectly stable aged ones for short jobs.  ``"conditional"``
        fixes that: it compares the expected lost work *relative to the
        job's start*, conditioned on the VM being alive at age ``s``::

            C(s) = int_s^{s+T} (x - s) f(x) dx / (1 - F(s))

        Both coincide at ``s = 0`` and both flip to NEW_VM near the
        deadline; the batch service uses "conditional" (see DESIGN.md).
    """

    dist: LifetimeDistribution
    criterion: str = "paper"

    def __post_init__(self) -> None:
        if self.criterion not in ("paper", "conditional"):
            raise ValueError(
                f"criterion must be 'paper' or 'conditional', got {self.criterion!r}"
            )

    def reuse_cost(self, job_length: float, vm_age: float) -> float:
        """Expected preemption cost of running the job on a VM aged ``vm_age``."""
        T = check_positive("job_length", job_length)
        s = check_nonnegative("vm_age", vm_age)
        moment = self.dist.truncated_first_moment(s, s + T)
        if self.criterion == "paper":
            return moment
        surv = float(np.asarray(self.dist.sf(s), dtype=float))
        if surv <= 0.0:
            return float("inf")
        end = min(s + T, self.dist.t_max)
        mass = float(np.asarray(self.dist.cdf(end), dtype=float)) - float(
            np.asarray(self.dist.cdf(s), dtype=float)
        )
        return max(moment - s * mass, 0.0) / surv

    def decide(self, job_length: float, vm_age: float) -> SchedulingDecision:
        """Reuse iff the Eq. 8 makespan on the aged VM is no worse."""
        T = check_positive("job_length", job_length)
        s = check_nonnegative("vm_age", vm_age)
        if s >= self.dist.t_max:
            # Past the support edge the truncated moment is clipped to 0
            # and Eq. 8 loses meaning; the VM is (about to be) dead.
            return SchedulingDecision.NEW_VM
        if self.reuse_cost(T, s) <= self.reuse_cost(T, 0.0):
            return SchedulingDecision.REUSE
        return SchedulingDecision.NEW_VM

    def reuse_cost_batch(self, job_length: float, vm_ages) -> np.ndarray:
        """Vectorised :meth:`reuse_cost` over an array of VM ages.

        One pass through the distribution's batched truncated moment and
        ``cdf``/``sf`` — elementwise identical to the scalar form (``inf``
        where survival at the age is zero, under the conditional
        criterion).  The fixed-length special case of
        :meth:`reuse_cost_pairs`.
        """
        T = check_positive("job_length", job_length)
        return self.reuse_cost_pairs(T, vm_ages)

    def decide_batch(self, job_length: float, vm_ages) -> np.ndarray:
        """Eq. 8 decisions over an age array: ``True`` = reuse the aged VM.

        The batched counterpart of :meth:`decide` — exactly the same
        decisions (the scalar-vs-batch agreement is pinned by the test
        suite), computed in one vectorised pass so that the
        policy-evaluation layer can score millions of placements without
        a Python loop over ages.  The fixed-length special case of
        :meth:`decide_pairs`.
        """
        T = check_positive("job_length", job_length)
        return self.decide_pairs(T, vm_ages)

    def reuse_cost_pairs(self, job_lengths, vm_ages) -> np.ndarray:
        """Vectorised :meth:`reuse_cost` over paired (length, age) arrays.

        Unlike :meth:`reuse_cost_batch` the job length varies elementwise
        too — the shape the cluster kernel needs, where every replication
        evaluates its own queue head against its own pool ages.  The
        arrays broadcast against each other; elementwise identical to the
        scalar form (``inf`` where survival at the age is zero, under the
        conditional criterion).
        """
        T = np.asarray(job_lengths, dtype=float)
        s = np.asarray(vm_ages, dtype=float)
        if np.any(T <= 0.0):
            raise ValueError("job_lengths must be > 0")
        if np.any(s < 0.0):
            raise ValueError("vm_ages must be >= 0")
        moment = np.asarray(
            self.dist.truncated_first_moment_batch(s, s + T), dtype=float
        )
        if self.criterion == "paper":
            return moment
        surv = np.asarray(self.dist.sf(s), dtype=float)
        end = np.minimum(s + T, self.dist.t_max)
        mass = np.asarray(self.dist.cdf(end), dtype=float) - np.asarray(
            self.dist.cdf(s), dtype=float
        )
        safe = np.where(surv > 0.0, surv, 1.0)
        cost = np.maximum(moment - s * mass, 0.0) / safe
        return np.where(surv > 0.0, cost, np.inf)

    def decide_pairs(self, job_lengths, vm_ages) -> np.ndarray:
        """Eq. 8 decisions over paired (length, age) arrays: ``True`` = reuse.

        The fully-batched counterpart of :meth:`decide` for the cluster
        kernel: replication ``i`` asks about a job of length
        ``job_lengths[i]`` on VMs of ages ``vm_ages[i, ...]`` in one
        pass.  Same decisions as the scalar form at every element
        (pinned by the test suite).
        """
        T = np.asarray(job_lengths, dtype=float)
        s = np.asarray(vm_ages, dtype=float)
        T_b, s_b = np.broadcast_arrays(T, s)
        aged = self.reuse_cost_pairs(T_b, s_b)
        # The fresh-VM cost depends on the length alone; evaluate it at
        # the unbroadcast shape and let the comparison broadcast.
        fresh = self.reuse_cost_pairs(T, np.zeros_like(T))
        return (aged <= fresh) & (s_b < self.dist.t_max)

    def failure_probability_batch(self, job_length: float, vm_ages) -> np.ndarray:
        """Closed-form failure probability of the policy's VM choices."""
        ages, _ = effective_start_ages(self, job_length, vm_ages)
        return job_failure_probability_batch(self.dist, job_length, ages)

    def failure_probability(self, job_length: float, vm_age: float) -> float:
        """Failure probability of the job under the policy's VM choice."""
        if self.decide(job_length, vm_age) is SchedulingDecision.REUSE:
            return job_failure_probability(self.dist, job_length, vm_age)
        return job_failure_probability(self.dist, job_length, 0.0)

    def critical_age(self, job_length: float, *, tol: float = 1e-6) -> float:
        """Oldest VM age at which reuse is still preferred for this job.

        Beyond this age the policy launches fresh VMs (the flat region of
        Fig. 5).  Found by bisection on the reuse-vs-fresh cost gap over
        the late-life region where the gap is monotone increasing.
        """
        T = check_positive("job_length", job_length)
        fresh_cost = self.reuse_cost(T, 0.0)

        def gap(s: float) -> float:
            return self.reuse_cost(T, s) - fresh_cost

        # The gap is (at most briefly positive near age 0 for short jobs,
        # then) negative through the stable phase, and crosses zero for
        # good as the job window enters the final phase.  The critical age
        # is that *last* upward crossing.  Only ages whose job window fits
        # inside the support are scanned: beyond t_max - T the truncated
        # moment is clipped and the gap loses meaning.
        hi = self.dist.t_max - T
        if hi <= 0.0:
            return 0.0  # job cannot fit on any aged VM
        grid = np.linspace(0.0, hi, 512)
        values = np.array([gap(float(s)) for s in grid])
        nonpos = np.flatnonzero(values <= 0.0)
        if nonpos.size == 0:
            return 0.0  # reuse never preferred for this job length
        k = int(nonpos[-1])
        if k == len(grid) - 1 or values[k + 1] <= 0.0:
            return hi
        return float(brentq(gap, float(grid[k]), float(grid[k + 1]), xtol=tol))

    def critical_job_length(self, vm_age: float, *, tol: float = 1e-6) -> float:
        """``T*`` of Section 4.2: job length where reuse flips to fresh.

        Returns ``inf`` when reuse is preferred for every feasible length
        at this age (the common case deep in the stable phase).
        """
        s = check_nonnegative("vm_age", vm_age)

        def gap(T: float) -> float:
            return self.reuse_cost(T, s) - self.reuse_cost(T, 0.0)

        t_hi = self.dist.t_max
        lengths = np.linspace(1e-3, t_hi, 512)
        values = np.array([gap(float(T)) for T in lengths])
        pos = np.flatnonzero(values > 0.0)
        if pos.size == 0:
            return float("inf")
        k = int(pos[0])
        if k == 0:
            return float(lengths[0])
        return float(brentq(gap, float(lengths[k - 1]), float(lengths[k]), xtol=tol))


@dataclass(frozen=True)
class MemorylessSchedulingPolicy:
    """Baseline: always reuse the running VM (age is ignored).

    This is the default behaviour of memoryless transient-computing
    systems (e.g. SpotOn), which the paper compares against in Figs. 5-7.
    """

    dist: LifetimeDistribution

    def decide(self, job_length: float, vm_age: float) -> SchedulingDecision:
        check_positive("job_length", job_length)
        check_nonnegative("vm_age", vm_age)
        return SchedulingDecision.REUSE

    def decide_batch(self, job_length: float, vm_ages) -> np.ndarray:
        """Always-reuse over an age array (all ``True``)."""
        check_positive("job_length", job_length)
        s = np.asarray(vm_ages, dtype=float)
        if np.any(s < 0.0):
            raise ValueError("vm_ages must be >= 0")
        return np.ones(s.shape, dtype=bool)

    def failure_probability(self, job_length: float, vm_age: float) -> float:
        return job_failure_probability(self.dist, job_length, vm_age)

    def failure_probability_batch(self, job_length: float, vm_ages) -> np.ndarray:
        """Closed-form failure probability at each (always reused) age."""
        return job_failure_probability_batch(self.dist, job_length, vm_ages)


def effective_start_ages(
    policy: "ModelReusePolicy | MemorylessSchedulingPolicy",
    job_length: float,
    vm_ages,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a policy's batch decision to candidate VM ages.

    Returns ``(start_ages, reused)``: the age each job actually starts
    at (the candidate's age where the policy reuses, 0 for a fresh VM)
    and the boolean reuse mask.  This is the array form of the
    controller's placement step, consumed directly by
    :func:`repro.sim.vectorized.simulate_job_attempts_vectorized` and
    the service evaluator.
    """
    ages = np.asarray(vm_ages, dtype=float)
    reused = policy.decide_batch(job_length, ages)
    return np.where(reused, ages, 0.0), reused


def average_failure_probability(
    policy: ModelReusePolicy | MemorylessSchedulingPolicy,
    job_length: float,
    *,
    num_ages: int = 256,
    max_age: float | None = None,
) -> float:
    """Failure probability averaged over uniformly distributed start ages.

    This is the Fig. 6 metric: jobs arrive at arbitrary points in a VM's
    life, so average ``failure_probability(T, s)`` over ``s in [0, max_age)``
    (default: the distribution's support).
    """
    T = check_positive("job_length", job_length)
    hi = max_age if max_age is not None else policy.dist.t_max
    check_positive("max_age", hi)
    ages = np.linspace(0.0, hi, num_ages, endpoint=False)
    probs = np.array([policy.failure_probability(T, float(s)) for s in ages])
    return float(np.mean(probs))

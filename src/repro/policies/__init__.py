"""Model-driven resource-management policies (paper Section 4).

* :mod:`repro.policies.runtime` -- expected wasted work and makespan
  under a single preemption (Eqs. 4-8),
* :mod:`repro.policies.scheduling` -- the VM-reuse job-scheduling policy
  and its memoryless baseline (Section 4.2, Figs. 5-7),
* :mod:`repro.policies.checkpointing` -- the dynamic-programming
  checkpoint scheduler (Eqs. 9-13) and a fixed-schedule evaluator,
* :mod:`repro.policies.youngdaly` -- the Young-Daly periodic baseline,
* :mod:`repro.policies.selection` -- expected-lifetime-driven VM-type
  selection,
* :mod:`repro.policies.hotspare` -- the Section 5 "stable VMs are
  valuable" hot-spare retention rule.
"""

from repro.policies.runtime import (
    expected_increase_in_runtime,
    expected_makespan_at_age,
    expected_makespan_multi_failure,
    expected_makespan_single_failure,
    expected_wasted_work,
)
from repro.policies.scheduling import (
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    SchedulingDecision,
    average_failure_probability,
    job_failure_probability,
)
from repro.policies.checkpointing import (
    CheckpointPlan,
    CheckpointPolicy,
    evaluate_schedule,
)
from repro.policies.youngdaly import young_daly_interval, young_daly_schedule
from repro.policies.selection import cheapest_suitable_type, select_vm_type
from repro.policies.hotspare import HotSparePolicy

__all__ = [
    "expected_increase_in_runtime",
    "expected_makespan_at_age",
    "expected_makespan_multi_failure",
    "expected_makespan_single_failure",
    "expected_wasted_work",
    "MemorylessSchedulingPolicy",
    "ModelReusePolicy",
    "SchedulingDecision",
    "average_failure_probability",
    "job_failure_probability",
    "CheckpointPlan",
    "CheckpointPolicy",
    "evaluate_schedule",
    "young_daly_interval",
    "young_daly_schedule",
    "cheapest_suitable_type",
    "select_vm_type",
    "HotSparePolicy",
]

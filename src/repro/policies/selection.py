"""Model-informed VM-type selection.

Section 4.1: "this analysis also allows principled selection of VM types
for jobs of a given length" — high-initial-rate types are poison for
short jobs.  Combined with the per-type price table this yields the
cost-aware selection rule a batch service actually needs: minimise the
expected *dollar* cost of finishing the job.
"""

from __future__ import annotations

from typing import Mapping

from repro.distributions.base import LifetimeDistribution
from repro.policies.runtime import expected_makespan_single_failure
from repro.utils.validation import check_positive

__all__ = ["select_vm_type", "cheapest_suitable_type", "expected_job_cost"]


def expected_job_cost(
    dist: LifetimeDistribution,
    job_length: float,
    hourly_price: float,
) -> float:
    """Expected cost (USD) of one job: expected makespan x hourly price.

    Uses the Eq. 7 single-failure makespan — the same first-order model
    the paper's analysis rests on.
    """
    price = check_positive("hourly_price", hourly_price)
    return expected_makespan_single_failure(dist, job_length) * price


def select_vm_type(
    candidates: Mapping[str, tuple[LifetimeDistribution, float]],
    job_length: float,
) -> str:
    """Pick the type minimising expected job cost.

    Parameters
    ----------
    candidates:
        ``name -> (lifetime distribution, preemptible hourly price)``.
    job_length:
        Job length in hours.
    """
    if not candidates:
        raise ValueError("no candidate VM types supplied")
    check_positive("job_length", job_length)
    # Ties break on catalog (insertion) order, not name: allocators
    # sweeping price-sorted pools rely on a stable, renaming-proof rule.
    index = {name: k for k, name in enumerate(candidates)}
    scored = {
        name: expected_job_cost(dist, job_length, price)
        for name, (dist, price) in candidates.items()
    }
    return min(scored, key=lambda n: (scored[n], index[n]))


def cheapest_suitable_type(
    candidates: Mapping[str, tuple[LifetimeDistribution, float]],
    job_length: float,
    *,
    max_failure_probability: float = 0.5,
) -> str | None:
    """Cheapest type whose fresh-VM failure probability stays acceptable.

    Returns ``None`` when no type can run the job within the failure
    budget (e.g. a 23-hour job on any 24 h-bounded type).
    """
    if not candidates:
        raise ValueError("no candidate VM types supplied")
    T = check_positive("job_length", job_length)
    if not 0.0 < max_failure_probability <= 1.0:
        raise ValueError(
            f"max_failure_probability must be in (0, 1], got {max_failure_probability}"
        )
    index = {name: k for k, name in enumerate(candidates)}
    suitable = {
        name: price
        for name, (dist, price) in candidates.items()
        if float(dist.cdf(T)) <= max_failure_probability
    }
    if not suitable:
        return None
    # Price ties break on catalog (insertion) order, not name.
    return min(suitable, key=lambda n: (suitable[n], index[n]))

"""Hot-spare retention of stable VMs (paper Section 5).

"Due to the bathtub nature of the failure rate, VMs that have survived
the initial failures are 'stable' and have a very low rate of failure,
and thus are 'valuable'.  We keep these stable VMs as 'hot spares'
instead of terminating them, for a period of one hour."

The policy decides, when a VM goes idle, whether to keep it (and for how
long) or release it.  A VM is worth keeping only while it sits in the
stable phase; early-phase VMs are cheap to replace and final-phase VMs
are about to die anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import ConstrainedPreemptionModel
from repro.core.phases import Phase, classify_phase
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["HotSparePolicy", "SpareDecision"]


@dataclass(frozen=True)
class SpareDecision:
    """Whether to retain an idle VM and the retention budget in hours."""

    keep: bool
    hold_hours: float
    reason: str


@dataclass(frozen=True)
class HotSparePolicy:
    """Phase-aware hot-spare retention.

    Parameters
    ----------
    model:
        Fitted bathtub model of the VM's type.
    hold_hours:
        Maximum idle retention (the paper uses 1 hour).
    """

    model: ConstrainedPreemptionModel
    hold_hours: float = 1.0

    def __post_init__(self) -> None:
        check_positive("hold_hours", self.hold_hours)

    def decide(self, vm_age: float) -> SpareDecision:
        """Decide retention for an idle VM of age ``vm_age`` hours."""
        age = check_nonnegative("vm_age", vm_age)
        if age > self.model.t_max:
            return SpareDecision(False, 0.0, "past support edge")
        phase = classify_phase(self.model, min(age, self.model.t_max))
        if phase is Phase.EARLY:
            return SpareDecision(False, 0.0, "early phase: not yet stable")
        if phase is Phase.FINAL:
            return SpareDecision(False, 0.0, "final phase: deadline imminent")
        # Stable: keep, but never hold into the final phase.
        from repro.core.phases import phase_boundaries

        bounds = phase_boundaries(self.model)
        budget = min(self.hold_hours, max(bounds.final_start - age, 0.0))
        if budget <= 0.0:
            return SpareDecision(False, 0.0, "stable but too close to final phase")
        return SpareDecision(True, budget, "stable phase: valuable VM")

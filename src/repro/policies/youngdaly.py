"""Young-Daly periodic checkpointing — the memoryless baseline of Fig. 8.

Prior transient-computing systems (SpotOn, Flint, Proteus, ...) assume
exponentially distributed preemptions and checkpoint at the constant
Young-Daly interval ``tau = sqrt(2 * delta * MTTF)``.  The paper
parameterises the baseline with the VM's *initial* failure rate (a
bathtub VM looks ~1 h-MTTF-exponential to a memoryless observer watching
fresh VMs), which over-checkpoints wildly through the stable phase.
"""

from __future__ import annotations

import math

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_positive

__all__ = ["young_daly_interval", "young_daly_schedule", "initial_rate_mttf"]


def young_daly_interval(delta: float, mttf: float) -> float:
    """The classic first-order optimum ``sqrt(2 * delta * MTTF)`` (hours)."""
    delta = check_positive("delta", delta)
    mttf = check_positive("mttf", mttf)
    return math.sqrt(2.0 * delta * mttf)


def initial_rate_mttf(dist: LifetimeDistribution, *, probe: float = 1e-3) -> float:
    """MTTF implied by the distribution's initial hazard, ``1 / h(0+)``.

    This is the paper's Young-Daly parameterisation: a memoryless
    observer estimates the failure rate from young VMs, where the
    bathtub's early phase dominates.
    """
    h0 = float(dist.hazard(probe))
    if not h0 > 0.0:
        raise ValueError("distribution has zero initial hazard; MTTF undefined")
    return 1.0 / h0


def young_daly_schedule(job_length: float, interval: float) -> list[float]:
    """Equal segments of ``interval`` hours covering ``job_length``.

    The last segment carries the remainder (and, like every schedule in
    this package, is not followed by a checkpoint).
    """
    job_length = check_positive("job_length", job_length)
    interval = check_positive("interval", interval)
    n_full = int(job_length / interval)
    segments = [interval] * n_full
    remainder = job_length - n_full * interval
    if remainder > 1e-12:
        segments.append(remainder)
    if not segments:  # interval > job_length: single segment, no checkpoints
        segments = [job_length]
    return segments

"""Impact of constrained preemptions on job running time (Eqs. 4-8).

Everything here is parametrised by a lifetime distribution exposing
``cdf`` and ``truncated_first_moment`` (every class in
:mod:`repro.distributions` qualifies), so the same expressions evaluate
under bathtub, uniform, exponential, ... laws — that generality *is*
Fig. 4's comparison.

Key identities (all derived in the paper):

* wasted work under one preemption:
  ``E[W1(T)] = (1/F(T)) * int_0^T t f(t) dt``                    (Eq. 5)
* expected makespan with at most one preemption:
  ``E[T] = T + int_0^T t f(t) dt``                               (Eq. 7)
* started on a VM of age ``s``:
  ``E[T_s] = T + int_s^{s+T} t f(t) dt``                         (Eq. 8)

For the uniform law on [0, L] these reduce to ``E[W1] = T/2`` and an
increase of ``T^2 / (2L)`` — the closed forms quoted in Section 6.1.
"""

from __future__ import annotations

from repro.distributions.base import LifetimeDistribution
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "expected_wasted_work",
    "expected_increase_in_runtime",
    "expected_makespan_single_failure",
    "expected_makespan_at_age",
]


def expected_wasted_work(dist: LifetimeDistribution, job_length: float) -> float:
    """``E[W1(T)]`` of Eq. 5: expected lost hours given one preemption.

    Conditioned on the job being preempted at least once; returns 0 for a
    zero-probability-of-failure window.
    """
    T = check_positive("job_length", job_length)
    mass = float(dist.cdf(T))
    if mass <= 0.0:
        return 0.0
    return dist.truncated_first_moment(0.0, T) / mass


def expected_increase_in_runtime(dist: LifetimeDistribution, job_length: float) -> float:
    """Unconditional expected extra hours, ``P(fail) * E[W1] = int_0^T t f``.

    This is the quantity plotted in Fig. 4b (and quadratic, ``T^2/48``,
    for the uniform law with L = 24).
    """
    T = check_positive("job_length", job_length)
    return dist.truncated_first_moment(0.0, T)


def expected_makespan_single_failure(dist: LifetimeDistribution, job_length: float) -> float:
    """``E[T]`` of Eq. 7 (at most one preemption, restart from scratch)."""
    T = check_positive("job_length", job_length)
    return T + dist.truncated_first_moment(0.0, T)


def expected_makespan_at_age(
    dist: LifetimeDistribution, job_length: float, start_age: float
) -> float:
    """``E[T_s]`` of Eq. 8: job of length ``T`` started on a VM aged ``s``."""
    T = check_positive("job_length", job_length)
    s = check_nonnegative("start_age", start_age)
    return T + dist.truncated_first_moment(s, s + T)


def expected_makespan_multi_failure(
    dist: LifetimeDistribution,
    job_length: float,
    *,
    start_age: float = 0.0,
    restart_latency: float = 0.0,
) -> float:
    """Exact expected makespan with *arbitrarily many* restarts.

    The paper stops at the single-failure expansion of Eq. 7, noting that
    "an expression which considers ... multiple job failures easily
    follows".  This is that expression: an unchecked job restarts from
    scratch on a fresh VM after every preemption, solved exactly via the
    fixed-schedule evaluator's renewal recursion.  It upper-bounds Eq. 7
    (which ignores second and later failures).
    """
    # Local import: the checkpointing module depends on nothing here, but
    # keeping runtime.py import-light avoids a cycle at package import.
    from repro.policies.checkpointing import evaluate_schedule

    T = check_positive("job_length", job_length)
    s = check_nonnegative("start_age", start_age)
    return evaluate_schedule(
        dist, [T], delta=0.0, start_age=s, restart_latency=restart_latency
    )

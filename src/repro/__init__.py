"""repro — reproduction of *Modeling The Temporally Constrained Preemptions
of Transient Cloud VMs* (Kadupitiya, Jadhao & Sharma, HPDC 2020).

The library is organised bottom-up:

* :mod:`repro.core` — the paper's bathtub preemption model (Eq. 1-3),
* :mod:`repro.distributions` — classical baselines + extensions,
* :mod:`repro.fitting` — empirical CDFs, least-squares / MLE fits,
  model selection, bootstrap, change-point detection,
* :mod:`repro.traces` — synthetic preemption-trace substrate,
* :mod:`repro.policies` — job scheduling, checkpointing, VM selection,
* :mod:`repro.sim` — discrete-event cloud / cluster simulator,
* :mod:`repro.service` — the Section 5 batch computing service,
* :mod:`repro.workloads` — checkpointable scientific kernels,
* :mod:`repro.experiments` — one module per paper figure.

Quickstart::

    from repro import TraceGenerator, EmpiricalCDF, fit_bathtub

    trace = TraceGenerator(seed=7).figure1_trace()
    ecdf = EmpiricalCDF.from_samples(trace.lifetimes())
    fit = fit_bathtub(ecdf)
    print(fit.params)          # A, tau1, tau2, b ~ the paper's ranges
"""

from repro.core import (
    BathtubParams,
    ConstrainedPreemptionModel,
    Phase,
    PhaseBoundaries,
    classify_phase,
    phase_boundaries,
)
from repro.distributions import (
    BathtubDistribution,
    ExponentialDistribution,
    GompertzMakehamDistribution,
    LifetimeDistribution,
    PiecewisePhaseDistribution,
    SuperpositionMixture,
    UniformLifetimeDistribution,
    WeibullDistribution,
)
from repro.fitting import (
    EmpiricalCDF,
    FitResult,
    compare_models,
    fit_bathtub,
    fit_exponential,
    fit_gompertz_makeham,
    fit_weibull,
    kaplan_meier,
)
from repro.policies import (
    CheckpointPlan,
    CheckpointPolicy,
    MemorylessSchedulingPolicy,
    ModelReusePolicy,
    SchedulingDecision,
    expected_increase_in_runtime,
    expected_makespan_at_age,
    expected_wasted_work,
    young_daly_interval,
    young_daly_schedule,
)
from repro.traces import (
    GroundTruthCatalog,
    PreemptionRecord,
    PreemptionTrace,
    TraceGenerator,
    default_catalog,
)

__version__ = "1.0.0"

__all__ = [
    "BathtubParams",
    "ConstrainedPreemptionModel",
    "Phase",
    "PhaseBoundaries",
    "classify_phase",
    "phase_boundaries",
    "BathtubDistribution",
    "ExponentialDistribution",
    "GompertzMakehamDistribution",
    "LifetimeDistribution",
    "PiecewisePhaseDistribution",
    "SuperpositionMixture",
    "UniformLifetimeDistribution",
    "WeibullDistribution",
    "EmpiricalCDF",
    "FitResult",
    "compare_models",
    "fit_bathtub",
    "fit_exponential",
    "fit_gompertz_makeham",
    "fit_weibull",
    "kaplan_meier",
    "CheckpointPlan",
    "CheckpointPolicy",
    "MemorylessSchedulingPolicy",
    "ModelReusePolicy",
    "SchedulingDecision",
    "expected_increase_in_runtime",
    "expected_makespan_at_age",
    "expected_wasted_work",
    "young_daly_interval",
    "young_daly_schedule",
    "GroundTruthCatalog",
    "PreemptionRecord",
    "PreemptionTrace",
    "TraceGenerator",
    "default_catalog",
    "__version__",
]

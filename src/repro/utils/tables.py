"""Plain-text table rendering for experiment and benchmark reports.

The experiment harness (one module per paper figure) prints its series as
aligned ASCII tables so that ``python -m repro.experiments ...`` output can
be compared side by side with the paper's plots.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".4f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

"""Numerical integration helpers used for model cross-validation.

The paper's model (Eq. 1-3) has closed-form truncated moments; these
quadrature helpers exist so that every closed form in
:mod:`repro.core.model` can be verified against an independent numerical
evaluation, and so that distributions *without* closed forms (Weibull,
Gompertz-Makeham, piecewise) can expose the same moment API.

Everything here is vectorised NumPy; no Python-level loops over grid
points (see the HPC guide: vectorise hot paths, avoid copies).
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def trapezoid_integral(
    func: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    *,
    num: int = 2049,
) -> float:
    """Integrate ``func`` on ``[lo, hi]`` with the composite trapezoid rule.

    Parameters
    ----------
    func:
        Vectorised callable mapping an array of abscissae to values.
    lo, hi:
        Integration bounds; ``hi < lo`` yields the signed integral.
    num:
        Number of grid points (>= 2).
    """
    if num < 2:
        raise ValueError(f"num must be >= 2, got {num}")
    if hi == lo:
        return 0.0
    x = np.linspace(lo, hi, num)
    y = np.asarray(func(x), dtype=float)
    return float(np.trapezoid(y, x))


def first_moment(
    pdf: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    *,
    num: int = 2049,
) -> float:
    """Compute the truncated first moment ``int_lo^hi t * pdf(t) dt``."""
    return trapezoid_integral(lambda t: t * np.asarray(pdf(t), dtype=float), lo, hi, num=num)


def cumulative_trapezoid(y: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Cumulative trapezoid integral of samples ``y`` over grid ``x``.

    Returns an array of the same length as ``x`` whose first element is 0.
    Used to build CDF tables from pdf tables for inverse-CDF sampling.
    """
    y = np.asarray(y, dtype=float)
    x = np.asarray(x, dtype=float)
    if y.shape != x.shape or y.ndim != 1:
        raise ValueError("y and x must be 1-D arrays of equal length")
    out = np.empty_like(y)
    out[0] = 0.0
    np.cumsum(0.5 * (y[1:] + y[:-1]) * np.diff(x), out=out[1:])
    return out

"""Shared numeric and formatting utilities for the :mod:`repro` package.

The helpers here are deliberately free of any domain knowledge: they are
used by the core model, the distribution zoo, the policies, and the
discrete-event simulator alike.
"""

from repro.utils.integrate import (
    cumulative_trapezoid,
    first_moment,
    trapezoid_integral,
)
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "cumulative_trapezoid",
    "first_moment",
    "trapezoid_integral",
    "format_table",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]

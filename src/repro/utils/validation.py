"""Argument-validation helpers.

All public entry points of the library validate their scalar arguments
through these helpers so that error messages are uniform and informative.
Each helper returns the (possibly float-coerced) value so call sites can
validate and normalise in a single expression::

    tau1 = check_positive("tau1", tau1)
"""

from __future__ import annotations

import math
from typing import Any


def check_positive(name: str, value: Any) -> float:
    """Return ``value`` as ``float`` after checking it is finite and > 0."""
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return v


def check_nonnegative(name: str, value: Any) -> float:
    """Return ``value`` as ``float`` after checking it is finite and >= 0."""
    v = float(value)
    if not math.isfinite(v) or v < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return v


def check_probability(name: str, value: Any) -> float:
    """Return ``value`` as ``float`` after checking it lies in [0, 1]."""
    v = float(value)
    if not math.isfinite(v) or v < 0.0 or v > 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return v


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as ``float`` after checking ``low <= value <= high``.

    With ``inclusive=False`` the bounds are strict.
    """
    v = float(value)
    if not math.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        ok = low <= v <= high
    else:
        ok = low < v < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return v

"""Typed event records and the event log.

The service controller, the metrics collector, and the tests all consume
the same structured event stream; nothing greps strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Type, TypeVar

__all__ = [
    "SimEvent",
    "VMLaunched",
    "VMPreempted",
    "VMTerminated",
    "JobStarted",
    "JobCompleted",
    "JobFailed",
    "CheckpointWritten",
    "EventLog",
]


@dataclass(frozen=True)
class SimEvent:
    """Base class: every event carries its simulation timestamp (hours)."""

    time: float


@dataclass(frozen=True)
class VMLaunched(SimEvent):
    vm_id: int
    vm_type: str
    zone: str


@dataclass(frozen=True)
class VMPreempted(SimEvent):
    vm_id: int
    vm_type: str
    age_hours: float


@dataclass(frozen=True)
class VMTerminated(SimEvent):
    vm_id: int
    vm_type: str
    age_hours: float


@dataclass(frozen=True)
class JobStarted(SimEvent):
    job_id: int
    vm_ids: tuple[int, ...]


@dataclass(frozen=True)
class JobCompleted(SimEvent):
    job_id: int
    makespan_hours: float


@dataclass(frozen=True)
class JobFailed(SimEvent):
    job_id: int
    vm_id: int
    lost_hours: float


@dataclass(frozen=True)
class CheckpointWritten(SimEvent):
    job_id: int
    work_done_hours: float


E = TypeVar("E", bound=SimEvent)


@dataclass
class EventLog:
    """Append-only chronological event store with typed queries."""

    events: list[SimEvent] = field(default_factory=list)

    def record(self, event: SimEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: Type[E]) -> list[E]:
        """All events of the exact given type, in order."""
        return [e for e in self.events if type(e) is event_type]

    def count(self, event_type: Type[SimEvent]) -> int:
        return sum(1 for e in self.events if type(e) is event_type)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

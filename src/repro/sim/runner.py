"""Job execution with checkpoint/restart semantics.

A :class:`JobExecution` runs one attempt of a job on its gang of VMs.
Work advances segment by segment; after each non-final segment the
execution pays the checkpoint write cost and durably records progress.
A preemption of any gang VM aborts the attempt: progress rolls back to
the last checkpoint (or to zero if none), and the cluster manager
requeues the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import CheckpointWritten, EventLog
from repro.sim.vm import SimVM

__all__ = ["JobExecution"]


@dataclass
class JobExecution:
    """One attempt at running ``job`` on ``vms``.

    Parameters
    ----------
    segments:
        Work-hours between checkpoints for the *remaining* work; ``None``
        means run the remainder as a single unchecked segment.
    checkpoint_cost:
        Hours charged per checkpoint write.
    on_complete:
        Called ``(job, vms)`` when the final segment finishes.
    on_abort:
        Called ``(job, vms, dead_vm, lost_hours)`` on preemption.
    """

    sim: Simulator
    job: "SimJob"  # noqa: F821 - forward ref to avoid import cycle
    vms: Sequence[SimVM]
    segments: "list[float] | None"
    checkpoint_cost: float
    log: EventLog
    on_complete: Callable[["SimJob", Sequence[SimVM]], None]
    on_abort: Callable[["SimJob", Sequence[SimVM], SimVM, float], None]
    _pending: EventHandle | None = field(default=None, init=False)
    _segment_index: int = field(default=0, init=False)
    _segment_start: float = field(default=0.0, init=False)
    _active: bool = field(default=False, init=False)
    _plan: list[float] = field(default_factory=list, init=False)

    def begin(self) -> None:
        """Start executing the remaining work."""
        remaining = self.job.remaining_hours
        if remaining <= 0.0:
            raise RuntimeError(f"job {self.job.job_id} has no remaining work")
        if self.segments is None:
            self._plan = [remaining]
        else:
            self._plan = self._clip_segments(self.segments, remaining)
        self._active = True
        self._segment_index = 0
        self._launch_segment()

    @staticmethod
    def _clip_segments(segments: Sequence[float], remaining: float) -> list[float]:
        """Trim a proposed plan to exactly ``remaining`` work hours."""
        plan: list[float] = []
        left = remaining
        for seg in segments:
            if left <= 1e-12:
                break
            take = min(seg, left)
            plan.append(take)
            left -= take
        if left > 1e-12:
            plan.append(left)
        return plan

    def _launch_segment(self) -> None:
        seg = self._plan[self._segment_index]
        is_final = self._segment_index == len(self._plan) - 1
        duration = seg + (0.0 if is_final else self.checkpoint_cost)
        self._segment_start = self.sim.now
        self._pending = self.sim.schedule(duration, self._segment_done)

    def _segment_done(self) -> None:
        if not self._active:
            return
        seg = self._plan[self._segment_index]
        self.job.progress_hours = min(
            self.job.progress_hours + seg, self.job.work_hours
        )
        is_final = self._segment_index == len(self._plan) - 1
        if is_final:
            self._active = False
            self.on_complete(self.job, self.vms)
            return
        self.log.record(
            CheckpointWritten(
                time=self.sim.now,
                job_id=self.job.job_id,
                work_done_hours=self.job.progress_hours,
            )
        )
        self._segment_index += 1
        self._launch_segment()

    def abort(self, dead_vm: SimVM) -> None:
        """Handle a gang-VM preemption: roll back to the last checkpoint."""
        if not self._active:
            return
        self._active = False
        if self._pending is not None:
            self._pending.cancel()
        lost = max(self.sim.now - self._segment_start, 0.0)
        self.on_abort(self.job, self.vms, dead_vm, lost)

"""VM lifecycle state machine.

A simulated VM moves RUNNING -> (PREEMPTED | TERMINATED).  Its true
lifetime is drawn at launch by the cloud provider and is **private** to
the provider — policies and the service controller only learn of it when
the preemption fires, exactly as on the real cloud.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["VMState", "SimVM"]


class VMState(enum.Enum):
    RUNNING = "running"
    PREEMPTED = "preempted"
    TERMINATED = "terminated"


@dataclass
class SimVM:
    """A launched (possibly preemptible) VM.

    Attributes
    ----------
    vm_id:
        Provider-assigned id.
    vm_type, zone:
        Machine type and zone.
    launch_time:
        Simulation time of the launch (hours).
    preemptible:
        False for on-demand VMs (never preempted by the provider).
    hourly_price:
        Billing rate actually charged for this VM.
    pool:
        Index into the fleet's pool catalog (see
        :mod:`repro.sim.placement`); 0 for single-pool fleets.
    """

    vm_id: int
    vm_type: str
    zone: str
    launch_time: float
    preemptible: bool
    hourly_price: float
    pool: int = 0
    state: VMState = VMState.RUNNING
    end_time: float | None = None
    #: callbacks invoked with (vm, time) when the provider preempts it.
    on_preempt: list[Callable[["SimVM", float], None]] = field(default_factory=list)

    def age(self, now: float) -> float:
        """Age in hours at simulation time ``now`` (capped at end time)."""
        end = self.end_time if self.end_time is not None else now
        return max(min(now, end) - self.launch_time, 0.0)

    @property
    def alive(self) -> bool:
        return self.state is VMState.RUNNING

    def runtime_hours(self, now: float) -> float:
        """Billable hours so far (or final, once ended)."""
        return self.age(now)

    def cost(self, now: float) -> float:
        """Accrued cost in USD at ``now``."""
        return self.runtime_hours(now) * self.hourly_price

    # -- transitions (driven by CloudProvider) -------------------------
    def mark_preempted(self, now: float) -> None:
        if self.state is not VMState.RUNNING:
            raise RuntimeError(f"VM {self.vm_id} is {self.state.value}, cannot preempt")
        self.state = VMState.PREEMPTED
        self.end_time = now

    def mark_terminated(self, now: float) -> None:
        if self.state is not VMState.RUNNING:
            raise RuntimeError(f"VM {self.vm_id} is {self.state.value}, cannot terminate")
        self.state = VMState.TERMINATED
        self.end_time = now

"""Batched multi-tenant traffic kernel: N service-with-traffic runs in lockstep.

:mod:`repro.sim.service_vectorized` batches one bag submitted at t = 0;
this module batches the layer above it — many tenants submitting bags
*over time* to one shared preemptible fleet, under a pluggable
inter-tenant scheduling policy, per-tenant admission control, and
elastic fleet sizing.  It is the kernel behind
:func:`repro.sim.backend.run_tenant_replications`; the event-driven
reference drives the real
:class:`repro.traffic.multitenant.MultiTenantService` (a front end over
:class:`repro.service.controller.BatchComputingService`) per
replication, and the cross-backend tenancy equivalence suite pins the
two to 1e-9 hours with exact event/draw/preemption counts.

What the kernel adds on top of the service kernel
-------------------------------------------------
* **Bag arrivals as events.**  The traffic — a sequence of
  :class:`BagSubmission` s, each a (tenant, time, jobs) triple sampled
  upstream by :mod:`repro.traffic.arrivals` — is *fixed input* shared
  by every replication; replications differ only in VM-lifetime draws.
  Each submission is one scheduled arrival event; in the event backend
  these are the first ``K`` events scheduled (insertion sequences
  ``0..K-1``), so the kernel numbers them identically and every later
  event starts from sequence ``K``.
* **Inter-tenant scheduling as a static total order.**  The pluggable
  policies (``"fifo"``, ``"fair"`` round-robin, ``"weighted"`` stride)
  all reduce to one precomputed priority key per job
  (:func:`assign_queue_keys`); at any instant the queue is the set of
  arrived, unstarted jobs ordered by key (requeued preempted jobs keep
  the head, exactly like the single-bag kernels).  Both backends
  consume the *same* key array, so policy logic cannot diverge.
* **Per-tenant admission.**  ``admission_cap`` bounds a tenant's
  unfinished admitted jobs: a bag whose size would exceed the cap at
  arrival is rejected whole (its jobs never enter the queue).
* **Per-bag runtime estimates.**  Every admitted bag carries its own
  trailing-window estimate (the ``BagOfJobs`` sequential sum), and the
  Eq. 8 reuse filter evaluates the queue head against *its* bag's
  estimate — tenants do not pollute each other's estimates.
* **Elastic fleet sizing.**  With ``elastic_vms_per_bag`` set, the
  provisioning headroom cap is ``min(max_vms, elastic_vms_per_bag x
  active bags)`` (at least 1) instead of the static ``max_vms``;
  downsizing happens naturally through idle-retention reaps.

Tenancy round protocol
----------------------
Randomness and event ordering follow the service round protocol
(:mod:`repro.sim.service_vectorized`): only worker-VM lifetimes consume
uniforms (one draw per boot event, in fire order), and all pending
events — arrivals, VM deaths, segment completions, worker boots, idle
reaps — resolve in per-replication ``(time, insertion sequence)``
order.  Backfill has no tenancy equivalent (inter-tenant policies
replace it) and is not part of the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.sim.cluster_vectorized import GangJob
from repro.sim.placement import PoolSpec, make_allocator
from repro.sim.service_vectorized import _ServiceKernel
from repro.sim.vectorized import _RESIDUAL, _SEQ_INF
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "BagSubmission",
    "TenancyConfig",
    "SCHEDULING_POLICIES",
    "assign_queue_keys",
    "queue_key",
    "normalize_traffic",
    "simulate_tenancy_vectorized",
]

#: Inter-tenant scheduling policies understood by the tenancy layer.
SCHEDULING_POLICIES = ("fifo", "fair", "weighted")


@dataclass(frozen=True)
class BagSubmission:
    """One traffic item: tenant ``tenant`` submits ``jobs`` at ``time``.

    Defined here (sim layer) so both the kernel and the traffic layer
    can share it without the sim layer importing upward; the arrival
    processes of :mod:`repro.traffic.arrivals` produce these.
    """

    tenant: int
    time: float
    jobs: tuple[GangJob, ...]

    def __post_init__(self) -> None:
        if self.tenant < 0:
            raise ValueError(f"tenant must be >= 0, got {self.tenant}")
        check_nonnegative("time", self.time)
        if not self.jobs:
            raise ValueError("a bag submission must contain at least one job")
        object.__setattr__(
            self,
            "jobs",
            tuple(j if isinstance(j, GangJob) else GangJob(*j) for j in self.jobs),
        )


@dataclass(frozen=True)
class TenancyConfig:
    """Knobs of one batched multi-tenant run (see the module docstring).

    The service-kernel subset (fleet, reuse, retention, latency,
    master, checkpointing, estimation) keeps the exact
    :class:`~repro.sim.service_vectorized.ServiceBatchConfig` meanings;
    the tenancy additions are:

    Attributes
    ----------
    scheduling:
        Inter-tenant queue order: ``"fifo"`` (global submission order),
        ``"fair"`` (round-robin across tenants by per-tenant job
        index), or ``"weighted"`` (stride scheduling —
        ``(k + 1) / weight`` virtual finish times).
    tenant_weights:
        Per-tenant weights for ``"weighted"`` (ignored otherwise);
        defaults to all-1.
    admission_cap:
        Maximum unfinished admitted jobs a tenant may hold; a bag that
        would exceed it at arrival is rejected whole.  ``None`` admits
        everything.
    elastic_vms_per_bag:
        Elastic fleet sizing: provisioning cap
        ``min(max_vms, elastic_vms_per_bag x active bags)`` (>= 1).
        ``None`` keeps the static ``max_vms`` cap.  Must cover the
        widest job so a lone active bag can always run.
    pools:
        Optional heterogeneous pool catalog
        (:class:`~repro.sim.placement.PoolSpec` sequence); sizes must
        sum to ``max_vms``.  ``None`` keeps the historical single
        implicit pool.  Incompatible with ``checkpoint="dp"``.
    allocator:
        Pool-choice plugin name (see
        :data:`repro.sim.placement.ALLOCATORS`); the tenancy layer
        additionally supports ``"tenant_affinity"`` — tenant ``t``
        prefers pool ``t mod P`` for boots and node selection.
    """

    max_vms: int = 8
    use_reuse_policy: bool = True
    hot_spare_hours: float = 1.0
    provision_latency: float = 0.0
    run_master: bool = True
    checkpoint: str = "interval"
    checkpoint_interval: float | None = None
    checkpoint_cost: float = 1.0 / 60.0
    checkpoint_step: float = 0.1
    estimate_window: int = 16
    max_attempts_per_job: int = 1000
    livelock_threshold: int = 500
    scheduling: str = "fifo"
    tenant_weights: tuple[float, ...] | None = None
    admission_cap: int | None = None
    elastic_vms_per_bag: int | None = None
    pools: tuple[PoolSpec, ...] | None = None
    allocator: str = "first_fit"

    def __post_init__(self) -> None:
        check_positive("max_vms", self.max_vms)
        if self.pools is not None:
            object.__setattr__(self, "pools", tuple(self.pools))
            if self.checkpoint == "dp":
                raise ValueError(
                    "pools are incompatible with checkpoint='dp': the DP "
                    "plan table is keyed to a single lifetime law"
                )
        make_allocator(self.allocator)
        check_positive("hot_spare_hours", self.hot_spare_hours)
        check_nonnegative("provision_latency", self.provision_latency)
        if self.checkpoint not in ("interval", "dp"):
            raise ValueError(
                f"checkpoint must be 'interval' or 'dp', got {self.checkpoint!r}"
            )
        if self.checkpoint_interval is not None:
            if self.checkpoint == "dp":
                raise ValueError(
                    "checkpoint='dp' plans per attempt; leave "
                    "checkpoint_interval unset"
                )
            check_positive("checkpoint_interval", self.checkpoint_interval)
        check_nonnegative("checkpoint_cost", self.checkpoint_cost)
        check_positive("checkpoint_step", self.checkpoint_step)
        check_positive("estimate_window", self.estimate_window)
        check_positive("max_attempts_per_job", self.max_attempts_per_job)
        check_positive("livelock_threshold", self.livelock_threshold)
        if self.scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}, "
                f"got {self.scheduling!r}"
            )
        if self.tenant_weights is not None:
            object.__setattr__(
                self, "tenant_weights", tuple(float(w) for w in self.tenant_weights)
            )
            if any(w <= 0.0 for w in self.tenant_weights):
                raise ValueError("tenant_weights must be > 0")
        if self.admission_cap is not None:
            check_positive("admission_cap", self.admission_cap)
        if self.elastic_vms_per_bag is not None:
            check_positive("elastic_vms_per_bag", self.elastic_vms_per_bag)


def queue_key(
    scheduling: str,
    tenant: int,
    tenant_job_index: int,
    n_tenants: int,
    weights: tuple[float, ...] | None = None,
) -> float:
    """Priority key of one job under a tenancy scheduling policy.

    Lower keys run first; ties (possible under ``"weighted"``) resolve
    in submission order on both backends.  The pure scalar form — the
    online counterpart of :func:`assign_queue_keys`, used by the live
    :class:`~repro.traffic.multitenant.MultiTenantService` so that
    event-path keys are bit-identical to the kernel's precomputed ones.

    ``tenant_job_index`` is the job's index within *everything the
    tenant has ever submitted* (admitted or not): rejected bags still
    consume indices, keeping the key a pure function of the traffic.
    """
    if scheduling == "fifo":
        raise ValueError("fifo keys are global submission indices; use assign_queue_keys")
    if scheduling == "fair":
        return float(tenant_job_index * n_tenants + tenant)
    if scheduling == "weighted":
        w = 1.0 if weights is None else float(weights[tenant])
        return float(tenant_job_index + 1) / w
    raise ValueError(f"unknown scheduling policy {scheduling!r}")


def assign_queue_keys(
    job_tenants: np.ndarray,
    scheduling: str,
    n_tenants: int,
    weights: tuple[float, ...] | None = None,
) -> np.ndarray:
    """Priority keys for all jobs of a traffic trace, in submission order.

    ``job_tenants`` is the flat per-job tenant index array (traffic
    sorted by time, bags flattened in order).  Returns a float key per
    job; lower runs first.  All keys are >= 0, so requeued preempted
    jobs (negative head keys) always outrank them.
    """
    tenants = np.asarray(job_tenants, dtype=np.int64)
    if scheduling not in SCHEDULING_POLICIES:
        raise ValueError(
            f"scheduling must be one of {SCHEDULING_POLICIES}, got {scheduling!r}"
        )
    if scheduling == "fifo":
        return np.arange(tenants.size, dtype=float)
    # Within-tenant submission index k: 0, 1, 2, ... per tenant.
    k = np.zeros(tenants.size, dtype=np.int64)
    counts = np.zeros(max(n_tenants, 1), dtype=np.int64)
    for i, t in enumerate(tenants):
        k[i] = counts[t]
        counts[t] += 1
    if scheduling == "fair":
        return (k * n_tenants + tenants).astype(float)
    w = np.ones(n_tenants) if weights is None else np.asarray(weights, dtype=float)
    return (k + 1).astype(float) / w[tenants]


def normalize_traffic(traffic) -> tuple[BagSubmission, ...]:
    """Canonical traffic: ``BagSubmission`` s, stably sorted by time.

    Accepts ``BagSubmission`` objects or ``(tenant, time, jobs)``
    triples; every entry point (both backends, the live service front
    end) must normalise through here so job order — and therefore key
    assignment and tie-breaking — is identical everywhere.
    """
    subs = [
        s if isinstance(s, BagSubmission) else BagSubmission(*s) for s in traffic
    ]
    order = sorted(range(len(subs)), key=lambda i: (subs[i].time, i))
    return tuple(subs[i] for i in order)


def _flatten_traffic(traffic: tuple[BagSubmission, ...]):
    """Flat per-job / per-bag arrays of a normalised traffic trace."""
    job_tenant: list[int] = []
    work: list[float] = []
    width: list[int] = []
    bag_lo: list[int] = []
    bag_hi: list[int] = []
    for sub in traffic:
        bag_lo.append(len(work))
        for j in sub.jobs:
            job_tenant.append(sub.tenant)
            work.append(j.work_hours)
            width.append(j.width)
        bag_hi.append(len(work))
    return {
        "job_tenant": np.asarray(job_tenant, dtype=np.int64),
        "work": np.asarray(work, dtype=float),
        "width": np.asarray(width, dtype=np.int64),
        "bag_tenant": np.asarray([s.tenant for s in traffic], dtype=np.int64),
        "bag_time": np.asarray([s.time for s in traffic], dtype=float),
        "bag_lo": np.asarray(bag_lo, dtype=np.int64),
        "bag_hi": np.asarray(bag_hi, dtype=np.int64),
    }


class _TenancyKernel(_ServiceKernel):
    """Array state and phase operations of the lockstep tenancy sweep.

    Inherits the service kernel's fleet/boot/reap/death machinery and
    overrides queueing (arrival-gated static keys), estimation
    (per-bag), stall handling (per-head estimate + elastic cap), and
    the run loop (arrival events, per-row finish times).
    """

    _sweep_name = "tenancy"
    _budget_what = "traffic"

    #: The service bindings minus the per-job completion channel (the
    #: compact running slots replace it in the fused table) plus the
    #: single-column arrival channel.
    _ARENA_BINDINGS = {
        **_ServiceKernel._ARENA_BINDINGS,
        "run": ("rtime", "rseq"),
        "arr": ("arr_time", "arr_seq"),
    }

    def _arena_channels(self) -> list[tuple[str, int]]:
        return [
            ("death", self.S),
            ("run", self.S),
            ("boot", self.B),
            ("reap", self.S),
            ("arr", 1),
        ]

    def __init__(
        self,
        dist: LifetimeDistribution,
        traffic: tuple[BagSubmission, ...],
        n_tenants: int,
        config: TenancyConfig,
        n_replications: int,
        rng: np.random.Generator,
        max_events: int,
        obs=None,
    ):
        flat = _flatten_traffic(traffic)
        jobs = [GangJob(h, int(w)) for h, w in zip(flat["work"], flat["width"])]
        self.K = len(traffic)
        self.atime = flat["bag_time"]
        super().__init__(dist, jobs, config, n_replications, rng, max_events, obs=obs)
        n, J = self.n, self.J
        # Per-job completion events live *outside* the fused table (the
        # compact ``run`` channel mirrors the at-most-S pending ones),
        # keeping per-round selection cost O(S) however long the
        # traffic is.
        self.ctime = np.full((n, J), np.inf)
        self.cseq = np.full((n, J), _SEQ_INF, dtype=np.int64)
        self.T = int(n_tenants)
        self.job_tenant = flat["job_tenant"]
        self.bag_of = np.zeros(J, dtype=np.int64)
        for k in range(self.K):
            self.bag_of[flat["bag_lo"][k] : flat["bag_hi"][k]] = k
        self.bag_tenant = flat["bag_tenant"]
        self.bag_lo = flat["bag_lo"]
        self.bag_hi = flat["bag_hi"]
        self.bag_size = self.bag_hi - self.bag_lo
        self.keys = assign_queue_keys(
            self.job_tenant, config.scheduling, self.T, config.tenant_weights
        )
        # Jobs are queue-invisible until their arrival event fires.
        self.qkey[:] = np.inf
        # Arrival events carry insertion sequences 0..K-1; everything
        # scheduled afterwards starts at K (the event path schedules
        # all arrivals before any other event exists).
        self.evseq[:] = self.K
        self.aptr = np.zeros(n, dtype=np.int64)
        if self.K:
            self.arr_time[:, 0] = self.atime[0]
            self.arr_seq[:, 0] = 0
        # Per-bag runtime estimates (each bag its own BagOfJobs).
        W = config.estimate_window
        first_work = np.array(
            [self.work[lo] for lo in self.bag_lo], dtype=float
        ) if self.K else np.zeros(0)
        self.est = np.broadcast_to(first_work, (n, self.K)).copy()
        self.buf = np.zeros((n, self.K, W))
        self.buf_pos = np.zeros((n, self.K), dtype=np.int64)
        self.buf_len = np.zeros((n, self.K), dtype=np.int64)
        # Tenancy bookkeeping.  Per-tenant counters are *sparse*: only
        # tenants actually present in the traffic allocate a column, so
        # a sparse trace over a huge id space (e.g. SWF user IDs mapped
        # onto millions of tenants) costs O(active), not O(n_tenants).
        active_tenants, job_tcol = (
            np.unique(self.job_tenant, return_inverse=True)
            if J
            else (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        )
        self.T_active = int(active_tenants.size)
        self.job_tcol = job_tcol.astype(np.int64)
        self.bag_tcol = np.searchsorted(active_tenants, self.bag_tenant)
        self.admitted = np.zeros((n, J), dtype=bool)
        self.admitted_total = np.zeros(n, dtype=np.int64)
        self.adm_tenant = np.zeros((n, self.T_active), dtype=np.int64)
        self.done_tenant = np.zeros((n, self.T_active), dtype=np.int64)
        self.bag_done = np.zeros((n, self.K), dtype=np.int64)
        self.active_bags = np.zeros(n, dtype=np.int64)
        self.first_start = np.full((n, J), np.nan)
        self.finish = np.full((n, J), np.nan)
        # Compact running-completion slots.  At most S jobs run at once
        # (each holds >= 1 of the S workers), so pending segment events
        # live in (n, S) arrays keyed by the gang's first VM column —
        # the round loop scans these instead of the (n, J) ctime/cseq,
        # decoupling per-round cost from the traffic length.
        self.rjob = np.full((n, self.S), -1, dtype=np.int64)
        # Per-tenant pool rankings.  Affinity only depends on
        # ``tenant mod P`` (the home pool), so ``nP x nP`` tables cover
        # every tenant; non-affinity allocators produce identical rows.
        alloc = make_allocator(config.allocator)
        self.job_home = (
            self.job_tenant % self.nP
            if self.nP > 1
            else np.zeros(J, dtype=np.int64)
        )
        self.rank_by_home = np.stack(
            [
                np.asarray(alloc.rank_for(self.pools, h), dtype=np.int64)
                for h in range(self.nP)
            ]
        )
        self.rank_of_by_home = np.empty_like(self.rank_by_home)
        for h in range(self.nP):
            self.rank_of_by_home[h, self.rank_by_home[h]] = np.arange(self.nP)
        # Arrival-event compaction: the per-bag static bookkeeping
        # (tenant column, job span, keys) as plain Python scalars, so
        # each arrival event avoids per-field numpy indexing overhead.
        self._bag_static = [
            (
                int(self.bag_tcol[k]),
                int(self.bag_lo[k]),
                int(self.bag_hi[k]),
                [float(self.keys[j]) for j in range(self.bag_lo[k], self.bag_hi[k])],
            )
            for k in range(self.K)
        ]

    # -- tenancy-aware policy plumbing -----------------------------------
    def _fleet_cap(self, rr: np.ndarray) -> np.ndarray:
        """Provisioning cap per row: static, or elastic in active bags."""
        e = self.cfg.elastic_vms_per_bag
        if e is None:
            return np.full(rr.size, self.cfg.max_vms, dtype=np.int64)
        return np.minimum(
            self.cfg.max_vms, np.maximum(e * self.active_bags[rr], 1)
        )

    def _suitability_for(self, rr: np.ndarray, jj: np.ndarray):
        """(free, suitable) masks under the *head job's bag* estimate.

        Named apart from the base ``_suitability(rr)`` (whose row-wide
        single-bag estimate is meaningless here): the per-job form is
        the only one the tenancy kernel may use.
        """
        free = self.alive[rr] & (self.vm_job[rr] == -1)
        if self.policies is None:
            return free, free
        T = np.maximum(self.est[rr, self.bag_of[jj]], 1e-6)
        ages = np.maximum(self.now[rr][:, None] - self.launch[rr], 0.0)
        return free, free & self._decide(rr, T[:, None], ages)

    def _suitability(self, rr: np.ndarray):
        raise NotImplementedError(
            "tenancy suitability is per-job (bag estimates differ); "
            "use _suitability_for"
        )

    def _stall_T(self, rr: np.ndarray, head: np.ndarray) -> np.ndarray:
        """Boot-grace census judges against the head's bag estimate."""
        return np.maximum(self.est[rr, self.bag_of[head]], 1e-6)

    def _backfill_scan(self, rr: np.ndarray) -> None:
        raise NotImplementedError(
            "backfill has no tenancy equivalent; inter-tenant policies "
            "own the queue order"
        )

    def _head_state(self, rr: np.ndarray):
        qk = self.qkey[rr]
        head = np.argmin(qk, axis=1)
        has = qk[np.arange(rr.size), head] < np.inf
        rr, head = rr[has], head[has]
        if not rr.size:
            return rr, head, None, None, None
        free, suit = self._suitability_for(rr, head)
        return rr, head, self.width[head], suit, free

    def _start_job(self, rr: np.ndarray, jj: np.ndarray, suit: np.ndarray) -> None:
        fresh = self.attempts[rr, jj] == 0
        rf = rr[fresh]
        if rf.size:
            self.first_start[rf, jj[fresh]] = self.now[rf]
        super()._start_job(rr, jj, suit)

    # -- tenant-affinity pool rankings ------------------------------------
    def _rank_cols(
        self, rr: np.ndarray, jj: np.ndarray | None = None
    ) -> np.ndarray | None:
        if self.nP == 1:
            return None
        if jj is None:
            return super()._rank_cols(rr)
        vp = self.vm_pool[rr]
        ranks = self.rank_of_by_home[
            self.job_home[jj][:, None], np.clip(vp, 0, None)
        ]
        return np.where(vp >= 0, ranks, np.iinfo(np.int64).max)

    def _pool_rank_rows(
        self, rr: np.ndarray, jj: np.ndarray
    ) -> np.ndarray | None:
        if self.nP == 1:
            return None
        return self.rank_by_home[self.job_home[jj]]

    def _schedule_pass(self, rr: np.ndarray) -> None:
        """One ``try_schedule``: start heads by key order, stall once.

        No backfill branch: inter-tenant policies own the queue order.
        """
        stuck: list[np.ndarray] = []
        while rr.size:
            rr, head, w, suit, _ = self._head_state(rr)
            if not rr.size:
                break
            ok = suit.sum(axis=1) >= w
            stuck.append(rr[~ok])
            rr, head, suit = rr[ok], head[ok], suit[ok]
            if not rr.size:
                break
            self._start_job(rr, head, suit)
        if stuck:
            blocked = np.concatenate(stuck)
            if blocked.size:
                self._stall_actions(blocked)

    # _stall_actions is inherited: the head's per-bag estimate flows in
    # through the _head_state override, the elastic cap through
    # _fleet_cap — the terminate/bill/provision block stays one copy.

    def _record_completion(self, rr: np.ndarray, jj: np.ndarray) -> None:
        """The per-bag ``BagOfJobs.estimated_runtime`` sequential sum."""
        W = self.cfg.estimate_window
        b = self.bag_of[jj]
        pos = self.buf_pos[rr, b]
        self.buf[rr, b, pos] = self.work[jj]
        self.buf_pos[rr, b] = (pos + 1) % W
        self.buf_len[rr, b] = np.minimum(self.buf_len[rr, b] + 1, W)
        k = self.buf_len[rr, b]
        start = np.where(k < W, 0, self.buf_pos[rr, b])
        total = np.zeros(rr.size)
        for t in range(W):
            vals = self.buf[rr, b, (start + t) % W]
            total = np.where(t < k, total + vals, total)
        self.est[rr, b] = total / k

    # -- compact running-slot maintenance --------------------------------
    # Both hooks run while ``vm_job`` still holds the job's gang (the
    # launch sites assign VMs before launching; the clear sites release
    # them after clearing), so the gang's first VM column is a stable
    # slot id for the segment's lifetime.
    def _launch_segment(self, rr: np.ndarray, jj: np.ndarray, left: np.ndarray) -> None:
        super()._launch_segment(rr, jj, left)
        slot = np.argmax(self.vm_job[rr] == jj[:, None], axis=1)
        self.rtime[rr, slot] = self.ctime[rr, jj]
        self.rseq[rr, slot] = self.cseq[rr, jj]
        self.rjob[rr, slot] = jj

    def _clear_segment(self, rr: np.ndarray, jj: np.ndarray) -> None:
        super()._clear_segment(rr, jj)
        slot = np.argmax(self.vm_job[rr] == jj[:, None], axis=1)
        self.rtime[rr, slot] = np.inf
        self.rseq[rr, slot] = _SEQ_INF
        self.rjob[rr, slot] = -1

    # -- event rounds ----------------------------------------------------
    def _process_arrivals(self, rr: np.ndarray) -> None:
        """Bag arrival events: admission, key activation, submit stalls."""
        ks = self.aptr[rr]
        self.aptr[rr] += 1
        nxt = self.aptr[rr]
        done = nxt >= self.K
        self.arr_time[rr, 0] = np.where(
            done, np.inf, self.atime[np.minimum(nxt, self.K - 1)]
        )
        self.arr_seq[rr, 0] = np.where(done, _SEQ_INF, nxt)
        for k in np.unique(ks):
            rk = rr[ks == k]
            t, lo, hi, keys = self._bag_static[k]
            m = hi - lo
            if self.cfg.admission_cap is not None:
                unfinished = self.adm_tenant[rk, t] - self.done_tenant[rk, t]
                admit = unfinished + m <= self.cfg.admission_cap
            else:
                admit = np.ones(rk.size, dtype=bool)
            ra = rk[admit]
            if not ra.size:
                continue
            self.adm_tenant[ra, t] += m
            self.admitted_total[ra] += m
            self.admitted[ra, lo:hi] = True
            self.active_bags[ra] += 1
            # One cluster.submit -> try_schedule per bag member, in
            # declaration order — exactly the controller's submit_bag.
            for j, key in zip(range(lo, hi), keys):
                self.qkey[ra, j] = key
                self._schedule_pass(ra)

    def _process_completions(self, rr: np.ndarray, jj: np.ndarray) -> None:
        take = self.seg_take[rr, jj]
        self.progress[rr, jj] = np.minimum(self.progress[rr, jj] + take, self.work[jj])
        after = self.seg_after[rr, jj]
        more = after > _RESIDUAL
        rc, jc = rr[more], jj[more]
        if rc.size:  # checkpoint written; next segment in the same instant
            self._launch_segment(rc, jc, after[more])
        rf, jf = rr[~more], jj[~more]
        if rf.size:
            self._clear_segment(rf, jf)
            gang = self.vm_job[rf] == jf[:, None]
            self.vm_job[rf] = np.where(gang, -1, self.vm_job[rf])
            # Release order matches _job_completed: idle (reap) timers,
            # then the bag-estimate update and tenant bookkeeping, then
            # the scheduling pass.
            qempty = ~np.isfinite(self.qkey[rf]).any(axis=1)
            rq = rf[qempty]
            if rq.size:
                self._schedule_reaps(rq, gang[qempty])
            self.stall_strikes[rf] = 0
            self._record_completion(rf, jf)
            self.finish[rf, jf] = self.now[rf]
            self.done_count[rf] += 1
            self.done_tenant[rf, self.job_tcol[jf]] += 1
            b = self.bag_of[jf]
            self.bag_done[rf, b] += 1
            ended = self.bag_done[rf, b] == self.bag_size[b]
            self.active_bags[rf[ended]] -= 1
            self._schedule_pass(rf)

    def run(self) -> int:
        n_rounds = 0
        active = (
            np.flatnonzero(
                (self.aptr < self.K)
                | (self.done_count < self.admitted_total)
            )
            if self.n
            else np.zeros(0, dtype=np.int64)
        )
        while active.size:
            _, pick = self._select_events(active)
            S, B = self.S, self.B
            is_death = pick < S
            is_comp = (pick >= S) & (pick < S + S)
            is_boot = (pick >= S + S) & (pick < S + S + B)
            is_reap = (pick >= S + S + B) & (pick < S + S + B + S)
            is_arr = pick >= S + S + B + S
            rd = active[is_death]
            rc = active[is_comp]
            rb = active[is_boot]
            rp = active[is_reap]
            ra = active[is_arr]
            if self.obs is not None:
                self.obs.inc("events.death", int(rd.size))
                self.obs.inc("events.comp", int(rc.size))
                self.obs.inc("events.boot", int(rb.size))
                self.obs.inc("events.reap", int(rp.size))
                self.obs.inc("events.arr", int(ra.size))
                self._sample_obs(active)
            if rd.size:
                self._process_deaths(rd, pick[is_death])
            if rc.size:
                self._process_completions(rc, self.rjob[rc, pick[is_comp] - S])
            if rb.size:
                self._process_boots(rb, pick[is_boot] - S - S)
            if rp.size:
                self._process_reaps(rp, pick[is_reap] - S - S - B)
            if ra.size:
                self._process_arrivals(ra)
            fin = (self.aptr[active] == self.K) & (
                self.done_count[active] == self.admitted_total[active]
            )
            self.makespan[active[fin]] = self.now[active[fin]]
            active = active[~fin]
            n_rounds += 1
        if self.n:
            # Bill workers still alive at each row's finish time; pending
            # boots and reaps never fire (the run stops with the traffic).
            live = np.where(self.alive, self.makespan[:, None] - self.launch, 0.0)
            self.vm_hours += live.sum(axis=1)
            for p in range(self.nP):
                self.pool_hours[:, p] += np.where(
                    self.vm_pool == p, live, 0.0
                ).sum(axis=1)
            if self.cfg.run_master:
                self.master_hours = self.makespan.copy()
        return n_rounds


def simulate_tenancy_vectorized(
    dist: LifetimeDistribution,
    traffic,
    n_tenants: int,
    config: TenancyConfig,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int = 1_000_000,
    obs=None,
) -> dict[str, np.ndarray | int]:
    """Run ``n_replications`` lockstep multi-tenant sweeps.

    Argument validation lives in
    :func:`repro.sim.backend.run_tenant_replications`; this kernel
    assumes normalised traffic and a validated config.  Returns the raw
    per-replication arrays keyed by outcome name plus the round count.
    ``obs`` is an optional :class:`repro.obs.MetricsRegistry`; counting
    sites are draw-neutral and gated so ``obs=None`` adds zero work.
    """
    traffic = normalize_traffic(traffic)
    kernel = _TenancyKernel(
        dist, traffic, n_tenants, config, n_replications, rng, max_events, obs=obs
    )
    n_rounds = kernel.run()
    if obs is not None:
        obs.gauge("rng.rows").set(kernel.table._filled)
    return {
        "makespan": kernel.makespan,
        "wasted_hours": kernel.wasted,
        "completed_jobs": kernel.done_count,
        "n_job_failures": kernel.failures,
        "n_preemptions": kernel.preemptions,
        "vm_hours": kernel.vm_hours,
        "pool_vm_hours": kernel.pool_hours,
        "master_hours": kernel.master_hours,
        "n_events": kernel.events,
        "n_draws": kernel.draw_k,
        "admitted": kernel.admitted,
        "start_times": kernel.first_start,
        "finish_times": kernel.finish,
        "n_rounds": n_rounds,
    }

"""Minimal deterministic discrete-event simulator.

A binary-heap event queue keyed on (time, sequence number) so that
same-time events fire in scheduling order — determinism matters because
every evaluation in EXPERIMENTS.md must be reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Simulator", "EventHandle"]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Event-driven clock with ``schedule`` / ``run_until`` / ``run``.

    Notes
    -----
    Callbacks may schedule further events (including at the current
    time); they execute strictly in (time, insertion-order).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (hours)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` hours (>= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _ScheduledEvent(time=float(time), seq=next(self._counter), callback=callback)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def step(self) -> bool:
        """Execute the next pending event; False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.callback()
            self._processed += 1
            return True
        return False

    def run(self, *, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (or the safety cap trips)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"simulation exceeded {max_events} events")

    def run_until(self, time: float, *, max_events: int = 10_000_000) -> None:
        """Run all events scheduled strictly before or at ``time``."""
        if time < self._now:
            raise ValueError(f"cannot run backwards ({time} < {self._now})")
        for _ in range(max_events):
            # peek past cancelled heads: a cancelled event at <= time
            # must not let step() run a live event scheduled after it.
            nxt = self.peek_next_time()
            if nxt is None or nxt > time:
                break
            self.step()
        else:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        self._now = max(self._now, float(time))

    def peek_next_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

"""Heterogeneous spot pools and the placement plugin layer.

The paper's economics hinge on spot price/reliability trade-offs, yet a
single sweep historically assumed one VM type with one lifetime law and
one price.  This module adds the missing **pool axis** plus the plugin
pair that decomposes placement, following the accasim split the ROADMAP
names as the model (``scheduler_class`` picks *who* runs,
``allocator_class`` picks *where*):

``PoolSpec``
    One homogeneous slice of the fleet: a name, a slot count, and the
    pool's price, boot latency, and lifetime law.  A fleet is an ordered
    catalog of pools whose sizes partition the fleet cap; both backends
    consume the same resolved catalog, so pool indices (and hence the
    round-protocol draw mapping) agree exactly.

``Scheduler`` plugins (fifo / keyed / backfill)
    Ordering and admission: which queued job is eligible next, and
    whether the manager may scan past a stuck head.  These wrap the
    queue semantics that used to be hard-coded flags on
    :class:`~repro.sim.cluster.ClusterManager`.

``Allocator`` plugins (first-fit / best-fit-price / reliability / affinity)
    Pool choice: a deterministic *ranking* of the pool catalog that
    governs where fresh boots land, which free VM is grabbed first, and
    which unsuitable VM a stalled queue evicts.  Rankings are static per
    (catalog, tenant) and computed identically by the event-driven
    oracle and the vectorized kernels — pool choice happens *before*
    the lifetime draw, so replications stay paired draw-for-draw.

Cross-pool hot-spare substitution falls out of ranked-headroom
replacement: when a dead VM's own pool has no headroom left, the
replacement boots in the next ranked pool that does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.distributions.base import LifetimeDistribution

__all__ = [
    "PoolSpec",
    "resolve_pools",
    "pool_ranking",
    "Scheduler",
    "FifoScheduler",
    "KeyedScheduler",
    "BackfillScheduler",
    "Allocator",
    "FirstFitAllocator",
    "BestFitByPriceAllocator",
    "ReliabilityAwareAllocator",
    "TenantAffinityAllocator",
    "ALLOCATORS",
    "SCHEDULERS",
    "make_allocator",
    "make_scheduler",
]


# ----------------------------------------------------------------------
# Pool catalog
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PoolSpec:
    """One homogeneous pool of a heterogeneous spot fleet.

    Attributes
    ----------
    name:
        Human-readable pool label (unique within a catalog).
    size:
        Slot count.  Pool sizes must partition the fleet cap
        (``pool_size`` / ``max_vms``) exactly.
    dist:
        Lifetime law of VMs booted in this pool; ``None`` inherits the
        sweep's distribution.
    price:
        Hourly price, in the sweep's rate unit.  Per-pool VM-hours are
        accumulated separately (``pool_vm_hours``) so cost is always
        ``hours @ prices``.
    boot_latency:
        Provisioning delay for this pool's boots, hours.  ``None``
        inherits the config-level ``provision_latency``.  The cluster
        kernel boots instantaneously and ignores this field.
    """

    name: str
    size: int
    dist: LifetimeDistribution | None = None
    price: float = 1.0
    boot_latency: float | None = None


def resolve_pools(
    pools: Sequence[PoolSpec] | None,
    *,
    dist: LifetimeDistribution,
    n_slots: int,
    provision_latency: float = 0.0,
) -> tuple[PoolSpec, ...]:
    """Normalise a pool catalog against a sweep's defaults.

    ``None`` resolves to the single implicit pool every pre-pool sweep
    ran on: the whole fleet under ``dist`` at unit price with the
    config-level boot latency.  Explicit catalogs are validated (unique
    names, positive sizes, sizes partitioning ``n_slots``) and have
    their ``dist``/``boot_latency`` defaults filled, so downstream code
    never branches on "pools or not".
    """
    if pools is None:
        return (
            PoolSpec(
                name="default",
                size=int(n_slots),
                dist=dist,
                price=1.0,
                boot_latency=float(provision_latency),
            ),
        )
    catalog = tuple(pools)
    if not catalog:
        raise ValueError("pools must be a non-empty sequence of PoolSpec")
    names = [p.name for p in catalog]
    if len(set(names)) != len(names):
        raise ValueError(f"pool names must be unique, got {names}")
    for p in catalog:
        if int(p.size) <= 0:
            raise ValueError(f"pool {p.name!r} size must be positive, got {p.size}")
        if p.price < 0.0:
            raise ValueError(f"pool {p.name!r} price must be >= 0, got {p.price}")
        if p.boot_latency is not None and p.boot_latency < 0.0:
            raise ValueError(
                f"pool {p.name!r} boot_latency must be >= 0, got {p.boot_latency}"
            )
    total = sum(int(p.size) for p in catalog)
    if total != int(n_slots):
        raise ValueError(
            f"pool sizes must sum to the fleet cap ({n_slots}), got {total}"
        )
    return tuple(
        PoolSpec(
            name=p.name,
            size=int(p.size),
            dist=p.dist if p.dist is not None else dist,
            price=float(p.price),
            boot_latency=(
                float(p.boot_latency)
                if p.boot_latency is not None
                else float(provision_latency)
            ),
        )
        for p in catalog
    )


# ----------------------------------------------------------------------
# Scheduler plugins: ordering / admission
# ----------------------------------------------------------------------

class Scheduler:
    """Queue-ordering policy: which queued job is eligible next.

    ``keyed`` switches the manager to priority-key ordering (tenancy
    fair/weighted queues); ``backfill`` lets it scan past a stuck head
    for a narrower startable job.  Plain FIFO is both flags off.
    """

    name = "fifo"
    keyed = False
    backfill = False


class FifoScheduler(Scheduler):
    """Strict arrival-order head-of-line scheduling (the default)."""

    name = "fifo"


class KeyedScheduler(Scheduler):
    """Priority-key ordering: the queue pops the minimum-key job."""

    name = "keyed"
    keyed = True


class BackfillScheduler(Scheduler):
    """FIFO head-of-line plus backfill past a stuck head."""

    name = "backfill"
    backfill = True


SCHEDULERS: dict[str, type[Scheduler]] = {
    "fifo": FifoScheduler,
    "keyed": KeyedScheduler,
    "backfill": BackfillScheduler,
}


def make_scheduler(spec: str | Scheduler | None) -> Scheduler:
    """Coerce a scheduler name (or instance, or ``None``) to a plugin."""
    if spec is None:
        return FifoScheduler()
    if isinstance(spec, Scheduler):
        return spec
    try:
        return SCHEDULERS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {spec!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None


# ----------------------------------------------------------------------
# Allocator plugins: pool choice
# ----------------------------------------------------------------------

class Allocator:
    """Pool-choice policy, expressed as a deterministic catalog ranking.

    ``rank(pools)`` returns the pool indices best-first; ties always
    break on catalog index so both backends (and every shard layout)
    agree bit-for-bit.  The ranking drives three decisions: where a
    fresh boot lands (first ranked pool with headroom), which free VM a
    job grabs first (rank is the primary sort key, age the secondary),
    and which unsuitable VM a stalled queue evicts.  ``rank_for``
    refines the ranking per tenant; the base class ignores the tenant.
    """

    name = "first_fit"

    def rank(self, pools: Sequence[PoolSpec]) -> tuple[int, ...]:
        return tuple(range(len(pools)))

    def rank_for(
        self, pools: Sequence[PoolSpec], tenant: int | None = None
    ) -> tuple[int, ...]:
        return self.rank(pools)


class FirstFitAllocator(Allocator):
    """Catalog order: the first pool with headroom wins (the default)."""

    name = "first_fit"


class BestFitByPriceAllocator(Allocator):
    """Cheapest pool first; price ties break on catalog index."""

    name = "best_fit_price"

    def rank(self, pools: Sequence[PoolSpec]) -> tuple[int, ...]:
        return tuple(
            sorted(range(len(pools)), key=lambda k: (pools[k].price, k))
        )


class ReliabilityAwareAllocator(Allocator):
    """Longest expected lifetime first; ties break on catalog index."""

    name = "reliability"

    def rank(self, pools: Sequence[PoolSpec]) -> tuple[int, ...]:
        means = [p.dist.mean() if p.dist is not None else 0.0 for p in pools]
        return tuple(
            sorted(range(len(pools)), key=lambda k: (-means[k], k))
        )


class TenantAffinityAllocator(Allocator):
    """Per-tenant pool affinity: tenant ``t`` prefers pool ``t mod P``.

    Job-independent decisions (idle-reaper ordering, pre-traffic boots)
    fall back to catalog order via the tenant-less ``rank``.
    """

    name = "tenant_affinity"

    def rank_for(
        self, pools: Sequence[PoolSpec], tenant: int | None = None
    ) -> tuple[int, ...]:
        P = len(pools)
        if tenant is None or P == 0:
            return self.rank(pools)
        home = int(tenant) % P
        return (home, *(k for k in range(P) if k != home))


ALLOCATORS: dict[str, type[Allocator]] = {
    "first_fit": FirstFitAllocator,
    "best_fit_price": BestFitByPriceAllocator,
    "reliability": ReliabilityAwareAllocator,
    "tenant_affinity": TenantAffinityAllocator,
}


def make_allocator(spec: str | Allocator | None) -> Allocator:
    """Coerce an allocator name (or instance, or ``None``) to a plugin."""
    if spec is None:
        return FirstFitAllocator()
    if isinstance(spec, Allocator):
        return spec
    try:
        return ALLOCATORS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown allocator {spec!r}; expected one of {sorted(ALLOCATORS)}"
        ) from None


def pool_ranking(
    pools: Sequence[PoolSpec],
    allocator: str | Allocator | None,
    tenant: int | None = None,
) -> tuple[int, ...]:
    """The allocator's deterministic pool ranking for one decision site."""
    return make_allocator(allocator).rank_for(pools, tenant)

"""Batched gang-scheduling kernel: N whole-cluster runs in lockstep.

:func:`repro.sim.vectorized.simulate_plan_vectorized` batches *single
jobs*; this module batches the paper's Section 5 scenario end to end — a
bag of gang-scheduled jobs competing for a fixed pool of preemptible
VMs, with FIFO head-of-line queueing, Eq. 8 reuse decisions, hot-spare
substitution of dead nodes, and fixed-interval checkpoint restart.  All
``n_replications`` independent cluster runs advance together over
*queue-event rounds*: each round every still-active replication pops and
processes exactly one pending event (a VM death or a segment
completion) with NumPy masks across the replication axis, instead of
one Python event loop per replication.

The event-driven reference for this kernel is
:func:`repro.sim.backend.run_cluster_replications` with
``backend="event"``, which drives the real
:class:`repro.sim.cluster.ClusterManager` per replication; the
cross-backend cluster equivalence suite pins the two to 1e-9 hours.

Cluster round protocol (shared with the event backend)
------------------------------------------------------
*Randomness.*  Only VM lifetimes consume randomness.  Draw ``k`` of
replication ``i`` is column ``i`` of the ``k``-th ``rng.random(n)`` row
(rows materialised lazily, in order), mapped through ``dist.ppf`` —
the same lazy row table the single-job protocol uses, so a draw is a
function of ``(seed, i, k)`` alone.  Per replication, draws happen in
boot order: the initial pool (pool slots ``0..P-1`` at ``t = 0``), then
every replacement/refresh boot in event order (ties in slot order).

*Event ordering.*  Within a replication, pending events are processed
in ``(time, insertion sequence)`` order — exactly the
:class:`repro.sim.engine.Simulator` heap contract.  The kernel assigns
every scheduled event (a boot's death event, a segment launch's
completion event) a per-replication sequence number in the same order
the event harness schedules them, so simultaneous events (e.g. two
identical jobs finishing in the same instant) resolve identically on
both backends.

*Scheduling.*  Strict FIFO with head-of-line blocking by default (with
``backfill=True``, jobs behind a stuck head may start on suitable VMs
the head cannot use, scanned in queue order — unreserved, exactly the
:class:`~repro.sim.cluster.ClusterManager` flag): a
requeued (preempted) job returns to the queue head.  A job starts when
``width`` *suitable* free VMs exist — all free VMs when the reuse
policy is off, else the free VMs whose Eq. 8 decision
(:meth:`ModelReusePolicy.decide_pairs` on the job's remaining hours) is
REUSE — and takes the oldest suitable ones (launch time, then boot
order).  When the head stalls but ``suitable + unsuitable-free + empty
pool slots >= width``, the cluster *refreshes* one VM at a time — the
oldest unsuitable free VM is terminated and replaced by a fresh boot
(or an empty pool slot boots, when no unsuitable VM remains) — retrying
the queue between refreshes, until the head starts or capacity runs
out.

*Hot-spare substitution.*  With ``hot_spare=True`` a dead VM (busy or
idle) is immediately replaced by a fresh boot, keeping the pool at
``pool_size``; with ``False`` dead VMs leave empty slots that only the
stall-refresh path re-boots on demand.

*Checkpoint restart.*  ``checkpoint_interval`` hours of work between
checkpoint writes (each costing ``checkpoint_cost`` hours, final
segment unchecked), clipped to the attempt's remaining work exactly as
:meth:`repro.sim.runner.JobExecution._clip_segments` does; ``None``
runs each attempt as one unchecked segment.  With ``checkpoint="dp"``
each attempt instead follows the Section 4.3 DP plan for its remaining
work at the gang's oldest VM age, walked in batch by
:class:`repro.sim.checkpoint_vectorized.DPPlanWalker`.  A gang
preemption loses the work past the last durable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.policies.scheduling import ModelReusePolicy
from repro.sim.placement import PoolSpec, make_allocator, resolve_pools
from repro.sim.vectorized import _LockstepKernel, _RESIDUAL, _SEQ_INF
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["GangJob", "ClusterConfig", "simulate_cluster_vectorized"]


@dataclass(frozen=True)
class GangJob:
    """One bag member: ``work_hours`` of computation on ``width`` gang nodes."""

    work_hours: float
    width: int = 1

    def __post_init__(self) -> None:
        check_positive("work_hours", self.work_hours)
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one batched cluster run (see the module docstring).

    Attributes
    ----------
    pool_size:
        Number of pool slots (the service's ``max_vms``); every job's
        width must fit.
    use_reuse_policy:
        Filter free VMs through the Eq. 8 decision (True) or accept any
        free VM, memoryless-style (False).
    reuse_criterion:
        :class:`ModelReusePolicy` criterion; the batch service uses
        ``"conditional"``.
    hot_spare:
        Replace dead VMs immediately (True) or let the pool shrink and
        re-boot slots on demand at stall time (False).
    backfill:
        Unreserved backfill (the :class:`ClusterManager` flag): jobs
        behind a stuck head may start on suitable VMs the head cannot
        use, scanned in queue order.  No start-time reservation for the
        head, exactly like the event path.  Default is strict FIFO.
    checkpoint:
        ``"interval"`` (default) — fixed-interval checkpointing per
        ``checkpoint_interval``; ``"dp"`` — per-attempt Section 4.3 DP
        plans (the controller's ``use_checkpointing`` mode), which
        requires ``checkpoint_interval`` to stay ``None``.
    checkpoint_interval:
        Work hours between checkpoint writes; ``None`` disables
        checkpointing (in ``"interval"`` mode).
    checkpoint_cost:
        Hours per checkpoint write.
    checkpoint_step:
        DP work-step granularity in hours (``"dp"`` mode only).
    pools:
        Optional heterogeneous pool catalog
        (:class:`~repro.sim.placement.PoolSpec` sequence); sizes must
        sum to ``pool_size``.  ``None`` keeps the historical single
        implicit pool under the sweep's distribution.  The cluster
        kernel boots instantaneously, so per-pool ``boot_latency`` is
        ignored here.  Incompatible with ``checkpoint="dp"`` (the DP
        table is keyed to a single lifetime law).
    allocator:
        Pool-choice plugin name (see
        :data:`repro.sim.placement.ALLOCATORS`): where fresh boots
        land, which free VM a gang grabs first, and which unsuitable VM
        a stalled queue evicts.  With a single pool every allocator
        reduces to the historical ``(launch, birth)`` order.
    """

    pool_size: int = 8
    use_reuse_policy: bool = True
    reuse_criterion: str = "conditional"
    hot_spare: bool = True
    backfill: bool = False
    checkpoint: str = "interval"
    checkpoint_interval: float | None = None
    checkpoint_cost: float = 1.0 / 60.0
    checkpoint_step: float = 0.1
    pools: tuple[PoolSpec, ...] | None = None
    allocator: str = "first_fit"

    def __post_init__(self) -> None:
        check_positive("pool_size", self.pool_size)
        if self.pools is not None:
            object.__setattr__(self, "pools", tuple(self.pools))
            if self.checkpoint == "dp":
                raise ValueError(
                    "pools are incompatible with checkpoint='dp': the DP "
                    "plan table is keyed to a single lifetime law"
                )
        make_allocator(self.allocator)
        if self.checkpoint not in ("interval", "dp"):
            raise ValueError(
                f"checkpoint must be 'interval' or 'dp', got {self.checkpoint!r}"
            )
        if self.checkpoint_interval is not None:
            if self.checkpoint == "dp":
                raise ValueError(
                    "checkpoint='dp' plans per attempt; leave "
                    "checkpoint_interval unset"
                )
            check_positive("checkpoint_interval", self.checkpoint_interval)
        check_nonnegative("checkpoint_cost", self.checkpoint_cost)
        check_positive("checkpoint_step", self.checkpoint_step)


class _ClusterKernel(_LockstepKernel):
    """Array state and phase operations of the lockstep cluster sweep."""

    _sweep_name = "cluster"

    def __init__(
        self,
        dist: LifetimeDistribution,
        jobs: Sequence[GangJob],
        config: ClusterConfig,
        n_replications: int,
        rng: np.random.Generator,
        max_events: int,
        obs=None,
    ):
        self.dist = dist
        self.cfg = config
        self.obs = obs
        self.n = int(n_replications)
        self.max_events = int(max_events)
        # The same lazy row table the event paths use, so both backends
        # consume the generator identically by construction.
        from repro.sim.backend import _RoundUniforms
        from repro.sim.checkpoint_vectorized import walker_from_config

        # Pool catalog + allocator ranking (shared with the event
        # oracle).  Cluster boots are instantaneous, so per-pool boot
        # latency resolves to 0 here.
        self.pools = resolve_pools(
            config.pools, dist=dist, n_slots=config.pool_size
        )
        self.nP = len(self.pools)
        rank = make_allocator(config.allocator).rank_for(self.pools)
        self.rank = np.asarray(rank, dtype=np.int64)
        self.rank_of = np.empty(self.nP, dtype=np.int64)
        self.rank_of[self.rank] = np.arange(self.nP)
        self.pool_sizes = np.asarray([p.size for p in self.pools], dtype=np.int64)
        self.policies = (
            [
                ModelReusePolicy(p.dist, criterion=config.reuse_criterion)
                for p in self.pools
            ]
            if config.use_reuse_policy
            else None
        )
        self.policy = self.policies[0] if self.policies is not None else None
        self.table = _RoundUniforms(rng, self.n)

        n, P = self.n, config.pool_size
        S = P + 1  # one spare column for the dead-busy-VM transient
        J = len(jobs)
        self.P, self.S, self.J = P, S, J
        self.width = np.asarray([j.width for j in jobs], dtype=np.int64)
        self.work = np.asarray([j.work_hours for j in jobs], dtype=float)
        self.dp = walker_from_config(dist, config, n, self.work)

        self.now = np.zeros(n)
        self.evseq = np.zeros(n, dtype=np.int64)
        self.draw_k = np.zeros(n, dtype=np.int64)
        self.births = np.zeros(n, dtype=np.int64)
        # Fused event table: death/dseq and ctime/cseq are channel
        # views (see EventArena; dead columns hold death == inf).
        self._init_arena(n)
        # VM columns (storage slots; ordering is (pool rank, launch,
        # birth) — (launch, birth) alone with a single pool).
        self.alive = np.zeros((n, S), dtype=bool)
        self.launch = np.zeros((n, S))
        self.birth = np.full((n, S), -1, dtype=np.int64)
        self.vm_job = np.full((n, S), -1, dtype=np.int64)
        self.vm_pool = np.full((n, S), -1, dtype=np.int64)
        # Job state.
        self.qkey = np.broadcast_to(np.arange(J, dtype=float), (n, J)).copy()
        self.head_key = np.full(n, -1.0)  # next requeue-at-head key
        self.progress = np.zeros((n, J))
        self.sstart = np.zeros((n, J))
        self.seg_take = np.zeros((n, J))
        self.seg_after = np.zeros((n, J))
        # Outcomes.
        self.makespan = np.zeros(n)
        self.wasted = np.zeros(n)
        self.done_count = np.zeros(n, dtype=np.int64)
        self.failures = np.zeros(n, dtype=np.int64)
        self.preemptions = np.zeros(n, dtype=np.int64)
        self.vm_hours = np.zeros(n)
        self.pool_hours = np.zeros((n, self.nP))
        self.events = np.zeros(n, dtype=np.int64)

    def _arena_channels(self) -> list[tuple[str, int]]:
        return [("death", self.S), ("comp", self.J)]

    # -- pool helpers ----------------------------------------------------
    def _boot_pool(self, rr: np.ndarray) -> np.ndarray:
        """First ranked pool with headroom, per row (the allocator rule).

        The choice is a pure function of pre-draw state, so both
        backends agree on it before the lifetime uniform is consumed.
        """
        if self.nP == 1:
            return np.zeros(rr.size, dtype=np.int64)
        occ = np.zeros((rr.size, self.nP), dtype=np.int64)
        vp = self.vm_pool[rr]
        al = self.alive[rr]
        for p in range(self.nP):
            occ[:, p] = (al & (vp == p)).sum(axis=1)
        headroom = (self.pool_sizes[None, :] - occ)[:, self.rank]
        if not (headroom > 0).any(axis=1).all():
            raise RuntimeError("no pool headroom; pool invariant violated")
        return self.rank[np.argmax(headroom > 0, axis=1)]

    def _pool_ppf(self, u: np.ndarray, pool: np.ndarray) -> np.ndarray:
        """Map boot uniforms through each boot's pool's inverse CDF."""
        if self.nP == 1:
            return np.asarray(self.pools[0].dist.ppf(u), dtype=float)
        life = np.empty(u.shape)
        for p, spec in enumerate(self.pools):
            m = pool == p
            if m.any():
                life[m] = np.asarray(spec.dist.ppf(u[m]), dtype=float)
        return life

    def _rank_cols(self, rr: np.ndarray) -> np.ndarray | None:
        """Allocator rank of each VM column (``None`` with one pool)."""
        if self.nP == 1:
            return None
        vp = self.vm_pool[rr]
        return np.where(
            vp >= 0, self.rank_of[np.clip(vp, 0, None)], np.iinfo(np.int64).max
        )

    # -- primitive operations (all take a row-index array) --------------
    def _boot(self, rr: np.ndarray) -> None:
        """Boot one fresh VM per row: draw a lifetime, fill an empty column."""
        pool = self._boot_pool(rr)
        u = self.table.gather(rr, self.draw_k[rr])
        self.draw_k[rr] += 1
        life = self._pool_ppf(u, pool)
        empty = ~self.alive[rr] & (self.vm_job[rr] == -1)
        if not empty.any(axis=1).all():
            raise RuntimeError("no reusable VM column; pool invariant violated")
        col = np.argmax(empty, axis=1)  # first reusable column
        self.launch[rr, col] = self.now[rr]
        self.death[rr, col] = self.now[rr] + life
        self.dseq[rr, col] = self.evseq[rr]
        self.evseq[rr] += 1
        self.birth[rr, col] = self.births[rr]
        self.births[rr] += 1
        self.alive[rr, col] = True
        self.vm_job[rr, col] = -1
        self.vm_pool[rr, col] = pool

    def _head_state(self, rr: np.ndarray):
        """Queue head + pool suitability for each row; drops queue-less rows.

        Returns ``(rr, head, w, suit, free)`` restricted to rows with a
        non-empty queue.
        """
        qk = self.qkey[rr]
        head = np.argmin(qk, axis=1)
        has = qk[np.arange(rr.size), head] < np.inf
        rr, head = rr[has], head[has]
        if not rr.size:
            return rr, head, None, None, None
        w = self.width[head]
        free = self.alive[rr] & (self.vm_job[rr] == -1)
        if self.policies is not None:
            T = np.maximum(
                np.maximum(self.work[head] - self.progress[rr, head], 0.0), 1e-6
            )
            ages = np.maximum(self.now[rr][:, None] - self.launch[rr], 0.0)
            if self.nP == 1:
                suit = free & self.policy.decide_pairs(T[:, None], ages)
            else:
                # Per-pool Eq. 8: each free VM is judged under its own
                # pool's lifetime law.
                suit = np.zeros_like(free)
                vp = self.vm_pool[rr]
                for p, pol in enumerate(self.policies):
                    m = free & (vp == p)
                    if m.any():
                        suit |= m & pol.decide_pairs(T[:, None], ages)
        else:
            suit = free
        return rr, head, w, suit, free

    def _start_job(self, rr: np.ndarray, jj: np.ndarray, suit: np.ndarray) -> None:
        """Start job ``jj`` on its ``width`` oldest suitable VMs per row."""
        w = self.width[jj]
        order = self._oldest(suit, rr, self._rank_cols(rr))
        pos = np.arange(self.S)[None, :] < w[:, None]
        sel = np.zeros((rr.size, self.S), dtype=bool)
        np.put_along_axis(sel, order, pos, axis=1)
        self.vm_job[rr] = np.where(sel, jj[:, None], self.vm_job[rr])
        self.qkey[rr, jj] = np.inf
        left = np.maximum(self.work[jj] - self.progress[rr, jj], 0.0)
        if self.dp is not None:
            # Re-plan the attempt at the gang's oldest selected VM age
            # (the ClusterManager._start planner argument).
            ages = np.where(
                sel, self.now[rr][:, None] - self.launch[rr], -np.inf
            ).max(axis=1)
            self.dp.begin(rr, jj, left, np.maximum(ages, 0.0))
        self._launch_segment(rr, jj, left)

    def _attempt_starts(self, rr: np.ndarray) -> None:
        """One scheduling pass: FIFO head starts, then optional backfill."""
        stuck: list[np.ndarray] = []
        while rr.size:
            rr, head, w, suit, _ = self._head_state(rr)
            if not rr.size:
                break
            ok = suit.sum(axis=1) >= w
            if self.cfg.backfill:
                stuck.append(rr[~ok])
            rr, head, suit = rr[ok], head[ok], suit[ok]
            if not rr.size:
                break
            self._start_job(rr, head, suit)
            # Loop: the next queue head may start in the same instant.
        if self.cfg.backfill and stuck:
            blocked = np.concatenate(stuck)
            if blocked.size:
                self._backfill_scan(blocked)

    def _backfill_scan(self, rr: np.ndarray) -> None:
        """Start jobs behind a stuck head, in queue order (unreserved).

        Mirrors the ``ClusterManager.try_schedule`` scan past the stuck
        head: each iteration starts, per row, the lowest-queue-key job
        whose per-job Eq. 8 suitability count covers its width.  Picking
        the minimum startable key repeatedly is equivalent to the
        event path's single forward scan because started jobs only
        consume VMs — a job unstartable when the scan would have reached
        it stays unstartable afterwards.  The stuck head is excluded by
        the same width filter that stalled it.
        """
        while rr.size:
            free = self.alive[rr] & (self.vm_job[rr] == -1)
            queued = np.isfinite(self.qkey[rr])
            if self.policies is not None:
                T = np.maximum(
                    np.maximum(self.work[None, :] - self.progress[rr], 0.0), 1e-6
                )
                ages = np.maximum(self.now[rr][:, None] - self.launch[rr], 0.0)
                if self.nP == 1:
                    suit3 = free[:, None, :] & self.policy.decide_pairs(
                        T[:, :, None], ages[:, None, :]
                    )
                else:
                    suit3 = np.zeros((rr.size, self.J, self.S), dtype=bool)
                    vp = self.vm_pool[rr]
                    for p, pol in enumerate(self.policies):
                        m = free & (vp == p)
                        if m.any():
                            suit3 |= m[:, None, :] & pol.decide_pairs(
                                T[:, :, None], ages[:, None, :]
                            )
            else:
                suit3 = np.broadcast_to(
                    free[:, None, :], (rr.size, self.J, self.S)
                ).copy()
            startable = queued & (suit3.sum(axis=2) >= self.width[None, :])
            has = startable.any(axis=1)
            rr, startable, suit3 = rr[has], startable[has], suit3[has]
            if not rr.size:
                return
            jkey = np.where(startable, self.qkey[rr], np.inf)
            jc = np.argmin(jkey, axis=1)
            self._start_job(rr, jc, suit3[np.arange(rr.size), jc])

    def _refresh_loop(self, rr: np.ndarray) -> None:
        """Stall handling: refresh/boot one VM at a time until unstuck."""
        while rr.size:
            rr, head, w, suit, free = self._head_state(rr)
            if not rr.size:
                return
            n_suit = suit.sum(axis=1)
            unsuitable = free & ~suit
            n_unsuit = unsuitable.sum(axis=1)
            n_empty = self.P - self.alive[rr].sum(axis=1)
            need = (n_suit < w) & (n_suit + n_unsuit + n_empty >= w)
            rr, unsuitable, n_unsuit = rr[need], unsuitable[need], n_unsuit[need]
            if not rr.size:
                return
            # Terminate the oldest unsuitable free VM where one exists...
            has_u = n_unsuit > 0
            ru = rr[has_u]
            if ru.size:
                if self.obs is not None:
                    self.obs.inc("stall.terminations", int(ru.size))
                col = self._oldest(unsuitable[has_u], ru, self._rank_cols(ru))[:, 0]
                self.vm_hours[ru] += self.now[ru] - self.launch[ru, col]
                self.pool_hours[ru, self.vm_pool[ru, col]] += (
                    self.now[ru] - self.launch[ru, col]
                )
                self.alive[ru, col] = False
                self.death[ru, col] = np.inf
                self.dseq[ru, col] = _SEQ_INF
                self._boot(ru)
            # ...else re-boot an empty pool slot.
            rb = rr[~has_u]
            if rb.size:
                self._boot(rb)
            self._attempt_starts(rr)

    # -- event rounds ----------------------------------------------------
    def _process_deaths(self, rr: np.ndarray, col: np.ndarray) -> None:
        self.alive[rr, col] = False
        self.dseq[rr, col] = _SEQ_INF
        self.vm_hours[rr] += self.death[rr, col] - self.launch[rr, col]
        self.pool_hours[rr, self.vm_pool[rr, col]] += (
            self.death[rr, col] - self.launch[rr, col]
        )
        self.death[rr, col] = np.inf
        self.preemptions[rr] += 1
        jd = self.vm_job[rr, col]
        if self.cfg.hot_spare:
            # A fresh replacement boots immediately (the dead busy VM's
            # column stays held until the abort below releases it), then
            # the queue gets a crack at the replacement — exactly the
            # harness's add_node -> try_schedule ordering.
            self._boot(rr)
            self._attempt_starts(rr)
        busy = jd >= 0
        rb, jb, cb = rr[busy], jd[busy], col[busy]
        if rb.size:
            # Gang abort: waste the current segment, requeue at the
            # head, release the surviving gang members.
            self.wasted[rb] += self.now[rb] - self.sstart[rb, jb]
            self.failures[rb] += 1
            self.ctime[rb, jb] = np.inf
            self.cseq[rb, jb] = _SEQ_INF
            self.qkey[rb, jb] = self.head_key[rb]
            self.head_key[rb] -= 1.0
            gang = self.vm_job[rb] == jb[:, None]
            self.vm_job[rb] = np.where(gang, -1, self.vm_job[rb])
            self._attempt_starts(rb)
        self._refresh_loop(rr if self.cfg.hot_spare else rb)

    def _process_completions(self, rr: np.ndarray, jj: np.ndarray) -> None:
        take = self.seg_take[rr, jj]
        self.progress[rr, jj] = np.minimum(self.progress[rr, jj] + take, self.work[jj])
        after = self.seg_after[rr, jj]
        more = after > _RESIDUAL
        rc, jc = rr[more], jj[more]
        if rc.size:  # checkpoint written; next segment in the same instant
            self._launch_segment(rc, jc, after[more])
        rf, jf = rr[~more], jj[~more]
        if rf.size:
            self.ctime[rf, jf] = np.inf
            self.cseq[rf, jf] = _SEQ_INF
            gang = self.vm_job[rf] == jf[:, None]
            self.vm_job[rf] = np.where(gang, -1, self.vm_job[rf])
            self.done_count[rf] += 1
            finished = self.done_count[rf] == self.J
            self.makespan[rf[finished]] = self.now[rf[finished]]
            still = rf[~finished]
            if still.size:
                self._attempt_starts(still)
                self._refresh_loop(still)

    def run(self) -> int:
        n_rounds = 0
        # t = 0: boot the pool (draws in slot order), submit the bag FIFO.
        init = np.arange(self.n)
        if init.size:
            for _ in range(self.P):
                self._boot(init)
            self._attempt_starts(init)
            self._refresh_loop(init)
        active = np.flatnonzero(self.done_count < self.J) if self.n else init
        while active.size:
            _, pick = self._select_events(active)
            is_death = pick < self.S
            rd = active[is_death]
            rc = active[~is_death]
            if self.obs is not None:
                self.obs.inc("events.death", int(rd.size))
                self.obs.inc("events.comp", int(rc.size))
                self._sample_obs(active)
            if rd.size:
                self._process_deaths(rd, pick[is_death])
            if rc.size:
                self._process_completions(rc, pick[~is_death] - self.S)
            active = active[self.done_count[active] < self.J]
            n_rounds += 1
        # Bill VMs still alive at each replication's makespan.
        if self.n:
            live_hours = np.where(
                self.alive, self.makespan[:, None] - self.launch, 0.0
            )
            self.vm_hours += live_hours.sum(axis=1)
            for p in range(self.nP):
                self.pool_hours[:, p] += np.where(
                    self.vm_pool == p, live_hours, 0.0
                ).sum(axis=1)
        return n_rounds


def simulate_cluster_vectorized(
    dist: LifetimeDistribution,
    jobs: Sequence[GangJob],
    config: ClusterConfig,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int = 1_000_000,
    obs=None,
) -> dict[str, np.ndarray | int]:
    """Run ``n_replications`` lockstep cluster sweeps (see module docstring).

    Argument validation lives in
    :func:`repro.sim.backend.run_cluster_replications`; this kernel
    assumes a validated ``config`` and job widths within the pool.
    Returns the raw per-replication arrays keyed by outcome name plus
    the round count.  ``obs`` is an optional
    :class:`repro.obs.MetricsRegistry`; counting sites are draw-neutral
    and gated so ``obs=None`` adds zero work.
    """
    kernel = _ClusterKernel(dist, jobs, config, n_replications, rng, max_events, obs=obs)
    n_rounds = kernel.run()
    if obs is not None:
        obs.gauge("rng.rows").set(kernel.table._filled)
    return {
        "makespan": kernel.makespan,
        "wasted_hours": kernel.wasted,
        "completed_jobs": kernel.done_count,
        "n_job_failures": kernel.failures,
        "n_preemptions": kernel.preemptions,
        "vm_hours": kernel.vm_hours,
        "pool_vm_hours": kernel.pool_hours,
        "n_events": kernel.events,
        "n_draws": kernel.draw_k,
        "n_rounds": n_rounds,
    }

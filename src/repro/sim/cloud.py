"""The simulated cloud provider.

Implements the provider-side contract the paper's service programs
against (via the Google Cloud API in the original):

* launch preemptible or on-demand VMs of catalog types,
* draw each preemptible VM's true lifetime from the ground-truth
  bathtub law for its (type, zone, time-of-day, idleness) context,
* deliver preemptions through registered callbacks after an (optional)
  advance-warning window — Google gives 30 s,
* bill per VM-hour at the catalog prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import EventLog, VMLaunched, VMPreempted, VMTerminated
from repro.sim.rng import RandomStreams
from repro.sim.vm import SimVM, VMState
from repro.traces.catalog import GroundTruthCatalog, default_catalog
from repro.utils.validation import check_nonnegative

__all__ = ["CloudProvider", "BillingReport"]

#: Google's preemption notice (30 seconds, in hours).
PREEMPTION_WARNING_HOURS = 30.0 / 3600.0


@dataclass(frozen=True)
class BillingReport:
    """Aggregate billing at a point in simulation time."""

    total_cost: float
    preemptible_cost: float
    on_demand_cost: float
    vm_hours: float
    n_launched: int
    n_preempted: int


@dataclass
class _VMBookkeeping:
    vm: SimVM
    preempt_handle: EventHandle | None = None
    warning_handle: EventHandle | None = None


class CloudProvider:
    """Simulated IaaS provider with temporally constrained preemptions.

    Parameters
    ----------
    sim:
        The driving :class:`Simulator`.
    catalog:
        Ground-truth catalog (types, prices, preemption laws).
    streams:
        Seeded random streams; each VM's lifetime uses stream
        ``("vm-lifetime", vm_id)``.
    day_origin_hour:
        Hour-of-day corresponding to simulation time 0 (for the
        night/day preemption modifier).
    """

    def __init__(
        self,
        sim: Simulator,
        catalog: GroundTruthCatalog | None = None,
        streams: RandomStreams | None = None,
        *,
        day_origin_hour: float = 9.0,
        log: EventLog | None = None,
    ):
        self.sim = sim
        self.catalog = catalog or default_catalog()
        self.streams = streams or RandomStreams(0)
        self.day_origin_hour = check_nonnegative("day_origin_hour", day_origin_hour)
        self.log = log if log is not None else EventLog()
        self._vms: dict[int, _VMBookkeeping] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def hour_of_day(self, time: float | None = None) -> float:
        """Local hour-of-day at simulation time ``time`` (default now)."""
        t = self.sim.now if time is None else time
        return (self.day_origin_hour + t) % 24.0

    def is_night(self, time: float | None = None) -> bool:
        """The paper's night window: 8 PM to 8 AM."""
        h = self.hour_of_day(time)
        return h >= 20.0 or h < 8.0

    # ------------------------------------------------------------------
    def launch(
        self,
        vm_type: str,
        zone: str = "us-central1-c",
        *,
        preemptible: bool = True,
        idle: bool = False,
        pool: int = 0,
    ) -> SimVM:
        """Launch a VM and (if preemptible) schedule its hidden preemption.

        ``pool`` tags the VM with its fleet-pool index (see
        :mod:`repro.sim.placement`); the catalog lifetime law is
        unaffected — per-pool laws are a sweep-backend concept.
        """
        spec = self.catalog.spec(vm_type)
        vm_id = self._next_id
        self._next_id += 1
        price = spec.preemptible_price if preemptible else spec.on_demand_price
        vm = SimVM(
            vm_id=vm_id,
            vm_type=vm_type,
            zone=zone,
            launch_time=self.sim.now,
            preemptible=preemptible,
            hourly_price=price,
            pool=int(pool),
        )
        book = _VMBookkeeping(vm=vm)
        self._vms[vm_id] = book
        self.log.record(VMLaunched(time=self.sim.now, vm_id=vm_id, vm_type=vm_type, zone=zone))
        if preemptible:
            dist = self.catalog.distribution(
                vm_type, zone, night=self.is_night(), idle=idle
            )
            rng = self.streams.spawn("vm-lifetime", vm_id)
            lifetime = float(dist.sample(1, rng)[0])
            warn_at = max(lifetime - PREEMPTION_WARNING_HOURS, 0.0)
            if warn_at > 0.0:
                book.warning_handle = self.sim.schedule(
                    warn_at, lambda: self._fire_warning(vm_id)
                )
            book.preempt_handle = self.sim.schedule(
                lifetime, lambda: self._fire_preemption(vm_id)
            )
        return vm

    def _fire_warning(self, vm_id: int) -> None:
        # Advance notice: currently informational (the service's policies
        # are proactive rather than reactive); hook point for extensions.
        pass

    def _fire_preemption(self, vm_id: int) -> None:
        book = self._vms[vm_id]
        vm = book.vm
        if vm.state is not VMState.RUNNING:
            return  # already terminated by the user
        vm.mark_preempted(self.sim.now)
        self.log.record(
            VMPreempted(
                time=self.sim.now,
                vm_id=vm_id,
                vm_type=vm.vm_type,
                age_hours=vm.age(self.sim.now),
            )
        )
        for cb in list(vm.on_preempt):
            cb(vm, self.sim.now)

    def terminate(self, vm: SimVM) -> None:
        """User-initiated termination (cancels the pending preemption)."""
        if vm.state is not VMState.RUNNING:
            return
        book = self._vms[vm.vm_id]
        if book.preempt_handle is not None:
            book.preempt_handle.cancel()
        if book.warning_handle is not None:
            book.warning_handle.cancel()
        vm.mark_terminated(self.sim.now)
        self.log.record(
            VMTerminated(
                time=self.sim.now,
                vm_id=vm.vm_id,
                vm_type=vm.vm_type,
                age_hours=vm.age(self.sim.now),
            )
        )

    # ------------------------------------------------------------------
    def vm(self, vm_id: int) -> SimVM:
        return self._vms[vm_id].vm

    def all_vms(self) -> list[SimVM]:
        return [b.vm for b in self._vms.values()]

    def billing(self) -> BillingReport:
        """Aggregate cost/usage report at the current simulation time."""
        now = self.sim.now
        pre = od = hours = 0.0
        n_pre = 0
        for b in self._vms.values():
            c = b.vm.cost(now)
            hours += b.vm.runtime_hours(now)
            if b.vm.preemptible:
                pre += c
            else:
                od += c
            if b.vm.state is VMState.PREEMPTED:
                n_pre += 1
        return BillingReport(
            total_cost=pre + od,
            preemptible_cost=pre,
            on_demand_cost=od,
            vm_hours=hours,
            n_launched=len(self._vms),
            n_preempted=n_pre,
        )

"""Hierarchical seeded random streams.

Every stochastic consumer (VM lifetime draws, workload jitter, Monte
Carlo repetitions) gets its own named child stream derived from one root
seed via :class:`numpy.random.SeedSequence`, so adding a new consumer
never perturbs the draws of existing ones — the standard reproducibility
discipline for parallel/stochastic simulations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Named, reproducible ``numpy.random.Generator`` factory."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        The child seed derives from ``hash-of-name`` entropy appended to
        the root seed, so the mapping name -> stream is stable across
        runs and insertion orders.
        """
        if name not in self._streams:
            # Stable per-name entropy: bytes of the name, independent of
            # the order in which streams are requested.
            entropy = [self.seed] + list(name.encode("utf-8"))
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Indexed child stream, e.g. one per VM: ``spawn("vm", 17)``."""
        return self.stream(f"{name}:{index}")
